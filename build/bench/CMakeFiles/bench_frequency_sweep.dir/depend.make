# Empty dependencies file for bench_frequency_sweep.
# This may be replaced when dependencies are built.
