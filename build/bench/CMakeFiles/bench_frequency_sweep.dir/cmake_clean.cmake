file(REMOVE_RECURSE
  "CMakeFiles/bench_frequency_sweep.dir/bench_frequency_sweep.cpp.o"
  "CMakeFiles/bench_frequency_sweep.dir/bench_frequency_sweep.cpp.o.d"
  "bench_frequency_sweep"
  "bench_frequency_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frequency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
