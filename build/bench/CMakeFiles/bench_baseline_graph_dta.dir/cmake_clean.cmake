file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_graph_dta.dir/bench_baseline_graph_dta.cpp.o"
  "CMakeFiles/bench_baseline_graph_dta.dir/bench_baseline_graph_dta.cpp.o.d"
  "bench_baseline_graph_dta"
  "bench_baseline_graph_dta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_graph_dta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
