# Empty compiler generated dependencies file for bench_baseline_graph_dta.
# This may be replaced when dependencies are built.
