file(REMOVE_RECURSE
  "CMakeFiles/bench_limit_theorems.dir/bench_limit_theorems.cpp.o"
  "CMakeFiles/bench_limit_theorems.dir/bench_limit_theorems.cpp.o.d"
  "bench_limit_theorems"
  "bench_limit_theorems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_limit_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
