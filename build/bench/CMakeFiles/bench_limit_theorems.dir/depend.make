# Empty dependencies file for bench_limit_theorems.
# This may be replaced when dependencies are built.
