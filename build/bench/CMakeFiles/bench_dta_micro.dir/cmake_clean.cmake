file(REMOVE_RECURSE
  "CMakeFiles/bench_dta_micro.dir/bench_dta_micro.cpp.o"
  "CMakeFiles/bench_dta_micro.dir/bench_dta_micro.cpp.o.d"
  "bench_dta_micro"
  "bench_dta_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dta_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
