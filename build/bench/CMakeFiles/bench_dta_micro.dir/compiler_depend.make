# Empty compiler generated dependencies file for bench_dta_micro.
# This may be replaced when dependencies are built.
