# Empty dependencies file for bench_correlation_ablation.
# This may be replaced when dependencies are built.
