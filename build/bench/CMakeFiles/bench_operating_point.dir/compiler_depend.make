# Empty compiler generated dependencies file for bench_operating_point.
# This may be replaced when dependencies are built.
