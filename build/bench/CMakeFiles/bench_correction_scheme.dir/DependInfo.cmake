
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_correction_scheme.cpp" "bench/CMakeFiles/bench_correction_scheme.dir/bench_correction_scheme.cpp.o" "gcc" "bench/CMakeFiles/bench_correction_scheme.dir/bench_correction_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/terrors_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dta/CMakeFiles/terrors_dta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terrors_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/terrors_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/terrors_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/terrors_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/terrors_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/terrors_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/terrors_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/terrors_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
