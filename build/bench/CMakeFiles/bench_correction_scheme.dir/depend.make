# Empty dependencies file for bench_correction_scheme.
# This may be replaced when dependencies are built.
