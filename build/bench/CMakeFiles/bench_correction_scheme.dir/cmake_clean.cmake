file(REMOVE_RECURSE
  "CMakeFiles/bench_correction_scheme.dir/bench_correction_scheme.cpp.o"
  "CMakeFiles/bench_correction_scheme.dir/bench_correction_scheme.cpp.o.d"
  "bench_correction_scheme"
  "bench_correction_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correction_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
