file(REMOVE_RECURSE
  "CMakeFiles/bench_adder_ablation.dir/bench_adder_ablation.cpp.o"
  "CMakeFiles/bench_adder_ablation.dir/bench_adder_ablation.cpp.o.d"
  "bench_adder_ablation"
  "bench_adder_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
