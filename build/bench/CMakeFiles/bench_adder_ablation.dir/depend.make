# Empty dependencies file for bench_adder_ablation.
# This may be replaced when dependencies are built.
