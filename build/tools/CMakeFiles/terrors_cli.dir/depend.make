# Empty dependencies file for terrors_cli.
# This may be replaced when dependencies are built.
