file(REMOVE_RECURSE
  "CMakeFiles/terrors_cli.dir/terrors_cli.cpp.o"
  "CMakeFiles/terrors_cli.dir/terrors_cli.cpp.o.d"
  "terrors"
  "terrors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
