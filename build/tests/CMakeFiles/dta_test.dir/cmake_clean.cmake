file(REMOVE_RECURSE
  "CMakeFiles/dta_test.dir/dta_test.cpp.o"
  "CMakeFiles/dta_test.dir/dta_test.cpp.o.d"
  "dta_test"
  "dta_test.pdb"
  "dta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
