# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/stat_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/dta_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
