# Empty dependencies file for operating_point_explorer.
# This may be replaced when dependencies are built.
