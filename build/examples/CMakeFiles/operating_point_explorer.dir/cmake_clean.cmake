file(REMOVE_RECURSE
  "CMakeFiles/operating_point_explorer.dir/operating_point_explorer.cpp.o"
  "CMakeFiles/operating_point_explorer.dir/operating_point_explorer.cpp.o.d"
  "operating_point_explorer"
  "operating_point_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operating_point_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
