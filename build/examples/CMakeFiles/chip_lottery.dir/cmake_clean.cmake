file(REMOVE_RECURSE
  "CMakeFiles/chip_lottery.dir/chip_lottery.cpp.o"
  "CMakeFiles/chip_lottery.dir/chip_lottery.cpp.o.d"
  "chip_lottery"
  "chip_lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
