# Empty dependencies file for chip_lottery.
# This may be replaced when dependencies are built.
