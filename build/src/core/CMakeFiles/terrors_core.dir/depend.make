# Empty dependencies file for terrors_core.
# This may be replaced when dependencies are built.
