file(REMOVE_RECURSE
  "CMakeFiles/terrors_core.dir/error_model.cpp.o"
  "CMakeFiles/terrors_core.dir/error_model.cpp.o.d"
  "CMakeFiles/terrors_core.dir/estimator.cpp.o"
  "CMakeFiles/terrors_core.dir/estimator.cpp.o.d"
  "CMakeFiles/terrors_core.dir/framework.cpp.o"
  "CMakeFiles/terrors_core.dir/framework.cpp.o.d"
  "CMakeFiles/terrors_core.dir/marginal.cpp.o"
  "CMakeFiles/terrors_core.dir/marginal.cpp.o.d"
  "CMakeFiles/terrors_core.dir/monte_carlo.cpp.o"
  "CMakeFiles/terrors_core.dir/monte_carlo.cpp.o.d"
  "libterrors_core.a"
  "libterrors_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
