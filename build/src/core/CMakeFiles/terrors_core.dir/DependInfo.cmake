
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/error_model.cpp" "src/core/CMakeFiles/terrors_core.dir/error_model.cpp.o" "gcc" "src/core/CMakeFiles/terrors_core.dir/error_model.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/terrors_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/terrors_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/terrors_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/terrors_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/marginal.cpp" "src/core/CMakeFiles/terrors_core.dir/marginal.cpp.o" "gcc" "src/core/CMakeFiles/terrors_core.dir/marginal.cpp.o.d"
  "/root/repo/src/core/monte_carlo.cpp" "src/core/CMakeFiles/terrors_core.dir/monte_carlo.cpp.o" "gcc" "src/core/CMakeFiles/terrors_core.dir/monte_carlo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dta/CMakeFiles/terrors_dta.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/terrors_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/terrors_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/terrors_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/terrors_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/terrors_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terrors_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
