file(REMOVE_RECURSE
  "libterrors_core.a"
)
