# Empty compiler generated dependencies file for terrors_workloads.
# This may be replaced when dependencies are built.
