file(REMOVE_RECURSE
  "libterrors_workloads.a"
)
