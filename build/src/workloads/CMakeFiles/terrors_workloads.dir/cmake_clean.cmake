file(REMOVE_RECURSE
  "CMakeFiles/terrors_workloads.dir/generator.cpp.o"
  "CMakeFiles/terrors_workloads.dir/generator.cpp.o.d"
  "CMakeFiles/terrors_workloads.dir/specs.cpp.o"
  "CMakeFiles/terrors_workloads.dir/specs.cpp.o.d"
  "libterrors_workloads.a"
  "libterrors_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
