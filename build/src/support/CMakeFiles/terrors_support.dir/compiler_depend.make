# Empty compiler generated dependencies file for terrors_support.
# This may be replaced when dependencies are built.
