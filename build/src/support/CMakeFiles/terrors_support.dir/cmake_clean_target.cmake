file(REMOVE_RECURSE
  "libterrors_support.a"
)
