file(REMOVE_RECURSE
  "CMakeFiles/terrors_support.dir/accumulator.cpp.o"
  "CMakeFiles/terrors_support.dir/accumulator.cpp.o.d"
  "CMakeFiles/terrors_support.dir/math.cpp.o"
  "CMakeFiles/terrors_support.dir/math.cpp.o.d"
  "CMakeFiles/terrors_support.dir/rng.cpp.o"
  "CMakeFiles/terrors_support.dir/rng.cpp.o.d"
  "libterrors_support.a"
  "libterrors_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
