file(REMOVE_RECURSE
  "CMakeFiles/terrors_perf.dir/ts_model.cpp.o"
  "CMakeFiles/terrors_perf.dir/ts_model.cpp.o.d"
  "libterrors_perf.a"
  "libterrors_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
