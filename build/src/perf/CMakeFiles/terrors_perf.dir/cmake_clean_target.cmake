file(REMOVE_RECURSE
  "libterrors_perf.a"
)
