# Empty dependencies file for terrors_perf.
# This may be replaced when dependencies are built.
