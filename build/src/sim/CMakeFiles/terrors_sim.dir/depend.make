# Empty dependencies file for terrors_sim.
# This may be replaced when dependencies are built.
