
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activation.cpp" "src/sim/CMakeFiles/terrors_sim.dir/activation.cpp.o" "gcc" "src/sim/CMakeFiles/terrors_sim.dir/activation.cpp.o.d"
  "/root/repo/src/sim/logic_sim.cpp" "src/sim/CMakeFiles/terrors_sim.dir/logic_sim.cpp.o" "gcc" "src/sim/CMakeFiles/terrors_sim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/terrors_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/terrors_sim.dir/vcd.cpp.o.d"
  "/root/repo/src/sim/vcd_parser.cpp" "src/sim/CMakeFiles/terrors_sim.dir/vcd_parser.cpp.o" "gcc" "src/sim/CMakeFiles/terrors_sim.dir/vcd_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/terrors_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/terrors_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
