file(REMOVE_RECURSE
  "libterrors_sim.a"
)
