file(REMOVE_RECURSE
  "CMakeFiles/terrors_sim.dir/activation.cpp.o"
  "CMakeFiles/terrors_sim.dir/activation.cpp.o.d"
  "CMakeFiles/terrors_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/terrors_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/terrors_sim.dir/vcd.cpp.o"
  "CMakeFiles/terrors_sim.dir/vcd.cpp.o.d"
  "CMakeFiles/terrors_sim.dir/vcd_parser.cpp.o"
  "CMakeFiles/terrors_sim.dir/vcd_parser.cpp.o.d"
  "libterrors_sim.a"
  "libterrors_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
