file(REMOVE_RECURSE
  "libterrors_netlist.a"
)
