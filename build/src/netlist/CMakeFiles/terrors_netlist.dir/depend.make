# Empty dependencies file for terrors_netlist.
# This may be replaced when dependencies are built.
