file(REMOVE_RECURSE
  "CMakeFiles/terrors_netlist.dir/builder.cpp.o"
  "CMakeFiles/terrors_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/terrors_netlist.dir/gate.cpp.o"
  "CMakeFiles/terrors_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/terrors_netlist.dir/netlist.cpp.o"
  "CMakeFiles/terrors_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/terrors_netlist.dir/pipeline.cpp.o"
  "CMakeFiles/terrors_netlist.dir/pipeline.cpp.o.d"
  "libterrors_netlist.a"
  "libterrors_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
