# Empty dependencies file for terrors_dta.
# This may be replaced when dependencies are built.
