# Empty compiler generated dependencies file for terrors_dta.
# This may be replaced when dependencies are built.
