file(REMOVE_RECURSE
  "CMakeFiles/terrors_dta.dir/control_characterizer.cpp.o"
  "CMakeFiles/terrors_dta.dir/control_characterizer.cpp.o.d"
  "CMakeFiles/terrors_dta.dir/datapath_model.cpp.o"
  "CMakeFiles/terrors_dta.dir/datapath_model.cpp.o.d"
  "CMakeFiles/terrors_dta.dir/dts_analyzer.cpp.o"
  "CMakeFiles/terrors_dta.dir/dts_analyzer.cpp.o.d"
  "CMakeFiles/terrors_dta.dir/graph_dta.cpp.o"
  "CMakeFiles/terrors_dta.dir/graph_dta.cpp.o.d"
  "CMakeFiles/terrors_dta.dir/pipeline_driver.cpp.o"
  "CMakeFiles/terrors_dta.dir/pipeline_driver.cpp.o.d"
  "libterrors_dta.a"
  "libterrors_dta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_dta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
