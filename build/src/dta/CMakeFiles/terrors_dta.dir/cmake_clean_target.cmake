file(REMOVE_RECURSE
  "libterrors_dta.a"
)
