
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dta/control_characterizer.cpp" "src/dta/CMakeFiles/terrors_dta.dir/control_characterizer.cpp.o" "gcc" "src/dta/CMakeFiles/terrors_dta.dir/control_characterizer.cpp.o.d"
  "/root/repo/src/dta/datapath_model.cpp" "src/dta/CMakeFiles/terrors_dta.dir/datapath_model.cpp.o" "gcc" "src/dta/CMakeFiles/terrors_dta.dir/datapath_model.cpp.o.d"
  "/root/repo/src/dta/dts_analyzer.cpp" "src/dta/CMakeFiles/terrors_dta.dir/dts_analyzer.cpp.o" "gcc" "src/dta/CMakeFiles/terrors_dta.dir/dts_analyzer.cpp.o.d"
  "/root/repo/src/dta/graph_dta.cpp" "src/dta/CMakeFiles/terrors_dta.dir/graph_dta.cpp.o" "gcc" "src/dta/CMakeFiles/terrors_dta.dir/graph_dta.cpp.o.d"
  "/root/repo/src/dta/pipeline_driver.cpp" "src/dta/CMakeFiles/terrors_dta.dir/pipeline_driver.cpp.o" "gcc" "src/dta/CMakeFiles/terrors_dta.dir/pipeline_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/terrors_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/terrors_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/terrors_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/terrors_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/terrors_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/terrors_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
