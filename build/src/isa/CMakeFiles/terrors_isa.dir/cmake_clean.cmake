file(REMOVE_RECURSE
  "CMakeFiles/terrors_isa.dir/assembler.cpp.o"
  "CMakeFiles/terrors_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/terrors_isa.dir/cfg.cpp.o"
  "CMakeFiles/terrors_isa.dir/cfg.cpp.o.d"
  "CMakeFiles/terrors_isa.dir/executor.cpp.o"
  "CMakeFiles/terrors_isa.dir/executor.cpp.o.d"
  "CMakeFiles/terrors_isa.dir/isa.cpp.o"
  "CMakeFiles/terrors_isa.dir/isa.cpp.o.d"
  "CMakeFiles/terrors_isa.dir/program.cpp.o"
  "CMakeFiles/terrors_isa.dir/program.cpp.o.d"
  "libterrors_isa.a"
  "libterrors_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
