# Empty compiler generated dependencies file for terrors_isa.
# This may be replaced when dependencies are built.
