file(REMOVE_RECURSE
  "libterrors_isa.a"
)
