file(REMOVE_RECURSE
  "CMakeFiles/terrors_stat.dir/clark.cpp.o"
  "CMakeFiles/terrors_stat.dir/clark.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/discrete.cpp.o"
  "CMakeFiles/terrors_stat.dir/discrete.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/gaussian.cpp.o"
  "CMakeFiles/terrors_stat.dir/gaussian.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/metrics.cpp.o"
  "CMakeFiles/terrors_stat.dir/metrics.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/poisson_binomial.cpp.o"
  "CMakeFiles/terrors_stat.dir/poisson_binomial.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/poisson_mixture.cpp.o"
  "CMakeFiles/terrors_stat.dir/poisson_mixture.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/samples.cpp.o"
  "CMakeFiles/terrors_stat.dir/samples.cpp.o.d"
  "CMakeFiles/terrors_stat.dir/stein.cpp.o"
  "CMakeFiles/terrors_stat.dir/stein.cpp.o.d"
  "libterrors_stat.a"
  "libterrors_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
