# Empty dependencies file for terrors_stat.
# This may be replaced when dependencies are built.
