
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stat/clark.cpp" "src/stat/CMakeFiles/terrors_stat.dir/clark.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/clark.cpp.o.d"
  "/root/repo/src/stat/discrete.cpp" "src/stat/CMakeFiles/terrors_stat.dir/discrete.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/discrete.cpp.o.d"
  "/root/repo/src/stat/gaussian.cpp" "src/stat/CMakeFiles/terrors_stat.dir/gaussian.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/gaussian.cpp.o.d"
  "/root/repo/src/stat/metrics.cpp" "src/stat/CMakeFiles/terrors_stat.dir/metrics.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/metrics.cpp.o.d"
  "/root/repo/src/stat/poisson_binomial.cpp" "src/stat/CMakeFiles/terrors_stat.dir/poisson_binomial.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/poisson_binomial.cpp.o.d"
  "/root/repo/src/stat/poisson_mixture.cpp" "src/stat/CMakeFiles/terrors_stat.dir/poisson_mixture.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/poisson_mixture.cpp.o.d"
  "/root/repo/src/stat/samples.cpp" "src/stat/CMakeFiles/terrors_stat.dir/samples.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/samples.cpp.o.d"
  "/root/repo/src/stat/stein.cpp" "src/stat/CMakeFiles/terrors_stat.dir/stein.cpp.o" "gcc" "src/stat/CMakeFiles/terrors_stat.dir/stein.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/terrors_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
