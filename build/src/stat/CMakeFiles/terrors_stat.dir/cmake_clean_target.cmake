file(REMOVE_RECURSE
  "libterrors_stat.a"
)
