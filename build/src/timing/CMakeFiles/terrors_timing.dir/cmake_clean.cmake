file(REMOVE_RECURSE
  "CMakeFiles/terrors_timing.dir/paths.cpp.o"
  "CMakeFiles/terrors_timing.dir/paths.cpp.o.d"
  "CMakeFiles/terrors_timing.dir/report.cpp.o"
  "CMakeFiles/terrors_timing.dir/report.cpp.o.d"
  "CMakeFiles/terrors_timing.dir/sta.cpp.o"
  "CMakeFiles/terrors_timing.dir/sta.cpp.o.d"
  "CMakeFiles/terrors_timing.dir/variation.cpp.o"
  "CMakeFiles/terrors_timing.dir/variation.cpp.o.d"
  "libterrors_timing.a"
  "libterrors_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrors_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
