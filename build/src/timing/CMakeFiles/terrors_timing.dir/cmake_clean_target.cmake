file(REMOVE_RECURSE
  "libterrors_timing.a"
)
