# Empty compiler generated dependencies file for terrors_timing.
# This may be replaced when dependencies are built.
