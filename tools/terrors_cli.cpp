// terrors — command-line front end to the library.
//
//   terrors info                         pipeline + operating-point summary
//   terrors list                         available benchmarks
//   terrors program <name>               generated program listing
//   terrors report [--period P] [--n N]  signoff-style timing report
//   terrors report <file> [--top N]      render a run-report JSON file
//   terrors diff <old> <new>             regression gate over two run reports
//   terrors analyze <name> [--period P] [--scale S] [--runs R] [--threads T]
//                   [--trace F] [--trace-tree] [--trace-limit N]
//                   [--metrics F] [--metrics-prom F] [--report F]
//                   [--report-mc N] [--journal F] [--profile F]
//                   [--profile-interval-us U] [--log-level L]
//                   [--cache-dir D]      full error-rate analysis row
//   terrors stats <journal>              aggregate a run-journal JSONL file
//   terrors stats --serve <access>       aggregate a serve access journal; SLO gate
//   terrors top --socket S [--interval]  live monitor over a running daemon
//   terrors tail <journal> [--n N]       render the newest journal events
//   terrors profile <folded> [--top N]   hotspot table from folded stacks
//   terrors vcd <name> [--cycles N]      VCD dump of a benchmark window
//   terrors doctor [--cache-dir D]       environment self-test
//
// Failures surface as typed error chains (`error: [category] ...: caused
// by: ...`) with category exit codes: 3 input, 4 artifact, 5 numerical,
// 6 resource, 7 internal (0 ok, 1 generic, 2 diff regression).  A fault
// plan from --inject-faults / TERRORS_FAULTS arms deterministic chaos
// (see src/robust/fault_injection.hpp).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "dta/pipeline_driver.hpp"
#include "netlist/pipeline.hpp"
#include "perf/ts_model.hpp"
#include "report/attribution.hpp"
#include "report/diff.hpp"
#include "report/journal_stats.hpp"
#include "report/json_value.hpp"
#include "report/render.hpp"
#include "report/run_report.hpp"
#include "robust/degrade.hpp"
#include "robust/doctor.hpp"
#include "robust/error.hpp"
#include "robust/fault_injection.hpp"
#include "robust/parse.hpp"
#include "serve/monitor.hpp"
#include "serve/server.hpp"
#include "sim/vcd.hpp"
#include "support/thread_pool.hpp"
#include "timing/report.hpp"
#include "timing/sta.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

using namespace terrors;

namespace {

struct FlagSpec {
  const char* name;       ///< including the leading "--"
  bool takes_value;
};

/// Parse argv[start..argc) against `specs`.  Both `--flag=V` and
/// `--flag V` are accepted; unknown or malformed flags are reported on
/// stderr (instead of being silently ignored) and fail the parse.
bool parse_flags(int argc, char** argv, int start, std::initializer_list<FlagSpec> specs,
                 std::map<std::string, std::string>& out) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const FlagSpec* spec = nullptr;
    for (const auto& s : specs) {
      if (name == s.name) spec = &s;
    }
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown flag '%s'\n", name.c_str());
      return false;
    }
    if (!spec->takes_value) {
      if (eq != std::string::npos) {
        std::fprintf(stderr, "flag '%s' takes no value\n", name.c_str());
        return false;
      }
      out[name] = "";
      continue;
    }
    if (eq != std::string::npos) {
      out[name] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      out[name] = argv[++i];
    } else {
      std::fprintf(stderr, "flag '%s' needs a value\n", name.c_str());
      return false;
    }
  }
  return true;
}

// Checked flag accessors (robust/parse.hpp): garbage like "--threads=abc"
// or "--threads=-1" surfaces as a typed kInput error naming the flag and
// value (exit 3), never as an untyped std::sto* crash or a silent wrap of
// a negative into a huge unsigned.
double num_flag(const std::map<std::string, std::string>& flags, const char* name,
                double fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : robust::parse_double_arg(name, it->second);
}

std::uint64_t uint_flag(const std::map<std::string, std::string>& flags, const char* name,
                        std::uint64_t fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : robust::parse_uint_arg(name, it->second);
}

/// Print a typed error chain and return its category exit code.
int print_error(const std::exception& e) {
  if (const auto* err = dynamic_cast<const robust::Error*>(&e)) {
    std::fprintf(stderr, "error: %s\n", err->render().c_str());
    return robust::exit_code_for(err->category());
  }
  std::fprintf(stderr, "error: [%s] %s\n",
               std::string(robust::category_name(robust::classify(e))).c_str(), e.what());
  return robust::exit_code_for(robust::classify(e));
}

const workloads::WorkloadSpec* find_spec(const char* name) {
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const netlist::Pipeline& pipe() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

int cmd_info() {
  const auto stats = pipe().netlist.stats();
  const timing::Sta sta(pipe().netlist);
  std::printf("synthetic 6-stage in-order integer pipeline\n");
  std::printf("  gates          : %zu (%zu combinational)\n", stats.gates, stats.combinational);
  std::printf("  flip-flops     : %zu\n", stats.dffs);
  std::printf("  primary inputs : %zu, outputs: %zu\n", stats.inputs, stats.outputs);
  std::printf("  static fmax    : %.1f MHz\n", sta.max_frequency_mhz());
  for (std::uint8_t s = 0; s < netlist::Pipeline::kStages; ++s) {
    std::printf("  stage %d        : %zu endpoints, worst slack @1300ps = %.1f ps\n", s,
                pipe().netlist.stage_endpoints(s).size(),
                sta.worst_stage_slack(s, timing::TimingSpec{1300.0}));
  }
  const perf::TsProcessorModel ts;
  std::printf("  TS break-even  : %.3f %% error rate at 1.15x\n",
              100.0 * ts.break_even_error_rate());
  return 0;
}

int cmd_list() {
  std::printf("%-14s %-11s %6s %15s\n", "name", "category", "blocks", "instructions");
  for (const auto& s : workloads::mibench_specs())
    std::printf("%-14s %-11s %6d %15llu\n", s.name.c_str(),
                std::string(workloads::category_name(s.category)).c_str(), s.basic_blocks,
                static_cast<unsigned long long>(s.paper_instructions));
  return 0;
}

int cmd_program(const char* name) {
  const auto* spec = find_spec(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }
  std::fputs(workloads::generate_program(*spec).to_string().c_str(), stdout);
  return 0;
}

int cmd_report(int argc, char** argv) {
  // With a positional file argument this renders a run-report JSON file;
  // flags only keep the original signoff-style timing report.
  if (argc >= 3 && std::strncmp(argv[2], "--", 2) != 0) {
    std::map<std::string, std::string> flags;
    if (!parse_flags(argc, argv, 3, {{"--top", true}}, flags)) return 1;
    const auto top = static_cast<std::size_t>(uint_flag(flags, "--top", 10));
    try {
      const report::RunReport r = report::RunReport::load(argv[2]);
      report::write_text(r, std::cout, top);
    } catch (const std::exception& e) {
      return print_error(e);
    }
    return 0;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 2, {{"--period", true}, {"--n", true}}, flags)) return 1;
  const double period = num_flag(flags, "--period", 1300.0);
  const auto n = static_cast<std::size_t>(uint_flag(flags, "--n", 10));
  timing::PathEnumerator paths(pipe().netlist);
  const timing::VariationModel vm(pipe().netlist, {});
  timing::ReportConfig cfg;
  cfg.max_paths = n;
  cfg.show_statistics = true;
  timing::write_timing_report(std::cout, pipe().netlist, timing::TimingSpec{period}, paths, &vm,
                              cfg);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4 || std::strncmp(argv[2], "--", 2) == 0 || std::strncmp(argv[3], "--", 2) == 0) {
    std::fprintf(stderr, "usage: terrors diff <old.json> <new.json> [--max-rel-delta D]\n"
                         "                    [--max-share-drift D] [--max-runtime-ratio R]\n");
    return 1;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 4,
                   {{"--max-rel-delta", true},
                    {"--max-share-drift", true},
                    {"--max-runtime-ratio", true}},
                   flags))
    return 1;
  report::DiffOptions opt;
  opt.max_rel_delta = num_flag(flags, "--max-rel-delta", opt.max_rel_delta);
  opt.max_share_drift = num_flag(flags, "--max-share-drift", opt.max_share_drift);
  opt.max_runtime_ratio = num_flag(flags, "--max-runtime-ratio", opt.max_runtime_ratio);
  try {
    const report::RunReport before = report::RunReport::load(argv[2]);
    const report::RunReport after = report::RunReport::load(argv[3]);
    const report::DiffResult result = report::diff_reports(before, after, opt);
    report::write_diff(result, std::cout);
    return result.ok() ? 0 : 2;
  } catch (const std::exception& e) {
    return print_error(e);
  }
}

int cmd_analyze(int argc, char** argv, const char* name) {
  const auto* spec = find_spec(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 3,
                   {{"--period", true},
                    {"--scale", true},
                    {"--runs", true},
                    {"--threads", true},
                    {"--trace", true},
                    {"--trace-tree", false},
                    {"--trace-limit", true},
                    {"--metrics", true},
                    {"--metrics-prom", true},
                    {"--report", true},
                    {"--report-mc", true},
                    {"--journal", true},
                    {"--profile", true},
                    {"--profile-interval-us", true},
                    {"--log-level", true},
                    {"--cache-dir", true},
                    {"--inject-faults", true},
                    {"--strict", false}},
                   flags))
    return 1;
  if (const auto it = flags.find("--inject-faults"); it != flags.end()) {
    try {
      robust::FaultInjector::instance().arm(robust::FaultPlan::parse(it->second));
    } catch (const std::exception& e) {
      return print_error(e);
    }
  }
  const bool strict = flags.count("--strict") != 0;
  const double period = num_flag(flags, "--period", 1300.0);
  const double scale = num_flag(flags, "--scale", 1e-4);
  const auto runs = static_cast<std::size_t>(uint_flag(flags, "--runs", 4));
  if (const auto it = flags.find("--threads"); it != flags.end())
    support::set_global_threads(
        static_cast<std::size_t>(robust::parse_uint_arg("--threads", it->second)));

  if (const auto it = flags.find("--log-level"); it != flags.end()) {
    const auto lvl = obs::parse_log_level(it->second);
    if (!lvl.has_value()) {
      std::fprintf(stderr, "unknown log level '%s'\n", it->second.c_str());
      return 1;
    }
    obs::Logger::instance().set_level(*lvl);
  }
  if (const auto it = flags.find("--trace-limit"); it != flags.end()) {
    obs::Tracer::instance().set_span_limit(
        static_cast<std::size_t>(robust::parse_uint_arg("--trace-limit", it->second)));
  }
  // The profiler samples the tracer's open-span stacks, so --profile
  // implies tracing even without a --trace output file.
  const bool profiling = flags.count("--profile") != 0;
  const bool tracing =
      flags.count("--trace") != 0 || flags.count("--trace-tree") != 0 || profiling;
  if (tracing) obs::Tracer::instance().set_enabled(true);
  if (profiling) {
    obs::ProfilerOptions popt;
    popt.interval_us =
        uint_flag(flags, "--profile-interval-us", 1000);
    obs::SpanProfiler::instance().start(popt);
  }

  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{period};
  cfg.execution_scale = 1.0 / scale;
  if (const auto it = flags.find("--cache-dir"); it != flags.end()) cfg.cache_dir = it->second;
  if (const auto it = flags.find("--journal"); it != flags.end()) cfg.journal_path = it->second;
  const bool want_report = flags.count("--report") != 0;
  const auto mc_trials = static_cast<std::size_t>(uint_flag(flags, "--report-mc", 0));
  core::ErrorRateFramework framework(pipe(), cfg);
  isa::ExecutorConfig ecfg = workloads::executor_config_for(*spec, runs, scale);
  // The MC cross-check replays the dynamic block sequence; recording it
  // does not perturb the sampling RNG or the profile statistics.
  if (want_report && mc_trials > 0) ecfg.record_block_trace = true;
  framework.set_executor_config(ecfg);
  report::CollectorConfig ccfg;
  ccfg.mc_trials = mc_trials;
  ccfg.threads = support::global_pool().size();
  report::AttributionCollector collector(ccfg);
  const isa::Program program = workloads::generate_program(*spec);
  core::BenchmarkResult r;
  try {
    r = framework.analyze(program, workloads::generate_inputs(*spec, runs, 2026),
                          want_report ? &collector : nullptr);
  } catch (const std::exception& e) {
    if (profiling) obs::SpanProfiler::instance().stop();
    return print_error(e);
  }
  // Stop sampling before the peripheral writes: the folded stacks should
  // cover the analysis, not the file I/O after it.
  if (profiling) obs::SpanProfiler::instance().stop();
  const perf::TsProcessorModel ts;
  std::printf("%s @ %.1f MHz (scale %.0e, %zu runs)\n", spec->name.c_str(),
              cfg.spec.frequency_mhz(), scale, runs);
  std::printf("  run id           : %s\n", r.run_id.c_str());
  std::printf("  instructions     : %llu simulated\n",
              static_cast<unsigned long long>(r.instructions));
  std::printf("  error rate       : %.4f %% (SD %.4f %%)\n", 100.0 * r.estimate.rate_mean(),
              100.0 * r.estimate.rate_sd());
  std::printf("  d_K(lambda)      : %.4f   d_K(R_E): %.4f\n", r.estimate.dk_lambda,
              r.estimate.dk_count);
  std::printf("  train / sim time : %.2f s / %.3f s\n", r.training_seconds,
              r.simulation_seconds);
  if (r.cache_hits + r.cache_misses > 0)
    std::printf("  artifact cache   : %llu hits, %llu misses\n",
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses));
  std::printf("  TS net perf      : %+.2f %%\n",
              100.0 * ts.performance_improvement(std::min(1.0, r.estimate.rate_mean())));
  if (r.degraded) {
    std::string sites;
    for (const auto& site : r.degraded_sites) {
      if (!sites.empty()) sites += ", ";
      sites += site;
    }
    std::printf("  degraded         : yes (%s) — best-effort result\n", sites.c_str());
  }

  // Peripheral outputs (trace, report, metrics): the headline estimate is
  // already on stdout, so a failed write degrades (warn + robust.degraded)
  // instead of failing the analysis — unless --strict asks otherwise.
  int peripheral_rc = 0;
  auto peripheral = [&](const char* what, const std::string& path, auto&& writer) {
    try {
      robust::maybe_fault("io.write");
      std::ofstream out(path);
      if (!out) {
        robust::raise(robust::Category::kResource,
                      std::string("cannot open ") + what + " file '" + path + "'");
      }
      writer(out);
      out.flush();
      if (!out) {
        robust::raise(robust::Category::kResource,
                      std::string("write to ") + what + " file '" + path + "' failed");
      }
    } catch (const std::exception& e) {
      robust::note_degraded("io", std::string(what) + " write failed: " + e.what());
      std::fprintf(stderr, "warning: %s\n", e.what());
      if (strict && peripheral_rc == 0) peripheral_rc = print_error(e);
    }
  };

  if (const auto it = flags.find("--trace"); it != flags.end()) {
    peripheral("trace", it->second,
               [](std::ostream& out) { obs::Tracer::instance().write_chrome_trace(out); });
  }
  if (flags.count("--trace-tree") != 0) obs::Tracer::instance().write_text_tree(std::cerr);
  if (const auto it = flags.find("--profile"); it != flags.end()) {
    peripheral("profile", it->second,
               [](std::ostream& out) { obs::SpanProfiler::instance().write_folded(out); });
  }
  if (want_report) {
    const std::string& path = flags.at("--report");
    try {
      const report::RunReport run_report = collector.build(framework, program, r);
      run_report.save(path);
    } catch (const std::exception& e) {
      robust::note_degraded("io", std::string("run report write failed: ") + e.what());
      std::fprintf(stderr, "warning: cannot write report '%s': %s\n", path.c_str(), e.what());
      if (strict && peripheral_rc == 0) peripheral_rc = print_error(e);
    }
  }
  if (const auto it = flags.find("--metrics"); it != flags.end()) {
    peripheral("metrics", it->second,
               [](std::ostream& out) { obs::MetricsRegistry::instance().write_json(out); });
  }
  if (const auto it = flags.find("--metrics-prom"); it != flags.end()) {
    peripheral("metrics", it->second,
               [](std::ostream& out) { obs::MetricsRegistry::instance().write_prometheus(out); });
  }
  return peripheral_rc;
}

int cmd_stats(int argc, char** argv) {
  // Access-journal mode: `terrors stats --serve ACCESS` aggregates the
  // daemon's per-request journal and optionally gates on SLOs (exit 2 on
  // burn, matching the diff regression gate).
  if (argc >= 3 && std::strncmp(argv[2], "--", 2) == 0) {
    std::map<std::string, std::string> flags;
    if (!parse_flags(argc, argv, 2,
                     {{"--serve", true}, {"--slo-p99-ms", true}, {"--slo-error-rate", true}},
                     flags)) {
      return 1;
    }
    const auto serve_it = flags.find("--serve");
    if (serve_it == flags.end()) {
      std::fprintf(stderr,
                   "usage: terrors stats <journal.jsonl>\n"
                   "       terrors stats --serve <access.jsonl> [--slo-p99-ms MS]"
                   " [--slo-error-rate R]\n");
      return 1;
    }
    try {
      const auto events = report::load_access_journal(serve_it->second);
      const report::AccessStats stats = report::aggregate_access(events);
      report::SloConfig slo_cfg;
      slo_cfg.p99_ms = num_flag(flags, "--slo-p99-ms", 0.0);
      slo_cfg.error_rate = flags.count("--slo-error-rate") > 0
                               ? num_flag(flags, "--slo-error-rate", -1.0)
                               : -1.0;
      const report::SloResult slo = report::check_slo(stats, slo_cfg);
      report::write_access_stats_text(stats, &slo, std::cout);
      if (!slo.ok()) return 2;
    } catch (const std::exception& e) {
      return print_error(e);
    }
    return 0;
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: terrors stats <journal.jsonl>\n"
                 "       terrors stats --serve <access.jsonl> [--slo-p99-ms MS]"
                 " [--slo-error-rate R]\n");
    return 1;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 3, {}, flags)) return 1;
  try {
    const auto events = report::load_journal(argv[2]);
    report::write_stats_text(report::aggregate(events), std::cout);
  } catch (const std::exception& e) {
    return print_error(e);
  }
  return 0;
}

int cmd_tail(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr, "usage: terrors tail <journal.jsonl> [--n N]\n");
    return 1;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 3, {{"--n", true}}, flags)) return 1;
  const auto n = static_cast<std::size_t>(uint_flag(flags, "--n", 10));
  try {
    const auto events = report::load_journal(argv[2]);
    report::write_tail_text(events, n, std::cout);
  } catch (const std::exception& e) {
    return print_error(e);
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
    std::fprintf(stderr, "usage: terrors profile <folded.txt> [--top N]\n");
    return 1;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 3, {{"--top", true}}, flags)) return 1;
  const auto top = static_cast<std::size_t>(uint_flag(flags, "--top", 15));
  const std::string path = argv[2];
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      robust::raise(robust::Category::kResource, "cannot open folded stacks '" + path + "'");
    }
    std::map<std::string, std::uint64_t> folded;
    try {
      folded = obs::parse_folded(in);
    } catch (const robust::Error&) {
      throw;
    } catch (const std::exception& e) {
      throw robust::Error::wrap("load folded stacks '" + path + "'", e,
                                robust::Category::kArtifact);
    }
    obs::write_hotspots(folded, std::cout, top);
  } catch (const std::exception& e) {
    return print_error(e);
  }
  return 0;
}

int cmd_doctor(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 2, {{"--cache-dir", true}}, flags)) return 1;
  robust::DoctorOptions options;
  if (const auto it = flags.find("--cache-dir"); it != flags.end()) options.cache_dir = it->second;
  const robust::DoctorReport report = robust::run_doctor(options);
  for (const auto& f : report.findings) {
    if (f.ok) {
      std::printf("  ok   %-8s %s\n", f.check.c_str(), f.detail.c_str());
    } else {
      std::printf("  FAIL %-8s [%s] %s\n", f.check.c_str(),
                  std::string(robust::category_name(f.category)).c_str(), f.detail.c_str());
    }
  }
  if (report.ok()) {
    std::printf("doctor: environment healthy\n");
  } else {
    std::printf("doctor: environment has problems (exit %d)\n", report.exit_code());
  }
  return report.exit_code();
}

int cmd_vcd(int argc, char** argv, const char* name) {
  const auto* spec = find_spec(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", name);
    return 1;
  }
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 3, {{"--cycles", true}}, flags)) return 1;
  const auto cycles = static_cast<std::size_t>(uint_flag(flags, "--cycles", 64));
  // Collect sampled contexts into a short slot stream.
  const isa::Program program = workloads::generate_program(*spec);
  const isa::Cfg cfg(program);
  isa::ExecutorConfig ecfg;
  ecfg.max_instructions = 4000;
  isa::Executor ex(program, cfg, ecfg);
  ex.run(workloads::generate_inputs(*spec, 1, 2026)[0]);
  std::vector<dta::FetchSlot> slots;
  for (int i = 0; i < 6; ++i) slots.push_back(dta::FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
  for (isa::BlockId b = 0; b < program.block_count() && slots.size() < cycles; ++b) {
    for (const auto& es : ex.profile().blocks[b].edge_samples) {
      if (es.samples.empty()) continue;
      const auto& sample = es.samples.front();
      for (std::size_t k = 0; k < sample.instrs.size() && slots.size() < cycles; ++k)
        slots.push_back(
            dta::FetchSlot::from_context(program.block(b).instructions[k], sample.instrs[k]));
      break;
    }
  }
  // Watch the architectural taps.
  std::vector<netlist::GateId> watched;
  auto add_word = [&](const std::vector<netlist::GateId>& w) {
    watched.insert(watched.end(), w.begin(), w.end());
  };
  add_word(pipe().taps.pc_reg);
  add_word(pipe().taps.ex_result_reg);
  add_word(pipe().taps.cc_reg);
  sim::LogicSimulator simulator(pipe().netlist);
  sim::VcdWriter writer(std::cout, pipe().netlist, watched, "1ps", 1300.0);
  dta::PipelineDriver driver(pipe());
  auto traces = driver.run(slots);  // for structure; re-run with a watcher:
  (void)traces;
  // Re-drive manually so we can sample into the VCD.
  simulator.reset();
  for (std::size_t t = 0; t < slots.size(); ++t) {
    // Reuse the driver's stage skew through a fresh driver run would not
    // expose per-cycle sampling; drive the datapath inputs directly.
    simulator.set_input_word(pipe().ports.instr, slots[t].word);
    if (t >= 1) {
      simulator.set_input_word(pipe().ports.op_a, slots[t - 1].ex.a);
      simulator.set_input_word(pipe().ports.op_b, slots[t - 1].ex.b);
    }
    if (t >= 3) {
      const auto d = dta::ex_drive_for(slots[t - 3].ex.op);
      simulator.set_input_word(pipe().ports.alu_sel, d.alu_sel);
      simulator.set_input_word(pipe().ports.logic_sel, d.logic_sel);
      simulator.set_input(pipe().ports.sel_imm, d.sel_imm);
      simulator.set_input(pipe().ports.sub_mode, d.sub_mode);
      simulator.set_input(pipe().ports.shift_dir, d.shift_dir);
    }
    simulator.step();
    writer.sample(simulator);
  }
  return 0;
}

// The running daemon, for the signal handlers.  request_stop_from_signal
// only writes one byte to a pipe, which is async-signal-safe.
serve::Server* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop_from_signal();
}

int cmd_serve(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 2,
                   {{"--socket", true},
                    {"--tcp", true},
                    {"--threads", true},
                    {"--memory-cache-mb", true},
                    {"--max-queue", true},
                    {"--cache-dir", true},
                    {"--access-journal", true},
                    {"--request-timeout-s", true},
                    {"--worker-memory-mb", true},
                    {"--breaker-trips", true},
                    {"--breaker-cooldown-s", true},
                    {"--idle-timeout-s", true},
                    {"--no-isolation", false},
                    {"--log-level", true}},
                   flags))
    return 1;
  const auto sock = flags.find("--socket");
  if (sock == flags.end()) {
    std::fprintf(stderr, "usage: terrors serve --socket PATH [--tcp PORT] [--threads T]\n"
                         "               [--memory-cache-mb N] [--max-queue N] [--cache-dir D]\n"
                         "               [--access-journal FILE] [--request-timeout-s S]\n"
                         "               [--worker-memory-mb N] [--breaker-trips N]\n"
                         "               [--breaker-cooldown-s S] [--idle-timeout-s S]\n"
                         "               [--no-isolation]\n");
    return 1;
  }
  if (const auto it = flags.find("--log-level"); it != flags.end()) {
    const auto lvl = obs::parse_log_level(it->second);
    if (!lvl.has_value()) {
      std::fprintf(stderr, "unknown log level '%s'\n", it->second.c_str());
      return 1;
    }
    obs::Logger::instance().set_level(*lvl);
  }
  if (const auto it = flags.find("--threads"); it != flags.end())
    support::set_global_threads(
        static_cast<std::size_t>(robust::parse_uint_arg("--threads", it->second)));

  serve::ServerConfig cfg;
  cfg.socket_path = sock->second;
  if (const auto it = flags.find("--tcp"); it != flags.end()) {
    const std::uint64_t port = robust::parse_uint_arg("--tcp", it->second);
    if (port > 65535) {
      robust::raise(robust::Category::kInput,
                    "--tcp: port out of range '" + it->second + "'");
    }
    cfg.tcp_port = static_cast<int>(port);
  }
  cfg.memory_cache_mb = static_cast<std::size_t>(uint_flag(flags, "--memory-cache-mb", 64));
  cfg.max_queue = static_cast<std::size_t>(uint_flag(flags, "--max-queue", 32));
  if (const auto it = flags.find("--cache-dir"); it != flags.end()) cfg.cache_dir = it->second;
  if (const auto it = flags.find("--access-journal"); it != flags.end()) {
    cfg.access_journal_path = it->second;
  }
  // Worker supervision (DESIGN §5j): isolation is on by default; the
  // deadline and the memory budget are opt-in, the breaker is always
  // armed but only sees infra failures.
  cfg.isolation = flags.find("--no-isolation") == flags.end();
  cfg.request_timeout_s = num_flag(flags, "--request-timeout-s", 0.0);
  cfg.worker_memory_mb = static_cast<std::size_t>(uint_flag(flags, "--worker-memory-mb", 0));
  cfg.breaker_trips = static_cast<int>(uint_flag(flags, "--breaker-trips", 3));
  cfg.breaker_cooldown_s = num_flag(flags, "--breaker-cooldown-s", 30.0);
  cfg.idle_timeout_s = num_flag(flags, "--idle-timeout-s", 0.0);
  if (cfg.request_timeout_s < 0.0 || cfg.breaker_cooldown_s < 0.0 || cfg.idle_timeout_s < 0.0) {
    robust::raise(robust::Category::kInput,
                  "serve: timeout/cooldown values must be non-negative");
  }

  serve::Server server(pipe(), cfg);
  g_server = &server;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon
  server.start();
  std::printf("terrors serve: listening on %s", cfg.socket_path.c_str());
  if (server.tcp_port() >= 0) std::printf(" and 127.0.0.1:%d", server.tcp_port());
  std::printf(" (%zu worker threads)\n", support::global_pool().size());
  std::fflush(stdout);
  server.run();
  g_server = nullptr;
  return 0;
}

/// One `metrics` round trip against a running daemon: fresh connection,
/// one request line, one response line.  Throws robust::Error on connect
/// or protocol failures.
serve::MonitorSample poll_daemon_metrics(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    robust::raise(robust::Category::kResource,
                  std::string("cannot create socket: ") + std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    robust::raise(robust::Category::kInput, "socket path too long: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    robust::raise(robust::Category::kResource,
                  "cannot connect to '" + socket_path + "': " + std::strerror(errno));
  }
  const std::string request = "{\"op\":\"metrics\"}\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      robust::raise(robust::Category::kResource, "daemon closed the connection mid-request");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      robust::raise(robust::Category::kResource, "daemon closed the connection mid-response");
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  response.resize(response.find('\n'));
  const report::JsonValue doc = report::JsonValue::parse(response);
  const report::JsonValue* ok = doc.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    robust::raise(robust::Category::kInternal, "daemon answered with an error envelope");
  }
  return serve::parse_metrics_sample(doc.at("metrics"));
}

int cmd_top(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!parse_flags(argc, argv, 2,
                   {{"--socket", true}, {"--interval", true}, {"--once", false}}, flags)) {
    return 1;
  }
  const auto sock = flags.find("--socket");
  if (sock == flags.end()) {
    std::fprintf(stderr, "usage: terrors top --socket PATH [--interval SEC] [--once]\n");
    return 1;
  }
  const double interval = num_flag(flags, "--interval", 2.0);
  if (interval <= 0.0) {
    robust::raise(robust::Category::kInput, "--interval must be positive");
  }
  const bool once = flags.count("--once") > 0;
  // Clear-and-home between frames only when a human is watching; piped
  // output stays plain text (and CI smoke uses --once anyway).
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  serve::MonitorSample prev;
  bool have_prev = false;
  for (;;) {
    const serve::MonitorSample cur = poll_daemon_metrics(sock->second);
    std::ostringstream frame;
    serve::write_monitor_text(have_prev ? &prev : nullptr, cur, interval, frame);
    if (tty && !once) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(frame.str().c_str(), stdout);
    std::fflush(stdout);
    if (once) return 0;
    prev = cur;
    have_prev = true;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

constexpr const char* kCommands[] = {"info", "list", "program", "report", "diff", "analyze",
                                     "stats", "tail", "profile", "vcd", "doctor", "serve",
                                     "top"};

void usage() {
  std::fputs(
      "usage: terrors <command> [options]\n"
      "  info                          pipeline and operating-point summary\n"
      "  list                          available benchmarks\n"
      "  program <name>                print the generated program\n"
      "  report [--period P] [--n N]   signoff-style timing report\n"
      "  report <file> [--top N]       render a run-report JSON file\n"
      "  diff <old> <new>              compare two run reports; exit 2 on regression\n"
      "       [--max-rel-delta D]      headline accuracy tolerance (default 0.01)\n"
      "       [--max-share-drift D]    per-block error-mass drift (default 0.05)\n"
      "       [--max-runtime-ratio R]  runtime gate, <=0 disables (default off)\n"
      "  analyze <name> [--period P] [--scale S] [--runs R]\n"
      "          [--threads T]         worker threads (0 = all cores; or TERRORS_THREADS)\n"
      "          [--trace FILE]        write a Chrome trace_event JSON phase tree\n"
      "          [--trace-tree]        print the phase tree to stderr\n"
      "          [--trace-limit N]     cap recorded spans; excess increments trace.dropped\n"
      "          [--metrics FILE]      write the metrics registry as JSON\n"
      "          [--metrics-prom FILE] write the metrics in Prometheus text format\n"
      "          [--report FILE]       write the error-attribution run report (JSON)\n"
      "          [--report-mc N]       add an N-trial Monte-Carlo cross-check\n"
      "          [--journal FILE]      append a wide run event (JSONL; or TERRORS_JOURNAL)\n"
      "          [--profile FILE]      sample span stacks; write folded stacks for\n"
      "                                flamegraph.pl / speedscope\n"
      "          [--profile-interval-us U] sampling period (default 1000)\n"
      "          [--log-level LVL]     error|warn|info|debug|trace (default off)\n"
      "          [--cache-dir DIR]     content-addressed artifact cache (or\n"
      "                                TERRORS_CACHE_DIR; off by default)\n"
      "          [--inject-faults SPEC] arm a deterministic fault plan (or\n"
      "                                TERRORS_FAULTS), e.g. cache.read:prob=1:seed=7\n"
      "          [--strict]            fail on peripheral write errors\n"
      "  stats <journal>               aggregate a run journal (phase p50/p95, cache,\n"
      "                                per-program last-vs-typical)\n"
      "  stats --serve <access>        aggregate a serve access journal (per-op\n"
      "        [--slo-p99-ms MS]       p50/p95/p99, queue-wait share, coalesce and\n"
      "        [--slo-error-rate R]    error rates); SLO flags exit 2 on burn\n"
      "  tail <journal> [--n N]        render the newest N journal events (default 10)\n"
      "  profile <folded> [--top N]    hotspot table from a folded-stack file\n"
      "  vcd <name> [--cycles N]       dump a VCD window to stdout\n"
      "  doctor [--cache-dir D]        self-test the environment; category exit codes\n"
      "  serve --socket PATH           analysis daemon: line-delimited JSON requests\n"
      "        [--tcp PORT]            also listen on 127.0.0.1:PORT (0 = ephemeral)\n"
      "        [--threads T]           worker threads for the analyses\n"
      "        [--memory-cache-mb N]   in-memory LRU artifact tier budget (default 64)\n"
      "        [--max-queue N]         pending-analysis admission bound (default 32)\n"
      "        [--cache-dir D]         on-disk artifact tier below the memory tier\n"
      "        [--access-journal F]    append one wide JSONL event per request\n"
      "  top --socket PATH             live daemon monitor (requests, queue, latency\n"
      "      [--interval SEC]          quantiles, cache hit rates; default 2s)\n"
      "      [--once]                  print a single frame and exit (CI smoke)\n"
      "flags accept both '--flag value' and '--flag=value'\n"
      "error exit codes: 1 generic, 2 diff regression, 3 input, 4 artifact,\n"
      "                  5 numerical, 6 resource, 7 internal\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  // TERRORS_FAULTS arms a process-wide chaos plan for any command; an
  // explicit --inject-faults later replaces it.
  if (const char* env = std::getenv("TERRORS_FAULTS"); env != nullptr && env[0] != '\0') {
    try {
      robust::FaultInjector::instance().arm(robust::FaultPlan::parse(env));
    } catch (const std::exception& e) {
      return print_error(e);
    }
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info();
    if (cmd == "list") return cmd_list();
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "diff") return cmd_diff(argc, argv);
    if (cmd == "stats") return cmd_stats(argc, argv);
    if (cmd == "tail") return cmd_tail(argc, argv);
    if (cmd == "profile") return cmd_profile(argc, argv);
    if (cmd == "doctor") return cmd_doctor(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "top") return cmd_top(argc, argv);
    if (cmd == "program" && argc >= 3) return cmd_program(argv[2]);
    if (cmd == "analyze" && argc >= 3) return cmd_analyze(argc, argv, argv[2]);
    if (cmd == "vcd" && argc >= 3) return cmd_vcd(argc, argv, argv[2]);
  } catch (const std::exception& e) {
    return print_error(e);
  }
  bool known = false;
  for (const char* c : kCommands) known = known || cmd == c;
  if (!known) {
    std::string all;
    for (const char* c : kCommands) {
      if (!all.empty()) all += ", ";
      all += c;
    }
    std::fprintf(stderr, "unknown command '%s' (available: %s)\n", cmd.c_str(), all.c_str());
  }
  usage();
  return 1;
}
