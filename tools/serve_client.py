#!/usr/bin/env python3
"""Minimal client for the `terrors serve` line-delimited JSON protocol.

Stdlib only, so CI (and anyone poking at a daemon) needs nothing beyond
python3.  One connection per request except `fanout`, which opens N
concurrent connections sending the *same* analyze request — the
single-flight path — and verifies every response carries identical
report bytes.  Every request carries an id (client-supplied via --id or
generated here) and the client asserts the daemon echoes it back; every
response prints the client-observed wall latency alongside the daemon's
own elapsed_seconds so queueing and transport cost are visible.

  serve_client.py --socket /tmp/t.sock ping
  serve_client.py --socket /tmp/t.sock analyze --benchmark patricia --runs 2 --out report.json
  serve_client.py --socket /tmp/t.sock analyze --benchmark patricia --trace-out trace.json
  serve_client.py --socket /tmp/t.sock fanout --benchmark gsm.decode --clients 8 --out-prefix served
  serve_client.py --socket /tmp/t.sock metrics --prometheus

Exit codes: 0 ok, 1 protocol/usage failure, 2 server answered with an
error envelope.
"""

import argparse
import json
import os
import random
import socket
import sys
import threading
import time

REPORT_MARKER = ',"report":'


def rpc_line(path, line):
    """Send one request line, return (response line, client latency s)."""
    started = time.monotonic()
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.connect(path)
        sock.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise RuntimeError("server closed the connection mid-response")
            buf += chunk
        return buf.decode().rstrip("\n"), time.monotonic() - started


def retry_after_seconds(envelope):
    """The daemon's backoff hint, jittered, or None when the response is
    not a retryable rejection.  Admission rejections (full queue, open
    circuit breaker) carry retry_after_ms in the error object; honoring
    it with jitter keeps a fanout burst from re-arriving as one thundering
    herd exactly when the daemon said to come back."""
    try:
        error = json.loads(envelope).get("error") or {}
    except json.JSONDecodeError:
        return None
    hint_ms = error.get("retry_after_ms")
    if not hint_ms:
        return None
    return hint_ms / 1000.0 * random.uniform(0.5, 1.5)


def rpc_with_backoff(path, line, retries):
    """rpc_line, retrying up to `retries` times when the daemon answers
    with a rejection that carries a retry_after_ms hint."""
    total_started = time.monotonic()
    for _ in range(retries):
        envelope, _ = rpc_line(path, line)
        delay = retry_after_seconds(envelope)
        if delay is None:
            return envelope, time.monotonic() - total_started
        time.sleep(delay)
    envelope, _ = rpc_line(path, line)
    return envelope, time.monotonic() - total_started


def report_bytes(envelope):
    """The raw report document spliced into an analyze envelope, with the
    trailing newline `analyze --report` files carry.  The report is the
    LAST envelope key (rfind), so a served trace document riding ahead of
    it in the same envelope cannot confuse the scan."""
    at = envelope.rfind(REPORT_MARKER)
    if at < 0 or not envelope.endswith("}"):
        raise RuntimeError("no report in envelope: " + envelope[:200])
    return envelope[at + len(REPORT_MARKER):-1] + "\n"


def check_ok(envelope, expect_id=None):
    doc = json.loads(envelope)
    if not doc.get("ok"):
        print("server error:", doc.get("error"), file=sys.stderr)
        sys.exit(2)
    if expect_id is not None and doc.get("id") != expect_id:
        raise RuntimeError(
            f"request id not echoed: sent {expect_id!r}, got {doc.get('id')!r}")
    return doc


def make_id(tag):
    """A client-unique request id: pid-scoped so concurrent CI clients
    sharing one daemon stay distinguishable in the access journal."""
    return f"cli-{os.getpid()}-{tag}"


def analyze_request(args, req_id, trace=False, profile=False):
    req = {"op": "analyze", "benchmark": args.benchmark, "runs": args.runs,
           "id": req_id}
    if args.period is not None:
        req["period"] = args.period
    if args.scale is not None:
        req["scale"] = args.scale
    if trace:
        req["trace"] = True
    if profile:
        req["profile"] = True
    return json.dumps(req)


def cmd_ping(args):
    req_id = args.id or make_id("ping")
    envelope, latency = rpc_line(args.socket, json.dumps({"op": "ping", "id": req_id}))
    doc = check_ok(envelope, expect_id=req_id)
    print(f"pong id={doc['id']} latency={latency * 1000:.1f}ms")


def cmd_metrics(args):
    req = {"op": "metrics"}
    if args.prometheus:
        req["format"] = "prometheus"
    envelope, _ = rpc_line(args.socket, json.dumps(req))
    doc = check_ok(envelope)
    if args.prometheus:
        sys.stdout.write(doc["prometheus"])
    else:
        json.dump(doc["metrics"], sys.stdout, indent=2)
        print()


def cmd_analyze(args):
    req_id = args.id or make_id("analyze")
    line = analyze_request(args, req_id,
                           trace=bool(args.trace_out),
                           profile=bool(args.profile_out))
    envelope, latency = rpc_line(args.socket, line)
    doc = check_ok(envelope, expect_id=req_id)
    report = report_bytes(envelope)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
    if args.trace_out:
        trace = doc.get("trace")
        if trace is None:
            # Either the daemon capped the payload (served as null) or the
            # key is missing outright — both are worth failing loudly in CI.
            print("requested trace was not served (capped or absent)", file=sys.stderr)
            sys.exit(1)
        with open(args.trace_out, "w") as f:
            json.dump(trace, f)
    if args.profile_out:
        profile = doc.get("profile")
        if profile is None:
            print("requested profile was not served (capped or absent)", file=sys.stderr)
            sys.exit(1)
        with open(args.profile_out, "w") as f:
            f.write(profile)
    print(f"id={doc['id']} run_id={doc['run_id']} coalesced={doc['coalesced']} "
          f"server={doc['elapsed_seconds']:.3f}s client={latency:.3f}s "
          f"bytes={len(report)}")


def cmd_fanout(args):
    results = [None] * args.clients
    latencies = [0.0] * args.clients
    errors = []

    def worker(i):
        try:
            line = analyze_request(args, make_id(f"fan{i}"))
            results[i], latencies[i] = rpc_with_backoff(args.socket, line, args.retries)
        except Exception as e:  # collected, not raised: threads must all finish
            errors.append(f"client {i}: {e}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(args.clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)

    coalesced = 0
    reports = []
    for i, envelope in enumerate(results):
        doc = check_ok(envelope, expect_id=make_id(f"fan{i}"))
        if doc["coalesced"]:
            coalesced += 1
        reports.append(report_bytes(envelope))
    if any(r != reports[0] for r in reports):
        print("fanout responses disagree on report bytes", file=sys.stderr)
        sys.exit(1)
    if args.out_prefix:
        with open(args.out_prefix + ".json", "w") as f:
            f.write(reports[0])
    print(f"clients={args.clients} coalesced={coalesced} "
          f"run_id={json.loads(results[0])['run_id']} bytes={len(reports[0])} "
          f"client_latency min={min(latencies):.3f}s max={max(latencies):.3f}s "
          f"mean={sum(latencies) / len(latencies):.3f}s")
    if args.min_coalesced is not None and coalesced < args.min_coalesced:
        print(f"expected at least {args.min_coalesced} coalesced responses",
              file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", required=True, help="unix socket path of the daemon")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("ping")
    p.add_argument("--id", help="request id (default: generated)")

    p = sub.add_parser("metrics")
    p.add_argument("--prometheus", action="store_true")

    def analyze_args(p):
        p.add_argument("--benchmark", required=True)
        p.add_argument("--runs", type=int, default=4)
        p.add_argument("--period", type=float, default=None)
        p.add_argument("--scale", type=float, default=None)

    p = sub.add_parser("analyze")
    analyze_args(p)
    p.add_argument("--id", help="request id (default: generated)")
    p.add_argument("--out", help="write the report bytes to this file")
    p.add_argument("--trace-out",
                   help="request a Chrome trace of the run and write it to this file")
    p.add_argument("--profile-out",
                   help="request folded stacks for the run and write them to this file")

    p = sub.add_parser("fanout")
    analyze_args(p)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--out-prefix", help="write the (identical) report to PREFIX.json")
    p.add_argument("--min-coalesced", type=int, default=None,
                   help="fail unless at least this many responses were coalesced")
    p.add_argument("--retries", type=int, default=3,
                   help="retries per client when the daemon rejects with a "
                        "retry_after_ms hint (jittered backoff)")

    args = parser.parse_args()
    {"ping": cmd_ping, "metrics": cmd_metrics,
     "analyze": cmd_analyze, "fanout": cmd_fanout}[args.cmd](args)


if __name__ == "__main__":
    main()
