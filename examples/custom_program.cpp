// Custom programs via the SR5 assembler: write a workload as text, analyze
// it end to end.
//
//   $ ./examples/custom_program [file.s]
//
// Without an argument, a built-in saturating dot-product kernel (the kind
// of telecom arithmetic that stresses timing speculation) is assembled,
// analyzed at several clock frequencies, and compared against a masked
// (narrow-operand) variant of itself.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/framework.hpp"
#include "isa/assembler.hpp"
#include "netlist/pipeline.hpp"
#include "perf/ts_model.hpp"

using namespace terrors;

namespace {

constexpr const char* kSaturatingKernel = R"(
    ; saturating dot-product-style kernel: wide one-run operands
      movi r1, 0          ; i
      movi r2, 2000       ; bound
      movi r16, 0         ; pointer
    loop:
      ld   r8, r16, 0
      ori  r8, r8, 0x7FFF ; saturate low bits
      slli r9, r8, 9
      or   r8, r8, r9     ; ~24-bit one-run
      ld   r10, r16, 4
      add  r11, r10, r8   ; long carry chains
      st   r11, r16, 8
      addi r16, r16, 12
      addi r1, r1, 1
      bne  r1, r2, loop
      halt
)";

constexpr const char* kMaskedKernel = R"(
    ; the same kernel with operands masked to 12 bits (pointer-style data)
      movi r1, 0
      movi r2, 2000
      movi r16, 0
      movi r28, 0x0FFF
    loop:
      ld   r8, r16, 0
      and  r8, r8, r28
      ld   r10, r16, 4
      and  r10, r10, r28
      add  r11, r10, r8
      st   r11, r16, 8
      addi r16, r16, 12
      addi r1, r1, 1
      bne  r1, r2, loop
      halt
)";

}  // namespace

int main(int argc, char** argv) {
  const netlist::Pipeline pipeline = netlist::build_pipeline({});
  core::FrameworkConfig config;
  config.spec = timing::TimingSpec{1300.0};
  core::ErrorRateFramework framework(pipeline, config);
  const perf::TsProcessorModel ts;

  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const isa::Program p = isa::assemble(buf.str(), argv[1]);
    const auto r = framework.analyze(p, {isa::ProgramInput{}});
    std::printf("%s: error rate %.4f %% -> TS perf %+.2f %%\n", argv[1],
                100.0 * r.estimate.rate_mean(),
                100.0 * ts.performance_improvement(std::min(1.0, r.estimate.rate_mean())));
    return 0;
  }

  struct Variant {
    const char* name;
    const char* src;
  };
  const Variant variants[] = {{"saturating", kSaturatingKernel}, {"masked-12bit", kMaskedKernel}};
  std::printf("%-14s %12s %12s %12s\n", "kernel", "period ps", "error rate%", "TS perf%");
  for (const auto& v : variants) {
    const isa::Program p = isa::assemble(v.src, v.name);
    for (double period : {1400.0, 1300.0, 1200.0}) {
      framework.set_spec(timing::TimingSpec{period});
      const auto r = framework.analyze(p, {isa::ProgramInput{}, isa::ProgramInput{.registers = {}, .memory_seed = 9}});
      std::printf("%-14s %12.0f %12.4f %+12.2f\n", v.name, period,
                  100.0 * r.estimate.rate_mean(),
                  100.0 * ts.performance_improvement(std::min(1.0, r.estimate.rate_mean())));
    }
  }
  std::printf("\nThe saturating kernel's wide one-run operands activate long carry\n"
              "chains, so its error rate explodes as the clock tightens; the masked\n"
              "variant tolerates much more overclocking — per-application analysis\n"
              "in one screen.\n");
  return 0;
}
