// Operating-point explorer: how fast should this chip be clocked?
//
//   $ ./examples/operating_point_explorer [benchmark-name]
//
// Sweeps the clock frequency of the timing-speculative processor for one
// workload and reports, per point, the estimated error rate and the net
// performance against the non-speculative baseline — then names the
// speedup-optimal frequency.  This is the per-application analysis the
// paper's introduction motivates: different programs want different
// operating points.
#include <cstdio>
#include <string>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "perf/ts_model.hpp"
#include "timing/sta.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

using namespace terrors;

int main(int argc, char** argv) {
  const char* wanted = argc > 1 ? argv[1] : "basicmath";
  const workloads::WorkloadSpec* spec = nullptr;
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == wanted) spec = &s;
  }
  if (spec == nullptr) {
    std::printf("unknown benchmark '%s'\n", wanted);
    return 1;
  }

  const netlist::Pipeline pipeline = netlist::build_pipeline({});
  const timing::Sta sta(pipeline.netlist);
  const double fmax_static = sta.max_frequency_mhz();
  // Non-speculative baseline: guardbanded static signoff (approximating
  // the paper's SSTA corner with a 10% margin).
  const double f_base = fmax_static / 1.10 / 1.08;

  core::FrameworkConfig config;
  core::ErrorRateFramework framework(pipeline, config);
  framework.set_executor_config(workloads::executor_config_for(*spec, 2, 0.5e-4));
  const isa::Program program = workloads::generate_program(*spec);
  const auto inputs = workloads::generate_inputs(*spec, 2, 77);

  std::printf("%s on the synthetic TS pipeline\n", spec->name.c_str());
  std::printf("static fmax %.1f MHz, guardbanded baseline %.1f MHz\n\n", fmax_static, f_base);
  std::printf("%10s %10s %12s %14s\n", "MHz", "ratio", "error rate%", "net perf %");

  double best_perf = -1.0;
  double best_mhz = f_base;
  for (double ratio = 1.00; ratio <= 1.40 + 1e-9; ratio += 0.05) {
    const double mhz = f_base * ratio;
    framework.set_spec(timing::TimingSpec::from_frequency_mhz(mhz));
    const auto result = framework.analyze(program, inputs);
    const double rate = result.estimate.rate_mean();
    perf::TsProcessorModel ts;
    ts.frequency_ratio = ratio;
    const double perf = ts.performance_improvement(std::min(1.0, rate));
    std::printf("%10.1f %10.2f %12.4f %+14.2f\n", mhz, ratio, 100.0 * rate, 100.0 * perf);
    if (perf > best_perf) {
      best_perf = perf;
      best_mhz = mhz;
    }
  }
  std::printf("\nspeedup-optimal operating point: %.1f MHz (%+.2f%% vs baseline)\n", best_mhz,
              100.0 * best_perf);
  return 0;
}
