// Workload characterisation: where do a program's timing errors come from?
//
//   $ ./examples/workload_characterization [benchmark-name]
//
// Runs the framework on one of the MiBench-like workloads and breaks the
// estimated error rate down by opcode and by basic block, shows the
// hottest instructions with their conditional probabilities (p^c vs p^e),
// and reports the edge-activation profile of the hottest block — the raw
// material of the paper's Section 4.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

using namespace terrors;

int main(int argc, char** argv) {
  const char* wanted = argc > 1 ? argv[1] : "gsm.decode";
  const workloads::WorkloadSpec* spec = nullptr;
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == wanted) spec = &s;
  }
  if (spec == nullptr) {
    std::printf("unknown benchmark '%s'; available:\n", wanted);
    for (const auto& s : workloads::mibench_specs()) std::printf("  %s\n", s.name.c_str());
    return 1;
  }

  const netlist::Pipeline pipeline = netlist::build_pipeline({});
  core::FrameworkConfig config;
  config.spec = timing::TimingSpec{1300.0};
  core::ErrorRateFramework framework(pipeline, config);
  framework.set_executor_config(workloads::executor_config_for(*spec, 4, 1e-4));

  const isa::Program program = workloads::generate_program(*spec);
  const auto result =
      framework.analyze(program, workloads::generate_inputs(*spec, 4, 2026));

  std::printf("%s (%s): %zu basic blocks, %llu simulated instructions\n", spec->name.c_str(),
              std::string(workloads::category_name(spec->category)).c_str(),
              result.basic_blocks, static_cast<unsigned long long>(result.instructions));
  std::printf("error rate %.4f %% (SD %.4f %%)\n\n", 100.0 * result.estimate.rate_mean(),
              100.0 * result.estimate.rate_sd());

  // --- per-opcode breakdown ------------------------------------------------
  const auto& profile = framework.last().executor->profile();
  const auto& marginals = framework.last().marginals;
  const auto& conditionals = framework.last().conditionals;

  std::map<isa::Opcode, double> by_opcode;
  double total = 0.0;
  struct Hot {
    double contribution;
    isa::BlockId block;
    std::size_t k;
  };
  std::vector<Hot> hot;
  for (isa::BlockId b = 0; b < program.block_count(); ++b) {
    if (!marginals[b].executed) continue;
    const double e_i = static_cast<double>(profile.blocks[b].executions);
    for (std::size_t k = 0; k < marginals[b].instr.size(); ++k) {
      const double c = e_i * marginals[b].instr[k].mean();
      by_opcode[program.block(b).instructions[k].op] += c;
      total += c;
      hot.push_back({c, b, k});
    }
  }

  std::printf("error contribution by opcode:\n");
  std::vector<std::pair<double, isa::Opcode>> sorted;
  for (const auto& [op, c] : by_opcode) sorted.emplace_back(c, op);
  std::sort(sorted.rbegin(), sorted.rend());
  for (const auto& [c, op] : sorted) {
    if (c < total * 0.005) continue;
    std::printf("  %-5s %6.2f %%\n", std::string(isa::mnemonic(op)).c_str(),
                100.0 * c / total);
  }

  // --- hottest instructions --------------------------------------------------
  std::sort(hot.begin(), hot.end(),
            [](const Hot& a, const Hot& b) { return a.contribution > b.contribution; });
  std::printf("\nhottest instructions (share, block, p^c mean, p^e mean):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, hot.size()); ++i) {
    const auto& h = hot[i];
    if (h.contribution <= 0.0) break;
    const auto& instr = program.block(h.block).instructions[h.k];
    const auto& cd = conditionals[h.block].instr[h.k];
    std::printf("  %5.1f %%  B%-4u %-24s p^c=%.2e p^e=%.2e\n", 100.0 * h.contribution / total,
                h.block, isa::to_string(instr).c_str(), cd.p_correct.mean(),
                cd.p_error.mean());
  }

  // --- edge profile of the hottest block -------------------------------------
  if (!hot.empty()) {
    const isa::BlockId b = hot.front().block;
    const auto& cfg = *framework.last().cfg;
    std::printf("\nedge-activation profile of hottest block B%u (%llu executions):\n", b,
                static_cast<unsigned long long>(profile.blocks[b].executions));
    for (std::size_t j = 0; j < cfg.indegree(b); ++j) {
      std::printf("  from B%-4u (%s) : p^a = %.3f\n", cfg.predecessors(b)[j].from,
                  cfg.predecessors(b)[j].via_taken ? "taken" : "fall ",
                  profile.edge_activation(b, j));
    }
    if (profile.blocks[b].entry_count > 0)
      std::printf("  program entry    : %llu times\n",
                  static_cast<unsigned long long>(profile.blocks[b].entry_count));
  }
  return 0;
}
