// Quickstart: estimate the timing-error rate of a small program running on
// the synthetic timing-speculative processor.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface once: elaborate the pipeline
// netlist, write a program against the SR5 ISA, run the framework
// (simulation -> gate-level characterisation -> statistical estimate), and
// translate the error rate into a performance statement.
#include <cstdio>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "perf/ts_model.hpp"

using namespace terrors;

namespace {

isa::Instruction make(isa::Opcode op, int rd, int rs1, int rs2, int imm = 0) {
  isa::Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

/// sum += mem[i] for 1000 iterations — a tiny streaming kernel.
isa::Program make_kernel() {
  isa::Program p("quickstart-kernel");
  isa::BasicBlock init;
  init.instructions = {
      make(isa::Opcode::kMovi, 1, 0, 0, 0),     // i = 0
      make(isa::Opcode::kMovi, 2, 0, 0, 1000),  // bound
      make(isa::Opcode::kMovi, 8, 0, 0, 0),     // sum = 0
      make(isa::Opcode::kMovi, 16, 0, 0, 0),    // pointer
  };
  isa::BasicBlock body;
  body.instructions = {
      make(isa::Opcode::kLd, 9, 16, 0, 0),      // v = mem[ptr]
      make(isa::Opcode::kOri, 10, 9, 0, 32767), // saturate low bits (telecom-style)
      make(isa::Opcode::kSlli, 11, 10, 0, 7),
      make(isa::Opcode::kOr, 10, 10, 11),       // ~25-bit one-run operand
      make(isa::Opcode::kAdd, 8, 8, 10),        // sum += v' (long carry chains)
      make(isa::Opcode::kAddi, 16, 16, 0, 4),   // ptr += 4
      make(isa::Opcode::kAddi, 1, 1, 0, 1),     // ++i
      make(isa::Opcode::kBne, 0, 1, 2),         // while (i != bound)
  };
  isa::BasicBlock tail;
  tail.instructions = {make(isa::Opcode::kSt, 0, 16, 8, 0)};  // mem[ptr] = sum
  p.add_block(init);
  p.add_block(body);
  p.add_block(tail);
  p.block(0).fallthrough = 1;
  p.block(1).taken = 1;
  p.block(1).fallthrough = 2;
  p.set_entry(0);
  p.validate();
  return p;
}

}  // namespace

int main() {
  // 1. The processor: a 6-stage in-order integer pipeline, elaborated to
  //    gates and placed on a die (the substrate for all timing analysis).
  const netlist::Pipeline pipeline = netlist::build_pipeline({});
  const auto stats = pipeline.netlist.stats();
  std::printf("pipeline: %zu gates (%zu flip-flops) in %d stages\n", stats.gates, stats.dffs,
              static_cast<int>(netlist::Pipeline::kStages));

  // 2. The operating point: a speculative clock beyond the worst-case
  //    static timing (see bench_operating_point for its derivation).
  core::FrameworkConfig config;
  config.spec = timing::TimingSpec{1300.0};  // ps
  std::printf("working clock: %.1f MHz (period %.0f ps)\n", config.spec.frequency_mhz(),
              config.spec.period_ps);

  // 3. The framework: trains the datapath timing model against the gate
  //    level once, then analyses any number of programs.
  core::ErrorRateFramework framework(pipeline, config);

  // 4. Analyse the kernel on two random input datasets.
  const isa::Program program = make_kernel();
  std::vector<isa::ProgramInput> inputs(2);
  inputs[0].memory_seed = 1;
  inputs[1].memory_seed = 2;
  const core::BenchmarkResult result = framework.analyze(program, inputs);

  const auto& est = result.estimate;
  std::printf("\nsimulated %llu dynamic instructions over %zu basic blocks\n",
              static_cast<unsigned long long>(result.instructions), result.basic_blocks);
  std::printf("estimated error rate: %.4f %%  (SD %.4f %%)\n", 100.0 * est.rate_mean(),
              100.0 * est.rate_sd());
  std::printf("approximation bounds: d_K(lambda) <= %.4f, d_K(R_E) <= %.4f\n", est.dk_lambda,
              est.dk_count);
  std::printf("Pr(error rate <= mean) = %.3f\n", est.rate_cdf(est.rate_mean()));

  // 5. What does that mean for timing speculation?
  const perf::TsProcessorModel ts;
  const double imp = ts.performance_improvement(est.rate_mean());
  std::printf("\nat 1.15x frequency with a 24-cycle replay penalty this is a %+.2f%% "
              "performance %s\n",
              100.0 * imp, imp >= 0.0 ? "improvement" : "degradation");
  std::printf("(speculation breaks even at an error rate of %.3f %%)\n",
              100.0 * ts.break_even_error_rate());
  return 0;
}
