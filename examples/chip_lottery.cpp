// Chip lottery: what does process variation do to individual dies?
//
//   $ ./examples/chip_lottery [n_chips]
//
// Samples manufactured chips from the spatially correlated process
// variation model, runs static timing analysis on each, and bins them by
// maximum frequency — then shows how the same speculative operating point
// looks from the perspective of a slow, a typical, and a fast die by
// evaluating the deterministic dynamic slack of an instruction sequence on
// each.  This exercises the Monte-Carlo face of the SSTA machinery that
// the analytic estimator integrates over.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dta/dts_analyzer.hpp"
#include "dta/pipeline_driver.hpp"
#include "netlist/pipeline.hpp"
#include "support/rng.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

using namespace terrors;

int main(int argc, char** argv) {
  const int n_chips = argc > 1 ? std::atoi(argv[1]) : 500;
  const netlist::Pipeline pipeline = netlist::build_pipeline({});
  const timing::VariationModel vm(pipeline.netlist, {});

  // --- frequency binning -----------------------------------------------------
  support::Rng rng(2026);
  std::vector<double> fmax;
  std::vector<timing::ChipSample> kept;  // slowest / median / fastest dies
  fmax.reserve(static_cast<std::size_t>(n_chips));
  std::vector<std::pair<double, timing::ChipSample>> all;
  for (int i = 0; i < n_chips; ++i) {
    timing::ChipSample chip = vm.sample_chip(rng);
    const timing::Sta sta(pipeline.netlist, &chip);
    const double f = sta.max_frequency_mhz();
    fmax.push_back(f);
    all.emplace_back(f, std::move(chip));
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(fmax.begin(), fmax.end());

  std::printf("sampled %d chips; static fmax distribution:\n", n_chips);
  std::printf("  slowest %.1f MHz | p25 %.1f | median %.1f | p75 %.1f | fastest %.1f MHz\n",
              fmax.front(), fmax[fmax.size() / 4], fmax[fmax.size() / 2],
              fmax[3 * fmax.size() / 4], fmax.back());

  // Histogram.
  const double lo = fmax.front();
  const double hi = fmax.back();
  const int bins = 12;
  std::vector<int> hist(bins, 0);
  for (double f : fmax) {
    int b = static_cast<int>((f - lo) / (hi - lo + 1e-9) * bins);
    ++hist[std::min(b, bins - 1)];
  }
  std::printf("\n");
  for (int b = 0; b < bins; ++b) {
    std::printf("  %7.1f MHz |", lo + (hi - lo) * (b + 0.5) / bins);
    const int stars = hist[b] * 50 / n_chips;
    for (int s = 0; s < stars + (hist[b] > 0 ? 1 : 0); ++s) std::putchar('#');
    std::printf(" %d\n", hist[b]);
  }

  // --- per-die dynamic slack at the speculative clock -------------------------
  const timing::TimingSpec spec{1300.0};
  dta::DtsAnalyzer analyzer(pipeline.netlist, vm, spec);
  dta::PipelineDriver driver(pipeline);
  std::vector<dta::FetchSlot> slots;
  for (int i = 0; i < 6; ++i) slots.push_back(dta::FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
  isa::Instruction add;
  add.op = isa::Opcode::kAdd;
  isa::InstrDynContext ctx;
  ctx.cur = {0x00FFFFFFu, 0x1u, isa::ExUnit::kAdder, isa::Opcode::kAdd};  // 24-bit carry
  ctx.pc = 0x100;
  slots.push_back(dta::FetchSlot::from_context(add, ctx));
  auto cycles = driver.run(slots);
  auto& ex_cycle = cycles[slots.size() - 1 + 3];

  std::printf("\na 24-bit carry-chain add at %.1f MHz (period %.0f ps):\n",
              spec.frequency_mhz(), spec.period_ps);
  const char* labels[] = {"slowest die", "median die", "fastest die"};
  const timing::ChipSample* dies[] = {&all.front().second, &all[all.size() / 2].second,
                                      &all.back().second};
  for (int i = 0; i < 3; ++i) {
    const auto dts =
        analyzer.stage_dts_deterministic(3, ex_cycle.flags(), netlist::EndpointClass::kData,
                                         dies[i]);
    if (dts.has_value()) {
      std::printf("  %-12s: dynamic slack %+7.1f ps -> %s\n", labels[i], *dts,
                  *dts < 0.0 ? "TIMING ERROR (speculation must correct)" : "captured safely");
    }
  }
  const auto analytic = analyzer.stage_dts(3, ex_cycle, netlist::EndpointClass::kData);
  if (analytic.has_value()) {
    std::printf("  %-12s: slack %.1f +- %.1f ps, Pr(error) = %.4f\n", "SSTA (all)",
                analytic->slack.mean, analytic->slack.sd, analytic->slack.prob_below_zero());
  }
  return 0;
}
