#include <gtest/gtest.h>

#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "isa/isa.hpp"
#include "isa/assembler.hpp"
#include "isa/program.hpp"
#include "robust/error.hpp"

namespace terrors::isa {
namespace {

Instruction make(Opcode op, int rd = 0, int rs1 = 0, int rs2 = 0, int imm = 0) {
  Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

/// A counted loop:
///   B0: movi r1, 5; movi r2, 0
///   B1: addi r2, r2, 3; subi r1, r1, 1; bne r1, r0 -> B1, else B2
///   B2: st r2; (exit)
Program counted_loop() {
  Program p("loop");
  BasicBlock b0;
  b0.instructions = {make(Opcode::kMovi, 1, 0, 0, 5), make(Opcode::kMovi, 2, 0, 0, 0)};
  BasicBlock b1;
  b1.instructions = {make(Opcode::kAddi, 2, 2, 0, 3), make(Opcode::kSubi, 1, 1, 0, 1),
                     make(Opcode::kBne, 0, 1, 0)};
  BasicBlock b2;
  b2.instructions = {make(Opcode::kSt, 0, 0, 2, 16)};
  const BlockId i0 = p.add_block(b0);
  const BlockId i1 = p.add_block(b1);
  const BlockId i2 = p.add_block(b2);
  p.block(i0).fallthrough = i1;
  p.block(i1).taken = i1;
  p.block(i1).fallthrough = i2;
  p.set_entry(i0);
  return p;
}

TEST(Isa, Predicates) {
  EXPECT_TRUE(is_branch(Opcode::kBeq));
  EXPECT_TRUE(is_branch(Opcode::kJmp));
  EXPECT_FALSE(is_conditional_branch(Opcode::kJmp));
  EXPECT_TRUE(uses_immediate(Opcode::kAddi));
  EXPECT_FALSE(uses_immediate(Opcode::kAdd));
  EXPECT_FALSE(writes_register(Opcode::kSt));
  EXPECT_TRUE(writes_register(Opcode::kLd));
  EXPECT_EQ(ex_unit(Opcode::kBeq), ExUnit::kCompare);
  EXPECT_EQ(ex_unit(Opcode::kSll), ExUnit::kShifter);
}

TEST(Isa, EncodeIsInjectiveOnFields) {
  const auto w1 = encode(make(Opcode::kAdd, 1, 2, 3));
  const auto w2 = encode(make(Opcode::kAdd, 1, 2, 4));
  const auto w3 = encode(make(Opcode::kSub, 1, 2, 3));
  EXPECT_NE(w1, w2);
  EXPECT_NE(w1, w3);
  EXPECT_EQ(w1 >> 26, static_cast<std::uint32_t>(Opcode::kAdd));
}

TEST(Program, ValidateAcceptsWellFormed) { EXPECT_NO_THROW(counted_loop().validate()); }

TEST(Program, ValidateRejectsMissingSuccessor) {
  Program p("bad");
  BasicBlock b;
  b.instructions = {make(Opcode::kBne, 0, 1, 2)};
  const BlockId id = p.add_block(b);
  p.block(id).taken = id;  // missing fallthrough
  p.set_entry(id);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateRejectsBranchInMiddle) {
  Program p("bad2");
  BasicBlock b;
  b.instructions = {make(Opcode::kJmp), make(Opcode::kNop)};
  BasicBlock exit_b;
  exit_b.instructions = {make(Opcode::kNop)};
  const BlockId id = p.add_block(b);
  const BlockId e = p.add_block(exit_b);
  p.block(id).taken = e;
  p.set_entry(id);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Cfg, PredecessorsAndSuccessors) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  EXPECT_EQ(cfg.successors(0).size(), 1u);
  ASSERT_EQ(cfg.predecessors(1).size(), 2u);  // B0 fall-through + self loop
  EXPECT_EQ(cfg.predecessors(2).size(), 1u);
  EXPECT_EQ(cfg.indegree(0), 0u);
}

TEST(Cfg, SccOfLoop) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  // B1 forms a cyclic SCC by itself; B0 and B2 are acyclic singletons.
  EXPECT_NE(cfg.scc_of(0), cfg.scc_of(1));
  EXPECT_NE(cfg.scc_of(1), cfg.scc_of(2));
  EXPECT_TRUE(cfg.scc_is_cyclic(cfg.scc_of(1)));
  EXPECT_FALSE(cfg.scc_is_cyclic(cfg.scc_of(0)));
}

TEST(Cfg, TopologicalOrderRespectsEdges) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  std::vector<int> pos(cfg.scc_count(), -1);
  int idx = 0;
  for (auto scc : cfg.scc_topo_order()) pos[scc] = idx++;
  // Every CFG edge goes from an earlier or equal SCC position.
  for (BlockId b = 0; b < cfg.block_count(); ++b) {
    for (BlockId s : cfg.successors(b)) {
      if (cfg.scc_of(b) != cfg.scc_of(s)) EXPECT_LT(pos[cfg.scc_of(b)], pos[cfg.scc_of(s)]);
    }
  }
}

TEST(Cfg, LargerGraphSccs) {
  // Two nested loops plus an exit: B0 -> B1 <-> B2, B1 -> B3.
  Program p("nested");
  BasicBlock blocks[4];
  blocks[0].instructions = {make(Opcode::kMovi, 1, 0, 0, 3)};
  blocks[1].instructions = {make(Opcode::kSubi, 1, 1, 0, 1), make(Opcode::kBne, 0, 1, 0)};
  blocks[2].instructions = {make(Opcode::kJmp)};
  blocks[3].instructions = {make(Opcode::kNop)};
  for (auto& b : blocks) p.add_block(b);
  p.block(0).fallthrough = 1;
  p.block(1).taken = 2;
  p.block(1).fallthrough = 3;
  p.block(2).taken = 1;
  p.set_entry(0);
  p.validate();
  const Cfg cfg(p);
  EXPECT_EQ(cfg.scc_of(1), cfg.scc_of(2));
  EXPECT_TRUE(cfg.scc_is_cyclic(cfg.scc_of(1)));
  EXPECT_EQ(cfg.scc_count(), 3u);
}

TEST(Executor, CountedLoopExecutesCorrectly) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  Executor ex(p, cfg);
  const std::uint64_t n = ex.run({});
  // 2 (B0) + 5 * 3 (B1) + 1 (B2) = 18 instructions.
  EXPECT_EQ(n, 18u);
  const auto& prof = ex.profile();
  EXPECT_EQ(prof.blocks[0].executions, 1u);
  EXPECT_EQ(prof.blocks[1].executions, 5u);
  EXPECT_EQ(prof.blocks[2].executions, 1u);
  // Edge activation of B1: 4 of 5 entries via the self loop.
  const auto& preds = cfg.predecessors(1);
  for (std::size_t j = 0; j < preds.size(); ++j) {
    const double pa = prof.edge_activation(1, j);
    if (preds[j].from == 1) {
      EXPECT_NEAR(pa, 0.8, 1e-12);
    } else {
      EXPECT_NEAR(pa, 0.2, 1e-12);
    }
  }
}

TEST(Executor, SampledContextsTrackDataflow) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  Executor ex(p, cfg);
  ex.run({});
  const auto& prof = ex.profile();
  // The entry sample of B0 exists and has a context per instruction.
  ASSERT_EQ(prof.blocks[0].entry_samples.samples.size(), 1u);
  const auto& s0 = prof.blocks[0].entry_samples.samples[0];
  ASSERT_EQ(s0.instrs.size(), 2u);
  EXPECT_EQ(s0.instrs[0].result, 5u);  // movi r1, 5
  // First instruction of the program follows the flushed state.
  EXPECT_EQ(s0.instrs[0].prev.op, Opcode::kNop);
  // Some sample of B1 must show the addi accumulating by 3.
  bool found = false;
  for (const auto& es : prof.blocks[1].edge_samples) {
    for (const auto& s : es.samples) {
      if (!s.instrs.empty() && s.instrs[0].cur.op == Opcode::kAddi) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Executor, ChainsPrevContextAcrossBlocks) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  Executor ex(p, cfg);
  ex.run({});
  const auto& prof = ex.profile();
  // B2's only instruction follows B1's bne.
  const auto& preds = cfg.predecessors(2);
  ASSERT_EQ(preds.size(), 1u);
  ASSERT_FALSE(prof.blocks[2].edge_samples[0].samples.empty());
  const auto& s = prof.blocks[2].edge_samples[0].samples[0];
  EXPECT_EQ(s.instrs[0].prev.op, Opcode::kBne);
}

TEST(Executor, BudgetGuardStopsRunawayLoops) {
  Program p("forever");
  BasicBlock b;
  b.instructions = {make(Opcode::kAddi, 1, 1, 0, 1), make(Opcode::kJmp)};
  BasicBlock e;
  e.instructions = {make(Opcode::kNop)};
  const BlockId id = p.add_block(b);
  const BlockId eid = p.add_block(e);
  p.block(id).taken = id;
  // Unreachable exit keeps validate() happy; the loop itself never exits.
  (void)eid;
  p.set_entry(id);
  const Cfg cfg(p);
  ExecutorConfig cfgx;
  cfgx.max_instructions = 1000;
  Executor ex(p, cfg, cfgx);
  EXPECT_EQ(ex.run({}), 1000u);
}

TEST(Executor, MemoryRoundTrip) {
  Program p("mem");
  BasicBlock b;
  b.instructions = {make(Opcode::kMovi, 1, 0, 0, 1234), make(Opcode::kSt, 0, 0, 1, 64),
                    make(Opcode::kLd, 2, 0, 0, 64)};
  p.add_block(b);
  p.set_entry(0);
  const Cfg cfg(p);
  Executor ex(p, cfg);
  ex.run({});
  const auto& s = ex.profile().blocks[0].entry_samples.samples[0];
  EXPECT_EQ(s.instrs[2].result, 1234u);  // ld reads what st wrote
}

TEST(Executor, DeterministicAcrossRunsWithSameInput) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  Executor a(p, cfg);
  Executor b(p, cfg);
  EXPECT_EQ(a.run({}), b.run({}));
  EXPECT_EQ(a.profile().blocks[1].executions, b.profile().blocks[1].executions);
}

TEST(Executor, MultipleRunsAccumulate) {
  const Program p = counted_loop();
  const Cfg cfg(p);
  Executor ex(p, cfg);
  ex.run({});
  ex.run({});
  EXPECT_EQ(ex.profile().runs, 2u);
  EXPECT_EQ(ex.profile().blocks[1].executions, 10u);
}

// --- assembler -----------------------------------------------------------------

TEST(Assembler, CountedLoopRoundTrip) {
  const Program p = assemble(R"(
      ; counted loop, equivalent to the hand-built fixture
      movi r1, 5
      movi r2, 0
    loop:
      addi r2, r2, 3
      subi r1, r1, 1
      bne  r1, r0, loop
      st   r2, r0, 16
      halt
  )");
  const Cfg cfg(p);
  Executor ex(p, cfg);
  EXPECT_EQ(ex.run({}), 18u);
  EXPECT_EQ(ex.profile().blocks[1].executions, 5u);
}

TEST(Assembler, LabelsJumpAndHex) {
  const Program p = assemble(R"(
    start:
      movi r8, 0x10
      jmp end
    dead:
      addi r8, r8, 1
    end:
      st r8, r0, 0
      halt
  )");
  p.validate();
  const Cfg cfg(p);
  Executor ex(p, cfg);
  ex.run({});
  // The 'dead' block is never executed.
  EXPECT_EQ(ex.profile().blocks[1].executions, 0u);
  EXPECT_EQ(ex.profile().blocks[2].executions, 1u);
  const auto& sample = ex.profile().blocks[2].edge_samples;
  (void)sample;
  // movi wrote 0x10.
  EXPECT_EQ(ex.profile().blocks[0].entry_samples.samples[0].instrs[0].result, 0x10u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble("movi r1, 1\nbogus r1, r2, r3\n");
    FAIL() << "expected throw";
  } catch (const terrors::robust::Error& e) {
    EXPECT_EQ(e.category(), terrors::robust::Category::kInput);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)assemble("beq r1, r2, nowhere\nhalt\n"), terrors::robust::Error);
  EXPECT_THROW((void)assemble("movi r99, 1\nhalt\n"), terrors::robust::Error);
  EXPECT_THROW((void)assemble("movi r1, 999999\nhalt\n"), terrors::robust::Error);
}

TEST(Assembler, StOperandOrder) {
  const Program p = assemble(R"(
      movi r5, 77
      st   r5, r0, 128
      ld   r6, r0, 128
      halt
  )");
  const Cfg cfg(p);
  Executor ex(p, cfg);
  ex.run({});
  EXPECT_EQ(ex.profile().blocks[0].entry_samples.samples[0].instrs[2].result, 77u);
}

TEST(Assembler, ListingRoundTripsThroughToString) {
  const Program p = assemble("movi r1, 3\naddi r1, r1, 1\nhalt\n");
  const std::string listing = p.to_string();
  EXPECT_NE(listing.find("movi"), std::string::npos);
  EXPECT_NE(listing.find("addi"), std::string::npos);
}

}  // namespace
}  // namespace terrors::isa
