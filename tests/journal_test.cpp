// Run-journal contracts (DESIGN §5g):
//  1. Schema: event_line emits one parseable JSON object per event, and
//     report::event_from_json inverts it exactly; append_event produces a
//     line-delimited file that load_journal reads back in order.
//  2. Aggregation: terrors stats' aggregate() computes phase summaries,
//     cache hit rates, and per-program last-vs-p50 deltas from a known
//     event set; write_stats_text / write_tail_text render them.
//  3. Bit-invisibility: an analyze() with the journal and profiler
//     enabled produces byte-identical report JSON and bit-identical
//     estimates to one without, at 1 and 4 threads.  Observability must
//     never leak into the science.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "report/attribution.hpp"
#include "report/journal_stats.hpp"
#include "report/json_value.hpp"
#include "report/run_report.hpp"
#include "robust/error.hpp"
#include "support/thread_pool.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

core::FrameworkConfig small_config() {
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  cfg.executor.max_instructions = 8000;
  cfg.error_model.mixed_samples = 32;
  return cfg;
}

const workloads::WorkloadSpec& spec_named(const char* name) {
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return workloads::mibench_specs()[0];
}

obs::RunEvent sample_event(const std::string& program, double sim, double train, double est) {
  obs::RunEvent e;
  e.run_id = "00000000deadbeef";
  e.unix_ms = 1700000000000ULL;
  e.program = program;
  e.config_hash = "0123456789abcdef";
  e.program_hash = "fedcba9876543210";
  e.period_ps = 1300.0;
  e.threads = 4;
  e.runs = 2;
  e.instructions = 16000;
  e.simulation_seconds = sim;
  e.training_seconds = train;
  e.estimation_seconds = est;
  e.counters = {{"cache.hits", 3}, {"cache.misses", 1}, {"sim.cycles", 2156}};
  e.pool_tasks = 64;
  e.pool_retries = 1;
  e.lambda_mean = 1234.5;
  e.rate_mean = 0.0058;
  e.rate_sd = 0.0018;
  e.degraded = true;
  e.degraded_sites = {"cache", "io"};
  e.peak_rss_bytes = 123456789;
  return e;
}

/// A temp file path unique to this test binary run.
std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "journal_test_" + tag + ".jsonl";
}

TEST(JournalSchema, EventLineRoundTripsThroughReportParser) {
  const obs::RunEvent e = sample_event("typeset", 0.5, 2.0, 0.25);
  const std::string line = obs::event_line(e);
  const report::JsonValue doc = report::JsonValue::parse(line);
  const obs::RunEvent back = report::event_from_json(doc);

  EXPECT_EQ(back.schema_version, obs::kJournalSchemaVersion);
  EXPECT_EQ(back.run_id, e.run_id);
  EXPECT_EQ(back.unix_ms, e.unix_ms);
  EXPECT_EQ(back.program, e.program);
  EXPECT_EQ(back.config_hash, e.config_hash);
  EXPECT_EQ(back.program_hash, e.program_hash);
  EXPECT_EQ(back.period_ps, e.period_ps);
  EXPECT_EQ(back.threads, e.threads);
  EXPECT_EQ(back.runs, e.runs);
  EXPECT_EQ(back.instructions, e.instructions);
  EXPECT_EQ(back.simulation_seconds, e.simulation_seconds);
  EXPECT_EQ(back.training_seconds, e.training_seconds);
  EXPECT_EQ(back.estimation_seconds, e.estimation_seconds);
  EXPECT_EQ(back.counters, e.counters);
  EXPECT_EQ(back.pool_tasks, e.pool_tasks);
  EXPECT_EQ(back.pool_retries, e.pool_retries);
  EXPECT_EQ(back.lambda_mean, e.lambda_mean);
  EXPECT_EQ(back.rate_mean, e.rate_mean);
  EXPECT_EQ(back.rate_sd, e.rate_sd);
  EXPECT_EQ(back.degraded, e.degraded);
  EXPECT_EQ(back.degraded_sites, e.degraded_sites);
  EXPECT_EQ(back.peak_rss_bytes, e.peak_rss_bytes);
}

TEST(JournalSchema, RejectsWrongKindAndVersion) {
  EXPECT_THROW(report::event_from_json(report::JsonValue::parse("{\"kind\":\"other\"}")),
               robust::Error);
  obs::RunEvent e = sample_event("x", 1, 1, 1);
  std::string line = obs::event_line(e);
  const std::string needle = "\"schema_version\":1";
  const auto pos = line.find(needle);
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, needle.size(), "\"schema_version\":999");
  EXPECT_THROW(report::event_from_json(report::JsonValue::parse(line)), robust::Error);
}

TEST(JournalSchema, AppendProducesLineDelimitedFileReadBackInOrder) {
  const std::string path = temp_path("append");
  std::remove(path.c_str());
  obs::append_event(path, sample_event("a", 1, 2, 3));
  obs::append_event(path, sample_event("b", 4, 5, 6));

  // Two lines, each a complete JSON document.
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NO_THROW(report::JsonValue::parse(line)) << line;
  }
  EXPECT_EQ(lines, 2u);

  const auto events = report::load_journal(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].program, "a");
  EXPECT_EQ(events[1].program, "b");
  std::remove(path.c_str());
}

TEST(JournalSchema, LoadJournalErrorsCarryContext) {
  EXPECT_THROW(report::load_journal("/nonexistent/journal.jsonl"), robust::Error);
  const std::string path = temp_path("malformed");
  {
    std::ofstream out(path);
    out << "{\"kind\":\"terrors_run_event\"\n";  // truncated JSON
  }
  try {
    (void)report::load_journal(path);
    FAIL() << "expected robust::Error";
  } catch (const robust::Error& e) {
    // A JSON parse failure keeps the parser's kInput kind (wrap adds
    // context, never changes category); only kind/schema mismatches are
    // kArtifact.  Either way the line number must be in the chain.
    EXPECT_EQ(e.category(), robust::Category::kInput);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(JournalSchema, ResolveJournalPathPrefersFlagOverEnv) {
  EXPECT_EQ(obs::resolve_journal_path("explicit.jsonl"), "explicit.jsonl");
  // With no flag and no env the journal is off.
  const char* saved = std::getenv("TERRORS_JOURNAL");
  ASSERT_EQ(saved, nullptr) << "test assumes TERRORS_JOURNAL is unset";
  EXPECT_EQ(obs::resolve_journal_path(""), "");
}

// ---------------------------------------------------------------------------

TEST(JournalStats, AggregateComputesPhaseQuantilesCacheAndPerProgram) {
  std::vector<obs::RunEvent> events;
  // Four "fast" runs and one slow outlier for program a; one run of b.
  for (const double t : {1.0, 1.0, 1.0, 1.0}) events.push_back(sample_event("a", 0.1, t, 0.1));
  events.push_back(sample_event("a", 0.1, 5.0, 0.1));  // appended last
  events.push_back(sample_event("b", 0.2, 2.0, 0.2));

  const report::JournalStats s = report::aggregate(events);
  EXPECT_EQ(s.events, 6u);
  EXPECT_EQ(s.training_seconds.count, 6u);
  EXPECT_DOUBLE_EQ(s.training_seconds.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.training_seconds.max, 5.0);
  // Each sample_event carries 3 hits / 1 miss.
  EXPECT_EQ(s.cache_hits, 18u);
  EXPECT_EQ(s.cache_misses, 6u);
  EXPECT_DOUBLE_EQ(s.cache_hit_rate, 0.75);
  EXPECT_EQ(s.degraded_events, 6u);
  EXPECT_EQ(s.peak_rss_max, 123456789u);

  ASSERT_EQ(s.programs.size(), 2u);
  const report::ProgramStats& a = s.programs[0];
  EXPECT_EQ(a.program, "a");
  EXPECT_EQ(a.events, 5u);
  // Last run of a: 0.1 + 5.0 + 0.1 = 5.2s against a p50 of 1.2s.
  EXPECT_DOUBLE_EQ(a.last_analyze_seconds, 5.2);
  EXPECT_DOUBLE_EQ(a.analyze_seconds.p50, 1.2);
  EXPECT_NEAR(a.last_vs_p50, 5.2 / 1.2, 1e-12);
  EXPECT_EQ(s.programs[1].program, "b");
  EXPECT_EQ(s.programs[1].events, 1u);
}

TEST(JournalStats, RenderersMentionTheHeadlineNumbers) {
  std::vector<obs::RunEvent> events = {sample_event("typeset", 0.5, 2.0, 0.25)};
  std::ostringstream stats_os;
  report::write_stats_text(report::aggregate(events), stats_os);
  EXPECT_NE(stats_os.str().find("1 run event(s)"), std::string::npos) << stats_os.str();
  EXPECT_NE(stats_os.str().find("typeset"), std::string::npos);
  EXPECT_NE(stats_os.str().find("75.0% hit rate"), std::string::npos) << stats_os.str();

  std::ostringstream tail_os;
  report::write_tail_text(events, 10, tail_os);
  EXPECT_NE(tail_os.str().find("00000000deadbeef"), std::string::npos) << tail_os.str();
  EXPECT_NE(tail_os.str().find("DEGRADED"), std::string::npos) << tail_os.str();

  // Tail truncates to the newest n.
  events.push_back(sample_event("other", 1, 1, 1));
  std::ostringstream tail1;
  report::write_tail_text(events, 1, tail1);
  EXPECT_EQ(tail1.str().find("typeset"), std::string::npos) << tail1.str();
  EXPECT_NE(tail1.str().find("other"), std::string::npos);
}

TEST(JournalStats, EmptyJournalAggregatesToZeros) {
  const report::JournalStats s = report::aggregate({});
  EXPECT_EQ(s.events, 0u);
  std::ostringstream os;
  report::write_stats_text(s, os);
  EXPECT_NE(os.str().find("0 run event(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------

/// Metrics snapshot comparable across runs (mirrors report_test):
/// excludes report.* (observer-only), pool.* (process-cumulative),
/// dta.dp_cache_collisions (insert-race count, varies run to run),
/// journal.* and trace.* (fire only when instrumentation is on — their
/// absence elsewhere is exactly what this test proves).
std::map<std::string, double> metrics_snapshot() {
  std::ostringstream os;
  obs::MetricsRegistry::instance().write_json(os);
  const report::JsonValue doc = report::JsonValue::parse(os.str());
  std::map<std::string, double> out;
  const auto keep = [](const std::string& name) {
    return name.rfind("report.", 0) != 0 && name.rfind("pool.", 0) != 0 &&
           name.rfind("journal.", 0) != 0 && name.rfind("trace.", 0) != 0 &&
           name != "dta.dp_cache_collisions";
  };
  for (const auto& [name, v] : doc.at("counters").members()) {
    if (keep(name)) out["c:" + name] = v.as_number();
  }
  for (const auto& [name, v] : doc.at("gauges").members()) {
    if (keep(name)) out["g:" + name] = v.as_number();
  }
  for (const auto& [name, v] : doc.at("histograms").members()) {
    if (!keep(name)) continue;
    for (const auto& [field, fv] : v.members()) out["h:" + name + "." + field] = fv.as_number();
  }
  return out;
}

struct InstrumentedRun {
  core::BenchmarkResult result;
  std::string report_json;
  std::map<std::string, double> metrics;
};

/// One analyze() of pgp.encode at `threads`, optionally with the full
/// observability stack (journal + profiler + tracer) switched on.
InstrumentedRun analyze_instrumented(std::size_t threads, bool instrumented) {
  const auto& spec = spec_named("pgp.encode");
  support::set_global_threads(threads);
  obs::MetricsRegistry::instance().reset();

  std::string journal;
  if (instrumented) {
    journal = temp_path(("invis_t" + std::to_string(threads)).c_str());
    std::remove(journal.c_str());
    obs::Tracer::instance().reset();
    obs::Tracer::instance().set_enabled(true);
    obs::SpanProfiler::instance().reset();
    obs::SpanProfiler::instance().start({/*interval_us=*/200});
  }

  core::FrameworkConfig cfg = small_config();
  cfg.journal_path = journal;
  core::ErrorRateFramework fw(pipeline(), cfg);
  report::AttributionCollector collector;
  InstrumentedRun run;
  const isa::Program program = workloads::generate_program(spec);
  run.result = fw.analyze(program, workloads::generate_inputs(spec, 2, 7), &collector);

  if (instrumented) {
    obs::SpanProfiler::instance().stop();
    obs::Tracer::instance().set_enabled(false);
    // The journal really was written.
    const auto events = report::load_journal(journal);
    EXPECT_EQ(events.size(), 1u);
    if (!events.empty()) {
      EXPECT_EQ(events[0].run_id, run.result.run_id);
      EXPECT_EQ(events[0].program, run.result.name);
    }
    std::remove(journal.c_str());
  }

  // Wall-clock phase times differ between any two analyze() calls, with
  // or without instrumentation — zero them so the byte comparison covers
  // every deterministic field (estimate, marginals, hotspots, run id).
  report::RunReport report = collector.build(fw, program, run.result);
  report.training_seconds = 0.0;
  report.simulation_seconds = 0.0;
  report.estimation_seconds = 0.0;
  std::ostringstream os;
  report.write_json(os);
  run.report_json = os.str();
  run.metrics = metrics_snapshot();
  return run;
}

class JournalInvisibility : public ::testing::Test {
 protected:
  void TearDown() override {
    support::set_global_threads(1);
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().reset();
    obs::SpanProfiler::instance().reset();
  }
};

TEST_F(JournalInvisibility, JournalAndProfilerAreBitInvisibleAtOneAndFourThreads) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const InstrumentedRun plain = analyze_instrumented(threads, false);
    const InstrumentedRun instrumented = analyze_instrumented(threads, true);

    // Estimate: bitwise identical (EXPECT_EQ on doubles is ==).
    EXPECT_EQ(plain.result.estimate.rate_mean(), instrumented.result.estimate.rate_mean());
    EXPECT_EQ(plain.result.estimate.rate_sd(), instrumented.result.estimate.rate_sd());
    EXPECT_EQ(plain.result.estimate.lambda.mean, instrumented.result.estimate.lambda.mean);
    EXPECT_EQ(plain.result.estimate.lambda.sd, instrumented.result.estimate.lambda.sd);
    EXPECT_EQ(plain.result.estimate.dk_lambda, instrumented.result.estimate.dk_lambda);
    EXPECT_EQ(plain.result.estimate.dk_count, instrumented.result.estimate.dk_count);

    // Run ids are deterministic, so even the report JSON (which embeds
    // the id) is byte-identical with and without instrumentation.
    EXPECT_EQ(plain.result.run_id, instrumented.result.run_id);
    EXPECT_EQ(plain.report_json, instrumented.report_json);

    // Metrics outside the excluded namespaces: identical values.
    EXPECT_EQ(plain.metrics, instrumented.metrics);
  }
}

TEST_F(JournalInvisibility, FrameworkJournalEventMatchesResult) {
  const std::string path = temp_path("framework_event");
  std::remove(path.c_str());
  support::set_global_threads(1);
  const auto& spec = spec_named("typeset");
  core::FrameworkConfig cfg = small_config();
  cfg.journal_path = path;
  core::ErrorRateFramework fw(pipeline(), cfg);
  const auto r =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 2, 7));

  const auto events = report::load_journal(path);
  ASSERT_EQ(events.size(), 1u);
  const obs::RunEvent& e = events[0];
  EXPECT_EQ(e.run_id, r.run_id);
  EXPECT_EQ(e.program, r.name);
  EXPECT_EQ(e.instructions, r.instructions);
  EXPECT_EQ(e.runs, 2u);
  EXPECT_EQ(e.threads, 1u);
  EXPECT_EQ(e.simulation_seconds, r.simulation_seconds);
  EXPECT_EQ(e.training_seconds, r.training_seconds);
  EXPECT_EQ(e.estimation_seconds, r.estimation_seconds);
  EXPECT_EQ(e.rate_mean, r.estimate.rate_mean());
  EXPECT_EQ(e.lambda_mean, r.estimate.lambda.mean);
  EXPECT_FALSE(e.degraded);
  EXPECT_GT(e.peak_rss_bytes, 0u);
  EXPECT_GT(e.unix_ms, 0u);
  // The per-run counter deltas carry the simulated-instruction count.
  const auto it = e.counters.find("core.instructions_simulated");
  ASSERT_NE(it, e.counters.end());
  EXPECT_EQ(it->second, r.instructions);

  // A second analyze of the same program gets a distinct, deterministic id.
  const auto r2 =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 2, 7));
  EXPECT_NE(r2.run_id, r.run_id);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace terrors
