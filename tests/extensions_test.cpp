// Tests for the extension features: VCD round-trip, exact Poisson-binomial
// ground truth, timing reports, and a cross-validation property test that
// pits the architectural executor against the gate-level datapath.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dta/pipeline_driver.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "netlist/builder.hpp"
#include "netlist/pipeline.hpp"
#include "robust/error.hpp"
#include "sim/logic_sim.hpp"
#include "sim/vcd.hpp"
#include "sim/vcd_parser.hpp"
#include "stat/poisson_binomial.hpp"
#include "stat/stein.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "timing/report.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

// --- VCD round-trip -----------------------------------------------------------

TEST(VcdRoundTrip, WriterOutputParsesBack) {
  netlist::NetlistBuilder b{support::Rng(1)};
  const auto in = b.input("drive");
  const auto q = b.dff("state", netlist::EndpointClass::kControl);
  b.connect(q, in);
  const auto inv = b.gate(netlist::GateKind::kInv, q);
  b.netlist().set_name(inv, "inverted");
  b.netlist().finalize(1);

  sim::LogicSimulator sim(b.netlist());
  std::ostringstream out;
  const double period = 1000.0;
  sim::VcdWriter writer(out, b.netlist(), {in, q, inv}, "1ps", period);
  const bool pattern[] = {true, true, false, true, false, false};
  std::vector<bool> q_values;
  for (bool v : pattern) {
    sim.set_input(in, v);
    sim.step();
    writer.sample(sim);
    q_values.push_back(sim.value(q));
  }

  std::istringstream is(out.str());
  const sim::VcdParser parser(period);
  const sim::VcdDump dump = parser.parse(is);
  ASSERT_EQ(dump.signals().size(), 3u);
  EXPECT_GE(dump.sample_count(), 5u);
  const auto qi = dump.signal_index("state");
  ASSERT_GE(qi, 0);
  // The sampled q trajectory matches the simulation (writer emits at the
  // end of each cycle; the last sample may be merged).
  for (std::size_t t = 0; t + 1 < dump.sample_count() && t < q_values.size(); ++t) {
    EXPECT_EQ(dump.value(t, static_cast<std::size_t>(qi)), q_values[t]) << "sample " << t;
  }
}

TEST(VcdParser, RejectsMalformedStreams) {
  const sim::VcdParser parser(1000.0);
  std::istringstream no_defs("$timescale 1ps $end #0 1!");
  EXPECT_THROW((void)parser.parse(no_defs), terrors::robust::Error);
  std::istringstream unknown_id(
      "$var wire 1 ! a $end $enddefinitions $end #0 1?");
  EXPECT_THROW((void)parser.parse(unknown_id), terrors::robust::Error);
}

TEST(VcdParser, NoDuplicateSampleWhenDumpEndsOnPeriodBoundary) {
  // The last `#t` lands exactly on a sampling edge: close_samples_until
  // already emitted that sample, so EOF must not emit it again.
  std::istringstream is(
      "$var wire 1 ! sig $end $enddefinitions $end\n"
      "#0 1!\n#1000 0!\n#2000\n");
  const sim::VcdDump dump = sim::VcdParser(1000.0).parse(is);
  const auto s = static_cast<std::size_t>(dump.signal_index("sig"));
  ASSERT_EQ(dump.sample_count(), 2u);
  EXPECT_TRUE(dump.value(0, s));
  EXPECT_FALSE(dump.value(1, s));
}

TEST(VcdParser, ValueChangeAfterOnEdgeTimeStillClosesPartialSample) {
  // A change after the on-edge `#t` opens a new partial window, which EOF
  // must still flush.
  std::istringstream is(
      "$var wire 1 ! sig $end $enddefinitions $end\n"
      "#0 1!\n#1000 0!\n#2000 1!\n");
  const sim::VcdDump dump = sim::VcdParser(1000.0).parse(is);
  const auto s = static_cast<std::size_t>(dump.signal_index("sig"));
  ASSERT_EQ(dump.sample_count(), 3u);
  EXPECT_FALSE(dump.value(1, s));
  EXPECT_TRUE(dump.value(2, s));
}

TEST(VcdParser, ChangedTracksSampleDeltas) {
  std::istringstream is(
      "$var wire 1 ! sig $end $enddefinitions $end\n"
      "#0 1!\n#1000 0!\n#2000 0!\n#3000 1!\n");
  const sim::VcdDump dump = sim::VcdParser(1000.0).parse(is);
  const auto s = static_cast<std::size_t>(dump.signal_index("sig"));
  ASSERT_GE(dump.sample_count(), 3u);
  EXPECT_TRUE(dump.value(0, s));
  EXPECT_FALSE(dump.value(1, s));
  EXPECT_TRUE(dump.changed(1, s));
  EXPECT_FALSE(dump.changed(2, s));
}

// --- Poisson-binomial ----------------------------------------------------------

TEST(PoissonBinomial, MatchesBinomialClosedForm) {
  const double p = 0.3;
  const int n = 12;
  const stat::PoissonBinomial pb(std::vector<double>(n, p));
  double binom = 1.0;  // C(n,0) p^0 q^n accumulator
  for (int k = 0; k <= n; ++k) {
    const double expected = binom * std::pow(p, k) * std::pow(1.0 - p, n - k);
    EXPECT_NEAR(pb.pmf(static_cast<std::size_t>(k)), expected, 1e-12) << "k=" << k;
    binom = binom * (n - k) / (k + 1.0);
  }
  EXPECT_NEAR(pb.mean(), n * p, 1e-12);
  EXPECT_NEAR(pb.variance(), n * p * (1.0 - p), 1e-12);
}

TEST(PoissonBinomial, PmfSumsToOne) {
  support::Rng rng(5);
  std::vector<double> ps;
  for (int i = 0; i < 200; ++i) ps.push_back(rng.uniform(0.0, 0.2));
  const stat::PoissonBinomial pb(ps);
  double total = 0.0;
  for (std::size_t k = 0; k <= pb.count(); ++k) total += pb.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_NEAR(pb.cdf(static_cast<std::int64_t>(pb.count())), 1.0, 1e-10);
}

TEST(PoissonBinomial, ChenSteinBoundDominatesExactDistance) {
  // Independent indicators: neighbourhoods are singletons, b2 = 0,
  // b1 = sum p_i^2 — the exact d_K must respect the bound (Thm 5.1).
  support::Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> ps;
    double b1 = 0.0;
    double lambda = 0.0;
    for (int i = 0; i < 400; ++i) {
      const double p = rng.uniform(0.0, 0.05);
      ps.push_back(p);
      b1 += p * p;
      lambda += p;
    }
    const stat::PoissonBinomial pb(ps);
    stat::ChenSteinInputs in;
    in.b1 = b1;
    in.b2 = 0.0;
    in.lambda = lambda;
    EXPECT_LE(pb.dk_to_poisson(), stat::chen_stein_bound(in) + 1e-12);
  }
}

TEST(PoissonBinomial, LeCamRegime) {
  // Many indicators with tiny probabilities: PBD ~ Poisson (law of rare
  // events) — the distance shrinks as probabilities shrink.
  std::vector<double> big(50, 0.2);
  std::vector<double> small(1000, 0.01);
  EXPECT_GT(stat::PoissonBinomial(big).dk_to_poisson(),
            stat::PoissonBinomial(small).dk_to_poisson());
  EXPECT_LT(stat::PoissonBinomial(small).dk_to_poisson(), 0.01);
}

// --- Timing report ---------------------------------------------------------------

TEST(TimingReport, ContainsExpectedSections) {
  const auto& pipe = []() -> const netlist::Pipeline& {
    static const netlist::Pipeline p = netlist::build_pipeline({});
    return p;
  }();
  timing::PathEnumerator paths(pipe.netlist);
  const timing::VariationModel vm(pipe.netlist, {});
  std::ostringstream out;
  timing::ReportConfig cfg;
  cfg.max_paths = 3;
  cfg.show_statistics = true;
  timing::write_timing_report(out, pipe.netlist, timing::TimingSpec{1300.0}, paths, &vm, cfg);
  const std::string s = out.str();
  EXPECT_NE(s.find("Timing report @"), std::string::npos);
  EXPECT_NE(s.find("Path 1:"), std::string::npos);
  EXPECT_NE(s.find("Startpoint:"), std::string::npos);
  EXPECT_NE(s.find("SSTA: slack"), std::string::npos);
  // The worst path of this design violates at 1300 ps.
  EXPECT_NE(s.find("VIOLATED"), std::string::npos);
}

TEST(TimingReport, SlackArithmeticConsistent) {
  const auto& pipe = []() -> const netlist::Pipeline& {
    static const netlist::Pipeline p = netlist::build_pipeline({});
    return p;
  }();
  timing::PathEnumerator paths(pipe.netlist);
  const auto& top = paths.top_paths(pipe.taps.cc_reg[2], 1);
  ASSERT_FALSE(top.empty());
  const timing::TimingSpec spec{2000.0};
  EXPECT_NEAR(top[0].slack(spec), spec.period_ps - spec.setup_ps - top[0].delay_ps, 1e-9);
}

// --- Cross-validation: executor vs gate-level datapath -----------------------------

class ExecutorVsGateLevel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorVsGateLevel, AluResultsAgree) {
  // Run a generated workload architecturally, then replay sampled block
  // contexts on the gate-level pipeline and compare the EX-stage results.
  static const netlist::Pipeline pipe = netlist::build_pipeline({});
  const auto& spec = workloads::mibench_specs()[GetParam() % 12];
  const isa::Program program = workloads::generate_program(spec);
  const isa::Cfg cfg(program);
  isa::ExecutorConfig ecfg;
  ecfg.max_instructions = 3000;
  isa::Executor ex(program, cfg, ecfg);
  ex.run(workloads::generate_inputs(spec, 1, GetParam())[0]);

  dta::PipelineDriver driver(pipe);
  sim::LogicSimulator sim(pipe.netlist);

  std::size_t checked = 0;
  for (const auto& bp : ex.profile().blocks) {
    for (const auto& es : bp.edge_samples) {
      if (es.samples.empty()) continue;
      const auto& sample = es.samples.front();
      // Build a slot stream from the sampled contexts and drive it.
      std::vector<dta::FetchSlot> slots;
      for (int i = 0; i < 6; ++i) slots.push_back(dta::FetchSlot::nop(4u * i));
      isa::BlockId b = 0;
      // Locate the block this sample belongs to (linear scan is fine).
      for (isa::BlockId cand = 0; cand < program.block_count(); ++cand) {
        if (&ex.profile().blocks[cand] == &bp) b = cand;
      }
      const auto& instrs = program.block(b).instructions;
      for (std::size_t k = 0; k < sample.instrs.size() && k < instrs.size(); ++k)
        slots.push_back(dta::FetchSlot::from_context(instrs[k], sample.instrs[k]));
      auto cycles = driver.run(slots);
      (void)cycles;
      // Re-drive manually to read EX results per instruction.
      sim.reset();
      // The driver already validated structural drive; here we check the
      // recorded architectural result against a recomputation from the
      // context (consistency of the sampled data itself).
      for (std::size_t k = 0; k < sample.instrs.size() && k < instrs.size(); ++k) {
        const auto& ctx = sample.instrs[k];
        const auto op = instrs[k].op;
        std::uint32_t expect = ctx.result;
        std::uint32_t got = expect;
        switch (op) {
          case isa::Opcode::kAdd:
          case isa::Opcode::kAddi:
            got = ctx.cur.a + ctx.cur.b;
            break;
          case isa::Opcode::kSub:
          case isa::Opcode::kSubi:
            got = ctx.cur.a - ctx.cur.b;
            break;
          case isa::Opcode::kAnd:
          case isa::Opcode::kAndi:
            got = ctx.cur.a & ctx.cur.b;
            break;
          case isa::Opcode::kOr:
          case isa::Opcode::kOri:
            got = ctx.cur.a | ctx.cur.b;
            break;
          case isa::Opcode::kXor:
          case isa::Opcode::kXori:
            got = ctx.cur.a ^ ctx.cur.b;
            break;
          case isa::Opcode::kSll:
          case isa::Opcode::kSlli:
            got = ctx.cur.a << (ctx.cur.b & 31u);
            break;
          case isa::Opcode::kSrl:
          case isa::Opcode::kSrli:
            got = ctx.cur.a >> (ctx.cur.b & 31u);
            break;
          default:
            continue;  // loads/stores/branches resolved elsewhere
        }
        EXPECT_EQ(got, expect) << spec.name << " block " << b << " instr " << k;
        ++checked;
      }
      if (checked > 300) return;  // enough coverage per seed
    }
  }
  EXPECT_GT(checked, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorVsGateLevel, ::testing::Values(1u, 2u, 3u));

TEST(GateLevelCrossCheck, PipelineComputesSampledAdd) {
  // Take one sampled add context from a workload and verify the gate-level
  // pipeline reproduces the architectural result bit-exactly.
  static const netlist::Pipeline pipe = netlist::build_pipeline({});
  const auto& spec = workloads::mibench_specs()[0];
  const isa::Program program = workloads::generate_program(spec);
  const isa::Cfg cfg(program);
  isa::ExecutorConfig ecfg;
  ecfg.max_instructions = 2000;
  isa::Executor ex(program, cfg, ecfg);
  ex.run(workloads::generate_inputs(spec, 1, 4)[0]);

  // Find an add with a recorded context.
  for (isa::BlockId b = 0; b < program.block_count(); ++b) {
    for (const auto& es : ex.profile().blocks[b].edge_samples) {
      for (const auto& sample : es.samples) {
        for (std::size_t k = 0; k < sample.instrs.size(); ++k) {
          const auto& ctx = sample.instrs[k];
          if (ctx.cur.op != isa::Opcode::kAdd) continue;
          dta::PipelineDriver driver(pipe);
          std::vector<dta::FetchSlot> slots;
          for (int i = 0; i < 6; ++i) slots.push_back(dta::FetchSlot::nop(4u * i));
          slots.push_back(
              dta::FetchSlot::from_context(program.block(b).instructions[k], ctx));
          driver.run(slots);  // smoke: structural drive works
          sim::LogicSimulator s(pipe.netlist);
          s.set_input_word(pipe.ports.op_a, ctx.cur.a);
          s.set_input_word(pipe.ports.op_b, ctx.cur.b);
          s.step();
          s.step();  // DE: captured into rf regs
          s.set_input_word(pipe.ports.alu_sel, 0);
          s.set_input(pipe.ports.sel_imm, false);
          s.set_input(pipe.ports.sub_mode, false);
          s.step();  // RA
          s.step();  // EX: adder output latched next edge
          s.step();
          EXPECT_EQ(s.value_word(pipe.taps.ex_result_reg),
                    (static_cast<std::uint64_t>(ctx.cur.a) + ctx.cur.b) & 0xFFFFFFFFull);
          return;
        }
      }
    }
  }
  GTEST_SKIP() << "no add context sampled";
}

}  // namespace
}  // namespace terrors
