#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "netlist/builder.hpp"
#include "netlist/pipeline.hpp"
#include "sim/logic_sim.hpp"
#include "timing/paths.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace terrors::timing {
namespace {

using netlist::EndpointClass;
using netlist::GateId;
using netlist::GateKind;
using netlist::NetlistBuilder;
using netlist::Word;

// A two-path circuit with a known critical path:
//   in -> inv -> inv -> inv -> q   (long path)
//   in ----------> buf ----> q     (short path, through an or)
struct TwoPathFixture {
  NetlistBuilder b{support::Rng(1)};
  GateId in, i1, i2, i3, bf, orr, q;
  TwoPathFixture() {
    in = b.input("in");
    i1 = b.gate(GateKind::kInv, in);
    i2 = b.gate(GateKind::kInv, i1);
    i3 = b.gate(GateKind::kInv, i2);
    bf = b.gate(GateKind::kBuf, in);
    orr = b.gate(GateKind::kOr2, i3, bf);
    q = b.dff("q", EndpointClass::kData);
    b.connect(q, orr);
    b.netlist().finalize(1);
  }
  [[nodiscard]] double delay(GateId g) const { return b.netlist().gate(g).delay_ps; }
};

TEST(Sta, ArrivalOfKnownCircuit) {
  TwoPathFixture f;
  const Sta sta(f.b.netlist());
  const double long_path = f.delay(f.i1) + f.delay(f.i2) + f.delay(f.i3) + f.delay(f.orr);
  EXPECT_NEAR(sta.endpoint_arrival(f.q), long_path, 1e-9);
  const TimingSpec spec{100.0, 10.0};
  EXPECT_NEAR(sta.endpoint_slack(f.q, spec), 100.0 - 10.0 - long_path, 1e-9);
}

TEST(Sta, MaxFrequencyConsistentWithWorstSlack) {
  const auto p = netlist::build_pipeline({});
  const Sta sta(p.netlist);
  const double fmax = sta.max_frequency_mhz();
  const TimingSpec at_fmax = TimingSpec::from_frequency_mhz(fmax);
  EXPECT_NEAR(sta.worst_slack(at_fmax), 0.0, 1e-6);
  // Slightly faster clock must violate.
  EXPECT_LT(sta.worst_slack(TimingSpec::from_frequency_mhz(fmax * 1.01)), 0.0);
}

TEST(Sta, ChipSampleChangesArrivals) {
  TwoPathFixture f;
  ChipSample chip(f.b.netlist().size());
  for (GateId g = 0; g < f.b.netlist().size(); ++g)
    chip[g] = f.b.netlist().gate(g).delay_ps * 2.0f;
  const Sta nominal(f.b.netlist());
  const Sta slow(f.b.netlist(), &chip);
  EXPECT_NEAR(slow.endpoint_arrival(f.q), 2.0 * nominal.endpoint_arrival(f.q), 1e-6);
}

TEST(ActivatedSta, OnlyActivatedPathsCount) {
  TwoPathFixture f;
  const auto& nl = f.b.netlist();
  std::vector<std::uint8_t> act(nl.size(), 0);
  // Only the short path toggles.
  act[f.in] = 1;
  act[f.bf] = 1;
  act[f.orr] = 1;
  const auto arr = activated_endpoint_arrival(nl, act, f.q);
  ASSERT_TRUE(arr.has_value());
  EXPECT_NEAR(*arr, f.delay(f.bf) + f.delay(f.orr), 1e-9);
  // Nothing toggles: no activated path.
  std::fill(act.begin(), act.end(), 0);
  EXPECT_FALSE(activated_endpoint_arrival(nl, act, f.q).has_value());
}

TEST(ActivatedSta, AgreesWithSimulatorToggles) {
  // Drive the 16-bit adder and check the activated arrival at the sum MSB
  // register never exceeds static arrival.
  NetlistBuilder b(support::Rng(3));
  auto x = b.input_word("x", 16);
  auto y = b.input_word("y", 16);
  auto add = b.ripple_adder(x, y);
  auto r = b.dff_word("r", 17, EndpointClass::kData);
  Word sum_and_carry = add.sum;
  sum_and_carry.push_back(add.carry_out);
  b.connect_word(r, sum_and_carry);
  b.netlist().finalize(1);

  sim::LogicSimulator sim(b.netlist());
  const Sta sta(b.netlist());
  support::Rng rng(4);
  sim.step();
  for (int t = 0; t < 30; ++t) {
    sim.set_input_word(x, rng.next_u64() & 0xFFFF);
    sim.set_input_word(y, rng.next_u64() & 0xFFFF);
    sim.step();
    for (GateId e : b.netlist().stage_endpoints(0)) {
      const auto arr = activated_endpoint_arrival(b.netlist(), sim.activation_flags(), e);
      if (arr.has_value()) EXPECT_LE(*arr, sta.endpoint_arrival(e) + 1e-9);
    }
  }
}

TEST(Paths, TopPathMatchesSta) {
  const auto p = netlist::build_pipeline({});
  const Sta sta(p.netlist);
  PathEnumerator pe(p.netlist);
  // Check a handful of endpoints across stages.
  for (std::uint8_t s = 0; s < netlist::Pipeline::kStages; ++s) {
    const auto& eps = p.netlist.stage_endpoints(s);
    for (std::size_t i = 0; i < eps.size(); i += std::max<std::size_t>(1, eps.size() / 3)) {
      const auto& paths = pe.top_paths(eps[i], 1);
      if (paths.empty()) continue;  // endpoint fed only by constants
      // float accumulation in the enumerator vs double in STA.
      EXPECT_NEAR(paths[0].delay_ps, sta.endpoint_arrival(eps[i]),
                  1e-3 + 1e-6 * sta.endpoint_arrival(eps[i]))
          << "stage " << int(s) << " endpoint " << i;
    }
  }
}

TEST(Paths, EnumeratedInNonIncreasingDelay) {
  const auto p = netlist::build_pipeline({});
  PathEnumerator pe(p.netlist);
  const GateId e = p.taps.ex_result_reg[16];
  const auto& paths = pe.top_paths(e, 64);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_LE(paths[i].delay_ps, paths[i - 1].delay_ps + 1e-9);
}

TEST(Paths, PathsAreStructurallyValid) {
  const auto p = netlist::build_pipeline({});
  PathEnumerator pe(p.netlist);
  const GateId e = p.taps.cc_reg[2];  // carry flag: long adder paths
  for (const auto& path : pe.top_paths(e, 16)) {
    ASSERT_FALSE(path.gates.empty());
    // First gate is a launch endpoint (Def. 3.1), the rest combinational.
    const auto first_kind = p.netlist.gate(path.gates.front()).kind;
    EXPECT_TRUE(first_kind == GateKind::kDff || first_kind == GateKind::kInput);
    for (std::size_t i = 1; i < path.gates.size(); ++i) {
      const auto& g = p.netlist.gate(path.gates[i]);
      EXPECT_TRUE(netlist::info(g.kind).combinational);
      // Consecutive gates are connected.
      bool connected = false;
      for (int s = 0; s < g.arity(); ++s)
        connected |= g.fanin[static_cast<std::size_t>(s)] == path.gates[i - 1];
      EXPECT_TRUE(connected);
    }
    // Last gate drives the endpoint's data input.
    EXPECT_EQ(path.gates.back(), p.netlist.gate(e).fanin[0]);
  }
}

TEST(Paths, SmallChainEnumeratesExactly) {
  TwoPathFixture f;
  PathEnumerator pe(f.b.netlist());
  const auto& paths = pe.top_paths(f.q, 10);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(pe.exhausted(f.q));
  const double long_path = f.delay(f.i1) + f.delay(f.i2) + f.delay(f.i3) + f.delay(f.orr);
  const double short_path = f.delay(f.bf) + f.delay(f.orr);
  EXPECT_NEAR(paths[0].delay_ps, long_path, 1e-9);
  EXPECT_NEAR(paths[1].delay_ps, short_path, 1e-9);
}

// --- Variation model ---------------------------------------------------------

TEST(Variation, CovarianceStructure) {
  const auto p = netlist::build_pipeline({});
  VariationConfig cfg;
  const VariationModel vm(p.netlist, cfg);
  // Variance identity: cov(g, g) == sigma(g)^2 (within rounding).
  for (GateId g : {GateId(10), GateId(100), GateId(500)}) {
    if (p.netlist.gate(g).delay_ps == 0.0f) continue;
    // float anchor weights: allow relative rounding error.
    EXPECT_NEAR(vm.covariance(g, g), vm.sigma(g) * vm.sigma(g),
                1e-6 * vm.sigma(g) * vm.sigma(g));
  }
}

TEST(Variation, NearbyGatesMoreCorrelatedThanFarApart) {
  const auto p = netlist::build_pipeline({});
  const VariationModel vm(p.netlist, {});
  // Find three combinational gates: two close together, one far away.
  GateId a = netlist::kNoGate;
  GateId near_a = netlist::kNoGate;
  GateId far_a = netlist::kNoGate;
  for (GateId g = 0; g < p.netlist.size(); ++g) {
    if (p.netlist.gate(g).delay_ps == 0.0f) continue;
    if (a == netlist::kNoGate) {
      a = g;
      continue;
    }
    const float dx = std::fabs(p.netlist.gate(g).x - p.netlist.gate(a).x);
    if (dx < 0.1f && near_a == netlist::kNoGate) near_a = g;
    if (dx > 3.0f && far_a == netlist::kNoGate) far_a = g;
  }
  ASSERT_NE(near_a, netlist::kNoGate);
  ASSERT_NE(far_a, netlist::kNoGate);
  auto corr = [&](GateId u, GateId v) {
    return vm.covariance(u, v) / (vm.sigma(u) * vm.sigma(v));
  };
  EXPECT_GT(corr(a, near_a), corr(a, far_a));
}

TEST(Variation, SampleChipMatchesAnalyticMoments) {
  const auto p = netlist::build_pipeline({});
  const VariationModel vm(p.netlist, {});
  const GateId g = p.netlist.topo_order()[100];
  support::Rng rng(9);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const ChipSample chip = vm.sample_chip(rng);
    sum += chip[g];
    sum2 += static_cast<double>(chip[g]) * chip[g];
  }
  const double mean = sum / n;
  const double sd = std::sqrt(std::max(0.0, sum2 / n - mean * mean));
  EXPECT_NEAR(mean, vm.mean(g), 0.05 * vm.mean(g) + 0.2);
  EXPECT_NEAR(sd, vm.sigma(g), 0.1 * vm.sigma(g) + 0.05);
}

TEST(Variation, SpatialDisabledFoldsIntoIndependent) {
  const auto p = netlist::build_pipeline({});
  VariationConfig cfg;
  cfg.spatial_enabled = false;
  const VariationModel vm(p.netlist, cfg);
  const GateId g = p.netlist.topo_order()[10];
  EXPECT_NEAR(vm.covariance(g, g), vm.sigma(g) * vm.sigma(g), 1e-9);
}

// --- Path statistics -----------------------------------------------------------

TEST(PathStat, VarianceMatchesMonteCarlo) {
  const auto p = netlist::build_pipeline({});
  const VariationModel vm(p.netlist, {});
  PathEnumerator pe(p.netlist);
  const GateId e = p.taps.cc_reg[2];
  const auto& paths = pe.top_paths(e, 4);
  ASSERT_FALSE(paths.empty());
  const PathStat st = path_stat(paths[0], vm);
  EXPECT_NEAR(st.mean, paths[0].delay_ps, 1e-3 + 1e-6 * st.mean);

  support::Rng rng(11);
  support::Rng chip_rng = rng.split(0);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const ChipSample chip = vm.sample_chip(chip_rng);
    double d = 0.0;
    for (GateId g : paths[0].gates) d += chip[g];
    sum += d;
    sum2 += d * d;
  }
  const double mc_mean = sum / n;
  const double mc_var = sum2 / n - mc_mean * mc_mean;
  EXPECT_NEAR(st.mean, mc_mean, 0.02 * st.mean);
  EXPECT_NEAR(st.variance(), mc_var, 0.2 * mc_var);
}

TEST(PathStat, CovarianceSymmetricAndBounded) {
  const auto p = netlist::build_pipeline({});
  const VariationModel vm(p.netlist, {});
  PathEnumerator pe(p.netlist);
  const auto& paths = pe.top_paths(p.taps.ex_result_reg[31], 8);
  ASSERT_GE(paths.size(), 2u);
  const PathStat a = path_stat(paths[0], vm);
  const PathStat b = path_stat(paths[1], vm);
  const double cab = path_cov(a, b, vm);
  const double cba = path_cov(b, a, vm);
  EXPECT_NEAR(cab, cba, 1e-9);
  EXPECT_LE(cab, std::sqrt(a.variance() * b.variance()) + 1e-9);
  EXPECT_GT(cab, 0.0);  // shared carry-chain gates + global component
}

TEST(PathStat, SharedGatesIncreaseCovariance) {
  const auto p = netlist::build_pipeline({});
  const VariationModel vm(p.netlist, {});
  PathEnumerator pe(p.netlist);
  const auto& paths = pe.top_paths(p.taps.cc_reg[2], 3);
  ASSERT_GE(paths.size(), 2u);
  const PathStat a = path_stat(paths[0], vm);
  const PathStat b = path_stat(paths[1], vm);
  // Top-2 adder carry paths share nearly all gates: correlation close to 1.
  const double rho = path_cov(a, b, vm) / std::sqrt(a.variance() * b.variance());
  EXPECT_GT(rho, 0.8);
}

// --- Property test: path enumeration vs brute force on random DAGs ---------------

/// Enumerate ALL paths to an endpoint by exhaustive DFS (ground truth).
void brute_force_paths(const netlist::Netlist& nl, GateId gate, double suffix,
                       std::vector<double>& out) {
  const auto& g = nl.gate(gate);
  if (!netlist::info(g.kind).combinational) {
    if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) return;
    const double launch = g.kind == GateKind::kDff ? g.delay_ps : 0.0;
    out.push_back(suffix + launch);
    return;
  }
  for (int sidx = 0; sidx < g.arity(); ++sidx)
    brute_force_paths(nl, g.fanin[static_cast<std::size_t>(sidx)], suffix + g.delay_ps, out);
}

class PathEnumerationVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathEnumerationVsBruteForce, AllPathsInDecreasingOrder) {
  // Random layered DAG ending in a few flip-flops.
  support::Rng rng(GetParam());
  NetlistBuilder b{support::Rng(GetParam() * 31 + 1)};
  b.set_delay_jitter(0.2);
  auto inputs = b.input_word("in", 4);
  Word cloud = b.random_cloud(inputs, 6, 4);
  Word regs = b.dff_word("q", 4, EndpointClass::kData);
  for (std::size_t i = 0; i < regs.size(); ++i) b.connect(regs[i], cloud[i % cloud.size()]);
  b.netlist().finalize(1);
  const auto& nl = b.netlist();

  PathEnumerator pe(nl, timing::PathConfig{10000, 2000000});
  for (GateId e : nl.stage_endpoints(0)) {
    std::vector<double> truth;
    brute_force_paths(nl, nl.gate(e).fanin[0], 0.0, truth);
    std::sort(truth.rbegin(), truth.rend());
    const auto& found = pe.top_paths(e, truth.size() + 5);
    ASSERT_EQ(found.size(), truth.size()) << "endpoint " << e;
    EXPECT_TRUE(pe.exhausted(e));
    for (std::size_t i = 0; i < truth.size(); ++i)
      EXPECT_NEAR(found[i].delay_ps, truth[i], 1e-3 + 1e-5 * truth[i]) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathEnumerationVsBruteForce,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(PathEnumeration, GuardTripsOnExponentialAdder) {
  // A 24-bit ripple adder has ~2^24 paths to the carry-out: the guard must
  // trip rather than hang, and exhausted() must report false.
  NetlistBuilder b{support::Rng(9)};
  auto x = b.input_word("x", 24);
  auto y = b.input_word("y", 24);
  auto add = b.ripple_adder(x, y);
  auto q = b.dff("q", EndpointClass::kData);
  b.connect(q, add.carry_out);
  b.netlist().finalize(1);
  timing::PathConfig cfg;
  cfg.max_paths = 64;
  cfg.max_expansions = 20000;
  PathEnumerator pe(b.netlist(), cfg);
  const auto& paths = pe.top_paths(q, 1000);
  EXPECT_LE(paths.size(), 64u);
  EXPECT_FALSE(pe.exhausted(q));
  // Still sorted and the top path equals the STA arrival.
  const Sta sta(b.netlist());
  EXPECT_NEAR(paths[0].delay_ps, sta.endpoint_arrival(q), 1e-3 + 1e-5 * paths[0].delay_ps);
}

}  // namespace
}  // namespace terrors::timing
