// End-to-end integration tests: the full Figure 2 flow on real (scaled)
// workloads, checking cross-module invariants rather than exact values.
#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "perf/ts_model.hpp"
#include "timing/sta.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

core::FrameworkConfig small_config() {
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  cfg.executor.max_instructions = 8000;
  cfg.error_model.mixed_samples = 32;
  return cfg;
}

class WorkloadEndToEnd : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadEndToEnd, ProducesValidEstimate) {
  const auto& spec = workloads::mibench_specs()[GetParam()];
  core::ErrorRateFramework fw(pipeline(), small_config());
  const isa::Program program = workloads::generate_program(spec);
  const auto r = fw.analyze(program, workloads::generate_inputs(spec, 2, 7));

  EXPECT_EQ(r.name, spec.name);
  EXPECT_EQ(r.basic_blocks, static_cast<std::size_t>(spec.basic_blocks));
  EXPECT_GT(r.instructions, 0u);

  const auto& est = r.estimate;
  EXPECT_GE(est.rate_mean(), 0.0);
  EXPECT_LE(est.rate_mean(), 0.2);  // sane magnitude at the working point
  EXPECT_GE(est.lambda.sd, 0.0);
  EXPECT_GE(est.dk_lambda, 0.0);
  EXPECT_LE(est.dk_lambda, 1.0);
  EXPECT_GE(est.dk_count, 0.0);
  EXPECT_LE(est.dk_count, 1.0);

  // CDF sanity at the mean: strictly between the bounds and roughly
  // centred.
  const double c = est.rate_cdf(est.rate_mean());
  EXPECT_GT(c, 0.05);
  EXPECT_LT(c, 0.95);

  // Every conditional probability is a probability, and p^e >= 0
  // distributions exist for executed blocks.
  for (const auto& bd : fw.last().conditionals) {
    if (!bd.executed) continue;
    for (const auto& instr : bd.instr) {
      for (std::size_t w = 0; w < instr.p_correct.size(); ++w) {
        EXPECT_GE(instr.p_correct[w], 0.0);
        EXPECT_LE(instr.p_correct[w], 1.0);
        EXPECT_GE(instr.p_error[w], 0.0);
        EXPECT_LE(instr.p_error[w], 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FourWorkloads, WorkloadEndToEnd,
                         ::testing::Values(std::size_t{3}, std::size_t{0}, std::size_t{5},
                                           std::size_t{11}));

TEST(Integration, ErrorRateOrderingLightVsHeavy) {
  // patricia (pointer-chasing, narrow operands) must come out well below
  // gsm.decode (saturated telecom arithmetic) — the paper's headline
  // qualitative result.
  core::ErrorRateFramework fw(pipeline(), small_config());
  const auto& light_spec = workloads::mibench_specs()[3];
  const auto& heavy_spec = workloads::mibench_specs()[11];
  const auto light = fw.analyze(workloads::generate_program(light_spec),
                                workloads::generate_inputs(light_spec, 2, 7));
  const auto heavy = fw.analyze(workloads::generate_program(heavy_spec),
                                workloads::generate_inputs(heavy_spec, 2, 7));
  EXPECT_LT(light.estimate.rate_mean(), heavy.estimate.rate_mean());
}

TEST(Integration, SlowClockKillsErrors) {
  // At twice the critical-path delay nothing can fail.
  auto cfg = small_config();
  cfg.spec = timing::TimingSpec{4000.0};
  core::ErrorRateFramework fw(pipeline(), cfg);
  const auto& spec = workloads::mibench_specs()[11];
  const auto r =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 1, 7));
  EXPECT_LT(r.estimate.rate_mean(), 1e-6);
}

TEST(Integration, PerformanceModelAppliesToEstimates) {
  core::ErrorRateFramework fw(pipeline(), small_config());
  const perf::TsProcessorModel ts;
  const auto& spec = workloads::mibench_specs()[3];
  const auto r =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 1, 7));
  const double imp = ts.performance_improvement(std::min(1.0, r.estimate.rate_mean()));
  // Low-error benchmark at the working point: speculation must pay off.
  EXPECT_GT(imp, 0.0);
  EXPECT_LT(imp, ts.frequency_ratio - 1.0 + 1e-12);
}

TEST(Integration, TrainingTimeScalesWithBlocks) {
  // ghostscript (192 blocks) needs more characterisation work than
  // pgp.encode (49 blocks): check the per-edge characterisation produced
  // entries for every reachable block.
  core::ErrorRateFramework fw(pipeline(), small_config());
  const auto& spec = workloads::mibench_specs()[8];  // ghostscript
  const auto r =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 1, 7));
  (void)r;
  std::size_t characterized = 0;
  for (const auto& bc : fw.last().control) {
    for (const auto& edge : bc.per_edge) {
      for (const auto& d : edge.instr) characterized += d.has_value() ? 1 : 0;
    }
  }
  EXPECT_GT(characterized, 100u);
}

}  // namespace
}  // namespace terrors
