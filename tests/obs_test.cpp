// Tests for the observability layer: tracer span nesting and timing,
// metrics registry semantics (histograms vs MomentAccumulator), JSON
// exporter well-formedness, log-level filtering, metric thread safety,
// run-scoped metric views (RunContext / MetricsScope), the tracer span
// cap, and the span-sampling profiler's folded-stack machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "support/accumulator.hpp"

using namespace terrors;

namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to prove the
// exporters emit structurally valid documents without a JSON dependency.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void spin_briefly() {
  // Burn a few microseconds so span durations are strictly measurable.
  volatile double x = 1.0;
  for (int i = 0; i < 2000; ++i) x = x * 1.0000001 + 1e-9;
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().reset();
  }
};

TEST_F(TracerTest, SpanNestingAndTimingMonotonicity) {
  {
    obs::ScopedSpan outer("outer");
    spin_briefly();
    {
      obs::ScopedSpan inner("inner");
      inner.counter("work", 3.0);
      spin_briefly();
    }
    {
      obs::ScopedSpan inner2("inner2");
      spin_briefly();
    }
  }
  const auto& nodes = obs::Tracer::instance().nodes();
  ASSERT_EQ(nodes.size(), 3u);

  const auto& outer = nodes[0];
  const auto& inner = nodes[1];
  const auto& inner2 = nodes[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, obs::Tracer::kNoParent);
  EXPECT_EQ(inner.parent, 0u);
  EXPECT_EQ(inner2.parent, 0u);

  // Every span closed, with end >= start.
  for (const auto& n : nodes) {
    EXPECT_NE(n.end_ns, 0u) << n.name;
    EXPECT_GE(n.end_ns, n.start_ns) << n.name;
  }
  // Children are contained in the parent interval and ordered in time.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_GE(inner2.start_ns, inner.end_ns);
  EXPECT_LE(inner2.end_ns, outer.end_ns);

  // Counters attach to the right span and accumulate.
  ASSERT_EQ(inner.counters.size(), 1u);
  EXPECT_EQ(inner.counters[0].first, "work");
  EXPECT_DOUBLE_EQ(inner.counters[0].second, 3.0);
}

TEST_F(TracerTest, RepeatedCounterKeysAccumulate) {
  {
    obs::ScopedSpan span("loop");
    for (int i = 0; i < 5; ++i) span.counter("iterations", 1.0);
  }
  const auto& nodes = obs::Tracer::instance().nodes();
  ASSERT_EQ(nodes.size(), 1u);
  ASSERT_EQ(nodes[0].counters.size(), 1u);
  EXPECT_DOUBLE_EQ(nodes[0].counters[0].second, 5.0);
}

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer::instance().set_enabled(false);
  {
    obs::ScopedSpan span("ghost");
    span.counter("x", 1.0);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(obs::Tracer::instance().nodes().empty());
}

TEST_F(TracerTest, ChromeTraceJsonIsWellFormed) {
  {
    obs::ScopedSpan outer("phase \"quoted\" name");
    outer.counter("count", 42.0);
    obs::ScopedSpan inner("child\\with\\backslashes");
  }
  std::ostringstream os;
  obs::Tracer::instance().write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TracerTest, TextTreeShowsHierarchy) {
  {
    obs::ScopedSpan outer("outer");
    obs::ScopedSpan inner("inner");
  }
  std::ostringstream os;
  obs::Tracer::instance().write_text_tree(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("outer"), std::string::npos);
  // The child is indented under the parent.
  EXPECT_NE(text.find("\n  inner"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAndResets) {
  auto& c = obs::MetricsRegistry::instance().counter("test.counter_basic");
  c.reset();
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same counter.
  EXPECT_EQ(&obs::MetricsRegistry::instance().counter("test.counter_basic"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, HistogramMatchesMomentAccumulator) {
  auto& h = obs::MetricsRegistry::instance().histogram("test.hist_moments");
  h.reset();
  support::MomentAccumulator ref;
  const double values[] = {1.0, 2.5, -3.0, 7.25, 0.125, 2.5, 100.0, -42.0};
  for (const double v : values) {
    h.observe(v);
    ref.add(v);
  }
  const auto& s = h.stats();
  EXPECT_EQ(s.count(), ref.count());
  EXPECT_DOUBLE_EQ(s.mean(), ref.mean());
  EXPECT_DOUBLE_EQ(s.stddev(), ref.stddev());
  EXPECT_DOUBLE_EQ(s.central_moment3(), ref.central_moment3());
  EXPECT_DOUBLE_EQ(s.central_moment4(), ref.central_moment4());
  EXPECT_DOUBLE_EQ(s.min(), ref.min());
  EXPECT_DOUBLE_EQ(s.max(), ref.max());
}

TEST(MetricsTest, JsonExportIsWellFormedAndComplete) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.json_counter").increment(7);
  reg.gauge("test.json_gauge").set(-1.5);
  auto& h = reg.histogram("test.json_hist");
  h.reset();
  h.observe(1.0);
  h.observe(3.0);

  std::ostringstream os;
  reg.write_json(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"test.json_counter\":7"), std::string::npos) << text;
  EXPECT_NE(text.find("\"test.json_gauge\":-1.5"), std::string::npos) << text;
  EXPECT_NE(text.find("\"test.json_hist\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"mean\":2"), std::string::npos) << text;
}

TEST(MetricsTest, EmptyHistogramExportsZeros) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.histogram("test.json_hist_empty").reset();
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  // min/max of an empty MomentAccumulator are +/-inf; the exporter must
  // not leak non-JSON tokens like "inf".
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(MetricsTest, HistogramQuantilesExactBelowReservoirDepth) {
  obs::Histogram h;
  // 1..50 in scrambled order: fits entirely in the reservoir, so
  // quantiles are exact nearest-rank values.
  for (int i = 0; i < 50; ++i) h.observe(static_cast<double>((i * 37) % 50 + 1));
  ASSERT_LE(static_cast<std::size_t>(50), obs::Histogram::kReservoirDepth);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 26.0);  // nearest rank: idx floor(.5*50)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(h.stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 50.0);
}

TEST(MetricsTest, HistogramReservoirIsDeterministicPastDepth) {
  // Two identical streams far beyond the reservoir depth must agree
  // exactly: the systematic (stride-doubling) sampler uses no RNG.
  obs::Histogram a;
  obs::Histogram b;
  for (int i = 0; i < 10'000; ++i) {
    const double v = static_cast<double>((i * 7919) % 10'000);
    a.observe(v);
    b.observe(v);
  }
  EXPECT_LE(a.reservoir().size(), obs::Histogram::kReservoirDepth);
  EXPECT_EQ(a.reservoir(), b.reservoir());
  for (const double p : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.quantile(p), b.quantile(p));
    EXPECT_GE(a.quantile(p), 0.0);
    EXPECT_LT(a.quantile(p), 10'000.0);
  }
  // Quantiles are monotone in p.
  EXPECT_LE(a.quantile(0.5), a.quantile(0.95));
  EXPECT_LE(a.quantile(0.95), a.quantile(0.99));
  // Reset discards the reservoir along with the moments.
  a.reset();
  EXPECT_TRUE(a.reservoir().empty());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
}

TEST(MetricsTest, JsonExportIncludesQuantiles) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& h = reg.histogram("test.json_hist_quant");
  h.reset();
  for (int i = 1; i <= 10; ++i) h.observe(static_cast<double>(i));
  std::ostringstream os;
  reg.write_json(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"p50\":6"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p95\":10"), std::string::npos) << text;
  EXPECT_NE(text.find("\"p99\":10"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------

TEST(PrometheusTest, EscapeLabelHandlesBackslashQuoteNewline) {
  EXPECT_EQ(obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prometheus_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(obs::prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusTest, SanitizeNamePrefixesAndMapsInvalidChars) {
  EXPECT_EQ(obs::prometheus_sanitize_name("core.analyze_calls"),
            "terrors_core_analyze_calls");
  EXPECT_EQ(obs::prometheus_sanitize_name("a-b c"), "terrors_a_b_c");
}

TEST(PrometheusTest, ExpositionHasTypesValuesAndQuantileLabels) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.prom_counter").reset();
  reg.counter("test.prom_counter").increment(3);
  reg.gauge("test.prom_gauge").set(2.5);
  auto& h = reg.histogram("test.prom_hist");
  h.reset();
  for (int i = 1; i <= 4; ++i) h.observe(static_cast<double>(i));
  reg.set_help("test.prom_counter", "Registered help text.\nWith a newline \\ backslash.");

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  // Every family gets a HELP line before its TYPE line: registered text
  // (escaped per the exposition format) or the raw dotted name as a
  // fallback, so scrapes always see the internal metric identity.
  EXPECT_NE(text.find("# HELP terrors_test_prom_counter "
                      "Registered help text.\\nWith a newline \\\\ backslash."),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP terrors_test_prom_gauge test.prom_gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP terrors_test_prom_hist test.prom_hist"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE terrors_test_prom_counter counter"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE terrors_test_prom_gauge gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_gauge 2.5"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE terrors_test_prom_hist summary"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_hist{quantile=\"0.5\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_hist{quantile=\"0.95\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_hist{quantile=\"0.99\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_hist_count 4"), std::string::npos) << text;
  EXPECT_NE(text.find("terrors_test_prom_hist_sum 10"), std::string::npos) << text;
  // Every non-comment line is "name[{labels}] value" with a finite or
  // Prometheus-style (NaN/+Inf/-Inf) value token.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(line.rfind("terrors_", 0), 0u) << line;
  }
}

// ---------------------------------------------------------------------------

TEST(JsonHelpersTest, EscapesControlCharactersAndQuotes) {
  std::ostringstream os;
  obs::json_string(os, "a\"b\\c\nd\x01" "e");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\u0001e\"");
}

TEST(JsonHelpersTest, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  obs::json_number(os, std::nan(""));
  os << " ";
  obs::json_number(os, std::numeric_limits<double>::infinity());
  EXPECT_EQ(os.str(), "null null");
}

// All three metric kinds must tolerate concurrent mutation: pool workers
// increment counters and observe histograms from inside parallel_for
// regions.  Run under TSan (CI thread-sanitizer job) this is the data-race
// proof; under plain builds it still checks the arithmetic.
TEST(MetricsTest, ConcurrentMutationIsSafeAndExact) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& c = reg.counter("test.concurrent_counter");
  auto& g = reg.gauge("test.concurrent_gauge");
  auto& h = reg.histogram("test.concurrent_hist");
  c.reset();
  g.reset();
  h.reset();

  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.increment();
        g.add(1.0);
        h.observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Gauge adds are CAS loops over an atomic double: every +1.0 lands.
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(h.stats().count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 1.0);
}

// ---------------------------------------------------------------------------

TEST_F(TracerTest, SpanLimitDropsExcessAndCountsThem) {
  auto& tracer = obs::Tracer::instance();
  auto& dropped_metric = obs::MetricsRegistry::instance().counter("trace.dropped");
  const std::uint64_t dropped_before = dropped_metric.value();
  tracer.set_span_limit(2);
  {
    obs::ScopedSpan a("kept_a");
    { obs::ScopedSpan b("kept_b"); }
    { obs::ScopedSpan c("dropped_c"); }  // over the cap
  }
  EXPECT_EQ(tracer.nodes().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(dropped_metric.value(), dropped_before + 1);

  // The Chrome export advertises the loss so a truncated trace is never
  // mistaken for a complete one.
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"droppedSpans\":1"), std::string::npos) << os.str();

  tracer.set_span_limit(obs::Tracer::kDefaultSpanLimit);
}

TEST_F(TracerTest, OpenSpanNamesSeesLiveStacksOnly) {
  obs::ScopedSpan outer("outer_live");
  obs::ScopedSpan inner("inner_live");
  const auto stacks = obs::Tracer::instance().open_span_names();
  ASSERT_EQ(stacks.size(), 1u);
  ASSERT_EQ(stacks[0].size(), 2u);
  EXPECT_EQ(stacks[0][0], "outer_live");
  EXPECT_EQ(stacks[0][1], "inner_live");
}

// ---------------------------------------------------------------------------

TEST(RunContextTest, FormatRunIdIsSixteenHexDigits) {
  EXPECT_EQ(obs::format_run_id(0), "0000000000000000");
  EXPECT_EQ(obs::format_run_id(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(obs::format_run_id(~0ULL), "ffffffffffffffff");
}

TEST(RunContextTest, MetricsScopeDeltasAgainstSnapshot) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& c = reg.counter("test.scope_counter");
  c.reset();
  c.increment(5);

  const obs::MetricsScope scope(reg);
  EXPECT_EQ(scope.delta("test.scope_counter"), 0u);
  c.increment(3);
  EXPECT_EQ(scope.delta("test.scope_counter"), 3u);

  // deltas() reports only counters that moved, by name.
  const auto all = scope.deltas();
  const auto it = all.find("test.scope_counter");
  ASSERT_NE(it, all.end());
  EXPECT_EQ(it->second, 3u);
  // A counter registered after the snapshot deltas against zero.
  reg.counter("test.scope_late").increment(2);
  EXPECT_EQ(scope.delta("test.scope_late"), 2u);
  reg.counter("test.scope_late").reset();
}

TEST(RunContextTest, ScopeInstallsAndRestoresNested) {
  EXPECT_EQ(obs::RunContext::current(), nullptr);
  EXPECT_EQ(obs::current_run_id(), "");

  obs::RunContext outer(0x1111, "outer");
  {
    obs::RunContext::Scope s1(outer);
    EXPECT_EQ(obs::RunContext::current(), &outer);
    EXPECT_EQ(obs::current_run_id(), outer.id());

    obs::RunContext inner(0x2222, "inner");
    {
      obs::RunContext::Scope s2(inner);
      EXPECT_EQ(obs::current_run_id(), inner.id());
    }
    EXPECT_EQ(obs::RunContext::current(), &outer);
  }
  EXPECT_EQ(obs::RunContext::current(), nullptr);
}

TEST(RunContextTest, PhaseSecondsOverwriteByName) {
  obs::RunContext ctx(1, "phases");
  ctx.set_phase_seconds("simulation", 1.0);
  ctx.set_phase_seconds("training", 2.0);
  ctx.set_phase_seconds("simulation", 3.0);  // re-record wins
  ASSERT_EQ(ctx.phases().size(), 2u);
  EXPECT_EQ(ctx.phases()[0].first, "simulation");
  EXPECT_DOUBLE_EQ(ctx.phases()[0].second, 3.0);
  EXPECT_EQ(ctx.phases()[1].first, "training");
}

// ---------------------------------------------------------------------------

TEST(ProfilerTest, FoldedRoundTripAndHotspots) {
  std::istringstream in(
      "analyze;training;dta.block 40\n"
      "analyze;training 10\n"
      "analyze;estimation 5\n"
      "\n"
      "framework.init 2\n");
  const auto folded = obs::parse_folded(in);
  ASSERT_EQ(folded.size(), 4u);
  EXPECT_EQ(folded.at("analyze;training;dta.block"), 40u);

  const auto spots = obs::hotspots_from_folded(folded);
  ASSERT_FALSE(spots.empty());
  // "analyze" is on 3 stacks (40+10+5 inclusive) but never the leaf.
  EXPECT_EQ(spots[0].name, "analyze");
  EXPECT_EQ(spots[0].inclusive, 55u);
  EXPECT_EQ(spots[0].exclusive, 0u);
  // "training" is a leaf on one stack only.
  const auto training = std::find_if(spots.begin(), spots.end(),
                                     [](const auto& s) { return s.name == "training"; });
  ASSERT_NE(training, spots.end());
  EXPECT_EQ(training->inclusive, 50u);
  EXPECT_EQ(training->exclusive, 10u);
}

TEST(ProfilerTest, ParseFoldedRejectsMalformedLines) {
  {
    std::istringstream in("no_count_here\n");
    EXPECT_THROW(obs::parse_folded(in), std::runtime_error);
  }
  {
    std::istringstream in("stack notanumber\n");
    EXPECT_THROW(obs::parse_folded(in), std::runtime_error);
  }
}

TEST_F(TracerTest, ProfilerSamplesOnlyTracerSpanNames) {
  auto& profiler = obs::SpanProfiler::instance();
  profiler.reset();
  profiler.start({/*interval_us=*/200});
  {
    obs::ScopedSpan outer("prof_outer");
    obs::ScopedSpan inner("prof_inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  profiler.stop();
  EXPECT_GT(profiler.samples(), 0u);

  const auto folded = profiler.folded();
  ASSERT_FALSE(folded.empty());
  // Every sampled frame is a name the tracer recorded — no synthesized
  // frames, no signal-unwound addresses.
  for (const auto& [stack, count] : folded) {
    EXPECT_GT(count, 0u);
    std::size_t start = 0;
    while (start <= stack.size()) {
      const std::size_t semi = stack.find(';', start);
      const std::string frame =
          semi == std::string::npos ? stack.substr(start) : stack.substr(start, semi - start);
      EXPECT_TRUE(frame == "prof_outer" || frame == "prof_inner") << stack;
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  // write_folded emits parseable folded-stack text that round-trips.
  std::ostringstream os;
  profiler.write_folded(os);
  std::istringstream in(os.str());
  EXPECT_EQ(obs::parse_folded(in), folded);
  profiler.reset();
}

// ---------------------------------------------------------------------------

class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Logger::instance().set_sink(&sink_);
    obs::Logger::instance().set_level(obs::LogLevel::kOff);
  }
  void TearDown() override {
    obs::Logger::instance().set_sink(nullptr);
    obs::Logger::instance().set_level(obs::LogLevel::kOff);
  }
  std::ostringstream sink_;
};

TEST_F(LoggerTest, OffByDefaultSuppressesEverything) {
  obs::log_error("test", "should not appear");
  obs::log_info("test", "should not appear");
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggerTest, LevelFilteringSuppressesFinerLevels) {
  obs::Logger::instance().set_level(obs::LogLevel::kInfo);
  obs::log_debug("test", "filtered");
  EXPECT_TRUE(sink_.str().empty());
  obs::log_info("test", "visible");
  EXPECT_NE(sink_.str().find("msg=visible"), std::string::npos);
  obs::log_error("test", "also visible");
  EXPECT_NE(sink_.str().find("level=error"), std::string::npos);
}

TEST_F(LoggerTest, StructuredFieldsAreKeyValueFormatted) {
  obs::Logger::instance().set_level(obs::LogLevel::kInfo);
  obs::log_info("core", "phase done",
                {{"seconds", 1.5}, {"blocks", 14}, {"name", "two words"}});
  const std::string line = sink_.str();
  EXPECT_NE(line.find("comp=core"), std::string::npos) << line;
  EXPECT_NE(line.find("seconds=1.5"), std::string::npos) << line;
  EXPECT_NE(line.find("blocks=14"), std::string::npos) << line;
  EXPECT_NE(line.find("name=\"two words\""), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(LoggerTest, ParseLogLevelRoundTrips) {
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("trace"), obs::LogLevel::kTrace);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::kOff);
  EXPECT_FALSE(obs::parse_log_level("bogus").has_value());
  for (const auto lvl : {obs::LogLevel::kError, obs::LogLevel::kWarn, obs::LogLevel::kInfo,
                         obs::LogLevel::kDebug, obs::LogLevel::kTrace}) {
    EXPECT_EQ(obs::parse_log_level(obs::log_level_name(lvl)), lvl);
  }
}

}  // namespace
