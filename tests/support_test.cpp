#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/accumulator.hpp"
#include "support/check.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace terrors::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitIsIndependentOfDrawOrder) {
  Rng a(7);
  Rng b(7);
  (void)b.next_u64();  // advance one stream
  Rng sa = a.split(3);
  Rng sb = b.split(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, SplitTagsProduceDistinctStreams) {
  Rng root(5);
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[r.uniform_index(7)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(19);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng r(1);
  EXPECT_THROW(r.uniform_index(0), std::invalid_argument);
  EXPECT_THROW(r.normal(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(r.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Math, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-10);
}

class NormalQuantileRoundtrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundtrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalQuantileRoundtrip,
                         ::testing::Values(1e-6, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                                           0.9999, 1.0 - 1e-6));

TEST(Math, LogGammaMatchesFactorials) {
  double fact = 1.0;
  for (int n = 1; n <= 15; ++n) {
    EXPECT_NEAR(std::exp(log_gamma(n + 1.0)), fact * n, fact * n * 1e-10);
    fact *= n;
  }
}

TEST(Math, GammaPQComplementary) {
  for (double a : {0.5, 1.0, 3.0, 10.0, 100.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
    }
  }
}

TEST(Math, PoissonCdfMatchesDirectSum) {
  const double lambda = 4.2;
  double direct = 0.0;
  double term = std::exp(-lambda);
  for (std::int64_t k = 0; k <= 12; ++k) {
    direct += term;
    EXPECT_NEAR(poisson_cdf(k, lambda), direct, 1e-10) << "k=" << k;
    term *= lambda / static_cast<double>(k + 1);
  }
}

TEST(Math, PoissonCdfEdgeCases) {
  EXPECT_EQ(poisson_cdf(-1, 3.0), 0.0);
  EXPECT_EQ(poisson_cdf(5, 0.0), 1.0);
  EXPECT_NEAR(poisson_cdf(1000000, 10.0), 1.0, 1e-12);
}

TEST(Math, PoissonPmfSumsToCdf) {
  const double lambda = 7.7;
  double acc = 0.0;
  for (std::int64_t k = 0; k <= 30; ++k) {
    acc += poisson_pmf(k, lambda);
    EXPECT_NEAR(acc, poisson_cdf(k, lambda), 1e-9);
  }
}

TEST(Accumulator, MatchesDirectMoments) {
  const std::vector<double> xs = {1.5, -2.0, 0.25, 7.0, 3.0, -1.0, 4.5};
  MomentAccumulator acc;
  for (double x : xs) acc.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const auto n = static_cast<double>(xs.size());
  EXPECT_NEAR(acc.mean(), mean, 1e-12);
  EXPECT_NEAR(acc.variance(), m2 / n, 1e-12);
  EXPECT_NEAR(acc.central_moment3(), m3 / n, 1e-9);
  EXPECT_NEAR(acc.central_moment4(), m4 / n, 1e-9);
  EXPECT_EQ(acc.min(), -2.0);
  EXPECT_EQ(acc.max(), 7.0);
}

TEST(Accumulator, MergeEqualsBulk) {
  Rng r(23);
  MomentAccumulator all;
  MomentAccumulator a;
  MomentAccumulator b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_NEAR(a.central_moment3(), all.central_moment3(), 1e-6);
  EXPECT_NEAR(a.central_moment4(), all.central_moment4(), 1e-5);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(TE_REQUIRE(false, "nope"), std::invalid_argument);
  EXPECT_NO_THROW(TE_REQUIRE(true, ""));
}

TEST(Check, CheckThrowsLogicError) { EXPECT_THROW(TE_CHECK(false, "bug"), std::logic_error); }

}  // namespace
}  // namespace terrors::support
