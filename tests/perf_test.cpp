#include <gtest/gtest.h>

#include "perf/ts_model.hpp"

namespace terrors::perf {
namespace {

TEST(TsModel, ReproducesPublishedMappingPoints) {
  // The paper reports: 0.4% error rate -> +4.93% performance; 0.131% ->
  // +11.9% (approx.); 1.068% -> -8.46% for f_ratio 1.15 and a 24-cycle
  // replay penalty.
  const TsProcessorModel m;
  EXPECT_NEAR(m.performance_improvement(0.004), 0.0493, 0.0003);
  EXPECT_NEAR(m.performance_improvement(0.01068), -0.0846, 0.0005);
  EXPECT_NEAR(m.performance_improvement(0.00131), 0.115, 0.005);
}

TEST(TsModel, ZeroErrorRateGivesFullRatio) {
  const TsProcessorModel m;
  EXPECT_NEAR(m.performance_improvement(0.0), 0.15, 1e-12);
}

TEST(TsModel, BreakEvenConsistent) {
  const TsProcessorModel m;
  const double r = m.break_even_error_rate();
  EXPECT_NEAR(m.performance_improvement(r), 0.0, 1e-12);
  EXPECT_NEAR(r, 0.15 / 24.0, 1e-12);
}

TEST(TsModel, ImprovementMonotoneDecreasingInErrorRate) {
  const TsProcessorModel m;
  double prev = m.performance_improvement(0.0);
  for (double r = 0.001; r <= 0.05; r += 0.001) {
    const double v = m.performance_improvement(r);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(TsModel, RejectsInvalidErrorRate) {
  const TsProcessorModel m;
  EXPECT_THROW(m.performance_improvement(-0.1), std::invalid_argument);
  EXPECT_THROW(m.performance_improvement(1.5), std::invalid_argument);
}

TEST(OperatingPoints, OrderingAndGuardband) {
  // Static worst arrival 1338 ps (sd 27 ps), dynamic worst 1309 ps,
  // setup 30 ps: baseline < PoFF < working.
  const auto op = derive_operating_points(1338.0, 27.0, 1309.0, 30.0);
  EXPECT_LT(op.baseline_mhz, op.poff_mhz);
  EXPECT_LT(op.poff_mhz, op.working_mhz);
  // Guardband: baseline period exceeds the plain static arrival.
  EXPECT_GT(1.0e6 / op.baseline_mhz, 1338.0 + 30.0);
}

TEST(OperatingPoints, RejectsImpossibleDynamicArrival) {
  EXPECT_THROW(derive_operating_points(1000.0, 10.0, 1200.0, 30.0), std::invalid_argument);
}

TEST(OperatingPoints, RatiosInPaperBallpark) {
  // With our calibrated design numbers the PoFF/baseline ratio lands near
  // the paper's 1.13x and working/baseline near 1.15x.
  const auto op = derive_operating_points(1338.4, 26.8, 1309.1, 30.0);
  EXPECT_GT(op.poff_mhz / op.baseline_mhz, 1.05);
  EXPECT_LT(op.working_mhz / op.baseline_mhz, 1.35);
}

}  // namespace
}  // namespace terrors::perf
