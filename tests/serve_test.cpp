// `terrors serve` contracts (DESIGN §5h):
//  1. Protocol: strict request validation (malformed frames, unknown
//     fields, type errors, caps) maps to kInput error envelopes; a bad
//     request, an oversized frame, or a mid-request disconnect never
//     takes the daemon down.
//  2. Single-flight: N concurrent identical analyze requests pay for
//     exactly one characterization (serve.coalesced == N-1, one datapath
//     training) and all receive the same report bytes.
//  3. Served == cold: the report a session receives is byte-identical to
//     what a cold `analyze --report` run writes (wall-clock fields
//     zeroed), at 1 and 4 threads.
//  4. Memory tier: bounded LRU semantics — eviction order, byte budget,
//     oversize skip, disk-delegate promotion — on content-addressed keys.
//  5. Input-parsing regressions: checked numeric flags raise typed
//     kInput errors (no raw std::sto* escapes, no negative wrap), and
//     JSON numbers round-trip under a forced comma-decimal locale.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <clocale>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "report/attribution.hpp"
#include "report/json_value.hpp"
#include "report/run_report.hpp"
#include "robust/error.hpp"
#include "robust/parse.hpp"
#include "serve/memory_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/thread_pool.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

const workloads::WorkloadSpec& spec_named(const char* name) {
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return workloads::mibench_specs()[0];
}

std::string socket_path(const char* tag) {
  return "/tmp/terrors_serve_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// Blocking line-oriented client over a Unix-domain socket.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Next response frame ("" on EOF).
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string rpc(const std::string& request) {
    EXPECT_TRUE(send_line(request));
    return read_line();
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Pin these tests to the legacy in-process executor: they exercise
/// protocol/coalescing/admission semantics that are isolation-agnostic,
/// and TSan (one of CI's sanitizer lanes) cannot start threads in a
/// process that forked while multi-threaded.  The supervised path has
/// its own coverage in serve_robust_test.cpp.
inline serve::ServerConfig in_process(serve::ServerConfig cfg) {
  cfg.isolation = false;
  return cfg;
}

/// RAII server on its own thread; the socket accepts when the
/// constructor returns.
struct ServerRunner {
  explicit ServerRunner(serve::ServerConfig cfg)
      : server(pipeline(), in_process(std::move(cfg))) {
    server.start();
    thread = std::thread([this] { server.run(); });
  }
  ~ServerRunner() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  serve::Server server;
  std::thread thread;
};

/// Zero the three wall-clock fields in raw report JSON without otherwise
/// touching the bytes, so comparisons cover every deterministic field.
std::string zero_seconds(std::string text) {
  for (const char* key :
       {"\"training_seconds\":", "\"simulation_seconds\":", "\"estimation_seconds\":"}) {
    const std::size_t key_len = std::strlen(key);
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos + 1)) {
      const std::size_t start = pos + key_len;
      std::size_t end = start;
      while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
      text.replace(start, end - start, "0");
    }
  }
  return text;
}

/// The report bytes spliced into an analyze envelope: everything after
/// the ',"report":' marker minus the final '}' plus the trailing newline
/// write_json would have emitted.
std::string report_from_envelope(const std::string& envelope) {
  const std::string marker = ",\"report\":";
  const std::size_t at = envelope.find(marker);
  if (at == std::string::npos || envelope.empty() || envelope.back() != '}') {
    ADD_FAILURE() << "no report in envelope: " << envelope.substr(0, 200);
    return "";
  }
  return envelope.substr(at + marker.size(), envelope.size() - at - marker.size() - 1) + "\n";
}

/// What a cold CLI `analyze --report` run writes for these parameters
/// (the exact flow of tools/terrors_cli.cpp::cmd_analyze, no cache).
std::string cold_report_json(const char* name, std::size_t runs, double period, double scale) {
  const auto& spec = spec_named(name);
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{period};
  cfg.execution_scale = 1.0 / scale;
  core::ErrorRateFramework fw(pipeline(), cfg);
  fw.set_executor_config(workloads::executor_config_for(spec, runs, scale));
  report::CollectorConfig ccfg;
  ccfg.threads = support::global_pool().size();
  report::AttributionCollector collector(ccfg);
  const isa::Program program = workloads::generate_program(spec);
  const core::BenchmarkResult r =
      fw.analyze(program, workloads::generate_inputs(spec, runs, 2026), &collector);
  std::ostringstream os;
  collector.build(fw, program, r).write_json(os);
  return os.str();
}

std::uint64_t counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

// ---------------------------------------------------------------------------
// 1. Protocol validation (no server needed).

TEST(ServeProtocol, RejectsMalformedAndUnknownRequests) {
  const char* bad[] = {
      "",                                             // empty
      "not json",                                     // malformed frame
      "[1,2,3]",                                      // not an object
      "{\"benchmark\":\"patricia\"}",                 // missing op
      "{\"op\":\"launch_missiles\"}",                 // unknown op
      "{\"op\":\"ping\",\"bogus\":1}",                // unknown field
      "{\"op\":\"analyze\"}",                         // missing benchmark
      "{\"op\":\"analyze\",\"benchmark\":\"nope\"}",  // unknown benchmark
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"period\":\"fast\"}",  // type error
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"period\":-1}",       // not positive
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":0}",          // zero runs
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":9999}",       // over cap
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2.5}",        // not integral
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"report_mc\":10000001}",  // over cap
      "{\"op\":\"metrics\",\"format\":\"xml\"}",      // unknown format
      "{\"op\":\"ping\",\"id\":3}",                   // id must be a string
  };
  for (const char* frame : bad) {
    try {
      (void)serve::parse_request(frame);
      ADD_FAILURE() << "accepted: " << frame;
    } catch (const robust::Error& e) {
      EXPECT_EQ(e.category(), robust::Category::kInput) << frame;
    }
  }
}

TEST(ServeProtocol, AcceptsDefaultsAndEchoesFields) {
  const serve::Request ping = serve::parse_request("{\"op\":\"ping\",\"id\":\"x1\"}");
  EXPECT_EQ(ping.op, serve::Request::Op::kPing);
  EXPECT_EQ(ping.id, "x1");

  const serve::Request req = serve::parse_request(
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"period\":1200.5,"
      "\"scale\":1e-3,\"runs\":8,\"report_mc\":100}");
  EXPECT_EQ(req.benchmark, "patricia");
  EXPECT_DOUBLE_EQ(req.period, 1200.5);
  EXPECT_DOUBLE_EQ(req.scale, 1e-3);
  EXPECT_EQ(req.runs, 8u);
  EXPECT_EQ(req.report_mc, 100u);

  const serve::Request defaults =
      serve::parse_request("{\"op\":\"analyze\",\"benchmark\":\"patricia\"}");
  EXPECT_DOUBLE_EQ(defaults.period, 1300.0);
  EXPECT_DOUBLE_EQ(defaults.scale, 1e-4);
  EXPECT_EQ(defaults.runs, 4u);
}

TEST(ServeProtocol, SignatureCoversParametersButNotId) {
  const serve::Request a = serve::parse_request(
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"id\":\"first\"}");
  const serve::Request b = serve::parse_request(
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"id\":\"second\"}");
  EXPECT_EQ(serve::request_signature(a), serve::request_signature(b));

  const serve::Request c = serve::parse_request(
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"period\":1299}");
  EXPECT_NE(serve::request_signature(a), serve::request_signature(c));
  const serve::Request d =
      serve::parse_request("{\"op\":\"analyze\",\"benchmark\":\"bitcount\"}");
  EXPECT_NE(serve::request_signature(a), serve::request_signature(d));
}

// ---------------------------------------------------------------------------
// 2. Memory tier semantics.

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(MemoryArtifactTier, EvictsLeastRecentlyUsedUnderByteBudget) {
  const serve::MemoryArtifactTier tier(1000);
  tier.store("k", 1, payload_of(400, 1));
  tier.store("k", 2, payload_of(400, 2));
  EXPECT_EQ(tier.entries(), 2u);
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_TRUE(tier.load("k", 1).has_value());
  tier.store("k", 3, payload_of(400, 3));
  EXPECT_TRUE(tier.load("k", 1).has_value());
  EXPECT_FALSE(tier.load("k", 2).has_value());
  EXPECT_TRUE(tier.load("k", 3).has_value());
  EXPECT_LE(tier.size_bytes(), 1000u);
}

TEST(MemoryArtifactTier, OversizePayloadIsNotRetainedAndKindsAreDistinct) {
  const serve::MemoryArtifactTier tier(100);
  tier.store("big", 7, payload_of(500, 9));
  EXPECT_EQ(tier.entries(), 0u);
  EXPECT_FALSE(tier.load("big", 7).has_value());
  // Same key under different kinds are different artifacts.
  tier.store("a", 7, payload_of(10, 1));
  tier.store("b", 7, payload_of(10, 2));
  EXPECT_EQ(tier.load("a", 7)->front(), 1);
  EXPECT_EQ(tier.load("b", 7)->front(), 2);
}

TEST(MemoryArtifactTier, PromotesFromDelegateAndWritesThrough) {
  // A tiny in-memory "disk": another tier with a huge budget.
  const serve::MemoryArtifactTier disk(1 << 20);
  disk.store("k", 42, payload_of(64, 5));
  const serve::MemoryArtifactTier tier(1 << 16, &disk);
  EXPECT_EQ(tier.entries(), 0u);
  const auto loaded = tier.load("k", 42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 64u);
  EXPECT_EQ(tier.entries(), 1u);  // promoted into the memory tier
  // Stores write through to the delegate.
  tier.store("k", 43, payload_of(32, 6));
  EXPECT_TRUE(disk.load("k", 43).has_value());
}

// ---------------------------------------------------------------------------
// 3. Daemon end-to-end over the socket.

TEST(ServeDaemon, AnswersCheapOpsAndSurvivesBadRequests) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("ops");
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());

  EXPECT_EQ(client.rpc("{\"op\":\"ping\",\"id\":\"t\"}"),
            "{\"ok\":true,\"op\":\"ping\",\"id\":\"t\"}");

  const std::string list = client.rpc("{\"op\":\"list\"}");
  EXPECT_NE(list.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(list.find("\"patricia\""), std::string::npos);

  // A bad request gets a typed error envelope and the session lives on.
  const std::string err = client.rpc("{\"op\":\"ping\",\"bogus\":1}");
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(err.find("\"category\":\"input\""), std::string::npos);
  const std::string garbage = client.rpc("not json at all");
  EXPECT_NE(garbage.find("\"category\":\"input\""), std::string::npos);
  EXPECT_EQ(client.rpc("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");

  // Metrics exposition includes the serve.* family, both shapes.
  const std::string metrics = client.rpc("{\"op\":\"metrics\"}");
  EXPECT_NE(metrics.find("\"serve.requests\""), std::string::npos);
  const std::string prom = client.rpc("{\"op\":\"metrics\",\"format\":\"prometheus\"}");
  EXPECT_NE(prom.find("terrors_serve_requests"), std::string::npos);
}

TEST(ServeDaemon, SurvivesDisconnectsAndCapsFrames) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("frames");
  cfg.max_frame_bytes = 1024;
  ServerRunner runner(cfg);

  {
    // Mid-request disconnect: a partial frame, then the client vanishes.
    Client partial(cfg.socket_path);
    ASSERT_TRUE(partial.connected());
    EXPECT_TRUE(partial.send_raw("{\"op\":\"analy"));
    partial.close();
  }
  {
    // Oversized frame: one kInput error response, then the connection is
    // dropped rather than buffering without bound.
    Client big(cfg.socket_path);
    ASSERT_TRUE(big.connected());
    EXPECT_TRUE(big.send_raw(std::string(2048, 'x')));
    const std::string err = big.read_line();
    EXPECT_NE(err.find("\"category\":\"input\""), std::string::npos);
    EXPECT_NE(err.find("exceeds"), std::string::npos);
    EXPECT_EQ(big.read_line(), "");  // closed
  }
  // The daemon is still healthy.
  Client after(cfg.socket_path);
  ASSERT_TRUE(after.connected());
  EXPECT_EQ(after.rpc("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");
}

TEST(ServeDaemon, CoalescesConcurrentIdenticalRequests) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("coalesce");
  ServerRunner runner(cfg);
  runner.server.set_paused(true);

  const std::uint64_t coalesced0 = counter("serve.coalesced");
  const std::uint64_t trainings0 = counter("dta.datapath_trainings");
  const std::uint64_t characterized0 = counter("dta.edges_characterized");

  constexpr int kClients = 4;
  const std::string request =
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}";
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(cfg.socket_path);
      ASSERT_TRUE(client.connected());
      responses[static_cast<std::size_t>(i)] = client.rpc(request);
    });
  }

  // All followers must be attached (and counted) before any work starts:
  // the executor is paused, so the coalesced counter settling at N-1
  // proves single-flight attachment, not lucky timing.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter("serve.coalesced") - coalesced0 < kClients - 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(counter("serve.coalesced") - coalesced0, static_cast<std::uint64_t>(kClients - 1));
  runner.server.set_paused(false);
  for (auto& t : threads) t.join();

  // Exactly one characterization paid for N answers.
  EXPECT_EQ(counter("dta.datapath_trainings") - trainings0, 1u);
  EXPECT_GT(counter("dta.edges_characterized") - characterized0, 0u);

  // Everyone got the same report bytes and run id; exactly N-1 were
  // marked coalesced in their envelopes.
  int coalesced_envelopes = 0;
  const std::string report0 = report_from_envelope(responses[0]);
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(report_from_envelope(response), report0);
    if (response.find("\"coalesced\":true") != std::string::npos) ++coalesced_envelopes;
  }
  EXPECT_EQ(coalesced_envelopes, kClients - 1);
}

TEST(ServeDaemon, RejectsWhenAdmissionQueueIsFull) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("admission");
  cfg.max_queue = 1;
  ServerRunner runner(cfg);
  runner.server.set_paused(true);
  const std::uint64_t rejected0 = counter("serve.rejected");

  // Fill the only queue slot with one request, then overflow with a
  // *different* one (identical would coalesce, not queue).
  std::thread queued([&] {
    Client client(cfg.socket_path);
    ASSERT_TRUE(client.connected());
    const std::string response =
        client.rpc("{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}");
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (obs::MetricsRegistry::instance().gauge("serve.queue_depth").value() < 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  Client overflow(cfg.socket_path);
  ASSERT_TRUE(overflow.connected());
  const std::string response = overflow.rpc(
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2,\"period\":1299}");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("\"category\":\"resource\""), std::string::npos);
  EXPECT_NE(response.find("queue is full"), std::string::npos);
  EXPECT_EQ(counter("serve.rejected") - rejected0, 1u);

  runner.server.set_paused(false);
  queued.join();
}

void expect_served_matches_cold(std::size_t threads) {
  support::set_global_threads(threads);
  const std::string cold = cold_report_json("patricia", 2, 1300.0, 1e-4);

  serve::ServerConfig cfg;
  cfg.socket_path = socket_path(("identity" + std::to_string(threads)).c_str());
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());
  const std::string envelope =
      client.rpc("{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}");
  ASSERT_NE(envelope.find("\"ok\":true"), std::string::npos)
      << envelope.substr(0, 200);
  const std::string served = report_from_envelope(envelope);
  EXPECT_EQ(zero_seconds(served), zero_seconds(cold)) << "threads=" << threads;

  // A warm repeat (memory tier primed) must still serve the same bytes.
  const std::string warm = report_from_envelope(
      client.rpc("{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}"));
  EXPECT_EQ(zero_seconds(warm), zero_seconds(cold)) << "threads=" << threads;
}

TEST(ServeDaemon, ServedReportIsByteIdenticalToColdCliRunAt1Thread) {
  expect_served_matches_cold(1);
}

TEST(ServeDaemon, ServedReportIsByteIdenticalToColdCliRunAt4Threads) {
  expect_served_matches_cold(4);
}

// ---------------------------------------------------------------------------
// 4. Input-parsing bugfix regressions.

TEST(CheckedFlagParsing, RejectsGarbageNegativesAndTrailingJunkWithTypedErrors) {
  struct Case {
    const char* value;
    bool ok_uint;
    bool ok_double;
  };
  const Case cases[] = {
      {"12", true, true},     {"0", true, true},       {"1300.5", false, true},
      {"abc", false, false},  {"-3", false, true},     {"12abc", false, false},
      {"1e3", false, true},   {"", false, false},      {" 12", false, false},
      {"0x10", false, false}, {"99999999999999999999", false, true},
      {"nan", false, false},  {"inf", false, false},
  };
  for (const Case& c : cases) {
    if (c.ok_uint) {
      EXPECT_NO_THROW((void)robust::parse_uint_arg("--runs", c.value)) << c.value;
    } else {
      try {
        (void)robust::parse_uint_arg("--runs", c.value);
        ADD_FAILURE() << "uint accepted: '" << c.value << "'";
      } catch (const robust::Error& e) {
        EXPECT_EQ(e.category(), robust::Category::kInput) << c.value;
        // The message names the flag and the offending value.
        EXPECT_NE(std::string(e.what()).find("--runs"), std::string::npos);
        EXPECT_EQ(robust::exit_code_for(e.category()), 3);
      }
    }
    if (c.ok_double) {
      EXPECT_NO_THROW((void)robust::parse_double_arg("--period", c.value)) << c.value;
    } else {
      try {
        (void)robust::parse_double_arg("--period", c.value);
        ADD_FAILURE() << "double accepted: '" << c.value << "'";
      } catch (const robust::Error& e) {
        EXPECT_EQ(e.category(), robust::Category::kInput) << c.value;
        EXPECT_NE(std::string(e.what()).find("--period"), std::string::npos);
      }
    }
  }
  // Values parse exactly, and negatives never wrap into huge unsigneds.
  EXPECT_EQ(robust::parse_uint_arg("--runs", "18446744073709551615"),
            18446744073709551615ull);
  EXPECT_DOUBLE_EQ(robust::parse_double_arg("--scale", "1e-4"), 1e-4);
}

TEST(LocaleIndependentJson, NumbersRoundTripBitExactly) {
  const double values[] = {0.0,   1.0,    -1.0,      3.14,       1.0 / 3.0, 1e-308,
                           1e308, 6.02e23, -2.5e-3,  1300.0,     0.1,       123456789.123456789};
  for (const double v : values) {
    std::ostringstream os;
    obs::json_number(os, v);
    const auto back = obs::parse_double(os.str());
    ASSERT_TRUE(back.has_value()) << os.str();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(*back), std::bit_cast<std::uint64_t>(v)) << os.str();
  }
  // Partial and malformed numbers are rejected, not truncated.
  EXPECT_FALSE(obs::parse_double("3.14abc").has_value());
  EXPECT_FALSE(obs::parse_double("").has_value());
  EXPECT_FALSE(obs::parse_double("1,5").has_value());
}

TEST(LocaleIndependentJson, RoundTripsUnderForcedCommaDecimalLocale) {
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8", "de_DE"};
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  // Only a locale whose decimal separator really is ',' exercises the
  // regression; a name that silently resolves to '.' proves nothing.
  bool forced = false;
  for (const char* name : candidates) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr &&
        std::localeconv()->decimal_point[0] == ',') {
      forced = true;
      break;
    }
  }
  if (!forced) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed in this image";
  }

  // Under the comma locale, the writer must still emit '.' numbers and
  // the parsers must still read them whole — this is the regression for
  // the strtod/%g locale sensitivity in json_value.cpp and obs/json.cpp.
  std::ostringstream os;
  obs::json_number(os, 3.14);
  EXPECT_EQ(os.str(), "3.14");
  EXPECT_EQ(obs::parse_double("3.14").value_or(0.0), 3.14);

  const report::JsonValue doc =
      report::JsonValue::parse("{\"x\":3.14,\"y\":-2.5e-3,\"z\":1300}");
  EXPECT_DOUBLE_EQ(doc.at("x").as_number(), 3.14);
  EXPECT_DOUBLE_EQ(doc.at("y").as_number(), -2.5e-3);

  // A full report round-trip stays bit-exact.
  report::RunReport report;
  report.program = "locale";
  report.rate_mean = 0.123456789e-3;
  report.period_ps = 1300.5;
  std::ostringstream first;
  report.write_json(first);
  const report::RunReport parsed =
      report::RunReport::from_json(report::JsonValue::parse(first.str()));
  std::ostringstream second;
  parsed.write_json(second);
  EXPECT_EQ(first.str(), second.str());

  std::setlocale(LC_NUMERIC, saved.c_str());
}

}  // namespace
}  // namespace terrors
