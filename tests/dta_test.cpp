#include <gtest/gtest.h>

#include <cmath>

#include "dta/control_characterizer.hpp"
#include "dta/datapath_model.hpp"
#include "dta/dts_analyzer.hpp"
#include "dta/graph_dta.hpp"
#include "dta/pipeline_driver.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "netlist/pipeline.hpp"
#include "timing/sta.hpp"

namespace terrors::dta {
namespace {

using isa::ExContext;
using isa::Opcode;
using netlist::EndpointClass;
using netlist::Pipeline;

const Pipeline& shared_pipeline() {
  static const Pipeline p = netlist::build_pipeline({});
  return p;
}

const timing::VariationModel& shared_vm() {
  static const timing::VariationModel vm(shared_pipeline().netlist, {});
  return vm;
}

isa::Instruction make(Opcode op, int rd = 0, int rs1 = 0, int rs2 = 0, int imm = 0) {
  isa::Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

TEST(DtsGaussian, MinOfDominatedPairIsTheWorse) {
  DtsGaussian a{{100.0, 5.0}, 3.0};
  DtsGaussian b{{500.0, 5.0}, 3.0};
  const DtsGaussian m = dts_min(a, b);
  EXPECT_NEAR(m.slack.mean, 100.0, 0.5);
}

TEST(DtsGaussian, GlobalCorrelationTightensMin) {
  // With full global correlation the min of two equal Gaussians stays at
  // the common mean; independent ones dip below it.
  DtsGaussian corr{{100.0, 10.0}, 10.0};
  DtsGaussian indep{{100.0, 10.0}, 0.0};
  const double m_corr = dts_min(corr, corr).slack.mean;
  const double m_indep = dts_min(indep, indep).slack.mean;
  EXPECT_GT(m_corr, m_indep);
  EXPECT_NEAR(m_corr, 100.0, 1e-6);
}

TEST(PipelineDriver, PcFollowsFetchStream) {
  PipelineDriver driver(shared_pipeline());
  std::vector<FetchSlot> slots;
  // Straight-line fetches then a jump to a far target.
  for (int i = 0; i < 8; ++i) slots.push_back(FetchSlot::nop(0x1000 + 4 * i));
  slots.push_back(FetchSlot::nop(0x8000));
  slots.push_back(FetchSlot::nop(0x8004));
  auto cycles = driver.run(slots);
  EXPECT_EQ(cycles.size(), slots.size() + Pipeline::kStages);
}

TEST(DtsAnalyzer, QuietCycleHasNoStageDts) {
  PipelineDriver driver(shared_pipeline());
  // All-bubble stream: after warmup the pipeline goes quiet.
  std::vector<FetchSlot> slots(20, FetchSlot::nop(0));
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i].pc = 4 * static_cast<std::uint32_t>(i);
  auto cycles = driver.run(slots, 0);
  DtsAnalyzer analyzer(shared_pipeline().netlist, shared_vm(),
                       timing::TimingSpec{1200.0, netlist::kSetupTimePs});
  // Late cycles: the datapath is quiet (operands stopped changing), so the
  // EX stage's data endpoints see no activated paths.
  auto dts = analyzer.stage_dts(3, cycles.back(), EndpointClass::kData);
  EXPECT_FALSE(dts.has_value());
}

TEST(DtsAnalyzer, LongCarryChainLowersDts) {
  PipelineDriver driver(shared_pipeline());
  DtsAnalyzer analyzer(shared_pipeline().netlist, shared_vm(),
                       timing::TimingSpec{1200.0, netlist::kSetupTimePs});

  auto measure = [&](std::uint32_t a, std::uint32_t b) {
    std::vector<FetchSlot> slots;
    for (int i = 0; i < 6; ++i) slots.push_back(FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
    isa::InstrDynContext ctx;
    ctx.cur = {a, b, isa::ExUnit::kAdder, Opcode::kAdd};
    ctx.pc = 0x100;
    slots.push_back(FetchSlot::from_context(make(Opcode::kAdd, 3, 1, 2), ctx));
    auto cycles = driver.run(slots);
    auto dts = analyzer.stage_dts(3, cycles[slots.size() - 1 + 3], EndpointClass::kData);
    EXPECT_TRUE(dts.has_value());
    return dts->slack.mean;
  };

  const double short_chain = measure(0x1u, 0x1u);          // 2-bit carry
  const double long_chain = measure(0xFFFFFFFFu, 0x1u);    // full ripple
  EXPECT_LT(long_chain, short_chain - 100.0);
}

TEST(DtsAnalyzer, DeterministicDtsMatchesGaussianMeanClosely) {
  PipelineDriver driver(shared_pipeline());
  const timing::TimingSpec spec{1200.0, netlist::kSetupTimePs};
  DtsAnalyzer analyzer(shared_pipeline().netlist, shared_vm(), spec);
  std::vector<FetchSlot> slots;
  for (int i = 0; i < 6; ++i) slots.push_back(FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
  isa::InstrDynContext ctx;
  ctx.cur = {0x0FFFFFFFu, 0x1u, isa::ExUnit::kAdder, Opcode::kAdd};
  ctx.pc = 0x100;
  slots.push_back(FetchSlot::from_context(make(Opcode::kAdd, 3, 1, 2), ctx));
  auto cycles = driver.run(slots);
  auto& cyc = cycles[slots.size() - 1 + 3];
  auto ssta = analyzer.stage_dts(3, cyc, EndpointClass::kData);
  auto det = analyzer.stage_dts_deterministic(3, cyc.flags(), EndpointClass::kData);
  ASSERT_TRUE(ssta.has_value());
  ASSERT_TRUE(det.has_value());
  // The statistical min sits at or below the deterministic nominal slack.
  EXPECT_LE(ssta->slack.mean, *det + 1.0);
  EXPECT_GT(ssta->slack.mean, *det - 6.0 * ssta->slack.sd);
}

TEST(DatapathModel, ChainLengthSemantics) {
  const ExContext bubble{};
  ExContext add1{(1u << 12) - 1u, 1u, isa::ExUnit::kAdder, Opcode::kAdd};
  const int l1 = DatapathModel::adder_chain_length(add1, bubble);
  EXPECT_GE(l1, 12);
  // Identical contexts: nothing toggles.
  EXPECT_EQ(DatapathModel::adder_chain_length(add1, add1), -1);
  // Small change: short chain.
  ExContext add2{1u, 1u, isa::ExUnit::kAdder, Opcode::kAdd};
  const int l2 = DatapathModel::adder_chain_length(add2, bubble);
  EXPECT_LT(l2, l1);
}

class DatapathModelFixture : public ::testing::Test {
 protected:
  static const DatapathModel& model() {
    static const DatapathModel m =
        DatapathModel::train(shared_pipeline(), shared_vm());
    return m;
  }
};

TEST_F(DatapathModelFixture, AdderDelayGrowsWithChainLength) {
  const auto& lin = model().adder_mean();
  EXPECT_GT(lin.per_unit, 10.0);  // each full-adder stage adds real delay
  EXPECT_GT(lin.at(32), lin.at(4) + 400.0);
}

TEST_F(DatapathModelFixture, PredictionTracksGateLevelMeasurement) {
  // Measure a chain length the training sweep did not use directly.
  PipelineDriver driver(shared_pipeline());
  const timing::TimingSpec spec{10000.0, netlist::kSetupTimePs};
  DtsAnalyzer analyzer(shared_pipeline().netlist, shared_vm(), spec);
  std::vector<FetchSlot> slots;
  for (int i = 0; i < 6; ++i) slots.push_back(FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
  const std::uint32_t a = (1u << 21) - 1u;
  isa::InstrDynContext ctx;
  ctx.cur = {a, 1u, isa::ExUnit::kAdder, Opcode::kAdd};
  ctx.pc = 0x100;
  slots.push_back(FetchSlot::from_context(make(Opcode::kAdd, 3, 1, 2), ctx));
  auto cycles = driver.run(slots);
  auto dts = analyzer.stage_dts(3, cycles[slots.size() - 1 + 3], EndpointClass::kData);
  ASSERT_TRUE(dts.has_value());
  const double measured_arrival = spec.period_ps - spec.setup_ps - dts->slack.mean;

  const ExContext bubble{};
  auto predicted = model().ex_arrival(ctx.cur, bubble);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(predicted->slack.mean, measured_arrival, 0.12 * measured_arrival);
}

TEST_F(DatapathModelFixture, FlushEmulationChangesErrorProbability) {
  // An instruction whose operands equal its predecessor's: after correct
  // execution nothing toggles (no error possible), after a flush the
  // bubble forces toggling.
  ExContext cur{0xFFFFFFu, 1u, isa::ExUnit::kAdder, Opcode::kAdd};
  ExContext prev = cur;
  EXPECT_FALSE(model().ex_arrival(cur, prev).has_value());
  const ExContext bubble{};
  EXPECT_TRUE(model().ex_arrival(cur, bubble).has_value());
}

TEST_F(DatapathModelFixture, SlackConversionUsesSpec) {
  ExContext cur{0xFFFFu, 1u, isa::ExUnit::kAdder, Opcode::kAdd};
  const ExContext bubble{};
  const timing::TimingSpec fast{800.0, netlist::kSetupTimePs};
  const timing::TimingSpec slow{2000.0, netlist::kSetupTimePs};
  auto s_fast = model().ex_slack(cur, bubble, fast);
  auto s_slow = model().ex_slack(cur, bubble, slow);
  ASSERT_TRUE(s_fast.has_value() && s_slow.has_value());
  EXPECT_NEAR(s_slow->slack.mean - s_fast->slack.mean, 1200.0, 1e-6);
}

TEST(ControlCharacterizer, CharacterizesLoopProgram) {
  // Build the counted loop from the ISA tests and characterise it.
  isa::Program p("loop");
  isa::BasicBlock b0;
  b0.instructions = {make(Opcode::kMovi, 1, 0, 0, 5), make(Opcode::kMovi, 2, 0, 0, 0)};
  isa::BasicBlock b1;
  b1.instructions = {make(Opcode::kAddi, 2, 2, 0, 3), make(Opcode::kSubi, 1, 1, 0, 1),
                     make(Opcode::kBne, 0, 1, 0)};
  isa::BasicBlock b2;
  b2.instructions = {make(Opcode::kSt, 0, 0, 2, 16)};
  p.add_block(b0);
  p.add_block(b1);
  p.add_block(b2);
  p.block(0).fallthrough = 1;
  p.block(1).taken = 1;
  p.block(1).fallthrough = 2;
  p.set_entry(0);
  const isa::Cfg cfg(p);
  isa::Executor ex(p, cfg);
  ex.run({});

  ControlCharacterizer cc(shared_pipeline(), shared_vm(),
                          timing::TimingSpec{1200.0, netlist::kSetupTimePs});
  auto result = cc.characterize(p, cfg, ex.profile());
  ASSERT_EQ(result.size(), 3u);
  // The loop body's self-edge was traversed; its instructions must have
  // control DTS values, and they must be plausibly positive at this clock.
  bool any = false;
  for (const auto& edge : result[1].per_edge) {
    for (const auto& d : edge.instr) {
      if (d.has_value()) {
        any = true;
        EXPECT_GT(d->slack.mean, -500.0);
        EXPECT_LT(d->slack.mean, 1200.0);
        EXPECT_GT(d->slack.sd, 0.0);
      }
    }
  }
  EXPECT_TRUE(any);
  // Unexecuted entry characterisations of non-entry blocks are empty.
  for (const auto& d : result[1].entry.instr) EXPECT_FALSE(d.has_value());
}

TEST(GraphDta, AggregatesWorstArrivals) {
  PipelineDriver driver(shared_pipeline());
  std::vector<FetchSlot> slots;
  for (int i = 0; i < 6; ++i) slots.push_back(FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
  // Two adds with very different carry chains.
  for (std::uint32_t a : {0x3u, 0x0FFFFFFFu}) {
    isa::InstrDynContext ctx;
    ctx.cur = {a, 1u, isa::ExUnit::kAdder, Opcode::kAdd};
    ctx.pc = 0x100;
    slots.push_back(FetchSlot::from_context(make(Opcode::kAdd, 3, 1, 2), ctx));
  }
  auto cycles = driver.run(slots);
  GraphDta graph(shared_pipeline().netlist);
  for (auto& c : cycles) graph.observe(c);
  EXPECT_EQ(graph.cycles_observed(), cycles.size());
  // The long-chain add dominates the design-wide worst arrival.
  EXPECT_GT(graph.worst_arrival(), 800.0);
  // N-worst lists are sorted descending.
  const auto e = shared_pipeline().taps.cc_reg[2];
  const auto& worst = graph.worst_arrivals(e);
  for (std::size_t i = 1; i < worst.size(); ++i) EXPECT_LE(worst[i], worst[i - 1]);
  // Error-free frequency is below the frequency implied by the worst
  // observed arrival without margin.
  const double f = graph.error_free_frequency_mhz(netlist::kSetupTimePs, 1.05);
  EXPECT_LT(f, 1.0e6 / (graph.worst_arrival() + netlist::kSetupTimePs));
}

TEST(GraphDta, ErrorFreePointIsSafeForObservedActivity) {
  PipelineDriver driver(shared_pipeline());
  std::vector<FetchSlot> slots;
  support::Rng rng(17);
  for (int i = 0; i < 6; ++i) slots.push_back(FetchSlot::nop(4u * static_cast<std::uint32_t>(i)));
  for (int i = 0; i < 20; ++i) {
    isa::InstrDynContext ctx;
    ctx.cur = {static_cast<std::uint32_t>(rng.next_u64()), static_cast<std::uint32_t>(rng.next_u64()),
               isa::ExUnit::kAdder, Opcode::kAdd};
    ctx.pc = 0x100 + 4u * static_cast<std::uint32_t>(i);
    slots.push_back(FetchSlot::from_context(make(Opcode::kAdd, 3, 1, 2), ctx));
  }
  auto cycles = driver.run(slots);
  GraphDta graph(shared_pipeline().netlist);
  for (auto& c : cycles) graph.observe(c);
  const double f = graph.error_free_frequency_mhz();
  const timing::TimingSpec spec = timing::TimingSpec::from_frequency_mhz(f);
  // Deterministic DTS of every observed cycle is non-negative at f.
  DtsAnalyzer analyzer(shared_pipeline().netlist, shared_vm(), spec);
  for (auto& c : cycles) {
    for (std::uint8_t s = 0; s < Pipeline::kStages; ++s) {
      const auto dts = analyzer.stage_dts_deterministic(s, c.flags(), EndpointClass::kNone);
      if (dts.has_value()) EXPECT_GE(*dts, -1e-6);
    }
  }
}

TEST(GraphDta, RequiresObservationBeforeFrequency) {
  GraphDta graph(shared_pipeline().netlist);
  EXPECT_THROW((void)graph.error_free_frequency_mhz(), std::invalid_argument);
}

}  // namespace
}  // namespace terrors::dta
