#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "stat/clark.hpp"
#include "stat/discrete.hpp"
#include "stat/gaussian.hpp"
#include "stat/metrics.hpp"
#include "stat/poisson_mixture.hpp"
#include "stat/samples.hpp"
#include "stat/stein.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace terrors::stat {
namespace {

TEST(Gaussian, CdfAndQuantile) {
  const Gaussian g{10.0, 2.0};
  EXPECT_NEAR(g.cdf(10.0), 0.5, 1e-12);
  EXPECT_NEAR(g.cdf(12.0), support::normal_cdf(1.0), 1e-12);
  EXPECT_NEAR(g.quantile(g.cdf(7.0)), 7.0, 1e-6);
}

TEST(Gaussian, PointMass) {
  const Gaussian g{5.0, 0.0};
  EXPECT_EQ(g.cdf(4.999), 0.0);
  EXPECT_EQ(g.cdf(5.0), 1.0);
  EXPECT_EQ(g.quantile(0.3), 5.0);
}

TEST(Gaussian, SumWithCovariance) {
  const Gaussian a{1.0, 2.0};
  const Gaussian b{3.0, 1.0};
  const Gaussian s = sum(a, b, 1.0);
  EXPECT_NEAR(s.mean, 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 4.0 + 1.0 + 2.0, 1e-12);
}

// --- Clark min/max vs Monte Carlo ------------------------------------------

class ClarkVsMonteCarlo
    : public ::testing::TestWithParam<std::tuple<double, double, double, double, double>> {};

TEST_P(ClarkVsMonteCarlo, MinMomentsMatch) {
  const auto [m1, s1, m2, s2, rho] = GetParam();
  const Gaussian a{m1, s1};
  const Gaussian b{m2, s2};
  const ClarkResult r = clark_min(a, b, rho);

  support::Rng rng(99);
  double sum = 0.0;
  double sum2 = 0.0;
  int first_smaller = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double z1 = rng.normal();
    const double z2 = rho * z1 + std::sqrt(1.0 - rho * rho) * rng.normal();
    const double x = m1 + s1 * z1;
    const double y = m2 + s2 * z2;
    const double mn = std::min(x, y);
    sum += mn;
    sum2 += mn * mn;
    if (x < y) ++first_smaller;
  }
  const double mc_mean = sum / n;
  const double mc_var = sum2 / n - mc_mean * mc_mean;
  EXPECT_NEAR(r.value.mean, mc_mean, 0.02) << "Clark mean vs MC";
  EXPECT_NEAR(r.value.variance(), mc_var, 0.05 * std::max(1.0, mc_var));
  EXPECT_NEAR(r.tightness, static_cast<double>(first_smaller) / n, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClarkVsMonteCarlo,
    ::testing::Values(std::make_tuple(0.0, 1.0, 0.0, 1.0, 0.0),
                      std::make_tuple(0.0, 1.0, 0.5, 2.0, 0.3),
                      std::make_tuple(-1.0, 0.5, 1.0, 0.5, -0.6),
                      std::make_tuple(2.0, 1.0, 2.0, 1.0, 0.9),
                      std::make_tuple(10.0, 1.0, 0.0, 1.0, 0.0),  // dominated
                      std::make_tuple(0.0, 3.0, 0.0, 0.1, 0.5)));

TEST(Clark, DegeneratePairReturnsSmallerMean) {
  const Gaussian a{3.0, 1.0};
  const Gaussian b{5.0, 1.0};
  const ClarkResult r = clark_min(a, b, 1.0);  // identical spread, rho = 1
  EXPECT_NEAR(r.value.mean, 3.0, 1e-9);
  EXPECT_NEAR(r.value.sd, 1.0, 1e-9);
}

TEST(Clark, MaxAndMinAreConsistent) {
  const Gaussian a{1.0, 1.0};
  const Gaussian b{2.0, 2.0};
  const ClarkResult mx = clark_max(a, b, 0.2);
  const ClarkResult mn = clark_min(a, b, 0.2);
  // E[max] + E[min] = E[a] + E[b] exactly.
  EXPECT_NEAR(mx.value.mean + mn.value.mean, 3.0, 1e-9);
}

class StatisticalMinOrdering : public ::testing::TestWithParam<MinOrdering> {};

TEST_P(StatisticalMinOrdering, MatchesMonteCarloOnCorrelatedSet) {
  // Four correlated Gaussians with a one-factor structure.
  const std::vector<Gaussian> vars = {{5.0, 1.0}, {5.5, 1.5}, {6.0, 0.8}, {4.8, 1.2}};
  const std::vector<double> load = {0.6, 0.9, 0.4, 0.7};  // factor loadings (as sd fractions)
  const std::size_t n = vars.size();
  std::vector<double> cov(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cov[i * n + j] = i == j ? vars[i].variance()
                              : load[i] * vars[i].sd * load[j] * vars[j].sd;
    }
  }
  const Gaussian approx = statistical_min(vars, cov, GetParam());

  support::Rng rng(7);
  double sum = 0.0;
  double sum2 = 0.0;
  const int samples = 300000;
  for (int s = 0; s < samples; ++s) {
    const double f = rng.normal();
    double mn = 1e300;
    for (std::size_t i = 0; i < n; ++i) {
      const double indep = std::sqrt(std::max(0.0, 1.0 - load[i] * load[i]));
      const double x = vars[i].mean + vars[i].sd * (load[i] * f + indep * rng.normal());
      mn = std::min(mn, x);
    }
    sum += mn;
    sum2 += mn * mn;
  }
  const double mc_mean = sum / samples;
  const double mc_sd = std::sqrt(sum2 / samples - mc_mean * mc_mean);
  EXPECT_NEAR(approx.mean, mc_mean, 0.05);
  EXPECT_NEAR(approx.sd, mc_sd, 0.08);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, StatisticalMinOrdering,
                         ::testing::Values(MinOrdering::kSequential, MinOrdering::kByMean,
                                           MinOrdering::kGreedyTightness));

TEST(StatisticalMin, SingleElementIsExact) {
  const Gaussian g{2.0, 3.0};
  EXPECT_EQ(statistical_min_independent({g}).mean, 2.0);
  EXPECT_EQ(statistical_min_independent({g}).sd, 3.0);
}

TEST(StatisticalMin, EmptySetThrows) {
  EXPECT_THROW(statistical_min_independent({}), std::invalid_argument);
}

// --- Samples ----------------------------------------------------------------

TEST(Samples, ElementwiseArithmetic) {
  Samples a(std::vector<double>{1.0, 2.0, 3.0});
  Samples b(std::vector<double>{0.5, 0.5, 0.5});
  const Samples c = a * b + a;
  EXPECT_DOUBLE_EQ(c[0], 1.5);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 4.5);
}

TEST(Samples, MomentsAndWorstCase) {
  Samples s(std::vector<double>{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.worst_case(6.0), 5.0 + 12.0, 1e-9);
}

TEST(Samples, SizeMismatchThrows) {
  Samples a(3);
  Samples b(4);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Samples, CorrelationOfIdenticalVectorsIsOne) {
  Samples a(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(correlation(a, a), 1.0, 1e-12);
}

// --- DiscreteDistribution ----------------------------------------------------

TEST(Discrete, NormalisesWeightsAndSortsSupport) {
  DiscreteDistribution d({3.0, 1.0, 2.0}, {2.0, 1.0, 1.0});
  EXPECT_EQ(d.values()[0], 1.0);
  EXPECT_EQ(d.values()[2], 3.0);
  EXPECT_NEAR(d.weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(d.mean(), 0.25 * 1 + 0.25 * 2 + 0.5 * 3, 1e-12);
}

TEST(Discrete, MomentsOfBernoulli) {
  DiscreteDistribution d({0.0, 1.0}, {0.7, 0.3});
  EXPECT_NEAR(d.mean(), 0.3, 1e-12);
  EXPECT_NEAR(d.variance(), 0.21, 1e-12);
  // E|X - p|^3 = p(1-p)((1-p)^2 + p^2)
  EXPECT_NEAR(d.abs_central_moment3(), 0.3 * 0.7 * (0.49 + 0.09), 1e-12);
}

TEST(Discrete, CdfIsRightContinuousStep) {
  DiscreteDistribution d({1.0, 2.0}, {0.5, 0.5});
  EXPECT_EQ(d.cdf(0.99), 0.0);
  EXPECT_EQ(d.cdf(1.0), 0.5);
  EXPECT_EQ(d.cdf(1.5), 0.5);
  EXPECT_EQ(d.cdf(2.0), 1.0);
}

TEST(Discrete, CompactMergesNearbyAtoms) {
  DiscreteDistribution d({1.0, 1.0001, 5.0}, {1.0, 1.0, 2.0});
  const DiscreteDistribution c = d.compacted(0.01);
  EXPECT_EQ(c.support_size(), 2u);
  EXPECT_NEAR(c.mean(), d.mean(), 1e-9);
}

TEST(Discrete, CompactBucketSpanBoundedByTolerance) {
  // A chain of atoms each within tol of its neighbour must not collapse
  // into one bucket spanning far more than tol: buckets are anchored at
  // their first value, so each bucket covers at most [anchor, anchor+tol].
  const std::vector<double> values = {0.0, 0.009, 0.018, 0.027, 0.036};
  DiscreteDistribution d(values, {1.0, 1.0, 1.0, 1.0, 1.0});
  const double tol = 0.01;
  const DiscreteDistribution c = d.compacted(tol);
  EXPECT_EQ(c.support_size(), 3u);
  EXPECT_NEAR(c.mean(), d.mean(), 1e-12);
  // Every source atom sits within tol of the bucket it merged into.
  for (double v : values) {
    double best = 1e300;
    for (double cv : c.values()) best = std::min(best, std::fabs(cv - v));
    EXPECT_LE(best, tol) << "atom " << v << " drifted beyond tol";
  }
}

// --- PoissonMixture ----------------------------------------------------------

TEST(PoissonMixture, DegenerateLambdaEqualsPoisson) {
  const PoissonMixture pm({50.0, 0.0});
  for (std::int64_t k : {30, 45, 50, 55, 80})
    EXPECT_NEAR(pm.cdf(k), support::poisson_cdf(k, 50.0), 1e-12);
}

TEST(PoissonMixture, WiderLambdaWidensDistribution) {
  const PoissonMixture narrow({1000.0, 1.0});
  const PoissonMixture wide({1000.0, 100.0});
  // Variance formula.
  EXPECT_NEAR(narrow.variance(), 1000.0 + 1.0, 1e-9);
  EXPECT_NEAR(wide.variance(), 1000.0 + 10000.0, 1e-9);
  // The wide mixture has more mass far below the mean.
  EXPECT_GT(wide.cdf(900), narrow.cdf(900));
}

TEST(PoissonMixture, CdfIsMonotone) {
  const PoissonMixture pm({200.0, 30.0});
  double prev = -1.0;
  for (std::int64_t k = 100; k <= 300; k += 10) {
    const double c = pm.cdf(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(PoissonMixture, QuantileInvertsCdf) {
  const PoissonMixture pm({400.0, 50.0});
  for (double p : {0.1, 0.5, 0.9}) {
    const std::int64_t k = pm.quantile(p);
    EXPECT_GE(pm.cdf(k), p);
    if (k > 0) EXPECT_LT(pm.cdf(k - 1), p);
  }
}

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  std::vector<double> x;
  std::vector<double> w;
  gauss_legendre(8, 0.0, 2.0, x, w);
  double integral = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    integral += w[i] * (3.0 * x[i] * x[i] - x[i] + 1.0);  // 3x^2 - x + 1
  // Exact: x^3 - x^2/2 + x over [0,2] = 8 - 2 + 2 = 8.
  EXPECT_NEAR(integral, 8.0, 1e-10);
}

// --- Stein / Chen-Stein -------------------------------------------------------

TEST(Stein, BoundShrinksWithMoreVariables) {
  // n iid-ish uniform summands: the bound should scale like 1/sqrt(n).
  auto bound_for = [](int n) {
    SteinNormalInputs in;
    const double var1 = 1.0 / 12.0;  // uniform(0,1)
    in.sigma = std::sqrt(n * var1);
    in.sum_abs_central3 = n * 0.03125;  // E|U-1/2|^3 = 1/32
    in.sum_central4 = n * (1.0 / 80.0);
    in.max_dep = 1;
    return stein_normal_bound(in);
  };
  EXPECT_LT(bound_for(10000), bound_for(100));
  EXPECT_LT(bound_for(1000000), 0.05);
}

TEST(Stein, LargerNeighbourhoodsLoosenBound) {
  SteinNormalInputs a;
  a.sigma = 10.0;
  a.sum_abs_central3 = 5.0;
  a.sum_central4 = 2.0;
  a.max_dep = 1;
  SteinNormalInputs b = a;
  b.max_dep = 4;
  EXPECT_LT(stein_normal_bound(a), stein_normal_bound(b));
}

TEST(ChenStein, MatchesFormula) {
  ChenSteinInputs in;
  in.b1 = 0.02;
  in.b2 = 0.01;
  in.lambda = 3.0;
  EXPECT_NEAR(chen_stein_bound(in), 0.01, 1e-12);
  in.lambda = 0.5;  // min{1, 1/lambda} = 1
  EXPECT_NEAR(chen_stein_bound(in), 0.03, 1e-12);
}

TEST(ChenStein, CappedAtOne) {
  ChenSteinInputs in;
  in.b1 = 10.0;
  in.b2 = 10.0;
  in.lambda = 2.0;
  EXPECT_EQ(chen_stein_bound(in), 1.0);
}

TEST(ChenStein, PoissonApproximationOfBinomialWithinBound) {
  // W ~ Binomial(n, p) (independent indicators): Chen-Stein gives
  // d_TV <= min(1, 1/lambda) * n p^2.  Check the actual Kolmogorov distance
  // against Poisson(np) respects the bound.
  const int n = 2000;
  const double p = 0.002;
  const double lambda = n * p;
  ChenSteinInputs in;
  in.b1 = n * p * p;
  in.b2 = 0.0;
  in.lambda = lambda;
  const double bound = chen_stein_bound(in);

  // Exact binomial CDF vs Poisson CDF.
  double d = 0.0;
  double binom_cdf = 0.0;
  double log_pmf = n * std::log1p(-p);  // k = 0
  for (int k = 0; k <= 30; ++k) {
    binom_cdf += std::exp(log_pmf);
    d = std::max(d, std::fabs(binom_cdf - support::poisson_cdf(k, lambda)));
    log_pmf += std::log(static_cast<double>(n - k) / (k + 1.0)) + std::log(p) - std::log1p(-p);
  }
  EXPECT_LE(d, bound);
  EXPECT_GT(d, 0.0);
}

// --- Metrics -------------------------------------------------------------------

TEST(Metrics, KolmogorovOfIdenticalCdfsIsZero) {
  auto f = [](double x) { return support::normal_cdf(x); };
  std::vector<double> grid;
  for (double x = -4.0; x <= 4.0; x += 0.1) grid.push_back(x);
  EXPECT_EQ(kolmogorov_distance(f, f, grid), 0.0);
}

TEST(Metrics, KolmogorovDetectsShift) {
  auto f = [](double x) { return support::normal_cdf(x); };
  auto g = [](double x) { return support::normal_cdf(x - 1.0); };
  std::vector<double> grid;
  for (double x = -5.0; x <= 5.0; x += 0.01) grid.push_back(x);
  // Max |Phi(x) - Phi(x-1)| = Phi(0.5) - Phi(-0.5) ~ 0.3829.
  EXPECT_NEAR(kolmogorov_distance(f, g, grid), 0.3829, 0.001);
}

TEST(Metrics, KsStatisticOfSameSampleIsZero) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_EQ(ks_statistic(a, a), 0.0);
}

TEST(Metrics, TotalVariation) {
  EXPECT_NEAR(total_variation({0.5, 0.5, 0.0}, {0.25, 0.25, 0.5}), 0.5, 1e-12);
}

}  // namespace
}  // namespace terrors::stat
