// The report subsystem's three contracts:
//  1. Determinism (DESIGN §5e): attaching an AttributionCollector to
//     analyze() is bit-invisible — estimate, marginals, and every metric
//     outside report.*/pool.* are identical with and without it, at any
//     thread count.
//  2. Fidelity: the attribution decomposes the headline estimate — block
//     lambda contributions sum to lambda.mean, shares sum to one, and the
//     JSON schema round-trips byte-stably.
//  3. Gating: diff_reports accepts an unchanged report and flags an
//     injected regression (the CLI maps ok() onto its exit code).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/attribution.hpp"
#include "report/diff.hpp"
#include "report/json_value.hpp"
#include "report/render.hpp"
#include "report/run_report.hpp"
#include "support/thread_pool.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

core::FrameworkConfig small_config() {
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  cfg.executor.max_instructions = 8000;
  cfg.error_model.mixed_samples = 32;
  return cfg;
}

const workloads::WorkloadSpec& spec_named(const char* name) {
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return workloads::mibench_specs()[0];
}

/// Metrics snapshot comparable across runs: every registered metric value
/// except the report.* namespace (the collector's own), the pool.* gauges
/// (process-cumulative, they track thread-pool resizes), and
/// dta.dp_cache_collisions, which counts losses of concurrent DP-cache
/// insert races and so varies between identical multi-threaded runs even
/// with no observer attached.
std::map<std::string, double> metrics_snapshot() {
  std::ostringstream os;
  obs::MetricsRegistry::instance().write_json(os);
  const report::JsonValue doc = report::JsonValue::parse(os.str());
  std::map<std::string, double> out;
  const auto keep = [](const std::string& name) {
    return name.rfind("report.", 0) != 0 && name.rfind("pool.", 0) != 0 &&
           name != "dta.dp_cache_collisions";
  };
  for (const auto& [name, v] : doc.at("counters").members()) {
    if (keep(name)) out["c:" + name] = v.as_number();
  }
  for (const auto& [name, v] : doc.at("gauges").members()) {
    if (keep(name)) out["g:" + name] = v.as_number();
  }
  for (const auto& [name, v] : doc.at("histograms").members()) {
    if (!keep(name)) continue;
    for (const auto& [field, fv] : v.members()) out["h:" + name + "." + field] = fv.as_number();
  }
  return out;
}

struct ObservedRun {
  core::BenchmarkResult result;
  std::vector<core::BlockMarginals> marginals;
  std::map<std::string, double> metrics;
};

ObservedRun analyze_once(const workloads::WorkloadSpec& spec, std::size_t threads,
                         core::AnalysisObserver* observer) {
  support::set_global_threads(threads);
  obs::MetricsRegistry::instance().reset();
  core::ErrorRateFramework fw(pipeline(), small_config());
  ObservedRun run;
  run.result =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 2, 7),
                 observer);
  run.marginals = fw.last().marginals;
  run.metrics = metrics_snapshot();
  return run;
}

class ReportDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { support::set_global_threads(1); }
};

TEST_F(ReportDeterminism, CollectorIsBitInvisibleAtOneAndFourThreads) {
  const auto& spec = spec_named("pgp.encode");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ObservedRun plain = analyze_once(spec, threads, nullptr);
    report::AttributionCollector collector;
    const ObservedRun observed = analyze_once(spec, threads, &collector);

    // Estimate: bitwise identical (EXPECT_EQ on doubles is ==).
    EXPECT_EQ(plain.result.estimate.rate_mean(), observed.result.estimate.rate_mean());
    EXPECT_EQ(plain.result.estimate.rate_sd(), observed.result.estimate.rate_sd());
    EXPECT_EQ(plain.result.estimate.lambda.mean, observed.result.estimate.lambda.mean);
    EXPECT_EQ(plain.result.estimate.lambda.sd, observed.result.estimate.lambda.sd);
    EXPECT_EQ(plain.result.estimate.dk_lambda, observed.result.estimate.dk_lambda);
    EXPECT_EQ(plain.result.estimate.dk_count, observed.result.estimate.dk_count);

    // Marginals: bitwise identical.
    ASSERT_EQ(plain.marginals.size(), observed.marginals.size());
    for (std::size_t b = 0; b < plain.marginals.size(); ++b) {
      EXPECT_EQ(plain.marginals[b].p_in.values(), observed.marginals[b].p_in.values());
      ASSERT_EQ(plain.marginals[b].instr.size(), observed.marginals[b].instr.size());
      for (std::size_t k = 0; k < plain.marginals[b].instr.size(); ++k)
        EXPECT_EQ(plain.marginals[b].instr[k].values(), observed.marginals[b].instr[k].values());
    }

    // Metrics outside report.*/pool.*: identical values.
    EXPECT_EQ(plain.metrics, observed.metrics);
  }
}

class ReportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    support::set_global_threads(1);
    fw_ = std::make_unique<core::ErrorRateFramework>(pipeline(), small_config());
    program_ = workloads::generate_program(spec_named("pgp.decode"));
    result_ = fw_->analyze(program_, workloads::generate_inputs(spec_named("pgp.decode"), 2, 7),
                           &collector_);
    built_ = collector_.build(*fw_, program_, result_);
  }

  report::AttributionCollector collector_;
  std::unique_ptr<core::ErrorRateFramework> fw_;
  isa::Program program_{"empty"};
  core::BenchmarkResult result_;
  report::RunReport built_;
};

TEST_F(ReportFixture, BlockAttributionSumsToHeadlineLambda) {
  ASSERT_FALSE(built_.blocks.empty());
  double lambda_sum = 0.0;
  double share_sum = 0.0;
  for (const auto& b : built_.blocks) {
    lambda_sum += b.lambda_mean;
    share_sum += b.share;
  }
  EXPECT_NEAR(lambda_sum, built_.lambda_mean, 1e-9 * std::abs(built_.lambda_mean));
  EXPECT_NEAR(share_sum, 1.0, 1e-9);

  // Opcode error mass is the same decomposition grouped differently.
  double opcode_sum = 0.0;
  for (const auto& oc : built_.opcodes) opcode_sum += oc.error_mass;
  EXPECT_NEAR(opcode_sum, built_.lambda_mean, 1e-9 * std::abs(built_.lambda_mean));
}

TEST_F(ReportFixture, AttributionTablesAreWellFormed) {
  EXPECT_EQ(built_.schema_version, report::kSchemaVersion);
  EXPECT_EQ(built_.program, "pgp.decode");
  EXPECT_EQ(built_.basic_blocks, result_.basic_blocks);
  EXPECT_EQ(built_.rate_mean, result_.estimate.rate_mean());

  // Blocks are sorted heaviest-first and reference real CFG content.
  for (std::size_t i = 1; i < built_.blocks.size(); ++i)
    EXPECT_GE(built_.blocks[i - 1].lambda_mean, built_.blocks[i].lambda_mean);
  for (const auto& b : built_.blocks) {
    ASSERT_LT(b.block, program_.block_count());
    EXPECT_EQ(b.instrs.size(), program_.block(b.block).instructions.size());
    for (const auto& e : b.edges) EXPECT_LT(e.from_block, program_.block_count());
  }

  // One stage entry per pipeline stage; culprits sorted tightest-first.
  EXPECT_EQ(built_.stages.size(), netlist::Pipeline::kStages);
  ASSERT_FALSE(built_.culprits.empty());
  EXPECT_LE(built_.culprits.size(), collector_.config().top_k_paths);
  for (std::size_t i = 1; i < built_.culprits.size(); ++i)
    EXPECT_LE(built_.culprits[i - 1].slack_mean, built_.culprits[i].slack_mean);

  // The marginal solve visited at least one component.
  EXPECT_GT(built_.solver.scc_count, 0u);
  EXPECT_EQ(built_.mc.enabled, false);
}

TEST_F(ReportFixture, JsonRoundTripIsByteStable) {
  std::ostringstream first;
  built_.write_json(first);
  const report::RunReport reread =
      report::RunReport::from_json(report::JsonValue::parse(first.str()));
  std::ostringstream second;
  reread.write_json(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(ReportFixture, FromJsonRejectsWrongKindAndVersion) {
  EXPECT_THROW(report::RunReport::from_json(report::JsonValue::parse("{\"kind\":\"other\"}")),
               std::runtime_error);
  std::ostringstream os;
  built_.write_json(os);
  std::string doc = os.str();
  const std::string needle = "\"schema_version\":1";
  const std::size_t at = doc.find(needle);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, needle.size(), "\"schema_version\":999");
  EXPECT_THROW(report::RunReport::from_json(report::JsonValue::parse(doc)), std::runtime_error);
}

TEST_F(ReportFixture, RenderMentionsHeadlineAndTables) {
  std::ostringstream os;
  report::write_text(built_, os, 5);
  const std::string text = os.str();
  EXPECT_NE(text.find("run report (schema v1): pgp.decode"), std::string::npos);
  EXPECT_NE(text.find("blocks by error mass"), std::string::npos);
  EXPECT_NE(text.find("culprit paths"), std::string::npos);
  EXPECT_NE(text.find("solver:"), std::string::npos);
}

TEST_F(ReportFixture, DiffAcceptsUnchangedAndFlagsInjectedRegression) {
  const report::DiffResult same = report::diff_reports(built_, built_, {});
  EXPECT_TRUE(same.ok());
  EXPECT_EQ(same.regressions(), 0u);

  report::RunReport worse = built_;
  worse.rate_mean *= 1.10;  // 10% accuracy regression vs 1% tolerance
  const report::DiffResult bad = report::diff_reports(built_, worse, {});
  EXPECT_FALSE(bad.ok());
  EXPECT_GE(bad.regressions(), 1u);
  // Violations sort first and are labelled.
  ASSERT_FALSE(bad.entries.empty());
  EXPECT_TRUE(bad.entries.front().regression);

  // Structural mismatch is an error, not a diff row.
  report::RunReport other = built_;
  other.program = "different";
  EXPECT_THROW(report::diff_reports(built_, other, {}), std::runtime_error);

  // The runtime gate only participates when enabled.
  report::RunReport slow = built_;
  slow.training_seconds = built_.training_seconds * 10.0 + 1.0;
  EXPECT_TRUE(report::diff_reports(built_, slow, {}).ok());
  report::DiffOptions gated;
  gated.max_runtime_ratio = 1.5;
  EXPECT_FALSE(report::diff_reports(built_, slow, gated).ok());

  std::ostringstream os;
  report::write_diff(bad, os);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(os.str().find("FAIL"), std::string::npos);
}

TEST(ReportMonteCarlo, DivergenceDiagnosticIsPopulated) {
  support::set_global_threads(1);
  auto cfg = small_config();
  cfg.executor.record_block_trace = true;
  core::ErrorRateFramework fw(pipeline(), cfg);
  const auto& spec = spec_named("pgp.encode");
  const isa::Program program = workloads::generate_program(spec);
  report::CollectorConfig ccfg;
  ccfg.mc_trials = 200;
  report::AttributionCollector collector(ccfg);
  const auto r = fw.analyze(program, workloads::generate_inputs(spec, 2, 7), &collector);
  const report::RunReport rep = collector.build(fw, program, r);
  EXPECT_TRUE(rep.mc.enabled);
  EXPECT_EQ(rep.mc.trials, 200u);
  EXPECT_GE(rep.mc.divergence, 0.0);
  EXPECT_LE(rep.mc.divergence, 1.0);
}

TEST(TraceExport, FourThreadAnalyzeEmitsParsableEventsWithTids) {
  obs::Tracer::instance().reset();
  obs::Tracer::instance().set_enabled(true);
  support::set_global_threads(4);
  {
    core::ErrorRateFramework fw(pipeline(), small_config());
    const auto& spec = spec_named("pgp.decode");
    (void)fw.analyze(workloads::generate_program(spec),
                     workloads::generate_inputs(spec, 2, 7));
  }
  support::set_global_threads(1);
  obs::Tracer::instance().set_enabled(false);
  std::ostringstream os;
  obs::Tracer::instance().write_chrome_trace(os);

  const report::JsonValue doc = report::JsonValue::parse(os.str());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    const report::JsonValue* tid = e.find("tid");
    ASSERT_NE(tid, nullptr);
    EXPECT_TRUE(tid->is_number());
  }
  obs::Tracer::instance().reset();
}

}  // namespace
}  // namespace terrors
