#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/gate.hpp"
#include "netlist/netlist.hpp"
#include "netlist/pipeline.hpp"

namespace terrors::netlist {
namespace {

TEST(GateLibrary, ArityAndDelayTable) {
  EXPECT_EQ(info(GateKind::kInv).arity, 1);
  EXPECT_EQ(info(GateKind::kMux2).arity, 3);
  EXPECT_EQ(info(GateKind::kDff).arity, 1);
  EXPECT_FALSE(info(GateKind::kDff).combinational);
  EXPECT_TRUE(info(GateKind::kXor2).combinational);
  EXPECT_GT(info(GateKind::kXor2).delay_ps, info(GateKind::kInv).delay_ps);
}

TEST(GateLibrary, EvalTruthTables) {
  const bool f = false;
  const bool t = true;
  EXPECT_TRUE(eval_gate(GateKind::kInv, std::array{f}));
  EXPECT_FALSE(eval_gate(GateKind::kAnd2, std::array{t, f}));
  EXPECT_TRUE(eval_gate(GateKind::kNand2, std::array{t, f}));
  EXPECT_TRUE(eval_gate(GateKind::kOr2, std::array{t, f}));
  EXPECT_FALSE(eval_gate(GateKind::kNor2, std::array{t, f}));
  EXPECT_TRUE(eval_gate(GateKind::kXor2, std::array{t, f}));
  EXPECT_FALSE(eval_gate(GateKind::kXnor2, std::array{t, f}));
  // mux(a, b, sel): sel ? b : a
  EXPECT_FALSE(eval_gate(GateKind::kMux2, std::array{f, t, f}));
  EXPECT_TRUE(eval_gate(GateKind::kMux2, std::array{f, t, t}));
}

TEST(Netlist, FinalizeRejectsUnwiredFanin) {
  Netlist nl;
  const GateId in = nl.add(GateKind::kInput);
  (void)in;
  nl.add(GateKind::kInv);  // fanin left unwired
  EXPECT_THROW(nl.finalize(1), std::invalid_argument);
}

TEST(Netlist, FinalizeRejectsCombinationalCycle) {
  Netlist nl;
  const GateId a = nl.add(GateKind::kInv);
  const GateId b = nl.add(GateKind::kInv, {a, kNoGate, kNoGate});
  nl.set_fanin(a, 0, b);
  EXPECT_THROW(nl.finalize(1), std::invalid_argument);
}

TEST(Netlist, SequentialLoopIsLegal) {
  // A DFF feeding an inverter feeding the DFF: a toggle register.
  Netlist nl;
  const GateId q = nl.add(GateKind::kDff);
  const GateId inv = nl.add(GateKind::kInv, {q, kNoGate, kNoGate});
  nl.set_fanin(q, 0, inv);
  EXPECT_NO_THROW(nl.finalize(1));
  EXPECT_EQ(nl.topo_order().size(), 1u);
  EXPECT_EQ(nl.stage_endpoints(0).size(), 1u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  NetlistBuilder b(support::Rng(1));
  auto w = b.input_word("a", 4);
  auto inv = b.not_word(w);
  auto r = b.dff_word("r", 4, EndpointClass::kData);
  b.connect_word(r, inv);
  Netlist& nl = b.netlist();
  nl.finalize(1);
  // Every gate must appear after all of its combinational fanins.
  std::vector<int> pos(nl.size(), -1);
  int idx = 0;
  for (GateId g : nl.topo_order()) pos[g] = idx++;
  for (GateId g : nl.topo_order()) {
    for (int s = 0; s < nl.gate(g).arity(); ++s) {
      const GateId f = nl.gate(g).fanin[static_cast<std::size_t>(s)];
      if (info(nl.gate(f).kind).combinational) EXPECT_LT(pos[f], pos[g]);
    }
  }
}

TEST(Netlist, EndpointClassOnlyOnCaptureEndpoints) {
  Netlist nl;
  const GateId in = nl.add(GateKind::kInput);
  EXPECT_THROW(nl.set_endpoint_class(in, EndpointClass::kData), std::invalid_argument);
  const GateId q = nl.add(GateKind::kDff, {in, kNoGate, kNoGate});
  EXPECT_NO_THROW(nl.set_endpoint_class(q, EndpointClass::kControl));
}

TEST(Builder, AdderHasExpectedStructure) {
  NetlistBuilder b(support::Rng(2));
  auto x = b.input_word("x", 8);
  auto y = b.input_word("y", 8);
  auto r = b.ripple_adder(x, y);
  EXPECT_EQ(r.sum.size(), 8u);
  EXPECT_NE(r.carry_out, kNoGate);
  // 5 gates per full adder (2 xor, 2 and, 1 or) + the constant carry-in.
  auto& nl = b.netlist();
  std::size_t comb = 0;
  for (GateId g = 0; g < nl.size(); ++g)
    if (info(nl.gate(g).kind).combinational) ++comb;
  EXPECT_EQ(comb, 8u * 5u);
}

TEST(Builder, MuxTreeRequiresPowerOfTwoOptions) {
  NetlistBuilder b(support::Rng(3));
  auto a = b.input_word("a", 4);
  auto c = b.input_word("c", 4);
  auto sel = b.input_word("sel", 1);
  EXPECT_NO_THROW(b.mux_tree({a, c}, sel));
  EXPECT_THROW(b.mux_tree({a, c, a}, sel), std::invalid_argument);
}

TEST(Builder, DelayJitterPerturbsDelays) {
  NetlistBuilder b(support::Rng(4));
  b.set_delay_jitter(0.2);
  auto x = b.input_word("x", 16);
  auto y = b.input_word("y", 16);
  b.ripple_adder(x, y);
  auto& nl = b.netlist();
  // Among the XOR gates there should be delay diversity.
  double min_d = 1e9;
  double max_d = 0.0;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.gate(g).kind != GateKind::kXor2) continue;
    min_d = std::min<double>(min_d, nl.gate(g).delay_ps);
    max_d = std::max<double>(max_d, nl.gate(g).delay_ps);
  }
  EXPECT_GT(max_d, min_d * 1.1);
}

TEST(Builder, RandomCloudIsDeterministicInSeed) {
  auto build = [](std::uint64_t seed) {
    NetlistBuilder b{support::Rng(seed)};
    auto in = b.input_word("i", 8);
    b.random_cloud(in, 16, 4);
    return b.netlist().size();
  };
  EXPECT_EQ(build(5), build(5));
}

TEST(Pipeline, BuildsAndFinalizes) {
  PipelineConfig cfg;
  cfg.width = 32;
  const Pipeline p = build_pipeline(cfg);
  EXPECT_TRUE(p.netlist.finalized());
  EXPECT_EQ(p.netlist.stage_count(), Pipeline::kStages);
  const auto stats = p.netlist.stats();
  EXPECT_GT(stats.gates, 2000u);
  EXPECT_GT(stats.dffs, 200u);
  // Every stage has capture endpoints.
  for (std::uint8_t s = 0; s < Pipeline::kStages; ++s)
    EXPECT_FALSE(p.netlist.stage_endpoints(s).empty()) << "stage " << int(s);
}

TEST(Pipeline, HasBothEndpointClasses) {
  const Pipeline p = build_pipeline({});
  std::size_t control = 0;
  std::size_t data = 0;
  for (std::uint8_t s = 0; s < Pipeline::kStages; ++s) {
    for (GateId e : p.netlist.stage_endpoints(s)) {
      if (p.netlist.gate(e).endpoint_class == EndpointClass::kControl) ++control;
      if (p.netlist.gate(e).endpoint_class == EndpointClass::kData) ++data;
    }
  }
  EXPECT_GT(control, 50u);
  EXPECT_GT(data, 100u);
}

TEST(Pipeline, PlacementSpansStageColumns) {
  const Pipeline p = build_pipeline({});
  float min_x = 1e9f;
  float max_x = -1e9f;
  for (GateId g = 0; g < p.netlist.size(); ++g) {
    min_x = std::min(min_x, p.netlist.gate(g).x);
    max_x = std::max(max_x, p.netlist.gate(g).x);
  }
  EXPECT_LT(min_x, 1.0f);
  EXPECT_GT(max_x, 5.0f);
}

TEST(Pipeline, DeterministicInSeed) {
  PipelineConfig cfg;
  cfg.seed = 77;
  const Pipeline a = build_pipeline(cfg);
  const Pipeline b = build_pipeline(cfg);
  ASSERT_EQ(a.netlist.size(), b.netlist.size());
  for (GateId g = 0; g < a.netlist.size(); ++g) {
    EXPECT_EQ(a.netlist.gate(g).kind, b.netlist.gate(g).kind);
    EXPECT_EQ(a.netlist.gate(g).delay_ps, b.netlist.gate(g).delay_ps);
  }
}

}  // namespace
}  // namespace terrors::netlist
