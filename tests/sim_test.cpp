#include <gtest/gtest.h>

#include <sstream>

#include "netlist/builder.hpp"
#include "netlist/pipeline.hpp"
#include "sim/activation.hpp"
#include "sim/logic_sim.hpp"
#include "sim/vcd.hpp"
#include "support/rng.hpp"

namespace terrors::sim {
namespace {

using netlist::EndpointClass;
using netlist::GateId;
using netlist::GateKind;
using netlist::NetlistBuilder;
using netlist::Pipeline;
using netlist::PipelineConfig;
using netlist::Word;

struct AluFixture {
  NetlistBuilder b{support::Rng(1)};
  Word x, y, sum, and_w, xor_w, shl;
  GateId eq = netlist::kNoGate, carry = netlist::kNoGate;

  AluFixture() {
    x = b.input_word("x", 16);
    y = b.input_word("y", 16);
    auto add = b.ripple_adder(x, y);
    sum = add.sum;
    carry = add.carry_out;
    and_w = b.and_word(x, y);
    xor_w = b.xor_word(x, y);
    Word amt(x.begin(), x.begin() + 4);
    shl = b.shift_left(y, amt);
    eq = b.equals(x, y);
    b.netlist().finalize(1);
  }
};

class AluFunctional : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AluFunctional, MatchesIntegerSemantics) {
  AluFixture f;
  LogicSimulator sim(f.b.netlist());
  support::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = rng.next_u64() & 0xFFFF;
    const std::uint64_t c = rng.next_u64() & 0xFFFF;
    sim.set_input_word(f.x, a);
    sim.set_input_word(f.y, c);
    sim.step();
    EXPECT_EQ(sim.value_word(f.sum), (a + c) & 0xFFFF);
    EXPECT_EQ(sim.value(f.carry), ((a + c) >> 16) & 1);
    EXPECT_EQ(sim.value_word(f.and_w), a & c);
    EXPECT_EQ(sim.value_word(f.xor_w), a ^ c);
    EXPECT_EQ(sim.value_word(f.shl), (c << (a & 0xF)) & 0xFFFF);
    EXPECT_EQ(sim.value(f.eq), a == c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluFunctional, ::testing::Values(11u, 22u, 33u, 44u));

class CarrySelectFunctional : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CarrySelectFunctional, MatchesIntegerAddition) {
  NetlistBuilder b{support::Rng(8)};
  auto x = b.input_word("x", 16);
  auto y = b.input_word("y", 16);
  auto cs = b.carry_select_adder(x, y, 4);
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  support::Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t a = rng.next_u64() & 0xFFFF;
    const std::uint64_t c = rng.next_u64() & 0xFFFF;
    sim.set_input_word(x, a);
    sim.set_input_word(y, c);
    sim.step();
    EXPECT_EQ(sim.value_word(cs.sum), (a + c) & 0xFFFF);
    EXPECT_EQ(sim.value(cs.carry_out), ((a + c) >> 16) & 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CarrySelectFunctional, ::testing::Values(3u, 7u));

TEST(LogicSim, CarrySelectPipelineComputesAdds) {
  netlist::PipelineConfig cfg;
  cfg.ex_adder = netlist::AdderKind::kCarrySelect;
  const Pipeline p = netlist::build_pipeline(cfg);
  LogicSimulator sim(p.netlist);
  const std::uint64_t a = 0xCAFEBABEull;
  const std::uint64_t c = 0x31415926ull;
  auto zero_all = [&] {
    for (GateId g : p.netlist.inputs()) sim.set_input(g, false);
  };
  zero_all();
  sim.step();
  zero_all();
  sim.set_input_word(p.ports.op_a, a);
  sim.set_input_word(p.ports.op_b, c);
  sim.step();
  zero_all();
  sim.step();
  zero_all();
  sim.step();
  sim.step();
  EXPECT_EQ(sim.value_word(p.taps.ex_result_reg), (a + c) & 0xFFFFFFFFull);
}

TEST(LogicSim, DecoderIsOneHot) {
  NetlistBuilder b(support::Rng(2));
  auto sel = b.input_word("sel", 3);
  auto dec = b.decoder(sel);
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  for (std::uint64_t v = 0; v < 8; ++v) {
    sim.set_input_word(sel, v);
    sim.step();
    EXPECT_EQ(sim.value_word(dec), 1ull << v);
  }
}

TEST(LogicSim, DffCapturesPreviousCycleValue) {
  NetlistBuilder b(support::Rng(3));
  const GateId in = b.input("d");
  const GateId q = b.dff("q", EndpointClass::kControl);
  b.connect(q, in);
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  sim.set_input(in, true);
  sim.step();  // cycle 1: input=1 settles, q still captured old 0
  EXPECT_FALSE(sim.value(q));
  sim.set_input(in, false);
  sim.step();  // cycle 2: q captures the 1 settled in cycle 1
  EXPECT_TRUE(sim.value(q));
  sim.step();
  EXPECT_FALSE(sim.value(q));
}

TEST(LogicSim, ActivationMatchesValueChanges) {
  NetlistBuilder b(support::Rng(4));
  auto x = b.input_word("x", 8);
  auto y = b.input_word("y", 8);
  auto add = b.ripple_adder(x, y);
  (void)add;
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  sim.set_input_word(x, 0);
  sim.set_input_word(y, 0);
  sim.step();
  sim.step();  // steady state: nothing changes
  std::size_t active = 0;
  for (GateId g = 0; g < b.netlist().size(); ++g) active += sim.activated(g) ? 1 : 0;
  EXPECT_EQ(active, 0u);
  // Flip one LSB: the carry chain of 0 + 1 has no propagation, so only a
  // handful of gates toggle.
  sim.set_input_word(x, 1);
  sim.step();
  EXPECT_TRUE(sim.activated(x[0]));
  EXPECT_TRUE(sim.activated(add.sum[0]));
  EXPECT_FALSE(sim.activated(add.sum[7]));
}

TEST(LogicSim, CarryChainActivationDependsOnOperands) {
  NetlistBuilder b(support::Rng(5));
  auto x = b.input_word("x", 16);
  auto y = b.input_word("y", 16);
  auto add = b.ripple_adder(x, y);
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  sim.set_input_word(x, 0);
  sim.set_input_word(y, 0);
  sim.step();
  // 0xFFFF + 1 ripples the carry through every bit.
  sim.set_input_word(x, 0xFFFF);
  sim.step();
  sim.set_input_word(y, 1);
  sim.step();
  EXPECT_TRUE(sim.activated(add.sum[15]));
  EXPECT_TRUE(sim.activated(add.carry_out));
}

TEST(LogicSim, ForceStateOverridesDff) {
  NetlistBuilder b(support::Rng(6));
  const GateId in = b.input("d");
  const GateId q = b.dff("q", EndpointClass::kControl);
  b.connect(q, in);
  const GateId inv = b.gate(GateKind::kInv, q);
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  sim.force_state(q, true);
  EXPECT_TRUE(sim.value(q));
  (void)inv;
}

TEST(ActivationTrace, RecordsAndQueries) {
  ActivationTrace tr(130);
  std::vector<std::uint8_t> flags(130, 0);
  flags[0] = 1;
  flags[64] = 1;
  flags[129] = 1;
  tr.record(flags);
  std::fill(flags.begin(), flags.end(), 0);
  tr.record(flags);
  EXPECT_EQ(tr.cycles(), 2u);
  EXPECT_TRUE(tr.activated(0, 0));
  EXPECT_TRUE(tr.activated(0, 64));
  EXPECT_TRUE(tr.activated(0, 129));
  EXPECT_FALSE(tr.activated(0, 1));
  EXPECT_FALSE(tr.activated(1, 0));
  EXPECT_THROW(tr.activated(2, 0), std::invalid_argument);
}

TEST(Vcd, EmitsValidHeaderAndChanges) {
  NetlistBuilder b(support::Rng(7));
  const GateId in = b.input("toggler");
  const GateId q = b.dff("state", EndpointClass::kControl);
  b.connect(q, in);
  b.netlist().finalize(1);
  LogicSimulator sim(b.netlist());
  std::ostringstream out;
  VcdWriter vcd(out, b.netlist(), {in, q});
  for (int t = 0; t < 4; ++t) {
    sim.set_input(in, t % 2 == 0);
    sim.step();
    vcd.sample(sim);
  }
  const std::string s = out.str();
  EXPECT_NE(s.find("$timescale"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(s.find("toggler"), std::string::npos);
  EXPECT_NE(s.find("#0"), std::string::npos);
}

TEST(PipelineSim, AddFlowsThroughDatapath) {
  const Pipeline p = netlist::build_pipeline({});
  LogicSimulator sim(p.netlist);
  const std::uint64_t a = 0x12345678u;
  const std::uint64_t c = 0x0FEDCBA9u;

  auto drive_defaults = [&] {
    sim.set_input_word(p.ports.instr, 0);
    sim.set_input_word(p.ports.branch_target, 0);
    sim.set_input(p.ports.branch_taken, false);
    sim.set_input_word(p.ports.op_a, 0);
    sim.set_input_word(p.ports.op_b, 0);
    sim.set_input_word(p.ports.bypass_a, 0);
    sim.set_input_word(p.ports.bypass_b, 0);
    sim.set_input_word(p.ports.alu_sel, 0);  // add
    sim.set_input(p.ports.sel_imm, false);
    sim.set_input(p.ports.sub_mode, false);
    sim.set_input(p.ports.shift_dir, false);
    sim.set_input_word(p.ports.logic_sel, 0);
    sim.set_input_word(p.ports.mem_data, 0);
    sim.set_input(p.ports.mem_is_load, false);
    sim.set_input_word(p.ports.ctrl_noise, 0);
  };

  // Cycle 0: instruction enters FE (we only care about the datapath).
  drive_defaults();
  sim.step();
  // Cycle 1 (DE): register-file read values arrive.
  drive_defaults();
  sim.set_input_word(p.ports.op_a, a);
  sim.set_input_word(p.ports.op_b, c);
  sim.step();
  // Cycle 2 (RA): no bypassing.
  drive_defaults();
  sim.step();
  // Cycle 3 (EX): ALU add; result is captured at the end of this cycle.
  drive_defaults();
  sim.step();
  sim.step();  // result visible on ex_result_reg outputs in cycle 4
  EXPECT_EQ(sim.value_word(p.taps.ex_result_reg), (a + c) & 0xFFFFFFFFull);
  // Cycle 5: memory pass-through into me_result.
  sim.step();
  EXPECT_EQ(sim.value_word(p.taps.me_result_reg), (a + c) & 0xFFFFFFFFull);
}

TEST(PipelineSim, SubtractAndLogicOps) {
  const Pipeline p = netlist::build_pipeline({});
  LogicSimulator sim(p.netlist);
  const std::uint64_t a = 0xDEADBEEFull;
  const std::uint64_t c = 0x12345678ull;

  auto zero_all = [&] {
    for (GateId g : p.netlist.inputs()) sim.set_input(g, false);
  };
  // Subtract.
  zero_all();
  sim.step();
  zero_all();
  sim.set_input_word(p.ports.op_a, a);
  sim.set_input_word(p.ports.op_b, c);
  sim.step();
  zero_all();
  sim.step();
  zero_all();
  sim.set_input(p.ports.sub_mode, true);
  sim.set_input_word(p.ports.alu_sel, 0);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.value_word(p.taps.ex_result_reg), (a - c) & 0xFFFFFFFFull);

  // XOR (alu_sel = 1 selects the logic unit, logic_sel = 2 selects xor).
  zero_all();
  sim.step();
  zero_all();
  sim.set_input_word(p.ports.op_a, a);
  sim.set_input_word(p.ports.op_b, c);
  sim.step();
  zero_all();
  sim.step();
  zero_all();
  sim.set_input_word(p.ports.alu_sel, 1);
  sim.set_input_word(p.ports.logic_sel, 2);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.value_word(p.taps.ex_result_reg), (a ^ c) & 0xFFFFFFFFull);
}

}  // namespace
}  // namespace terrors::sim
