// Determinism contract of the parallel estimation engine: analyze() must
// be bit-identical at any thread count (results land in pre-sized slots
// keyed by index; no reduction order depends on scheduling), and the
// thread pool must propagate worker exceptions to the caller and stay
// usable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "dta/dts_analyzer.hpp"
#include "netlist/pipeline.hpp"
#include "support/thread_pool.hpp"
#include "timing/sta.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

core::FrameworkConfig small_config() {
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  cfg.executor.max_instructions = 8000;
  cfg.error_model.mixed_samples = 32;
  return cfg;
}

const workloads::WorkloadSpec& spec_named(const char* name) {
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return workloads::mibench_specs()[0];
}

/// Everything analyze() produces that the determinism contract covers.
struct AnalyzeSnapshot {
  double rate_mean = 0.0;
  double rate_sd = 0.0;
  std::vector<core::BlockMarginals> marginals;
};

AnalyzeSnapshot analyze_with_threads(const workloads::WorkloadSpec& spec, std::size_t threads) {
  support::set_global_threads(threads);
  core::ErrorRateFramework fw(pipeline(), small_config());
  const auto r =
      fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 2, 7));
  AnalyzeSnapshot snap;
  snap.rate_mean = r.estimate.rate_mean();
  snap.rate_sd = r.estimate.rate_sd();
  snap.marginals = fw.last().marginals;
  return snap;
}

/// Exact (bitwise) equality — EXPECT_EQ on doubles is ==, not near.
void expect_identical(const AnalyzeSnapshot& a, const AnalyzeSnapshot& b,
                      std::size_t threads_b) {
  SCOPED_TRACE("threads=" + std::to_string(threads_b) + " vs serial");
  EXPECT_EQ(a.rate_mean, b.rate_mean);
  EXPECT_EQ(a.rate_sd, b.rate_sd);
  ASSERT_EQ(a.marginals.size(), b.marginals.size());
  for (std::size_t i = 0; i < a.marginals.size(); ++i) {
    const auto& ma = a.marginals[i];
    const auto& mb = b.marginals[i];
    EXPECT_EQ(ma.executed, mb.executed);
    EXPECT_EQ(ma.p_in.values(), mb.p_in.values());
    ASSERT_EQ(ma.instr.size(), mb.instr.size());
    for (std::size_t k = 0; k < ma.instr.size(); ++k)
      EXPECT_EQ(ma.instr[k].values(), mb.instr[k].values());
  }
}

class AnalyzeDeterminism : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { support::set_global_threads(1); }
};

TEST_P(AnalyzeDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto& spec = spec_named(GetParam());
  const AnalyzeSnapshot serial = analyze_with_threads(spec, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const AnalyzeSnapshot parallel = analyze_with_threads(spec, threads);
    expect_identical(serial, parallel, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(TwoWorkloads, AnalyzeDeterminism,
                         ::testing::Values("pgp.encode", "pgp.decode"));

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 3, [&](std::size_t i, std::size_t worker) {
      ASSERT_LT(worker, pool.size());
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialPoolRunsInOrderInline) {
  support::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no lock needed: inline execution
  });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, std::size_t) {
                          if (i == 37) throw std::runtime_error("boom at 37");
                        }),
      std::runtime_error);

  // The pool must have quiesced: the next loop runs normally.
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i, std::size_t) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);

  // Serial pools rethrow too (inline path).
  support::ThreadPool serial(1);
  EXPECT_THROW(serial.parallel_for(
                   10, [&](std::size_t i, std::size_t) {
                     if (i == 3) throw std::logic_error("serial boom");
                   }),
               std::logic_error);
}

TEST(ThreadPool, GlobalPoolResizesLazily) {
  support::set_global_threads(3);
  EXPECT_EQ(support::global_pool().size(), 3u);
  EXPECT_EQ(support::global_threads(), 3u);
  support::set_global_threads(1);
  EXPECT_EQ(support::global_pool().size(), 1u);
}

TEST(CycleActivation, ConcurrentArrivalsInitIsSafeAndConsistent) {
  // Regression: arrivals() lazily builds the activated-subgraph table;
  // concurrent first calls from several threads must produce one
  // consistent table (call_once), not a torn vector.
  const auto& nl = pipeline().netlist;
  dta::CycleActivation cycle(nl, std::vector<std::uint8_t>(nl.size(), 1));
  const std::vector<double> expected = timing::activated_arrivals(
      nl, std::vector<std::uint8_t>(nl.size(), 1));

  std::vector<std::thread> threads;
  std::vector<const std::vector<double>*> seen(8, nullptr);
  for (std::size_t t = 0; t < seen.size(); ++t)
    threads.emplace_back([&, t] { seen[t] = &cycle.arrivals(); });
  for (auto& th : threads) th.join();

  for (const auto* arr : seen) {
    ASSERT_NE(arr, nullptr);
    EXPECT_EQ(*arr, expected);
    EXPECT_EQ(arr, seen[0]);  // everyone saw the same cached table
  }
}

}  // namespace
}  // namespace terrors
