// Tests for the robustness layer (DESIGN §5f): the typed error taxonomy,
// the deterministic fault-injection harness, and the graceful-degradation
// contracts (cache faults keep bit-identity, solver fallback stays finite
// and flagged, worker retries reproduce the serial result exactly).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "core/marginal.hpp"
#include "netlist/pipeline.hpp"
#include "obs/metrics.hpp"
#include "report/json_value.hpp"
#include "robust/degrade.hpp"
#include "robust/doctor.hpp"
#include "robust/error.hpp"
#include "robust/fault_injection.hpp"
#include "robust/hooks.hpp"
#include "sim/vcd_parser.hpp"
#include "support/thread_pool.hpp"
#include "timing/variation.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

namespace fs = std::filesystem;

std::uint64_t counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

/// Every test leaves the process clean: no armed plan, serial pool.
struct RobustTest : ::testing::Test {
  void TearDown() override {
    robust::FaultInjector::instance().disarm();
    support::set_global_threads(1);
  }
};

// --- error taxonomy ----------------------------------------------------------

TEST(ErrorTaxonomy, CategoriesRenderAndExit) {
  EXPECT_EQ(robust::category_name(robust::Category::kInput), "input");
  EXPECT_EQ(robust::category_name(robust::Category::kArtifact), "artifact");
  EXPECT_EQ(robust::exit_code_for(robust::Category::kInput), 3);
  EXPECT_EQ(robust::exit_code_for(robust::Category::kArtifact), 4);
  EXPECT_EQ(robust::exit_code_for(robust::Category::kNumerical), 5);
  EXPECT_EQ(robust::exit_code_for(robust::Category::kResource), 6);
  EXPECT_EQ(robust::exit_code_for(robust::Category::kInternal), 7);
}

TEST(ErrorTaxonomy, WrapChainsContextAndKeepsCategory) {
  const robust::Error inner(robust::Category::kArtifact, "checksum mismatch");
  const robust::Error outer = robust::Error::wrap("decode control tables", inner);
  EXPECT_EQ(outer.category(), robust::Category::kArtifact);  // context keeps kind
  EXPECT_EQ(outer.message(), "decode control tables");
  ASSERT_EQ(outer.chain().size(), 2u);
  EXPECT_EQ(outer.chain()[1], "checksum mismatch");
  EXPECT_EQ(outer.render(), "[artifact] decode control tables: caused by: checksum mismatch");
  EXPECT_STREQ(outer.what(), outer.render().c_str());

  // A foreign exception gets the fallback category.
  const std::runtime_error plain("disk on fire");
  const robust::Error wrapped =
      robust::Error::wrap("store artifact", plain, robust::Category::kResource);
  EXPECT_EQ(wrapped.category(), robust::Category::kResource);
  EXPECT_EQ(wrapped.chain().back(), "disk on fire");
}

TEST(ErrorTaxonomy, ClassifyMapsForeignExceptions) {
  EXPECT_EQ(robust::classify(robust::Error(robust::Category::kNumerical, "x")),
            robust::Category::kNumerical);
  EXPECT_EQ(robust::classify(std::invalid_argument("bad flag")), robust::Category::kInput);
  EXPECT_EQ(robust::classify(std::runtime_error("??")), robust::Category::kInternal);
}

// --- fault plan grammar ------------------------------------------------------

TEST(FaultPlan, ParsesEntriesAndOptions) {
  const robust::FaultPlan plan = robust::FaultPlan::parse(
      "cache.read:nth=3 io.write:prob=0.01:seed=7, solver.pivot:scc=0\npool.task:key=5:count=2");
  ASSERT_EQ(plan.specs().size(), 4u);
  EXPECT_EQ(plan.specs()[0].site, "cache.read");
  EXPECT_EQ(plan.specs()[0].nth, 3u);
  EXPECT_EQ(plan.specs()[1].site, "io.write");
  EXPECT_DOUBLE_EQ(plan.specs()[1].prob, 0.01);
  EXPECT_EQ(plan.specs()[1].seed, 7u);
  ASSERT_TRUE(plan.specs()[2].key.has_value());
  EXPECT_EQ(*plan.specs()[2].key, 0u);
  EXPECT_EQ(plan.specs()[3].max_fires, 2u);
  EXPECT_TRUE(robust::FaultPlan::parse("").empty());
  EXPECT_TRUE(robust::FaultPlan::parse("  ,\n ").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const auto parse_category = [](const char* spec) {
    try {
      (void)robust::FaultPlan::parse(spec);
    } catch (const robust::Error& e) {
      return e.category();
    }
    ADD_FAILURE() << "no throw for: " << spec;
    return robust::Category::kInternal;
  };
  EXPECT_EQ(parse_category("cache.reed:nth=1"), robust::Category::kInput);  // unknown site
  EXPECT_EQ(parse_category("cache.read:often=1"), robust::Category::kInput);  // unknown option
  EXPECT_EQ(parse_category("cache.read:nth=zero"), robust::Category::kInput);  // bad number
  EXPECT_EQ(parse_category("cache.read:nth=0"), robust::Category::kInput);  // 1-based
  EXPECT_EQ(parse_category("cache.read:seed=9"), robust::Category::kInput);  // no trigger
  EXPECT_EQ(parse_category("cache.read"), robust::Category::kInput);  // no trigger
  EXPECT_EQ(parse_category("cache.read:key=2"), robust::Category::kInput);  // not keyed
}

TEST_F(RobustTest, NthAndCountFireDeterministically) {
  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("cache.read:nth=2"));
  EXPECT_NO_THROW(robust::maybe_fault("cache.read"));  // occurrence 1
  EXPECT_THROW(robust::maybe_fault("cache.read"), robust::Error);  // occurrence 2
  EXPECT_NO_THROW(robust::maybe_fault("cache.read"));  // occurrence 3

  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("io.write:prob=1:count=1"));
  EXPECT_THROW(robust::maybe_fault("io.write"), robust::Error);
  EXPECT_NO_THROW(robust::maybe_fault("io.write"));  // budget spent
  EXPECT_EQ(robust::FaultInjector::instance().fires(), 1u);
}

TEST_F(RobustTest, ProbabilisticFiresAreSeedReproducible) {
  auto pattern = [](const char* spec) {
    robust::FaultInjector::instance().arm(robust::FaultPlan::parse(spec));
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i)
      fires.push_back(robust::FaultInjector::instance().should_fire("cache.read"));
    return fires;
  };
  const std::vector<bool> a = pattern("cache.read:prob=0.25:seed=11");
  const std::vector<bool> b = pattern("cache.read:prob=0.25:seed=11");
  const std::vector<bool> c = pattern("cache.read:prob=0.25:seed=12");
  EXPECT_EQ(a, b);  // same seed, same occurrence sequence
  EXPECT_NE(a, c);  // a different stream
  const auto fired = static_cast<double>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 200 * 0.25 * 0.4);  // crude sanity band on the rate
  EXPECT_LT(fired, 200 * 0.25 * 2.5);
}

TEST_F(RobustTest, InjectedErrorsCarrySiteCategory) {
  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("vcd.parse:nth=1"));
  try {
    robust::maybe_fault("vcd.parse");
    FAIL() << "expected throw";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.category(), robust::Category::kInput);
    EXPECT_NE(std::string(e.what()).find("injected fault at vcd.parse"), std::string::npos);
  }
}

// --- JSON depth limit --------------------------------------------------------

TEST(JsonDepth, TenThousandLevelsIsACleanParseError) {
  // Before the depth limit this recursed 10k frames deep; now it must be a
  // typed kInput error well before the stack is at risk.
  const std::string deep_array(10000, '[');
  std::string deep_object;
  for (int i = 0; i < 10000; ++i) deep_object += "{\"k\":";
  for (const std::string& doc : {deep_array, deep_object}) {
    try {
      (void)report::JsonValue::parse(doc);
      FAIL() << "expected throw";
    } catch (const robust::Error& e) {
      EXPECT_EQ(e.category(), robust::Category::kInput);
      EXPECT_NE(std::string(e.what()).find("nesting deeper"), std::string::npos);
    }
  }
  // A document at a sane depth still parses.
  EXPECT_NO_THROW((void)report::JsonValue::parse("[[[[[[[[[[42]]]]]]]]]]"));
}

// --- VCD hardening -----------------------------------------------------------

TEST(VcdHardening, CorruptCorpusYieldsTypedInputErrors) {
  const char* corpus[] = {
      // non-monotonic timestamps
      "$var wire 1 ! s $end $enddefinitions $end\n#2000 1!\n#1000 0!\n",
      // overflowing timestamp
      "$var wire 1 ! s $end $enddefinitions $end\n#99999999999999999999999 1!\n",
      // signed / malformed timestamps
      "$var wire 1 ! s $end $enddefinitions $end\n#+5 1!\n",
      "$var wire 1 ! s $end $enddefinitions $end\n#12abc 1!\n",
      "$var wire 1 ! s $end $enddefinitions $end\n#\n",
      // undeclared identifiers (scalar and vector changes)
      "$var wire 1 ! s $end $enddefinitions $end\n#0 1?\n",
      "$var wire 1 ! s $end $enddefinitions $end\n#0 b101 ?\n",
      // header corruption
      "$var wire 1 !",
      "$var wire 0 ! s $end $enddefinitions $end\n#0\n",
      "$enddefinitions $end\n#0\n",
      "$timescale 1ps $end #0 1!",
      "hello",
      "",
  };
  const sim::VcdParser parser(1000.0);
  for (const char* doc : corpus) {
    std::istringstream is(doc);
    try {
      (void)parser.parse(is);
      FAIL() << "expected throw for: " << doc;
    } catch (const robust::Error& e) {
      EXPECT_EQ(e.category(), robust::Category::kInput) << doc;
    }
  }
}

TEST(VcdHardening, DiagnosticsCarryByteOffsets) {
  std::istringstream is("$var wire 1 ! s $end $enddefinitions $end\n#0 1!\n#bad\n");
  try {
    (void)sim::VcdParser(1000.0).parse(is);
    FAIL() << "expected throw";
  } catch (const robust::Error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("#bad"), std::string::npos);
  }
}

// --- degradation contracts ---------------------------------------------------

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

core::BenchmarkResult run_analyze(const std::string& cache_dir) {
  const auto& spec = workloads::mibench_specs()[3];  // patricia: smallest
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  cfg.executor.max_instructions = 6000;
  cfg.error_model.mixed_samples = 32;
  cfg.cache_dir = cache_dir;
  core::ErrorRateFramework fw(pipeline(), cfg);
  return fw.analyze(workloads::generate_program(spec), workloads::generate_inputs(spec, 2, 7));
}

void expect_same_estimate(const core::BenchmarkResult& a, const core::BenchmarkResult& b) {
  EXPECT_EQ(a.estimate.rate_mean(), b.estimate.rate_mean());
  EXPECT_EQ(a.estimate.rate_sd(), b.estimate.rate_sd());
  EXPECT_EQ(a.estimate.dk_lambda, b.estimate.dk_lambda);
  EXPECT_EQ(a.estimate.dk_count, b.estimate.dk_count);
}

/// Fresh, unique, self-cleaning directory per test.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("terrors_robust_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST_F(RobustTest, EveryCacheReadFaultingKeepsWarmRunBitIdentical) {
  const TempDir dir("cache_read");
  const core::BenchmarkResult cold = run_analyze(dir.path.string());
  EXPECT_FALSE(cold.degraded);

  const std::uint64_t degraded_before = counter("robust.degraded");
  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("cache.read:prob=1"));
  const core::BenchmarkResult warm = run_analyze(dir.path.string());
  robust::FaultInjector::instance().disarm();

  // Degraded, recomputed — and byte-for-byte the same estimate.
  expect_same_estimate(cold, warm);
  EXPECT_TRUE(warm.degraded);
  ASSERT_FALSE(warm.degraded_sites.empty());
  EXPECT_EQ(warm.degraded_sites.front(), "cache");
  EXPECT_EQ(warm.cache_hits, 0u);
  EXPECT_GT(counter("robust.degraded"), degraded_before);
  EXPECT_GT(counter("robust.degraded.cache"), 0u);
}

TEST_F(RobustTest, UnwritableCacheDirDegradesButAnalyzeSucceeds) {
  // The cache "directory" is a regular file, so every temp-file open fails
  // no matter which user runs the test (root ignores mode bits).
  const TempDir dir("unwritable");
  const fs::path bogus = dir.path / "cachedir";
  std::ofstream(bogus).put('x');

  const std::uint64_t store_errors_before = counter("cache.store_errors");
  const core::BenchmarkResult r = run_analyze(bogus.string());
  EXPECT_TRUE(std::isfinite(r.estimate.rate_mean()));
  EXPECT_GT(counter("cache.store_errors"), store_errors_before);
  EXPECT_TRUE(r.degraded);
  ASSERT_FALSE(r.degraded_sites.empty());
  EXPECT_EQ(r.degraded_sites.front(), "cache");
}

TEST_F(RobustTest, SolverFallbackIsFiniteAndFlagged) {
  // Healthy diagonally dominant system: direct solve, not degraded.
  const core::RobustSolveResult healthy =
      core::solve_scc_robust({4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0}, {6.0, 10.0, 7.0});
  EXPECT_FALSE(healthy.degraded);
  EXPECT_LE(healthy.residual, 1e-9);

  // Singular system: refinement cannot help; the bounded fixed point must
  // produce a finite, clamped, flagged answer.
  const core::RobustSolveResult singular =
      core::solve_scc_robust({1.0, 1.0, 1.0, 1.0}, {0.5, 0.5});
  EXPECT_TRUE(singular.degraded);
  for (const double v : singular.x) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(RobustTest, InjectedPivotFaultFallsBackNearExactly) {
  // A x = b with ||I - A|| = 0.5: the fixed-point fallback converges, so
  // the degraded answer agrees with the direct solve to solver tolerance.
  const std::vector<double> a = {1.25, -0.25, -0.25, 1.25};
  const std::vector<double> b = {1.0, 0.5};
  const core::RobustSolveResult direct = core::solve_scc_robust(a, b);
  ASSERT_FALSE(direct.degraded);

  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("solver.pivot:scc=3"));
  const core::RobustSolveResult unfired = core::solve_scc_robust(a, b, 7);
  EXPECT_FALSE(unfired.degraded);  // plan names SCC 3, key 7 passes through
  const core::RobustSolveResult faulted = core::solve_scc_robust(a, b, 3);
  robust::FaultInjector::instance().disarm();

  EXPECT_TRUE(faulted.degraded);
  ASSERT_EQ(faulted.x.size(), direct.x.size());
  for (std::size_t i = 0; i < direct.x.size(); ++i) {
    EXPECT_TRUE(std::isfinite(faulted.x[i]));
    EXPECT_NEAR(faulted.x[i], direct.x[i], 1e-9);
  }
}

TEST_F(RobustTest, PivotFaultsThroughAnalyzeStayFiniteAndFlagged) {
  const core::BenchmarkResult baseline = run_analyze("");
  const std::uint64_t fallbacks_before = counter("solver.fixed_point_fallbacks");

  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("solver.pivot:prob=1"));
  const core::BenchmarkResult r = run_analyze("");
  robust::FaultInjector::instance().disarm();

  EXPECT_TRUE(std::isfinite(r.estimate.rate_mean()));
  EXPECT_GE(r.estimate.rate_mean(), 0.0);
  EXPECT_LE(r.estimate.rate_mean(), 1.0);
  if (counter("solver.fixed_point_fallbacks") > fallbacks_before) {
    // The workload has cyclic SCCs; every pivot faulted, so the run must
    // say it served fallback results.
    EXPECT_TRUE(r.degraded);
    ASSERT_FALSE(r.degraded_sites.empty());
    EXPECT_EQ(r.degraded_sites.front(), "solver");
  } else {
    expect_same_estimate(baseline, r);  // nothing cyclic: bit-identical
  }
}

TEST_F(RobustTest, WorkerRetryReproducesSerialResultExactly) {
  // Pool-level contract: a task whose entry faults is retried serially and
  // the result array is exactly what an unfaulted run produces, at any
  // thread count.
  robust::install_pool_hooks();
  const auto run_loop = [](std::size_t threads) {
    support::set_global_threads(threads);
    std::vector<std::uint64_t> slots(64, 0);
    support::global_pool().parallel_for(slots.size(), [&](std::size_t i, std::size_t) {
      slots[i] = i * 3 + 1;
    });
    return slots;
  };
  const std::vector<std::uint64_t> baseline = run_loop(1);

  robust::DegradationLog::instance().begin_run();
  const std::uint64_t retries_before = counter("pool.task_retries");
  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("pool.task:key=2"));
  const std::vector<std::uint64_t> serial = run_loop(1);
  EXPECT_EQ(counter("pool.task_retries"), retries_before + 1);

  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("pool.task:key=2"));
  const std::vector<std::uint64_t> parallel = run_loop(4);
  robust::FaultInjector::instance().disarm();
  support::set_global_threads(1);

  EXPECT_EQ(baseline, serial);
  EXPECT_EQ(baseline, parallel);
  EXPECT_EQ(counter("pool.task_retries"), retries_before + 2);
  EXPECT_TRUE(robust::DegradationLog::instance().degraded());
  const std::vector<std::string> sites = robust::DegradationLog::instance().sites();
  ASSERT_FALSE(sites.empty());
  EXPECT_EQ(sites.front(), "pool");
}

TEST_F(RobustTest, WorkerFaultsThroughAnalyzeKeepBitIdentity) {
  const core::BenchmarkResult baseline = run_analyze("");

  // At 4 threads the characterizer fans out over the pool, so pool.task
  // faults fire mid-analyze; the retried run must still match the serial
  // unfaulted baseline exactly.
  support::set_global_threads(4);
  robust::FaultInjector::instance().arm(robust::FaultPlan::parse("pool.task:key=2"));
  const core::BenchmarkResult faulted = run_analyze("");
  robust::FaultInjector::instance().disarm();
  support::set_global_threads(1);

  expect_same_estimate(baseline, faulted);
  EXPECT_TRUE(faulted.degraded);
  ASSERT_FALSE(faulted.degraded_sites.empty());
  EXPECT_EQ(faulted.degraded_sites.front(), "pool");
}

TEST_F(RobustTest, EmptyPlanLeavesResultsUndegraded) {
  const core::BenchmarkResult r = run_analyze("");
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.degraded_sites.empty());
}

// --- doctor ------------------------------------------------------------------

TEST_F(RobustTest, DoctorPassesInAHealthyEnvironment) {
  const TempDir dir("doctor");
  robust::DoctorOptions options;
  options.cache_dir = dir.path.string();
  const robust::DoctorReport report = robust::run_doctor(options);
  for (const auto& f : report.findings) {
    EXPECT_TRUE(f.ok) << f.check << ": " << f.detail;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.exit_code(), 0);
  ASSERT_EQ(report.findings.size(), 5u);  // cache, pool, solver, worker, analysis
}

}  // namespace
}  // namespace terrors
