#include <gtest/gtest.h>

#include <set>

#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors::workloads {
namespace {

TEST(Specs, TwelveBenchmarksMatchingTable2) {
  const auto& specs = mibench_specs();
  ASSERT_EQ(specs.size(), 12u);
  // Table 2 basic-block counts, in order.
  const int blocks[] = {86, 72, 70, 184, 49, 56, 174, 69, 192, 133, 75, 80};
  const std::uint64_t instrs[] = {1487629739ull, 589809283ull, 254491123ull, 1167201ull,
                                  782002182ull,  212201598ull, 670620091ull, 66490215ull,
                                  743108760ull,  27984283ull,  473017210ull, 497219812ull};
  std::uint64_t total = 0;
  int total_blocks = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].basic_blocks, blocks[i]) << specs[i].name;
    EXPECT_EQ(specs[i].paper_instructions, instrs[i]) << specs[i].name;
    total += specs[i].paper_instructions;
    total_blocks += specs[i].basic_blocks;
  }
  // Table 2 totals.
  EXPECT_EQ(total, 5805741497ull);
  EXPECT_EQ(total_blocks, 1240);
}

TEST(Specs, TwoPerCategory) {
  std::map<Category, int> count;
  for (const auto& s : mibench_specs()) ++count[s.category];
  EXPECT_EQ(count.size(), 6u);
  for (const auto& [cat, n] : count) EXPECT_EQ(n, 2) << category_name(cat);
}

TEST(Specs, SimulatedInstructionScaling) {
  const auto& s = mibench_specs()[0];  // basicmath
  EXPECT_EQ(s.simulated_instructions(1e-4, 1000), 148762u);
  // Floor applies for tiny benchmarks.
  const auto& patricia = mibench_specs()[3];
  EXPECT_EQ(patricia.simulated_instructions(1e-4, 20000), 20000u);
}

class GeneratedProgram : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratedProgram, HasExactBlockCountAndValidates) {
  const auto& spec = mibench_specs()[GetParam()];
  const isa::Program p = generate_program(spec);
  EXPECT_EQ(p.block_count(), static_cast<std::size_t>(spec.basic_blocks));
  EXPECT_NO_THROW(p.validate());
}

TEST_P(GeneratedProgram, ExecutesToBudgetAndCoversBlocks) {
  const auto& spec = mibench_specs()[GetParam()];
  const isa::Program p = generate_program(spec);
  const isa::Cfg cfg(p);
  isa::ExecutorConfig ecfg;
  ecfg.max_instructions = 30000;
  isa::Executor ex(p, cfg, ecfg);
  const auto inputs = generate_inputs(spec, 1, 99);
  const std::uint64_t n = ex.run(inputs[0]);
  EXPECT_EQ(n, 30000u);  // the outer loop is long enough to hit any budget
  // A healthy fraction of blocks execute.
  std::size_t executed = 0;
  for (const auto& bp : ex.profile().blocks) executed += bp.executions > 0 ? 1 : 0;
  EXPECT_GT(executed, p.block_count() / 3);
}

TEST_P(GeneratedProgram, DeterministicInSeed) {
  const auto& spec = mibench_specs()[GetParam()];
  const isa::Program a = generate_program(spec);
  const isa::Program b = generate_program(spec);
  ASSERT_EQ(a.block_count(), b.block_count());
  for (isa::BlockId i = 0; i < a.block_count(); ++i) {
    ASSERT_EQ(a.block(i).size(), b.block(i).size());
    for (std::size_t k = 0; k < a.block(i).size(); ++k)
      EXPECT_EQ(isa::encode(a.block(i).instructions[k]), isa::encode(b.block(i).instructions[k]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, GeneratedProgram, ::testing::Range<std::size_t>(0, 12),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string n{mibench_specs()[info.param].name};
                           for (auto& c : n)
                             if (c == '.') c = '_';
                           return n;
                         });

TEST(GeneratedInputs, ShapedByCategory) {
  const auto& gsm = mibench_specs()[11];  // gsm.decode: wide operands
  const auto& patricia = mibench_specs()[3];
  const auto gi = generate_inputs(gsm, 4, 1);
  const auto pi = generate_inputs(patricia, 4, 1);
  // Patricia's data registers are masked to 12 bits.
  for (const auto& in : pi) {
    for (int d = 8; d < 16; ++d) EXPECT_LE(in.registers[d], 0xFFFu | patricia.operands.or_bias);
  }
  // Distinct runs have distinct memory seeds.
  EXPECT_NE(gi[0].memory_seed, gi[1].memory_seed);
}

TEST(GeneratedInputs, ConstantRegistersCarryShape) {
  const auto& spec = mibench_specs()[0];
  const auto in = generate_inputs(spec, 1, 5)[0];
  EXPECT_EQ(in.registers[28], spec.operands.and_mask);
  EXPECT_EQ(in.registers[29], spec.operands.or_bias);
}

TEST(ExecutorConfigFor, SplitsBudgetAcrossRuns) {
  const auto& spec = mibench_specs()[0];
  const auto cfg = executor_config_for(spec, 4, 1e-4);
  EXPECT_EQ(cfg.max_instructions, spec.simulated_instructions(1e-4) / 4);
}

TEST(GeneratedProgram, DifferentBenchmarksDiffer) {
  const isa::Program a = generate_program(mibench_specs()[0]);
  const isa::Program b = generate_program(mibench_specs()[1]);
  EXPECT_NE(a.block_count(), b.block_count());
}

}  // namespace
}  // namespace terrors::workloads
