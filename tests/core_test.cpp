#include <gtest/gtest.h>

#include <cmath>

#include "core/error_model.hpp"
#include "core/estimator.hpp"
#include "core/framework.hpp"
#include "core/marginal.hpp"
#include "core/monte_carlo.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "netlist/pipeline.hpp"
#include "support/rng.hpp"

namespace terrors::core {
namespace {

using isa::BlockId;
using isa::Opcode;

isa::Instruction make(Opcode op, int rd = 0, int rs1 = 0, int rs2 = 0, int imm = 0) {
  isa::Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

// --- solve_dense -------------------------------------------------------------

TEST(SolveDense, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = (1, 3).
  const auto x = solve_dense({2, 1, 1, 3}, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveDense, PivotsOnZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] -> x = (3, 2).
  const auto x = solve_dense({0, 1, 1, 0}, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveDense, RejectsSingular) {
  EXPECT_THROW(solve_dense({1, 2, 2, 4}, {1, 2}), std::invalid_argument);
}

TEST(SolveDense, SolvesUniformlyScaledDownSystem) {
  // A well-conditioned system scaled by 1e-15 is still uniquely solvable;
  // an absolute pivot threshold would reject every pivot as "singular".
  const double s = 1e-15;
  const auto x = solve_dense({2 * s, 1 * s, 1 * s, 3 * s}, {5 * s, 10 * s});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveDense, StillRejectsScaledSingular) {
  const double s = 1e-15;
  EXPECT_THROW(solve_dense({1 * s, 2 * s, 2 * s, 4 * s}, {s, 2 * s}),
               std::invalid_argument);
}

TEST(SolveDense, RandomRoundTrip) {
  support::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(6);
    std::vector<double> a(n * n);
    std::vector<double> x_true(n);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      a[i * n + i] += 3.0;  // diagonally dominant => nonsingular
      x_true[i] = rng.uniform(-5.0, 5.0);
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * x_true[j];
    const auto x = solve_dense(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// --- Marginal solver on a hand-built program ----------------------------------

/// Straight-line program: B0 -> B1 (exit).  One instruction each.
struct StraightFixture {
  isa::Program p{"straight"};
  StraightFixture() {
    isa::BasicBlock b0;
    b0.instructions = {make(Opcode::kAddi, 8, 8, 0, 1)};
    isa::BasicBlock b1;
    b1.instructions = {make(Opcode::kAddi, 9, 9, 0, 1)};
    p.add_block(b0);
    p.add_block(b1);
    p.block(0).fallthrough = 1;
    p.set_entry(0);
    p.validate();
  }
};

std::vector<BlockErrorDistributions> constant_conditionals(const isa::Program& p, double pc,
                                                           double pe, std::size_t m = 4) {
  std::vector<BlockErrorDistributions> cond(p.block_count());
  for (BlockId b = 0; b < p.block_count(); ++b) {
    cond[b].executed = true;
    cond[b].instr.resize(p.block(b).size());
    for (auto& d : cond[b].instr) {
      d.p_correct = stat::Samples(m, pc);
      d.p_error = stat::Samples(m, pe);
    }
  }
  return cond;
}

TEST(MarginalSolver, StraightLineRecurrence) {
  StraightFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  const double pc = 0.01;
  const double pe = 0.3;
  const auto cond = constant_conditionals(f.p, pc, pe);
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);

  // Entry: flushed state p_in = 1 (Eq. 2 with the entry pseudo-edge).
  EXPECT_NEAR(marg[0].p_in[0], 1.0, 1e-12);
  // First instruction: p = pe * 1 + pc * 0 = pe.
  EXPECT_NEAR(marg[0].instr[0][0], pe, 1e-12);
  // B1's input is B0's output.
  EXPECT_NEAR(marg[1].p_in[0], pe, 1e-12);
  // Second instruction: pe * pe + pc * (1 - pe).
  EXPECT_NEAR(marg[1].instr[0][0], pe * pe + pc * (1.0 - pe), 1e-12);
}

/// Self-loop program: B0 -> B1 (loops N-1 times) -> B2.
struct LoopFixture {
  isa::Program p{"loop"};
  LoopFixture() {
    isa::BasicBlock b0;
    b0.instructions = {make(Opcode::kMovi, 1, 0, 0, 4)};
    isa::BasicBlock b1;
    b1.instructions = {make(Opcode::kSubi, 1, 1, 0, 1), make(Opcode::kBne, 0, 1, 0)};
    isa::BasicBlock b2;
    b2.instructions = {make(Opcode::kNop)};
    p.add_block(b0);
    p.add_block(b1);
    p.add_block(b2);
    p.block(0).fallthrough = 1;
    p.block(1).taken = 1;
    p.block(1).fallthrough = 2;
    p.set_entry(0);
    p.validate();
  }
};

TEST(MarginalSolver, LoopFixedPointSatisfiesEquations) {
  LoopFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  const double pc = 0.02;
  const double pe = 0.4;
  const auto cond = constant_conditionals(f.p, pc, pe);
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);

  // Verify Eq. (2) at the loop header: p_in(B1) = w_fall * out(B0) +
  // w_back * out(B1) with the measured activation probabilities.
  const auto& preds = cfg.predecessors(1);
  double expected = 0.0;
  for (std::size_t j = 0; j < preds.size(); ++j) {
    const double w = ex.profile().edge_activation(1, j);
    const BlockId t = preds[j].from;
    const double out_t = marg[t].instr.back()[0];
    expected += w * out_t;
  }
  EXPECT_NEAR(marg[1].p_in[0], expected, 1e-9);

  // All probabilities are valid.
  for (const auto& bm : marg) {
    for (const auto& instr : bm.instr) {
      for (std::size_t w = 0; w < instr.size(); ++w) {
        EXPECT_GE(instr[w], 0.0);
        EXPECT_LE(instr[w], 1.0);
      }
    }
  }
}

TEST(MarginalSolver, ReplaySchemeCollapsesToPc) {
  // With p^e == p^c the marginal equals p^c everywhere (Eq. 1 degenerates).
  LoopFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  const double pc = 0.05;
  const auto cond = constant_conditionals(f.p, pc, pc);
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);
  for (const auto& bm : marg) {
    if (!bm.executed) continue;
    for (const auto& instr : bm.instr) EXPECT_NEAR(instr[0], pc, 1e-12);
  }
}

// --- Estimator -----------------------------------------------------------------

TEST(Estimator, LambdaMatchesHandComputation) {
  StraightFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  const double pc = 0.01;
  const double pe = 0.3;
  const auto cond = constant_conditionals(f.p, pc, pe);
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);
  EstimatorInputs in;
  in.program = &f.p;
  in.profile = &ex.profile();
  in.conditionals = &cond;
  in.marginals = &marg;
  const auto est = estimate_error_rate(in);
  const double p1 = pe;
  const double p2 = pe * pe + pc * (1.0 - pe);
  EXPECT_NEAR(est.lambda.mean, p1 + p2, 1e-9);
  EXPECT_EQ(est.total_instructions, 2u);
  EXPECT_NEAR(est.rate_mean(), (p1 + p2) / 2.0, 1e-9);
  // Constant conditionals: no data variation at all.
  EXPECT_NEAR(est.lambda.sd, 0.0, 1e-12);
}

TEST(Estimator, ExecutionScaleExtrapolates) {
  StraightFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  const auto cond = constant_conditionals(f.p, 0.01, 0.2);
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);
  EstimatorInputs in;
  in.program = &f.p;
  in.profile = &ex.profile();
  in.conditionals = &cond;
  in.marginals = &marg;
  in.execution_scale = 50.0;  // keep lambda > 1 so min{1, 1/lambda} = 1/lambda
  const auto base = estimate_error_rate(in);
  in.execution_scale = 50000.0;
  const auto scaled = estimate_error_rate(in);
  EXPECT_NEAR(scaled.lambda.mean, 1000.0 * base.lambda.mean, 1e-4 * scaled.lambda.mean);
  EXPECT_NEAR(scaled.rate_mean(), base.rate_mean(), 1e-12);
  // With lambda > 1 on both sides the Chen-Stein ratio (b1+b2)/lambda is
  // scale-invariant.
  EXPECT_NEAR(scaled.dk_count, base.dk_count, 1e-9);
}

TEST(Estimator, RateCdfIsMonotoneAndBracketedByBounds) {
  StraightFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  // Add data variation so lambda has spread.
  auto cond = constant_conditionals(f.p, 0.01, 0.3, 8);
  for (auto& bd : cond) {
    for (auto& d : bd.instr) {
      for (std::size_t w = 0; w < d.p_correct.size(); ++w)
        d.p_correct[w] = 0.005 + 0.002 * static_cast<double>(w);
    }
  }
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);
  EstimatorInputs in;
  in.program = &f.p;
  in.profile = &ex.profile();
  in.conditionals = &cond;
  in.marginals = &marg;
  in.execution_scale = 1e6;  // large-count regime
  const auto est = estimate_error_rate(in);

  double prev = -1.0;
  for (double r = 0.0; r <= 0.02; r += 0.001) {
    const double c = est.rate_cdf(r);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
    EXPECT_LE(est.rate_cdf_lower(r), c + 1e-9);
    EXPECT_GE(est.rate_cdf_upper(r), c - 1e-9);
  }
}

TEST(Estimator, ChenSteinRadiusExtensionIsLooserOrEqual) {
  LoopFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);
  ex.run({});
  const auto cond = constant_conditionals(f.p, 0.02, 0.5);
  const MarginalSolver solver(f.p, cfg, ex.profile());
  const auto marg = solver.solve(cond);
  EstimatorInputs in;
  in.program = &f.p;
  in.profile = &ex.profile();
  in.conditionals = &cond;
  in.marginals = &marg;
  in.execution_scale = 100.0;
  in.chen_stein_radius = 1;
  const auto r1 = estimate_error_rate(in);
  in.chen_stein_radius = 4;
  const auto r4 = estimate_error_rate(in);
  // Growing the neighbourhood only adds non-negative terms.
  EXPECT_GE(r4.dk_count, r1.dk_count - 1e-12);
  EXPECT_GT(r1.dk_count, 0.0);
  EXPECT_LE(r4.dk_count, 1.0);
}

// --- Monte Carlo ----------------------------------------------------------------

TEST(MonteCarlo, MatchesAnalyticMeanOnStraightLine) {
  StraightFixture f;
  const isa::Cfg cfg(f.p);
  isa::ExecutorConfig ecfg;
  ecfg.record_block_trace = true;
  isa::Executor ex(f.p, cfg, ecfg);
  ex.run({});
  const double pc = 0.05;
  const double pe = 0.5;
  const auto cond = constant_conditionals(f.p, pc, pe);
  support::Rng rng(7);
  const auto counts = monte_carlo_error_counts(ex.profile(), cond, 200000, rng);
  double mean = 0.0;
  for (auto c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  const double p1 = pe;  // flushed entry
  const double p2 = pe * p1 + pc * (1.0 - p1);
  EXPECT_NEAR(mean, p1 + p2, 0.01);
}

TEST(MonteCarlo, RequiresTrace) {
  StraightFixture f;
  const isa::Cfg cfg(f.p);
  isa::Executor ex(f.p, cfg);  // no trace recording
  ex.run({});
  const auto cond = constant_conditionals(f.p, 0.1, 0.1);
  support::Rng rng(1);
  EXPECT_THROW(monte_carlo_error_counts(ex.profile(), cond, 10, rng), std::invalid_argument);
}

TEST(MonteCarlo, EmpiricalCdfBasics) {
  const std::vector<std::uint64_t> counts = {0, 1, 1, 2, 5};
  EXPECT_NEAR(empirical_cdf(counts, 0), 0.2, 1e-12);
  EXPECT_NEAR(empirical_cdf(counts, 1), 0.6, 1e-12);
  EXPECT_NEAR(empirical_cdf(counts, 5), 1.0, 1e-12);
}

// --- Full framework (integration smoke) -------------------------------------------

class FrameworkFixture : public ::testing::Test {
 protected:
  static const netlist::Pipeline& pipeline() {
    static const netlist::Pipeline p = netlist::build_pipeline({});
    return p;
  }
};

TEST_F(FrameworkFixture, EndToEndLoopProgram) {
  LoopFixture f;
  FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  ErrorRateFramework fw(pipeline(), cfg);
  const auto result = fw.analyze(f.p, {isa::ProgramInput{}});
  EXPECT_EQ(result.basic_blocks, 3u);
  EXPECT_GT(result.instructions, 0u);
  EXPECT_GE(result.estimate.rate_mean(), 0.0);
  EXPECT_LE(result.estimate.rate_mean(), 1.0);
  EXPECT_GE(result.estimate.dk_count, 0.0);
  EXPECT_LE(result.estimate.dk_count, 1.0);
  // Artifacts populated.
  EXPECT_EQ(fw.last().conditionals.size(), 3u);
  EXPECT_EQ(fw.last().marginals.size(), 3u);
}

TEST_F(FrameworkFixture, HigherFrequencyRaisesErrorRate) {
  LoopFixture f;
  FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1400.0};
  ErrorRateFramework fw(pipeline(), cfg);
  const double slow = fw.analyze(f.p, {isa::ProgramInput{}}).estimate.rate_mean();
  fw.set_spec(timing::TimingSpec{1000.0});
  const double fast = fw.analyze(f.p, {isa::ProgramInput{}}).estimate.rate_mean();
  EXPECT_GE(fast, slow);
}

TEST_F(FrameworkFixture, DeterministicAcrossRepeats) {
  LoopFixture f;
  FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  ErrorRateFramework a(pipeline(), cfg);
  ErrorRateFramework b(pipeline(), cfg);
  const auto ra = a.analyze(f.p, {isa::ProgramInput{}});
  const auto rb = b.analyze(f.p, {isa::ProgramInput{}});
  EXPECT_DOUBLE_EQ(ra.estimate.rate_mean(), rb.estimate.rate_mean());
  EXPECT_DOUBLE_EQ(ra.estimate.dk_count, rb.estimate.dk_count);
}

}  // namespace
}  // namespace terrors::core
