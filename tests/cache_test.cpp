// Tests for the content-addressed artifact cache: hashing, codecs,
// corruption tolerance of the on-disk format, and the end-to-end
// warm-start contract (warm analyze == cold analyze, bit for bit, with
// the gate-level characterisation skipped).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "cache/hash.hpp"
#include "cache/key.hpp"
#include "cache/serialize.hpp"
#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors::cache {
namespace {

namespace fs = std::filesystem;

/// Fresh, unique, self-cleaning cache directory per test.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("terrors_cache_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// --- hashing -----------------------------------------------------------------

TEST(HashStream, DeterministicAndSensitive) {
  HashStream a;
  a.u32(7);
  a.f64(1.5);
  a.str("abc");
  HashStream b;
  b.u32(7);
  b.f64(1.5);
  b.str("abc");
  EXPECT_EQ(a.digest(), b.digest());

  HashStream c;
  c.u32(7);
  c.f64(1.5);
  c.str("abd");
  EXPECT_NE(a.digest(), c.digest());
}

TEST(HashStream, DoublesHashBitExact) {
  HashStream pos;
  pos.f64(0.0);
  HashStream neg;
  neg.f64(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());  // bit-exact, not value-equal
}

TEST(Keys, CombineIsOrderSensitive) {
  EXPECT_NE(combine({1, 2}), combine({2, 1}));
  EXPECT_NE(combine({1, 2}), combine({1, 2, 0}));
}

TEST(Keys, SpecAndConfigHashesReactToEveryField) {
  const timing::TimingSpec base{1300.0};
  timing::TimingSpec faster{1200.0};
  EXPECT_NE(hash_spec(base), hash_spec(faster));

  dta::DtsConfig dts;
  const std::uint64_t dts_base = hash_dts_config(dts);
  dts.top_k += 1;
  EXPECT_NE(hash_dts_config(dts), dts_base);

  timing::PathConfig pc;
  const std::uint64_t pc_base = hash_path_config(pc);
  pc.max_paths += 1;
  EXPECT_NE(hash_path_config(pc), pc_base);

  dta::ControlCharacterizerConfig cc;
  const std::uint64_t cc_base = hash_characterizer_config(cc);
  cc.pred_tail += 1;
  EXPECT_NE(hash_characterizer_config(cc), cc_base);
}

TEST(Keys, ProgramHashIgnoresNameButNotCode) {
  const auto& spec = workloads::mibench_specs()[3];
  const isa::Program p1 = workloads::generate_program(spec);
  isa::Program p2 = workloads::generate_program(spec);
  EXPECT_EQ(hash_program(p1), hash_program(p2));

  isa::Program other = workloads::generate_program(workloads::mibench_specs()[0]);
  EXPECT_NE(hash_program(p1), hash_program(other));
}

// --- codecs ------------------------------------------------------------------

std::vector<dta::BlockControlDts> sample_control() {
  std::vector<dta::BlockControlDts> control(2);
  dta::DtsGaussian g;
  g.slack.mean = 120.25;
  g.slack.sd = 7.5;
  g.global_loading = 3.25;
  control[0].per_edge.resize(2);
  control[0].per_edge[0].instr = {g, std::nullopt, g};
  control[0].per_edge[1].instr = {std::nullopt};
  control[0].entry.instr = {g};
  control[1].entry.instr = {std::nullopt, g};
  return control;
}

TEST(Codec, ControlRoundTripsExactly) {
  const timing::TimingSpec spec{1300.0};
  const auto control = sample_control();
  ByteWriter w;
  encode_control(control, spec, w);

  ByteReader r(w.bytes());
  const auto back = decode_control(r, spec);
  ASSERT_TRUE(back.has_value());
  ByteWriter w2;
  encode_control(*back, spec, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());  // bitwise round trip
}

TEST(Codec, ControlRejectsSpecMismatch) {
  const auto control = sample_control();
  ByteWriter w;
  encode_control(control, timing::TimingSpec{1300.0}, w);
  ByteReader r(w.bytes());
  EXPECT_FALSE(decode_control(r, timing::TimingSpec{1299.0}).has_value());
}

TEST(Codec, ControlRejectsEveryTruncation) {
  const timing::TimingSpec spec{1300.0};
  ByteWriter w;
  encode_control(sample_control(), spec, w);
  const auto& bytes = w.bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(bytes.data(), len);
    EXPECT_FALSE(decode_control(r, spec).has_value()) << "length " << len;
  }
  // Trailing junk must be rejected too (done() demands full consumption).
  auto extended = bytes;
  extended.push_back(0);
  ByteReader r(extended);
  EXPECT_FALSE(decode_control(r, spec).has_value());
}

TEST(Codec, DatapathRoundTripsExactly) {
  dta::DatapathModel::Params p;
  p.adder_mean = {100.0, 3.5};
  p.adder_sd = {4.0, 0.25};
  p.adder_gl = {2.0, 0.125};
  p.logic.slack = {50.0, 2.0};
  p.logic.global_loading = 1.0;
  p.shift.slack = {60.0, 2.5};
  p.shift.global_loading = 1.25;
  p.pass.slack = {200.0, 1.0};
  p.pass.global_loading = 0.5;
  p.period_ref = 1300.0;

  ByteWriter w;
  encode_datapath(p, w);
  ByteReader r(w.bytes());
  const auto back = decode_datapath(r);
  ASSERT_TRUE(back.has_value());
  ByteWriter w2;
  encode_datapath(*back, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(Codec, PathsRoundTripsExactly) {
  std::vector<timing::PathEnumerator::WarmedEndpoint> warmed(2);
  warmed[0].endpoint = 17;
  warmed[0].done = true;
  timing::TimingPath path;
  path.endpoint = 17;
  path.delay_ps = 812.5;
  path.gates = {3, 9, 17};
  warmed[0].paths = {path};
  warmed[1].endpoint = 23;
  warmed[1].guard_tripped = true;

  ByteWriter w;
  encode_paths(warmed, w);
  ByteReader r(w.bytes());
  const auto back = decode_paths(r);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].endpoint, 17u);
  EXPECT_TRUE((*back)[0].done);
  ASSERT_EQ((*back)[0].paths.size(), 1u);
  EXPECT_EQ((*back)[0].paths[0].gates, path.gates);
  EXPECT_TRUE((*back)[1].guard_tripped);

  ByteWriter w2;
  encode_paths(*back, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(Codec, PathsRejectsGarbageLengths) {
  // A huge count must not allocate: the reader validates it against the
  // remaining byte budget.
  ByteWriter w;
  w.u64(0xffffffffffffull);
  ByteReader r(w.bytes());
  EXPECT_FALSE(decode_paths(r).has_value());
}

// --- artifact files ----------------------------------------------------------

TEST(ArtifactCache, StoreLoadRoundTrip) {
  const TempDir dir("roundtrip");
  const ArtifactCache cache(dir.path.string());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  cache.store("control", 42, payload);
  const auto back = cache.load("control", 42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  EXPECT_FALSE(cache.load("control", 43).has_value());
  EXPECT_FALSE(cache.load("datapath", 42).has_value());
}

TEST(ArtifactCache, RejectsCorruptedFile) {
  const TempDir dir("corrupt");
  const ArtifactCache cache(dir.path.string());
  std::vector<std::uint8_t> payload(64, 0xAB);
  cache.store("paths", 7, payload);

  // Flip one payload byte on disk: the checksum must catch it.
  const std::string file = cache.path_for("paths", 7);
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(30);
    f.put('\x00');
  }
  EXPECT_FALSE(cache.load("paths", 7).has_value());

  // Truncation must be caught as well.
  fs::resize_file(file, 10);
  EXPECT_FALSE(cache.load("paths", 7).has_value());
}

TEST(ArtifactCache, ResolveDirPrefersExplicitConfig) {
  EXPECT_EQ(resolve_cache_dir("/x/y"), "/x/y");
  // With no config and no env var the cache stays off.
  if (std::getenv("TERRORS_CACHE_DIR") == nullptr) {
    EXPECT_EQ(resolve_cache_dir(""), "");
  }
}

// --- end-to-end warm start ---------------------------------------------------

core::FrameworkConfig cached_config(const std::string& dir) {
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  cfg.executor.max_instructions = 6000;
  cfg.error_model.mixed_samples = 32;
  cfg.cache_dir = dir;
  return cfg;
}

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

/// One full analyze run against `dir` ("" = cache off); returns the result
/// plus the control tables re-encoded for bitwise comparison.
struct RunOutput {
  core::BenchmarkResult result;
  std::vector<std::uint8_t> control_bytes;
};

RunOutput run_once(const std::string& dir) {
  const auto& spec = workloads::mibench_specs()[3];  // patricia: smallest
  core::ErrorRateFramework fw(pipeline(), cached_config(dir));
  RunOutput out;
  out.result = fw.analyze(workloads::generate_program(spec),
                          workloads::generate_inputs(spec, 2, 7));
  ByteWriter w;
  encode_control(fw.last().control, fw.config().spec, w);
  out.control_bytes = w.take();
  return out;
}

void expect_bit_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.result.estimate.rate_mean(), b.result.estimate.rate_mean());
  EXPECT_EQ(a.result.estimate.rate_sd(), b.result.estimate.rate_sd());
  EXPECT_EQ(a.result.estimate.dk_lambda, b.result.estimate.dk_lambda);
  EXPECT_EQ(a.result.estimate.dk_count, b.result.estimate.dk_count);
}

TEST(WarmStart, WarmRunIsBitIdenticalAndSkipsCharacterization) {
  const TempDir dir("warm_serial");
  support::set_global_threads(1);

  const RunOutput uncached = run_once("");
  const RunOutput cold = run_once(dir.path.string());
  const RunOutput warm = run_once(dir.path.string());

  // Enabling the cache must not perturb results, and the warm run must
  // reproduce the cold one bit for bit.
  expect_bit_identical(uncached, cold);
  expect_bit_identical(cold, warm);

  EXPECT_EQ(cold.result.cache_hits, 0u);
  EXPECT_GT(cold.result.cache_misses, 0u);
  EXPECT_GT(warm.result.cache_hits, 0u);
  EXPECT_EQ(warm.result.cache_misses, 0u);
  // The control hit skips gate-level characterisation entirely.
  EXPECT_LT(warm.result.training_seconds, cold.result.training_seconds);
}

TEST(WarmStart, WarmRunMatchesAcrossThreadCounts) {
  const TempDir dir("warm_parallel");
  support::set_global_threads(1);
  const RunOutput cold = run_once(dir.path.string());

  support::set_global_threads(4);
  const RunOutput warm = run_once(dir.path.string());
  support::set_global_threads(1);

  expect_bit_identical(cold, warm);
  EXPECT_GT(warm.result.cache_hits, 0u);
}

TEST(WarmStart, CorruptArtifactSilentlyRecomputes) {
  const TempDir dir("corrupt_artifact");
  support::set_global_threads(1);
  const RunOutput cold = run_once(dir.path.string());

  // Damage every stored artifact mid-file; the warm run must fall back to
  // recomputation and still match the cold run bit for bit.
  std::size_t damaged = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::fstream f(entry.path(), std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(fs::file_size(entry.path()) / 2));
    f.put('\x5A');
    f.put('\xA5');
    ++damaged;
  }
  ASSERT_GE(damaged, 2u);  // control + paths at least (datapath too)

  const std::uint64_t corrupt_before =
      obs::MetricsRegistry::instance().counter("cache.corrupt").value();
  const RunOutput warm = run_once(dir.path.string());
  expect_bit_identical(cold, warm);
  EXPECT_EQ(warm.result.cache_hits, 0u);
  EXPECT_GT(obs::MetricsRegistry::instance().counter("cache.corrupt").value(), corrupt_before);

  // The recompute rewrote the artifacts: a third run hits again.
  const RunOutput rewarmed = run_once(dir.path.string());
  expect_bit_identical(cold, rewarmed);
  EXPECT_GT(rewarmed.result.cache_hits, 0u);
}

}  // namespace
}  // namespace terrors::cache
