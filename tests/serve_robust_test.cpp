// Supervision-tree contracts for `terrors serve` (DESIGN §5j):
//  1. Crash isolation: a worker that segfaults/aborts mid-analyze costs
//     exactly that request (typed kInternal envelope) — the daemon
//     answers the next request normally.
//  2. Deadlines: a hung worker is SIGKILLed at --request-timeout-s and
//     the request fails kResource within timeout + supervision slack.
//  3. Memory budgets: a worker that exhausts --worker-memory-mb dies on
//     allocation failure and maps to kResource ("oom").
//  4. Circuit breaker: `--breaker-trips` consecutive infra deaths of one
//     signature open its breaker (immediate rejection + retry_after_ms);
//     after the cooldown one half-open probe is admitted and a clean
//     probe closes it.
//  5. Coalesced followers of a crashed leader all receive the leader's
//     typed infra error — nobody hangs, nobody re-runs the poison.
//  6. Determinism (§5h): with isolation ON, served report bytes stay
//     byte-identical to a cold `analyze --report` run at 1 and 4
//     threads — the sandbox is observationally invisible when healthy.
//
// TSan cannot start threads in a process that forked while
// multi-threaded, so every forking test skips under TSan (the
// in-process executor path is covered by serve_test.cpp).  The OOM test
// additionally skips under ASan, whose shadow mappings break RLIMIT_AS.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "netlist/pipeline.hpp"
#include "obs/metrics.hpp"
#include "report/attribution.hpp"
#include "robust/fault_injection.hpp"
#include "serve/breaker.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/thread_pool.hpp"
#include "workloads/generator.hpp"
#include "workloads/specs.hpp"

namespace terrors {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsan = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kAsan = true;
#else
constexpr bool kAsan = false;
#endif
#else
constexpr bool kAsan = false;
#endif

#define SKIP_UNDER_TSAN()                                                 \
  do {                                                                    \
    if (kTsan) GTEST_SKIP() << "fork in a multi-threaded process: TSan "  \
                               "cannot start threads in the child";       \
  } while (0)

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

const workloads::WorkloadSpec& spec_named(const char* name) {
  for (const auto& s : workloads::mibench_specs()) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown benchmark " << name;
  return workloads::mibench_specs()[0];
}

std::string socket_path(const char* tag) {
  return "/tmp/terrors_robust_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// Blocking line-oriented client over a Unix-domain socket.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next response frame ("" on EOF).
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string rpc(const std::string& request) {
    EXPECT_TRUE(send_line(request));
    return read_line();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// RAII server on its own thread, isolation left ON (the default): these
/// tests exist to exercise the forked supervision path.
struct ServerRunner {
  explicit ServerRunner(serve::ServerConfig cfg) : server(pipeline(), std::move(cfg)) {
    server.start();
    thread = std::thread([this] { server.run(); });
  }
  ~ServerRunner() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  serve::Server server;
  std::thread thread;
};

/// RAII process-wide fault plan; disarms on scope exit so no plan leaks
/// into the next test.
struct ArmedFaults {
  explicit ArmedFaults(const char* spec) {
    robust::FaultInjector::instance().arm(robust::FaultPlan::parse(spec));
  }
  ~ArmedFaults() { robust::FaultInjector::instance().disarm(); }
};

std::uint64_t counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

std::uint64_t signature_of(const std::string& request) {
  return serve::request_signature(serve::parse_request(request));
}

/// Zero the three wall-clock fields in raw report JSON without otherwise
/// touching the bytes (mirrors serve_test.cpp).
std::string zero_seconds(std::string text) {
  for (const char* key :
       {"\"training_seconds\":", "\"simulation_seconds\":", "\"estimation_seconds\":"}) {
    const std::size_t key_len = std::strlen(key);
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos + 1)) {
      const std::size_t start = pos + key_len;
      std::size_t end = start;
      while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
      text.replace(start, end - start, "0");
    }
  }
  return text;
}

std::string report_from_envelope(const std::string& envelope) {
  const std::string marker = ",\"report\":";
  const std::size_t at = envelope.find(marker);
  if (at == std::string::npos || envelope.empty() || envelope.back() != '}') {
    ADD_FAILURE() << "no report in envelope: " << envelope.substr(0, 200);
    return "";
  }
  return envelope.substr(at + marker.size(), envelope.size() - at - marker.size() - 1) + "\n";
}

std::string cold_report_json(const char* name, std::size_t runs, double period, double scale) {
  const auto& spec = spec_named(name);
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{period};
  cfg.execution_scale = 1.0 / scale;
  core::ErrorRateFramework fw(pipeline(), cfg);
  fw.set_executor_config(workloads::executor_config_for(spec, runs, scale));
  report::CollectorConfig ccfg;
  ccfg.threads = support::global_pool().size();
  report::AttributionCollector collector(ccfg);
  const isa::Program program = workloads::generate_program(spec);
  const core::BenchmarkResult r =
      fw.analyze(program, workloads::generate_inputs(spec, runs, 2026), &collector);
  std::ostringstream os;
  collector.build(fw, program, r).write_json(os);
  return os.str();
}

const char* kAnalyze = "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}";

// ---------------------------------------------------------------------------
// 1. Crash isolation.

TEST(ServeSupervision, WorkerCrashCostsOneRequestNotTheDaemon) {
  SKIP_UNDER_TSAN();
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("crash");
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());

  const std::uint64_t crashes0 = counter("serve.worker.crashes");
  const std::uint64_t restarts0 = counter("serve.worker.restarts");
  const std::uint64_t spawns0 = counter("serve.worker.spawns");

  std::string dead;
  {
    const ArmedFaults faults("worker.crash:nth=1");
    dead = client.rpc(kAnalyze);
  }
  EXPECT_NE(dead.find("\"ok\":false"), std::string::npos) << dead.substr(0, 200);
  EXPECT_NE(dead.find("\"category\":\"internal\""), std::string::npos) << dead.substr(0, 200);
  EXPECT_NE(dead.find("signal"), std::string::npos) << dead.substr(0, 200);
  EXPECT_EQ(counter("serve.worker.crashes") - crashes0, 1u);
  EXPECT_EQ(counter("serve.worker.restarts") - restarts0, 1u);

  // Same session, same signature, next request: the daemon is healthy
  // and the signature is not quarantined (one death < breaker_trips).
  const std::string alive = client.rpc(kAnalyze);
  EXPECT_NE(alive.find("\"ok\":true"), std::string::npos) << alive.substr(0, 200);
  EXPECT_GE(counter("serve.worker.spawns") - spawns0, 2u);
  EXPECT_EQ(runner.server.breaker().state(signature_of(kAnalyze)),
            serve::CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// 2. Deadlines.

TEST(ServeSupervision, HungWorkerIsKilledAtTheDeadline) {
  SKIP_UNDER_TSAN();
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("hang");
  cfg.request_timeout_s = 0.5;
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());

  const std::uint64_t timeouts0 = counter("serve.worker.timeouts");
  const auto begin = std::chrono::steady_clock::now();
  std::string response;
  {
    const ArmedFaults faults("worker.hang:nth=1");
    response = client.rpc(kAnalyze);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response.substr(0, 200);
  EXPECT_NE(response.find("\"category\":\"resource\""), std::string::npos)
      << response.substr(0, 200);
  EXPECT_NE(response.find("deadline"), std::string::npos) << response.substr(0, 200);
  EXPECT_EQ(counter("serve.worker.timeouts") - timeouts0, 1u);
  // The kill happened at the deadline, not at some larger internal
  // timeout; generous slack for a loaded CI box.
  EXPECT_GE(elapsed, 0.4);
  EXPECT_LT(elapsed, 10.0);

  const std::string alive = client.rpc("{\"op\":\"ping\"}");
  EXPECT_EQ(alive, "{\"ok\":true,\"op\":\"ping\"}");
}

// ---------------------------------------------------------------------------
// 3. Memory budgets.

TEST(ServeSupervision, OomKilledWorkerMapsToResource) {
  SKIP_UNDER_TSAN();
  if (kAsan) GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow mappings";
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("oom");
  // A real RLIMIT-driven death cannot be forced deterministically in a
  // forked child (free chunks inherited from the parent's arenas stay
  // allocatable with no syscall the limits could veto), so the child
  // applies this budget and then the worker.oom verdict acts out the
  // allocation failure — taking the exact _exit(kWorkerOomExitCode)
  // path the new-handler takes, after setrlimit has run.
  cfg.worker_memory_mb = 64;
  // A too-small budget can wedge a worker before it ever fails an
  // allocation (thread stacks come out of the budget too), so a budget
  // is always paired with a deadline: the supervisor, not luck, bounds
  // how long a starved child can hold a flight.
  cfg.request_timeout_s = 30.0;
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());

  const std::uint64_t oom0 = counter("serve.worker.oom_kills");
  std::string response;
  {
    const ArmedFaults faults("worker.oom:nth=1");
    response = client.rpc(kAnalyze);
  }
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response.substr(0, 200);
  EXPECT_NE(response.find("\"category\":\"resource\""), std::string::npos)
      << response.substr(0, 200);
  EXPECT_NE(response.find("memory"), std::string::npos) << response.substr(0, 200);
  EXPECT_EQ(counter("serve.worker.oom_kills") - oom0, 1u);

  // The fault budget is exhausted and the daemon survived its worker's
  // death.  Liveness is checked with a ping, not another analyze: at
  // high thread counts a genuine 64 MB budget can kill (or stall into
  // the deadline) a real analysis in the child, which is the budget
  // doing its job, not a supervision failure.
  const std::string alive = client.rpc("{\"op\":\"ping\"}");
  EXPECT_NE(alive.find("\"ok\":true"), std::string::npos) << alive.substr(0, 200);
}

// ---------------------------------------------------------------------------
// 4. Circuit breaker state machine.

TEST(ServeSupervision, BreakerOpensHalfOpensAndClosesOnCleanProbe) {
  SKIP_UNDER_TSAN();
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("breaker");
  cfg.breaker_trips = 2;
  cfg.breaker_cooldown_s = 0.3;
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());

  const std::uint64_t sig = signature_of(kAnalyze);
  const std::uint64_t trips0 = counter("serve.breaker.trips");
  const std::uint64_t rejected0 = counter("serve.breaker.rejected");
  const std::uint64_t probes0 = counter("serve.breaker.probes");

  {
    // Every worker for this signature dies, but only twice: the probe
    // after the cooldown must come back clean.
    const ArmedFaults faults("worker.crash:prob=1:count=2");
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::string response = client.rpc(kAnalyze);
      EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response.substr(0, 200);
      EXPECT_NE(response.find("\"category\":\"internal\""), std::string::npos)
          << response.substr(0, 200);
    }
    EXPECT_EQ(counter("serve.breaker.trips") - trips0, 1u);
    EXPECT_EQ(runner.server.breaker().state(sig), serve::CircuitBreaker::State::kOpen);
    EXPECT_GE(obs::MetricsRegistry::instance().gauge("serve.breaker.open").value(), 1.0);

    // While open: immediate rejection, no worker spawned, with a backoff
    // hint bounded by the remaining cooldown.
    const std::uint64_t spawns_before = counter("serve.worker.spawns");
    const std::string quarantined = client.rpc(kAnalyze);
    EXPECT_NE(quarantined.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(quarantined.find("quarantined"), std::string::npos) << quarantined.substr(0, 200);
    EXPECT_NE(quarantined.find("\"retry_after_ms\":"), std::string::npos)
        << quarantined.substr(0, 200);
    EXPECT_EQ(counter("serve.worker.spawns"), spawns_before);
    EXPECT_EQ(counter("serve.breaker.rejected") - rejected0, 1u);
  }

  // Past the cooldown the next submission is admitted as the half-open
  // probe; its fault budget is exhausted, so it runs clean and closes
  // the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const std::string probe = client.rpc(kAnalyze);
  EXPECT_NE(probe.find("\"ok\":true"), std::string::npos) << probe.substr(0, 200);
  EXPECT_EQ(counter("serve.breaker.probes") - probes0, 1u);
  EXPECT_EQ(runner.server.breaker().state(sig), serve::CircuitBreaker::State::kClosed);
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::instance().gauge("serve.breaker.open").value(), 0.0);
}

TEST(ServeSupervision, FailedProbeReopensTheBreaker) {
  SKIP_UNDER_TSAN();
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("reopen");
  cfg.breaker_trips = 1;
  cfg.breaker_cooldown_s = 0.2;
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());

  const std::uint64_t sig = signature_of(kAnalyze);
  const ArmedFaults faults("worker.crash:prob=1:count=2");

  // First death opens (trips=1); the probe after the cooldown also dies,
  // so the breaker re-opens for a fresh cooldown.
  (void)client.rpc(kAnalyze);
  EXPECT_EQ(runner.server.breaker().state(sig), serve::CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::string probe = client.rpc(kAnalyze);
  EXPECT_NE(probe.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(runner.server.breaker().state(sig), serve::CircuitBreaker::State::kOpen);
}

// ---------------------------------------------------------------------------
// 5. Coalesced followers of a dead leader.

TEST(ServeSupervision, CoalescedFollowersShareTheLeadersInfraError) {
  SKIP_UNDER_TSAN();
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("followers");
  ServerRunner runner(cfg);
  runner.server.set_paused(true);

  const std::uint64_t coalesced0 = counter("serve.coalesced");
  const ArmedFaults faults("worker.crash:nth=1");

  constexpr int kClients = 3;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(cfg.socket_path);
      ASSERT_TRUE(client.connected());
      responses[static_cast<std::size_t>(i)] = client.rpc(kAnalyze);
    });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter("serve.coalesced") - coalesced0 < kClients - 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(counter("serve.coalesced") - coalesced0, static_cast<std::uint64_t>(kClients - 1));
  runner.server.set_paused(false);
  for (auto& t : threads) t.join();

  // One forked worker died; every attached session gets the same typed
  // envelope (modulo ids) — nobody hangs, nobody re-runs the poison.
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response.substr(0, 200);
    EXPECT_NE(response.find("\"category\":\"internal\""), std::string::npos)
        << response.substr(0, 200);
    EXPECT_NE(response.find("signal"), std::string::npos) << response.substr(0, 200);
  }
}

// ---------------------------------------------------------------------------
// 6. Idle sessions are reaped (slowloris fix, satellite of §5j).

TEST(ServeSupervision, IdleSessionIsClosedAtTheIdleTimeout) {
  // No fork involved: safe under every sanitizer.
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("idle");
  cfg.idle_timeout_s = 0.3;
  ServerRunner runner(cfg);

  const std::uint64_t idle0 = counter("serve.idle_closed");
  Client silent(cfg.socket_path);
  ASSERT_TRUE(silent.connected());
  const auto begin = std::chrono::steady_clock::now();
  // Send nothing; the server must hang up on us.
  EXPECT_EQ(silent.read_line(), "");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  EXPECT_GE(elapsed, 0.2);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(counter("serve.idle_closed") - idle0, 1u);

  // An active client on the same server is unaffected.
  Client active(cfg.socket_path);
  ASSERT_TRUE(active.connected());
  EXPECT_EQ(active.rpc("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");
}

// ---------------------------------------------------------------------------
// 7. Determinism with isolation ON (§5h × §5j).

void expect_isolated_matches_cold(std::size_t threads) {
  support::set_global_threads(threads);
  const std::string cold = cold_report_json("patricia", 2, 1300.0, 1e-4);

  serve::ServerConfig cfg;
  cfg.socket_path = socket_path(("iso" + std::to_string(threads)).c_str());
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());
  const std::string envelope = client.rpc(kAnalyze);
  ASSERT_NE(envelope.find("\"ok\":true"), std::string::npos) << envelope.substr(0, 200);
  EXPECT_EQ(zero_seconds(report_from_envelope(envelope)), zero_seconds(cold))
      << "threads=" << threads;

  // Warm repeat: the memory tier was primed by artifact frames shipped
  // back from the first worker; the bytes must not drift.
  const std::string warm = report_from_envelope(client.rpc(kAnalyze));
  EXPECT_EQ(zero_seconds(warm), zero_seconds(cold)) << "threads=" << threads;
}

TEST(ServeSupervision, IsolatedReportIsByteIdenticalToColdCliRunAt1Thread) {
  SKIP_UNDER_TSAN();
  expect_isolated_matches_cold(1);
}

TEST(ServeSupervision, IsolatedReportIsByteIdenticalToColdCliRunAt4Threads) {
  SKIP_UNDER_TSAN();
  expect_isolated_matches_cold(4);
}

}  // namespace
}  // namespace terrors
