// Serve observability contracts (DESIGN §5i):
//  1. Access-journal schema: access_event_line emits one parseable JSON
//     object per request and report::access_event_from_json inverts it
//     exactly; append_access_event produces a line-delimited file that
//     load_access_journal reads back in order, and concurrent appenders
//     interleave whole events, never bytes (O_APPEND).
//  2. Request-id propagation: RequestScope installs/restores the id,
//     RunEvent carries it only inside the daemon (CLI journal bytes are
//     unchanged), and analyze requests without a client id get a derived
//     "req-N" echoed in the envelope and the journal.
//  3. Aggregation: terrors stats --serve computes per-op latency
//     quantiles, queue-wait share, coalesce/error rates from a known
//     event set, and the SLO gate trips on latency or error-rate burn.
//  4. Daemon end-to-end: one access event per request — including
//     rejected and coalesced requests (followers share the leader's run
//     id) — with nonzero latencies; trace/profile envelope keys appear
//     only on request and never perturb the report bytes; the
//     sessions_active and queue_depth gauges return to zero after
//     fault-heavy sessions.
//  5. Monitor: parse_metrics_sample / write_monitor_text render a
//     dashboard frame from canned metrics JSON without a socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/pipeline.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "report/journal_stats.hpp"
#include "report/json_value.hpp"
#include "robust/error.hpp"
#include "serve/monitor.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace terrors {
namespace {

const netlist::Pipeline& pipeline() {
  static const netlist::Pipeline p = netlist::build_pipeline({});
  return p;
}

std::string socket_path(const char* tag) {
  return "/tmp/terrors_obs_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "serve_obs_test_" + tag + ".jsonl";
}

/// Blocking line-oriented client over a Unix-domain socket.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  std::string read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string rpc(const std::string& request) {
    EXPECT_TRUE(send_line(request));
    return read_line();
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// RAII server on its own thread; the socket accepts when the
/// constructor returns.
struct ServerRunner {
  // Pinned to the legacy in-process executor: observability semantics are
  // isolation-agnostic, and TSan cannot start threads after a
  // multi-threaded fork.  Supervised-path coverage lives in
  // serve_robust_test.cpp.
  explicit ServerRunner(serve::ServerConfig cfg) : server(pipeline(), [](serve::ServerConfig c) {
    c.isolation = false;
    return c;
  }(std::move(cfg))) {
    server.start();
    thread = std::thread([this] { server.run(); });
  }
  ~ServerRunner() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  serve::Server server;
  std::thread thread;
};

/// The report bytes spliced into an analyze envelope: the report is the
/// LAST key, so rfind is robust even when a served trace document rides
/// ahead of it in the same envelope.
std::string report_from_envelope(const std::string& envelope) {
  const std::string marker = ",\"report\":";
  const std::size_t at = envelope.rfind(marker);
  if (at == std::string::npos || envelope.empty() || envelope.back() != '}') {
    ADD_FAILURE() << "no report in envelope: " << envelope.substr(0, 200);
    return "";
  }
  return envelope.substr(at + marker.size(), envelope.size() - at - marker.size() - 1) + "\n";
}

/// Zero the wall-clock fields in raw report JSON so byte comparisons
/// cover every deterministic field.
std::string zero_seconds(std::string text) {
  for (const char* key :
       {"\"training_seconds\":", "\"simulation_seconds\":", "\"estimation_seconds\":"}) {
    const std::size_t key_len = std::strlen(key);
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos + 1)) {
      const std::size_t start = pos + key_len;
      std::size_t end = start;
      while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
      text.replace(start, end - start, "0");
    }
  }
  return text;
}

std::uint64_t counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

/// The access event is appended after the response frame is sent, so a
/// client that just read its reply can beat the journal write; poll.
std::vector<obs::AccessEvent> wait_for_events(const std::string& path, std::size_t n) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    std::vector<obs::AccessEvent> events;
    try {
      events = report::load_access_journal(path);
    } catch (const robust::Error&) {
      // Not created yet (or a line is mid-write); keep polling.
    }
    if (events.size() >= n || std::chrono::steady_clock::now() >= deadline) return events;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

double gauge(const char* name) {
  return obs::MetricsRegistry::instance().gauge(name).value();
}

obs::AccessEvent sample_access(const std::string& id, const std::string& op, double total) {
  obs::AccessEvent e;
  e.request_id = id;
  e.op = op;
  e.signature = op == "analyze" ? "00000000cafef00d" : "";
  e.run_id = op == "analyze" ? "00000000deadbeef" : "";
  e.unix_ms = 1700000000000ULL;
  e.queue_wait_seconds = op == "analyze" ? total * 0.25 : 0.0;
  e.executor_seconds = op == "analyze" ? total * 0.5 : 0.0;
  e.total_seconds = total;
  e.response_bytes = 100;
  e.queue_depth_peak = 1;
  return e;
}

// ---------------------------------------------------------------------------
// 1. Access-journal schema.

TEST(AccessJournalSchema, EventLineRoundTripsThroughReportParser) {
  obs::AccessEvent e = sample_access("req-7", "analyze", 2.5);
  e.coalesced = true;
  e.ok = false;
  e.error_category = "resource";
  e.queue_depth_peak = 3;
  const std::string line = obs::access_event_line(e);
  const report::JsonValue doc = report::JsonValue::parse(line);
  const obs::AccessEvent back = report::access_event_from_json(doc);

  EXPECT_EQ(back.schema_version, obs::kAccessJournalSchemaVersion);
  EXPECT_EQ(back.request_id, e.request_id);
  EXPECT_EQ(back.op, e.op);
  EXPECT_EQ(back.signature, e.signature);
  EXPECT_EQ(back.run_id, e.run_id);
  EXPECT_EQ(back.unix_ms, e.unix_ms);
  EXPECT_EQ(back.queue_wait_seconds, e.queue_wait_seconds);
  EXPECT_EQ(back.executor_seconds, e.executor_seconds);
  EXPECT_EQ(back.total_seconds, e.total_seconds);
  EXPECT_EQ(back.coalesced, e.coalesced);
  EXPECT_EQ(back.rejected, e.rejected);
  EXPECT_EQ(back.ok, e.ok);
  EXPECT_EQ(back.error_category, e.error_category);
  EXPECT_EQ(back.response_bytes, e.response_bytes);
  EXPECT_EQ(back.queue_depth_peak, e.queue_depth_peak);
}

TEST(AccessJournalSchema, RejectsWrongKindAndVersion) {
  // A run event is not an access event, and vice versa.
  EXPECT_THROW(
      report::access_event_from_json(report::JsonValue::parse("{\"kind\":\"terrors_run_event\"}")),
      robust::Error);
  std::string line = obs::access_event_line(sample_access("x", "ping", 0.001));
  const std::string needle = "\"schema_version\":1";
  const auto pos = line.find(needle);
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, needle.size(), "\"schema_version\":999");
  try {
    (void)report::access_event_from_json(report::JsonValue::parse(line));
    FAIL() << "expected robust::Error";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.category(), robust::Category::kArtifact);
  }
}

TEST(AccessJournalSchema, AppendProducesLineDelimitedFileReadBackInOrder) {
  const std::string path = temp_path("append");
  std::remove(path.c_str());
  obs::append_access_event(path, sample_access("a", "ping", 0.001));
  obs::append_access_event(path, sample_access("b", "analyze", 1.5));

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NO_THROW(report::JsonValue::parse(line)) << line;
  }
  EXPECT_EQ(lines, 2u);

  const auto events = report::load_access_journal(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].request_id, "a");
  EXPECT_EQ(events[1].request_id, "b");
  EXPECT_THROW((void)report::load_access_journal("/nonexistent/access.jsonl"), robust::Error);
  std::remove(path.c_str());
}

TEST(AccessJournalSchema, ConcurrentAppendsInterleaveWholeEvents) {
  const std::string path = temp_path("concurrent");
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::append_access_event(
            path, sample_access("t" + std::to_string(t) + "-" + std::to_string(i), "analyze",
                                0.5));
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every line parses (load throws on a torn write) and every event made
  // it exactly once — whole-line O_APPEND interleaving.
  const auto events = report::load_access_journal(path);
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::string> ids;
  for (const auto& e : events) ids.insert(e.request_id);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// 2. Request-id propagation.

TEST(RequestIdPropagation, RunEventCarriesIdOnlyInsideTheDaemon) {
  obs::RunEvent e;
  e.run_id = "00000000deadbeef";
  e.program = "x";
  // Outside the daemon the field is absent — the CLI journal's bytes are
  // exactly what they were before request ids existed.
  EXPECT_EQ(obs::event_line(e).find("request_id"), std::string::npos);

  e.request_id = "req-9";
  const std::string line = obs::event_line(e);
  EXPECT_NE(line.find("\"request_id\":\"req-9\""), std::string::npos) << line;
  const obs::RunEvent back = report::event_from_json(report::JsonValue::parse(line));
  EXPECT_EQ(back.request_id, "req-9");
}

TEST(RequestIdPropagation, RequestScopeInstallsAndRestoresAndRunContextCaptures) {
  EXPECT_EQ(obs::current_request_id(), "");
  {
    obs::RequestScope outer("req-outer");
    EXPECT_EQ(obs::current_request_id(), "req-outer");
    {
      obs::RequestScope inner("req-inner");
      EXPECT_EQ(obs::current_request_id(), "req-inner");
      // A RunContext built inside the scope captures the id once.
      obs::RunContext ctx(42, "bench");
      EXPECT_EQ(ctx.request_id(), "req-inner");
    }
    EXPECT_EQ(obs::current_request_id(), "req-outer");
  }
  EXPECT_EQ(obs::current_request_id(), "");
  EXPECT_EQ(obs::RunContext(42, "bench").request_id(), "");
}

// ---------------------------------------------------------------------------
// 3. Aggregation and the SLO gate (terrors stats --serve).

std::vector<obs::AccessEvent> golden_events() {
  std::vector<obs::AccessEvent> events;
  // Four executed analyzes: totals {1,1,1,5}s, each 25% queue wait.
  for (const double total : {1.0, 1.0, 1.0, 5.0}) {
    events.push_back(sample_access("a" + std::to_string(events.size()), "analyze", total));
  }
  events[3].coalesced = true;
  events[3].queue_depth_peak = 3;
  // One rejected analyze: no timings, resource error.
  obs::AccessEvent rejected = sample_access("a4", "analyze", 0.001);
  rejected.rejected = true;
  rejected.ok = false;
  rejected.error_category = "resource";
  rejected.run_id = "";
  rejected.queue_wait_seconds = 0.0;
  rejected.executor_seconds = 0.0;
  events.push_back(rejected);
  // Two pings and one parse failure.
  events.push_back(sample_access("p1", "ping", 0.001));
  events.push_back(sample_access("p2", "ping", 0.001));
  obs::AccessEvent invalid = sample_access("", "invalid", 0.001);
  invalid.ok = false;
  invalid.error_category = "input";
  events.push_back(invalid);
  return events;
}

TEST(AccessStats, AggregateComputesRatesSharesAndPerOpQuantiles) {
  const report::AccessStats s = report::aggregate_access(golden_events());
  EXPECT_EQ(s.events, 8u);
  EXPECT_EQ(s.analyze_events, 5u);  // rejected analyzes still count
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.coalesced, 1u);
  EXPECT_EQ(s.errors, 2u);  // rejected + invalid
  EXPECT_DOUBLE_EQ(s.error_rate, 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(s.coalesce_rate, 1.0 / 5.0);
  // Only executed analyzes feed the latency summaries: {1,1,1,5}.
  EXPECT_EQ(s.analyze_total_seconds.count, 4u);
  EXPECT_DOUBLE_EQ(s.analyze_total_seconds.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.analyze_total_seconds.max, 5.0);
  // Every executed analyze spent 25% of its wall time queued.
  EXPECT_DOUBLE_EQ(s.queue_wait_share, 0.25);
  EXPECT_EQ(s.queue_wait_seconds.count, 4u);
  EXPECT_EQ(s.executor_seconds.count, 4u);
  EXPECT_EQ(s.queue_depth_peak, 3u);
  EXPECT_EQ(s.response_bytes, 800u);

  // name-sorted per-op table: analyze, invalid, ping.
  ASSERT_EQ(s.ops.size(), 3u);
  EXPECT_EQ(s.ops[0].op, "analyze");
  EXPECT_EQ(s.ops[0].events, 5u);
  EXPECT_EQ(s.ops[0].errors, 1u);
  EXPECT_EQ(s.ops[1].op, "invalid");
  EXPECT_EQ(s.ops[1].errors, 1u);
  EXPECT_EQ(s.ops[2].op, "ping");
  EXPECT_EQ(s.ops[2].events, 2u);
  EXPECT_EQ(s.ops[2].errors, 0u);

  // Empty journal aggregates to zeros and renders without tripping.
  const report::AccessStats empty = report::aggregate_access({});
  EXPECT_EQ(empty.events, 0u);
  std::ostringstream os;
  report::write_access_stats_text(empty, nullptr, os);
  EXPECT_NE(os.str().find("0 request(s)"), std::string::npos);
}

TEST(AccessStats, SloGateChecksLatencyAndErrorRateIndependently) {
  const report::AccessStats s = report::aggregate_access(golden_events());
  // p99 over {1,1,1,5} is 5s = 5000ms; error rate is 25%.
  {
    report::SloConfig cfg;  // both gates disabled by default
    const report::SloResult r = report::check_slo(s, cfg);
    EXPECT_FALSE(r.latency_checked);
    EXPECT_FALSE(r.errors_checked);
    EXPECT_TRUE(r.ok());
  }
  {
    report::SloConfig cfg;
    cfg.p99_ms = 6000.0;
    cfg.error_rate = 0.5;
    const report::SloResult r = report::check_slo(s, cfg);
    EXPECT_TRUE(r.latency_checked);
    EXPECT_TRUE(r.errors_checked);
    EXPECT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.p99_ms, 5000.0);
    EXPECT_DOUBLE_EQ(r.error_rate, 0.25);
  }
  {
    report::SloConfig cfg;
    cfg.p99_ms = 4000.0;  // burn: 5000 > 4000
    const report::SloResult r = report::check_slo(s, cfg);
    EXPECT_FALSE(r.latency_ok);
    EXPECT_FALSE(r.ok());
  }
  {
    report::SloConfig cfg;
    cfg.error_rate = 0.1;  // burn: 0.25 > 0.1
    const report::SloResult r = report::check_slo(s, cfg);
    EXPECT_TRUE(r.latency_ok);
    EXPECT_FALSE(r.errors_ok);
    EXPECT_FALSE(r.ok());
  }
}

TEST(AccessStats, RendererMentionsHeadlineNumbersAndVerdicts) {
  const report::AccessStats s = report::aggregate_access(golden_events());
  report::SloConfig cfg;
  cfg.p99_ms = 4000.0;
  cfg.error_rate = 0.5;
  const report::SloResult slo = report::check_slo(s, cfg);
  std::ostringstream os;
  report::write_access_stats_text(s, &slo, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("8 request(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("analyze"), std::string::npos);
  EXPECT_NE(text.find("1 rejected"), std::string::npos) << text;
  EXPECT_NE(text.find("20.0% coalesce rate"), std::string::npos) << text;
  EXPECT_NE(text.find("25.0% of analyze wall time"), std::string::npos) << text;
  EXPECT_NE(text.find("BURN"), std::string::npos) << text;  // latency gate
  EXPECT_NE(text.find("OK"), std::string::npos) << text;    // error gate
}

// ---------------------------------------------------------------------------
// 4. Daemon end-to-end.

TEST(ServeObsDaemon, JournalRecordsOneEventPerRequestWithTimings) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("journal");
  cfg.access_journal_path = temp_path("daemon");
  std::remove(cfg.access_journal_path.c_str());
  {
    ServerRunner runner(cfg);
    Client client(cfg.socket_path);
    ASSERT_TRUE(client.connected());

    EXPECT_EQ(client.rpc("{\"op\":\"ping\",\"id\":\"t1\"}"),
              "{\"ok\":true,\"op\":\"ping\",\"id\":\"t1\"}");
    EXPECT_NE(client.rpc("{\"op\":\"list\"}").find("\"ok\":true"), std::string::npos);
    EXPECT_NE(client.rpc("not json").find("\"category\":\"input\""), std::string::npos);
    const std::string envelope =
        client.rpc("{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}");
    ASSERT_NE(envelope.find("\"ok\":true"), std::string::npos) << envelope.substr(0, 200);
    // The daemon derived an id and echoed it like a client-supplied one.
    const std::size_t id_at = envelope.find("\"id\":\"req-");
    ASSERT_NE(id_at, std::string::npos) << envelope.substr(0, 200);
    const std::size_t id_start = id_at + std::strlen("\"id\":\"");
    const std::string derived_id =
        envelope.substr(id_start, envelope.find('"', id_start) - id_start);

    // One session is serial, so journal order matches request order.
    const auto events = wait_for_events(cfg.access_journal_path, 4);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].op, "ping");
    EXPECT_EQ(events[0].request_id, "t1");
    EXPECT_TRUE(events[0].ok);
    EXPECT_EQ(events[1].op, "list");
    EXPECT_EQ(events[2].op, "invalid");
    EXPECT_FALSE(events[2].ok);
    EXPECT_EQ(events[2].error_category, "input");

    const obs::AccessEvent& analyze = events[3];
    EXPECT_EQ(analyze.op, "analyze");
    EXPECT_EQ(analyze.request_id, derived_id);
    EXPECT_EQ(analyze.run_id.size(), 16u);
    EXPECT_EQ(analyze.signature.size(), 16u);
    EXPECT_TRUE(analyze.ok);
    EXPECT_GT(analyze.total_seconds, 0.0);
    EXPECT_GT(analyze.executor_seconds, 0.0);
    EXPECT_GE(analyze.queue_wait_seconds, 0.0);
    EXPECT_GE(analyze.total_seconds, analyze.executor_seconds);
    // Envelope size plus the frame's trailing newline.
    EXPECT_EQ(analyze.response_bytes, envelope.size() + 1);
    for (const auto& e : events) {
      EXPECT_GT(e.response_bytes, 0u);
      EXPECT_GT(e.unix_ms, 0u);
      EXPECT_GE(e.total_seconds, 0.0);
    }
  }
  std::remove(cfg.access_journal_path.c_str());
}

TEST(ServeObsDaemon, CoalescedAndRejectedRequestsGetTheirOwnEvents) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("coalesce");
  cfg.access_journal_path = temp_path("coalesce");
  cfg.max_queue = 1;
  std::remove(cfg.access_journal_path.c_str());
  {
    ServerRunner runner(cfg);
    runner.server.set_paused(true);
    const std::uint64_t coalesced0 = counter("serve.coalesced");

    constexpr int kClients = 3;
    const std::string request =
        "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}";
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&] {
        Client client(cfg.socket_path);
        ASSERT_TRUE(client.connected());
        const std::string response = client.rpc(request);
        EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
      });
    }
    // All followers attached while the executor is paused, then one
    // different request bounces off the full queue.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (counter("serve.coalesced") - coalesced0 < kClients - 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    Client overflow(cfg.socket_path);
    ASSERT_TRUE(overflow.connected());
    const std::string bounced = overflow.rpc(
        "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2,\"period\":1299}");
    EXPECT_NE(bounced.find("\"category\":\"resource\""), std::string::npos);

    runner.server.set_paused(false);
    for (auto& t : threads) t.join();

    const auto events =
        wait_for_events(cfg.access_journal_path, static_cast<std::size_t>(kClients) + 1);
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kClients + 1));
    std::vector<const obs::AccessEvent*> served;
    const obs::AccessEvent* rejected = nullptr;
    for (const auto& e : events) {
      EXPECT_EQ(e.op, "analyze");
      if (e.rejected) {
        rejected = &e;
      } else {
        served.push_back(&e);
      }
    }
    ASSERT_EQ(served.size(), static_cast<std::size_t>(kClients));
    ASSERT_NE(rejected, nullptr);

    // Followers get their own events sharing the leader's run id and
    // executor timing — one characterization, N addressable requests.
    int coalesced_events = 0;
    for (const obs::AccessEvent* e : served) {
      EXPECT_TRUE(e->ok);
      EXPECT_EQ(e->run_id, served[0]->run_id);
      EXPECT_EQ(e->signature, served[0]->signature);
      EXPECT_GT(e->total_seconds, 0.0);
      EXPECT_GT(e->executor_seconds, 0.0);
      if (e->coalesced) ++coalesced_events;
    }
    EXPECT_EQ(coalesced_events, kClients - 1);

    // The rejected request still got an event: identity but no run.
    EXPECT_FALSE(rejected->ok);
    EXPECT_EQ(rejected->error_category, "resource");
    EXPECT_EQ(rejected->run_id, "");
    EXPECT_EQ(rejected->signature.size(), 16u);
    EXPECT_GE(rejected->queue_depth_peak, 1u);
  }
  std::remove(cfg.access_journal_path.c_str());
}

TEST(ServeObsDaemon, TelemetryKeysAppearOnlyOnRequestAndNeverPerturbTheReport) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("telemetry");
  ServerRunner runner(cfg);
  Client client(cfg.socket_path);
  ASSERT_TRUE(client.connected());
  const std::uint64_t served0 = counter("serve.trace_served");

  // Cold run with deep telemetry: trace and profile ride ahead of the
  // report in the same envelope.
  const std::string traced = client.rpc(
      "{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2,"
      "\"trace\":true,\"profile\":true}");
  ASSERT_NE(traced.find("\"ok\":true"), std::string::npos) << traced.substr(0, 200);
  EXPECT_EQ(counter("serve.trace_served") - served0, 1u);
  const report::JsonValue doc = report::JsonValue::parse(traced);
  const report::JsonValue* trace = doc.find("trace");
  ASSERT_NE(trace, nullptr);
  if (!trace->is_null()) {
    // A complete Chrome trace-event document with at least one span.
    const report::JsonValue* spans = trace->find("traceEvents");
    ASSERT_NE(spans, nullptr);
    EXPECT_FALSE(spans->items().empty());
  }
  ASSERT_NE(doc.find("profile"), nullptr);

  // The same parameters without telemetry: no trace/profile keys, and
  // the report bytes are unchanged by the instrumented run before it.
  const std::string plain =
      client.rpc("{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}");
  ASSERT_NE(plain.find("\"ok\":true"), std::string::npos) << plain.substr(0, 200);
  EXPECT_EQ(plain.find("\"trace\":"), std::string::npos);
  EXPECT_EQ(plain.find("\"profile\":"), std::string::npos);
  EXPECT_EQ(counter("serve.trace_served") - served0, 1u);
  EXPECT_EQ(zero_seconds(report_from_envelope(traced)),
            zero_seconds(report_from_envelope(plain)));
}

TEST(ServeObsDaemon, GaugesReturnToZeroAfterFaultHeavySessions) {
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path("gauges");
  cfg.max_frame_bytes = 1024;
  ServerRunner runner(cfg);

  {
    // Parse failures, a mid-request disconnect, an oversized frame, and
    // one real analyze — every early-exit path the session can take.
    Client bad(cfg.socket_path);
    ASSERT_TRUE(bad.connected());
    EXPECT_NE(bad.rpc("{\"op\":\"ping\",\"bogus\":1}").find("\"ok\":false"), std::string::npos);
    bad.close();
  }
  {
    Client partial(cfg.socket_path);
    ASSERT_TRUE(partial.connected());
    EXPECT_TRUE(partial.send_raw("{\"op\":\"analy"));
    partial.close();
  }
  {
    Client big(cfg.socket_path);
    ASSERT_TRUE(big.connected());
    EXPECT_TRUE(big.send_raw(std::string(2048, 'x')));
    EXPECT_NE(big.read_line().find("exceeds"), std::string::npos);
    big.close();
  }
  {
    Client worker(cfg.socket_path);
    ASSERT_TRUE(worker.connected());
    const std::string response =
        worker.rpc("{\"op\":\"analyze\",\"benchmark\":\"patricia\",\"runs\":2}");
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
    worker.close();
  }

  // Both gauges must drain to exactly zero once the sessions wind down.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((gauge("serve.sessions_active") != 0.0 || gauge("serve.queue_depth") != 0.0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(gauge("serve.sessions_active"), 0.0);
  EXPECT_EQ(gauge("serve.queue_depth"), 0.0);
}

// ---------------------------------------------------------------------------
// 5. Monitor rendering (no socket).

TEST(Monitor, ParsesMetricsSampleAndRejectsWrongShape) {
  const report::JsonValue doc = report::JsonValue::parse(
      "{\"counters\":{\"serve.requests\":10,\"serve.errors\":1},"
      "\"gauges\":{\"serve.sessions_active\":2},"
      "\"histograms\":{\"serve.request_seconds\":"
      "{\"count\":8,\"mean\":0.2,\"p50\":0.1,\"p95\":0.4,\"p99\":0.5}}}");
  const serve::MonitorSample sample = serve::parse_metrics_sample(doc);
  EXPECT_EQ(sample.counter("serve.requests"), 10u);
  EXPECT_EQ(sample.counter("serve.missing"), 0u);
  EXPECT_DOUBLE_EQ(sample.gauge("serve.sessions_active"), 2.0);
  const auto* h = sample.hist("serve.request_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 8u);
  EXPECT_DOUBLE_EQ(h->p99, 0.5);
  EXPECT_EQ(sample.hist("nope"), nullptr);

  try {
    (void)serve::parse_metrics_sample(report::JsonValue::parse("{\"counters\":{}}"));
    FAIL() << "expected robust::Error";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.category(), robust::Category::kInput);
  }
}

TEST(Monitor, RendersRatesLatencyAndCacheLines) {
  const report::JsonValue doc = report::JsonValue::parse(
      "{\"counters\":{\"serve.requests\":120,\"serve.errors\":6,\"serve.sessions\":4,"
      "\"serve.coalesced\":3,\"serve.mem_cache.hits\":9,\"serve.mem_cache.misses\":1},"
      "\"gauges\":{\"serve.sessions_active\":1,\"serve.queue_depth\":2,"
      "\"serve.queue_depth_peak\":5},"
      "\"histograms\":{\"serve.request_seconds\":"
      "{\"count\":100,\"mean\":0.2,\"p50\":0.1,\"p95\":0.4,\"p99\":0.5}}}");
  const serve::MonitorSample cur = serve::parse_metrics_sample(doc);
  serve::MonitorSample prev = cur;
  prev.counters["serve.requests"] = 100;

  std::ostringstream os;
  serve::write_monitor_text(&prev, cur, 2.0, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("requests 120"), std::string::npos) << text;
  EXPECT_NE(text.find("10.0/s"), std::string::npos) << text;  // (120-100)/2s
  EXPECT_NE(text.find("errors 6 (5.0%)"), std::string::npos) << text;
  EXPECT_NE(text.find("queue depth 2 (peak 5)"), std::string::npos) << text;
  EXPECT_NE(text.find("p99 500.0ms"), std::string::npos) << text;
  EXPECT_NE(text.find("memory 90.0% (9/10)"), std::string::npos) << text;

  // First frame: no prev, no rate, latency dash when the family is empty.
  std::ostringstream first;
  serve::write_monitor_text(nullptr, serve::MonitorSample{}, 2.0, first);
  EXPECT_NE(first.str().find("requests 0"), std::string::npos) << first.str();
  EXPECT_NE(first.str().find("latency: -"), std::string::npos) << first.str();
}

}  // namespace
}  // namespace terrors
