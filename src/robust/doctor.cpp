#include "robust/doctor.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "robust/fault_injection.hpp"

#include "cache/artifact_cache.hpp"
#include "core/framework.hpp"
#include "core/marginal.hpp"
#include "isa/program.hpp"
#include "netlist/pipeline.hpp"
#include "support/thread_pool.hpp"
#include "timing/variation.hpp"

namespace terrors::robust {

namespace {

Finding run_check(const std::string& name, const std::function<std::string()>& body) {
  Finding f;
  f.check = name;
  try {
    f.detail = body();
    f.ok = true;
  } catch (const std::exception& e) {
    f.ok = false;
    f.category = classify(e);
    f.detail = e.what();
  }
  return f;
}

std::string check_cache(const DoctorOptions& options) {
  std::string dir = cache::resolve_cache_dir(options.cache_dir);
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "terrors-doctor-cache").string();
  }
  const cache::ArtifactCache probe(dir);
  const std::uint64_t key = 0xd0c70full;
  const std::vector<std::uint8_t> payload = {'d', 'o', 'c', 't', 'o', 'r'};
  probe.store("doctor-probe", key, payload);
  const auto back = probe.load("doctor-probe", key);
  std::error_code ec;
  std::filesystem::remove(probe.path_for("doctor-probe", key), ec);
  if (!back.has_value() || *back != payload) {
    raise(Category::kResource, "cache dir '" + dir + "' failed a store/load round-trip");
  }
  return "store/load round-trip ok in " + dir;
}

std::string check_pool() {
  auto& pool = support::global_pool();
  constexpr std::size_t kN = 512;
  std::vector<std::uint64_t> slots(kN, 0);
  pool.parallel_for(kN, [&](std::size_t i, std::size_t) {
    slots[i] = static_cast<std::uint64_t>(i) * 3 + 1;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    if (slots[i] != static_cast<std::uint64_t>(i) * 3 + 1) {
      raise(Category::kInternal,
            "parallel_for misplaced index " + std::to_string(i) + " at " +
                std::to_string(pool.size()) + " threads");
    }
  }
  return std::to_string(kN) + " index-keyed slots correct at " + std::to_string(pool.size()) +
         " threads";
}

std::string check_solver() {
  // Well-conditioned 3x3: must solve directly (not degraded) to a tiny
  // residual.
  const auto healthy = core::solve_scc_robust({4, 1, 0, 1, 3, 1, 0, 1, 2}, {6, 10, 7});
  if (healthy.degraded || healthy.residual > 1e-9) {
    raise(Category::kNumerical,
          "well-conditioned solve degraded or inaccurate (residual " +
              std::to_string(healthy.residual) + ")");
  }
  // Numerically singular: the robust path must still return a finite,
  // clamped result and flag the degradation.
  const auto sick = core::solve_scc_robust({1, 1, 1, 1}, {0.5, 0.5});
  if (!sick.degraded) {
    raise(Category::kNumerical, "singular solve was not flagged as degraded");
  }
  for (const double v : sick.x) {
    if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
      raise(Category::kNumerical, "singular-solve fallback left the [0,1] range");
    }
  }
  return "direct solve residual " + std::to_string(healthy.residual) +
         "; singular fallback finite and flagged";
}

isa::Instruction make_instr(isa::Opcode op, int rd = 0, int rs1 = 0, int rs2 = 0, int imm = 0) {
  isa::Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

std::string check_analysis() {
  // Golden micro-analysis: 3-block loop program, default pipeline.
  isa::Program p{"doctor-loop"};
  isa::BasicBlock b0;
  b0.instructions = {make_instr(isa::Opcode::kMovi, 1, 0, 0, 4)};
  isa::BasicBlock b1;
  b1.instructions = {make_instr(isa::Opcode::kSubi, 1, 1, 0, 1),
                     make_instr(isa::Opcode::kBne, 0, 1, 0)};
  isa::BasicBlock b2;
  b2.instructions = {make_instr(isa::Opcode::kNop)};
  p.add_block(b0);
  p.add_block(b1);
  p.add_block(b2);
  p.block(0).fallthrough = 1;
  p.block(1).taken = 1;
  p.block(1).fallthrough = 2;
  p.set_entry(0);
  p.validate();

  const netlist::Pipeline pipeline = netlist::build_pipeline({});
  core::FrameworkConfig cfg;
  cfg.spec = timing::TimingSpec{1300.0};
  core::ErrorRateFramework fw(pipeline, cfg);
  const auto result = fw.analyze(p, {isa::ProgramInput{}});
  const double rate = result.estimate.rate_mean();
  if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
    raise(Category::kNumerical,
          "golden micro-analysis rate " + std::to_string(rate) + " outside [0,1]");
  }
  return "golden loop analysis ok (rate " + std::to_string(rate) + ")";
}

std::string check_worker() {
  // Spawn-and-reap probe for the serve isolation tier (DESIGN §5j): fork
  // a child that answers over a pipe, read the answer, reap it.  This is
  // deliberately plain fork/pipe/waitpid — doctor links below src/serve —
  // and exercises the same primitives run_in_worker() depends on, so an
  // environment where forked workers cannot run (fork limits, a broken
  // wait configuration) fails here instead of inside the daemon.
  maybe_fault("worker.spawn");
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    raise(Category::kResource, std::string("probe worker pipe failed: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const std::string err = std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    raise(Category::kResource, "probe worker fork failed: " + err);
  }
  if (pid == 0) {
    ::close(fds[0]);
    const char probe[] = "doctor-worker";
    ssize_t left = sizeof(probe);
    const char* p = probe;
    while (left > 0) {
      const ssize_t w = ::write(fds[1], p, static_cast<std::size_t>(left));
      if (w < 0) {
        if (errno == EINTR) continue;
        ::_exit(1);
      }
      p += w;
      left -= w;
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  std::string got;
  char chunk[64];
  for (;;) {
    const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    raise(Category::kResource,
          "probe worker died unexpectedly (status " + std::to_string(status) + ")");
  }
  if (got != std::string("doctor-worker") + '\0') {
    raise(Category::kResource, "probe worker answered '" + got + "'");
  }
  return "probe worker spawned, answered, and was reaped";
}

}  // namespace

bool DoctorReport::ok() const {
  for (const auto& f : findings) {
    if (!f.ok) return false;
  }
  return true;
}

int DoctorReport::exit_code() const {
  for (const auto& f : findings) {
    if (!f.ok) return exit_code_for(f.category);
  }
  return 0;
}

DoctorReport run_doctor(const DoctorOptions& options) {
  DoctorReport report;
  report.findings.push_back(run_check("cache", [&] { return check_cache(options); }));
  report.findings.push_back(run_check("pool", check_pool));
  report.findings.push_back(run_check("solver", check_solver));
  report.findings.push_back(run_check("worker", check_worker));
  report.findings.push_back(run_check("analysis", check_analysis));
  return report;
}

}  // namespace terrors::robust
