#include "robust/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "robust/hooks.hpp"

namespace terrors::robust {

namespace {

// splitmix64: well-mixed 64-bit hash, the same construction the support
// RNG uses for stream splitting.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  return h;
}

}  // namespace

const std::vector<FaultSite>& fault_sites() {
  static const std::vector<FaultSite> sites = {
      {"cache.read", Category::kArtifact, false, "artifact cache load (warm-start read)"},
      {"cache.write", Category::kResource, false, "artifact cache store (publish)"},
      {"io.write", Category::kResource, false, "run-report / metrics file write"},
      {"report.read", Category::kInput, false, "run-report file read + parse"},
      {"vcd.parse", Category::kInput, false, "VCD stream parse"},
      {"solver.pivot", Category::kNumerical, true, "SCC linear-solve pivot (key = SCC id)"},
      {"pool.task", Category::kInternal, true, "thread-pool task entry (key = loop index)"},
      // Serve worker supervision (DESIGN §5j).  All three are decided in
      // the supervisor process before fork, so serial nth= counting stays
      // deterministic across sandbox children.
      {"worker.spawn", Category::kResource, false, "serve worker fork (spawn failure)"},
      {"worker.hang", Category::kResource, false, "serve worker past its deadline (SIGKILL)"},
      {"worker.crash", Category::kInternal, false, "serve worker abort mid-analysis"},
      {"worker.oom", Category::kResource, false, "serve worker memory-budget exhaustion"},
  };
  return sites;
}

const FaultSite* find_fault_site(std::string_view name) {
  for (const auto& s : fault_sites()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t i = 0;
  const auto is_sep = [](char c) { return c == ' ' || c == '\t' || c == '\n' || c == ','; };
  while (i < spec.size()) {
    while (i < spec.size() && is_sep(spec[i])) ++i;
    std::size_t j = i;
    while (j < spec.size() && !is_sep(spec[j])) ++j;
    if (j == i) break;
    const std::string_view entry = spec.substr(i, j - i);
    i = j;

    FaultSpec fs;
    std::size_t p = 0;
    std::size_t colon = entry.find(':');
    fs.site = std::string(entry.substr(0, colon));
    if (find_fault_site(fs.site) == nullptr)
      raise(Category::kInput, "fault plan: unknown site '" + fs.site + "' in '" +
                                  std::string(entry) + "'");
    p = colon == std::string_view::npos ? entry.size() : colon + 1;
    bool any_trigger = false;
    while (p < entry.size()) {
      colon = entry.find(':', p);
      const std::string_view opt =
          entry.substr(p, colon == std::string_view::npos ? entry.size() - p : colon - p);
      p = colon == std::string_view::npos ? entry.size() : colon + 1;
      const std::size_t eq = opt.find('=');
      if (eq == std::string_view::npos)
        raise(Category::kInput,
              "fault plan: option '" + std::string(opt) + "' needs a value in '" +
                  std::string(entry) + "'");
      const std::string_view k = opt.substr(0, eq);
      const std::string value(opt.substr(eq + 1));
      char* end = nullptr;
      const auto fail_value = [&]() {
        raise(Category::kInput, "fault plan: bad value for '" + std::string(k) + "' in '" +
                                    std::string(entry) + "'");
      };
      if (k == "nth") {
        fs.nth = std::strtoull(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size() || value.empty() || fs.nth == 0) fail_value();
        any_trigger = true;
      } else if (k == "prob") {
        fs.prob = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || value.empty() || fs.prob < 0.0) fail_value();
        any_trigger = true;
      } else if (k == "seed") {
        fs.seed = std::strtoull(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size() || value.empty()) fail_value();
      } else if (k == "key" || k == "scc") {
        fs.key = std::strtoull(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size() || value.empty()) fail_value();
        any_trigger = true;
      } else if (k == "count") {
        fs.max_fires = std::strtoull(value.c_str(), &end, 10);
        if (end != value.c_str() + value.size() || value.empty()) fail_value();
      } else {
        raise(Category::kInput, "fault plan: unknown option '" + std::string(k) + "' in '" +
                                    std::string(entry) + "'");
      }
    }
    if (!any_trigger)
      raise(Category::kInput,
            "fault plan: '" + std::string(entry) + "' needs nth=, prob=, key=, or scc=");
    if (fs.key.has_value() && !find_fault_site(fs.site)->keyed)
      raise(Category::kInput,
            "fault plan: site '" + fs.site + "' is not keyed (key=/scc= not applicable)");
    plan.specs_.push_back(std::move(fs));
  }
  return plan;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector fi;
  return fi;
}

std::shared_ptr<FaultInjector::SpecList> FaultInjector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return specs_;
}

void FaultInjector::arm(FaultPlan plan) {
  auto specs = std::make_shared<SpecList>();
  for (const auto& s : plan.specs()) {
    auto armed = std::make_unique<ArmedSpec>();
    armed->spec = s;
    specs->push_back(std::move(armed));
  }
  const bool have = !specs->empty();
  // The pool.task site lives behind a runtime hook; make sure it is wired
  // before any plan can name it.
  if (have) install_pool_hooks();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    specs_ = std::move(specs);
  }
  fires_.store(0, std::memory_order_relaxed);
  armed_.store(have, std::memory_order_release);
  if (have) {
    obs::log_warn("robust", "fault plan armed",
                  {{"entries", static_cast<std::uint64_t>(plan.specs().size())}});
  }
}

bool FaultInjector::should_fire(std::string_view site, std::optional<std::uint64_t> key) {
  const auto specs = snapshot();
  if (!specs) return false;
  bool fire = false;
  for (const auto& armed : *specs) {
    const FaultSpec& s = armed->spec;
    if (site != s.site) continue;
    // The occurrence ordinal: arrival order at serial sites, key order at
    // keyed sites (thread-count independent).
    const std::uint64_t occurrence =
        key.has_value() ? *key + 1
                        : armed->occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
    bool hit = false;
    if (s.key.has_value()) {
      hit = key.has_value() && *key == *s.key;
    } else if (s.nth != 0) {
      hit = occurrence == s.nth;
    } else if (s.prob >= 0.0) {
      if (s.prob >= 1.0) {
        hit = true;
      } else {
        const std::uint64_t h = mix64(s.seed ^ mix64(hash_site(site) ^ occurrence));
        hit = static_cast<double>(h) < s.prob * 18446744073709551616.0;  // 2^64
      }
    }
    if (!hit) continue;
    // Per-entry fire budget (count=C).
    if (armed->fired.fetch_add(1, std::memory_order_relaxed) >= s.max_fires) continue;
    fire = true;
  }
  if (fire) {
    fires_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& injected =
        obs::MetricsRegistry::instance().counter("robust.faults_injected");
    injected.increment();
    obs::log_warn("robust", "fault fired",
                  {{"site", std::string(site)},
                   {"key", key.has_value() ? std::to_string(*key) : std::string("-")}});
  }
  return fire;
}

}  // namespace terrors::robust
