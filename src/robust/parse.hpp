// Checked numeric parsing for user-facing input surfaces (CLI flags, the
// serve protocol).
//
// The standard std::sto* family is the wrong tool at a trust boundary:
// it throws untyped std::invalid_argument / std::out_of_range on garbage,
// silently accepts trailing junk ("--runs=4x" parses as 4), and stoul
// wraps negatives into huge unsigned values ("--threads=-1" becomes
// 2^64-1 workers).  These helpers parse the *entire* value with
// std::from_chars — locale-independent by construction — and turn every
// failure mode into a robust::Error of category kInput that names the
// flag and the offending value, so a daemon's flag surface can never kill
// the process with an untyped crash (DESIGN §5h).
#pragma once

#include <cstdint>
#include <string_view>

namespace terrors::robust {

/// Parse `value` as a finite double.  `what` names the input in error
/// messages (e.g. "--period" or "field 'scale'").  Throws Error(kInput)
/// on empty input, trailing garbage, non-finite results ("inf", "nan"),
/// or out-of-range magnitudes.
[[nodiscard]] double parse_double_arg(std::string_view what, std::string_view value);

/// Parse `value` as an unsigned 64-bit integer.  Rejects (with
/// Error(kInput)) everything parse_double_arg rejects plus any sign —
/// "-1" is an error naming the negative value, never a silent wrap to
/// 18446744073709551615.
[[nodiscard]] std::uint64_t parse_uint_arg(std::string_view what, std::string_view value);

}  // namespace terrors::robust
