// Typed error taxonomy for the terrors library (DESIGN §5f).
//
// Every failure the library can surface falls into one of five
// machine-readable categories, so callers (the CLI, the framework's
// degradation policies, tests) can dispatch on *kind* instead of
// string-matching what():
//
//   kInput      — the caller handed us something malformed (bad assembly,
//                 corrupt VCD, unparsable JSON, unknown flag value).
//   kArtifact   — a persisted artifact (cache entry, run report) is
//                 corrupt, truncated, or from an incompatible version.
//   kNumerical  — a solve failed or degenerated (singular SCC system,
//                 non-finite intermediate).
//   kResource   — the environment failed us (unwritable directory, full
//                 disk, I/O error).
//   kInternal   — an invariant of this library broke; always a bug here.
//
// Errors chain: wrap(cause) preserves the inner message so the CLI can
// print `error: [artifact] decode control tables: caused by: checksum
// mismatch` and exit with a category-specific code.  robust::Error
// derives from std::runtime_error, so legacy catch sites keep working.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace terrors::robust {

enum class Category : int {
  kInput = 0,
  kArtifact = 1,
  kNumerical = 2,
  kResource = 3,
  kInternal = 4,
};

/// Stable lowercase name ("input", "artifact", ...), used in error
/// rendering, doctor findings, and logs.
[[nodiscard]] std::string_view category_name(Category c);

/// Process exit code for a failure of this category.  0..2 are taken by
/// success / generic failure / `terrors diff` regression, so categories
/// map to 3..7 (README "Troubleshooting").
[[nodiscard]] int exit_code_for(Category c);

class Error : public std::runtime_error {
 public:
  Error(Category category, std::string message);

  [[nodiscard]] Category category() const { return category_; }
  /// The outermost message, without category tag or cause chain.
  [[nodiscard]] const std::string& message() const { return chain_.front(); }
  /// Outermost-first context chain (message, then each cause).
  [[nodiscard]] const std::vector<std::string>& chain() const { return chain_; }

  /// Wrap a caught exception with added context.  A robust::Error cause
  /// keeps its category (context never changes *kind*, only location);
  /// any other exception gets `fallback`.
  [[nodiscard]] static Error wrap(std::string context, const std::exception& cause,
                                  Category fallback = Category::kInternal);

  /// `[category] message: caused by: inner: caused by: ...` — what()
  /// returns exactly this, so untyped catch sites still print the chain.
  [[nodiscard]] std::string render() const { return what(); }

 private:
  Error(Category category, std::vector<std::string> chain);
  static std::string render_chain(Category category, const std::vector<std::string>& chain);

  Category category_;
  std::vector<std::string> chain_;
};

/// Best-effort category for an arbitrary exception: robust::Error reports
/// its own; TE_REQUIRE's std::invalid_argument maps to kInput; TE_CHECK's
/// std::logic_error and everything unknown map to kInternal;
/// std::bad_alloc maps to kResource.
[[nodiscard]] Category classify(const std::exception& e);

/// Shorthand: throw Error{category, message}.
[[noreturn]] void raise(Category category, std::string message);

}  // namespace terrors::robust
