#include "robust/error.hpp"

#include <new>

namespace terrors::robust {

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kInput:
      return "input";
    case Category::kArtifact:
      return "artifact";
    case Category::kNumerical:
      return "numerical";
    case Category::kResource:
      return "resource";
    case Category::kInternal:
      return "internal";
  }
  return "internal";
}

int exit_code_for(Category c) {
  switch (c) {
    case Category::kInput:
      return 3;
    case Category::kArtifact:
      return 4;
    case Category::kNumerical:
      return 5;
    case Category::kResource:
      return 6;
    case Category::kInternal:
      return 7;
  }
  return 7;
}

std::string Error::render_chain(Category category, const std::vector<std::string>& chain) {
  std::string out = "[";
  out += category_name(category);
  out += "] ";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) out += ": caused by: ";
    out += chain[i];
  }
  return out;
}

Error::Error(Category category, std::string message)
    : Error(category, std::vector<std::string>{std::move(message)}) {}

Error::Error(Category category, std::vector<std::string> chain)
    : std::runtime_error(render_chain(category, chain)),
      category_(category),
      chain_(std::move(chain)) {}

Error Error::wrap(std::string context, const std::exception& cause, Category fallback) {
  std::vector<std::string> chain;
  chain.push_back(std::move(context));
  Category category = fallback;
  if (const auto* typed = dynamic_cast<const Error*>(&cause)) {
    category = typed->category_;
    chain.insert(chain.end(), typed->chain_.begin(), typed->chain_.end());
  } else {
    category = classify(cause);
    if (category == Category::kInternal) category = fallback;
    chain.emplace_back(cause.what());
  }
  return Error(category, std::move(chain));
}

Category classify(const std::exception& e) {
  if (const auto* typed = dynamic_cast<const Error*>(&e)) return typed->category();
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) return Category::kResource;
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) return Category::kInput;
  return Category::kInternal;
}

void raise(Category category, std::string message) {
  throw Error(category, std::move(message));
}

}  // namespace terrors::robust
