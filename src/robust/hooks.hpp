// Bridges between the robust layer and subsystems that cannot link it.
//
// support::ThreadPool sits at the bottom of the link order, so its
// fault-injection site (`pool.task`) and retry metering are injected as
// runtime hooks.  install_pool_hooks() is idempotent and cheap; the
// framework and the fault injector both call it on their init paths.
#pragma once

namespace terrors::robust {

void install_pool_hooks();

}  // namespace terrors::robust
