// Deterministic, seeded fault injection (DESIGN §5f).
//
// A FaultPlan is a whitespace/comma-separated list of entries
//
//   SITE[:nth=N][:prob=P][:seed=S][:scc=K|:key=K][:count=C]
//
// e.g. `cache.read:nth=3`, `io.write:prob=0.01:seed=7`,
// `solver.pivot:scc=0`, or `pool.task:key=5`.  The plan comes from the
// CLI's `--inject-faults` flag or the TERRORS_FAULTS environment
// variable and is armed process-wide on the FaultInjector singleton;
// tests arm plans programmatically.
//
// Sites are *registered by name* at the library's failure boundaries
// (see fault_sites()); arming a plan that names an unknown site is a
// typed kInput error, so chaos configurations cannot silently rot.
//
// Determinism contract: a given plan fires at the same logical
// occurrences at any thread count.
//  * Serial sites (cache.read, cache.write, io.write, report.read,
//    vcd.parse) count occurrences with an atomic per-entry counter;
//    they are only reached from the (deterministically ordered) main
//    thread, so `nth=N` means the Nth occurrence, 1-based.
//  * Keyed sites (solver.pivot keyed by SCC id, pool.task keyed by loop
//    index) derive the occurrence from the caller-supplied key instead
//    of arrival order, so worker scheduling cannot reorder decisions:
//    `key=K` / `scc=K` fires exactly at key K, and `nth=N` fires at
//    key N-1 (the ordinal of key K is K+1).
//  * `prob=P` hashes (seed, site, occurrence) through splitmix64 —
//    reproducible coin flips, independent across occurrences; P>=1
//    fires every time.
//  * `count=C` caps the total number of fires of one entry (default
//    unlimited); the cap is applied per-entry with an atomic budget.
//
// A firing site throws robust::Error with the site's registered
// category and the message `injected fault at SITE`.  With no plan
// armed, maybe_fault() is one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "robust/error.hpp"

namespace terrors::robust {

struct FaultSite {
  const char* name;
  Category category;  ///< category of the injected Error
  bool keyed;         ///< occurrences derive from a caller key
  const char* description;
};

/// The registry of injectable sites, in documentation order.
[[nodiscard]] const std::vector<FaultSite>& fault_sites();
/// Lookup by name; nullptr when unknown.
[[nodiscard]] const FaultSite* find_fault_site(std::string_view name);

struct FaultSpec {
  std::string site;
  /// Fire on this 1-based occurrence (0 = not set).
  std::uint64_t nth = 0;
  /// Fire with this per-occurrence probability (< 0 = not set).
  double prob = -1.0;
  std::uint64_t seed = 0;
  /// Fire exactly at this key (keyed sites; scc= is an alias).
  std::optional<std::uint64_t> key;
  /// Maximum number of fires for this entry.
  std::uint64_t max_fires = UINT64_MAX;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse the SPEC grammar above.  Unknown sites, unknown options, and
  /// malformed numbers raise kInput errors naming the offending entry.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  std::vector<FaultSpec> specs_;
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Install (replace) the process-wide plan; resets occurrence counters.
  void arm(FaultPlan plan);
  /// Remove the plan entirely (tests; also `arm({})`).
  void disarm() { arm(FaultPlan{}); }

  [[nodiscard]] bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Decide whether a fault fires at this site occurrence.  `key` must be
  /// supplied at keyed sites and omitted at serial sites.
  [[nodiscard]] bool should_fire(std::string_view site,
                                 std::optional<std::uint64_t> key = std::nullopt);

  /// Total fires since the plan was armed.
  [[nodiscard]] std::uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  FaultInjector() = default;

  struct ArmedSpec {
    FaultSpec spec;
    std::atomic<std::uint64_t> occurrences{0};
    std::atomic<std::uint64_t> fired{0};
  };

  using SpecList = std::vector<std::unique_ptr<ArmedSpec>>;
  [[nodiscard]] std::shared_ptr<SpecList> snapshot() const;

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> fires_{0};
  // Replaced wholesale by arm(); the mutex only guards the pointer swap,
  // so concurrent should_fire() calls racing an arm() keep a consistent
  // snapshot while counters stay lock-free.
  mutable std::mutex mutex_;
  std::shared_ptr<SpecList> specs_;
};

/// The injection point: throws the site's typed Error when the armed
/// plan says this occurrence fails.  Near-zero cost when no plan is
/// armed (one relaxed atomic load).
inline void maybe_fault(const char* site) {
  FaultInjector& fi = FaultInjector::instance();
  if (!fi.armed()) return;
  if (fi.should_fire(site))
    raise(find_fault_site(site)->category, std::string("injected fault at ") + site);
}

inline void maybe_fault(const char* site, std::uint64_t key) {
  FaultInjector& fi = FaultInjector::instance();
  if (!fi.armed()) return;
  if (fi.should_fire(site, key))
    raise(find_fault_site(site)->category,
          std::string("injected fault at ") + site + " (key " + std::to_string(key) + ")");
}

}  // namespace terrors::robust
