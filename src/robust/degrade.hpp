// Graceful-degradation bookkeeping (DESIGN §5f).
//
// When a peripheral subsystem fails mid-analysis — a cache read throws,
// an SCC system is singular, a worker task needs a serial retry — the
// framework keeps serving a best-effort estimate but must *say so*.
// DegradationLog is the single place those events land:
//
//   * `robust.degraded` (total) and `robust.degraded.<site>` counters,
//   * one WARN log line per (site) per run (repeats are recorded
//     silently, so a prob=1 chaos run does not spam stderr),
//   * an entry list the framework copies into BenchmarkResult /
//     the run report's `degraded` section.
//
// begin_run() is called at the top of Framework::analyze; entries are
// per-run, counters are cumulative like every other metric.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace terrors::robust {

class DegradationLog {
 public:
  static DegradationLog& instance();

  struct Entry {
    std::string site;    ///< short site tag: "cache", "solver", "pool", "io"
    std::string detail;  ///< first failure detail recorded for this site
    std::uint64_t events = 0;
  };

  /// Clear per-run entries (counters and logs are untouched).
  void begin_run();

  /// Record one degradation event; warns (once per site per run) and
  /// bumps `robust.degraded` + `robust.degraded.<site>`.
  void note(std::string_view site, std::string_view detail);

  [[nodiscard]] bool degraded() const;
  [[nodiscard]] std::vector<Entry> entries() const;
  /// Sorted unique site tags of the current run ("cache", "solver", ...).
  [[nodiscard]] std::vector<std::string> sites() const;

 private:
  DegradationLog() = default;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// Shorthand for DegradationLog::instance().note(...).
void note_degraded(std::string_view site, std::string_view detail);

}  // namespace terrors::robust
