#include "robust/hooks.hpp"

#include <mutex>
#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "robust/degrade.hpp"
#include "robust/fault_injection.hpp"
#include "support/thread_pool.hpp"

namespace terrors::robust {

void install_pool_hooks() {
  static std::once_flag once;
  std::call_once(once, [] {
    support::PoolHooks hooks;
    // The pool.task injection site: keyed by loop index, so the set of
    // failing tasks is identical at any thread count.
    hooks.task_enter = [](std::size_t index) {
      maybe_fault("pool.task", static_cast<std::uint64_t>(index));
    };
    hooks.task_retry = [](std::size_t index, const char* what, bool retry_ok) {
      static obs::Counter& retries =
          obs::MetricsRegistry::instance().counter("pool.task_retries");
      retries.increment();
      note_degraded("pool", "task index " + std::to_string(index) +
                                " retried serially after: " + what);
      if (!retry_ok) {
        obs::log_error("pool", "task retry failed, propagating",
                       {{"index", static_cast<std::uint64_t>(index)}, {"error", what}});
      }
    };
    support::set_pool_hooks(std::move(hooks));
  });
}

}  // namespace terrors::robust
