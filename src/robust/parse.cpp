#include "robust/parse.hpp"

#include <charconv>
#include <cmath>
#include <string>
#include <system_error>

#include "robust/error.hpp"

namespace terrors::robust {

namespace {

[[noreturn]] void reject(std::string_view what, std::string_view value, std::string_view why) {
  raise(Category::kInput,
        std::string(what) + ": " + std::string(why) + " '" + std::string(value) + "'");
}

}  // namespace

double parse_double_arg(std::string_view what, std::string_view value) {
  if (value.empty()) reject(what, value, "expected a number, got");
  double out = 0.0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) reject(what, value, "number out of range:");
  if (ec != std::errc() || ptr != last) reject(what, value, "expected a number, got");
  if (!std::isfinite(out)) reject(what, value, "expected a finite number, got");
  return out;
}

std::uint64_t parse_uint_arg(std::string_view what, std::string_view value) {
  if (value.empty()) reject(what, value, "expected a non-negative integer, got");
  if (value.front() == '-') reject(what, value, "expected a non-negative integer, got");
  std::uint64_t out = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) reject(what, value, "integer out of range:");
  if (ec != std::errc() || ptr != last) reject(what, value, "expected a non-negative integer, got");
  return out;
}

}  // namespace terrors::robust
