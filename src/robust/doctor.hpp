// `terrors doctor`: environment self-test (DESIGN §5f).
//
// Four checks, each mapped to the error taxonomy so the CLI can exit
// with a category-coded status when the environment is broken:
//
//   cache    — the artifact cache directory accepts a store/load
//              round-trip (kResource when unwritable),
//   pool     — a parallel_for over 512 indices lands every result in its
//              index-keyed slot at the configured thread count
//              (kInternal on any misplacement),
//   solver   — a known well-conditioned system solves to a tiny residual
//              without degrading, and a near-singular system degrades to
//              a finite clamped result (kNumerical otherwise),
//   analysis — a golden micro-analysis (3-block loop program on the
//              default pipeline) produces a finite error rate in [0,1].
//
// Checks never throw: failures are captured as Findings and classified.
#pragma once

#include <string>
#include <vector>

#include "robust/error.hpp"

namespace terrors::robust {

struct DoctorOptions {
  /// Cache directory to probe; empty resolves TERRORS_CACHE_DIR, then
  /// falls back to a scratch directory under the system temp dir.
  std::string cache_dir;
};

struct Finding {
  std::string check;
  bool ok = false;
  /// Failure category (meaningful only when !ok).
  Category category = Category::kInternal;
  std::string detail;
};

struct DoctorReport {
  std::vector<Finding> findings;
  [[nodiscard]] bool ok() const;
  /// 0 when healthy, else the exit code of the first failing finding's
  /// category (see exit_code_for).
  [[nodiscard]] int exit_code() const;
};

/// Run every check; never throws.
[[nodiscard]] DoctorReport run_doctor(const DoctorOptions& options = {});

}  // namespace terrors::robust
