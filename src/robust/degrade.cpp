#include "robust/degrade.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"

namespace terrors::robust {

DegradationLog& DegradationLog::instance() {
  static DegradationLog log;
  return log;
}

void DegradationLog::begin_run() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

void DegradationLog::note(std::string_view site, std::string_view detail) {
  static obs::Counter& total = obs::MetricsRegistry::instance().counter("robust.degraded");
  total.increment();
  obs::MetricsRegistry::instance()
      .counter("robust.degraded." + std::string(site))
      .increment();

  bool first = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.site == site; });
    if (it == entries_.end()) {
      entries_.push_back({std::string(site), std::string(detail), 1});
      first = true;
    } else {
      ++it->events;
    }
  }
  if (first) {
    // Tag the warning with the active run (and, under `terrors serve`,
    // the request) so a shared log file attributes degradation to the
    // analyze() call / request that suffered it.
    std::vector<obs::LogField> fields = {{"site", std::string(site)},
                                         {"detail", std::string(detail)}};
    if (const std::string run = obs::current_run_id(); !run.empty()) {
      fields.push_back({"run", run});
    }
    if (const std::string req = obs::current_request_id(); !req.empty()) {
      fields.push_back({"req", req});
    }
    obs::log_warn("robust", "degraded mode: serving best-effort result", fields);
  }
}

bool DegradationLog::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !entries_.empty();
}

std::vector<DegradationLog::Entry> DegradationLog::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::vector<std::string> DegradationLog::sites() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.site);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void note_degraded(std::string_view site, std::string_view detail) {
  DegradationLog::instance().note(site, detail);
}

}  // namespace terrors::robust
