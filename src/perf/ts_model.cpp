#include "perf/ts_model.hpp"

#include "support/check.hpp"

namespace terrors::perf {

double TsProcessorModel::performance_improvement(double error_rate) const {
  TE_REQUIRE(error_rate >= 0.0 && error_rate <= 1.0, "error rate out of range");
  return frequency_ratio / (1.0 + static_cast<double>(penalty_cycles) * error_rate) - 1.0;
}

double TsProcessorModel::break_even_error_rate() const {
  // f / (1 + c r) = 1  =>  r = (f - 1) / c.
  return (frequency_ratio - 1.0) / static_cast<double>(penalty_cycles);
}

OperatingPoints derive_operating_points(double static_worst_arrival_ps,
                                        double static_worst_arrival_sd_ps,
                                        double dynamic_worst_arrival_ps, double setup_ps,
                                        const OperatingPointConfig& config) {
  TE_REQUIRE(static_worst_arrival_ps > 0.0, "static arrival must be positive");
  TE_REQUIRE(dynamic_worst_arrival_ps > 0.0, "dynamic arrival must be positive");
  TE_REQUIRE(dynamic_worst_arrival_ps <= static_worst_arrival_ps + 1e-6,
             "dynamic arrival cannot exceed static worst case");
  OperatingPoints op;
  const double guarded =
      (static_worst_arrival_ps + config.sigma_quantile * static_worst_arrival_sd_ps) *
      config.guardband;
  op.baseline_mhz = 1.0e6 / (guarded + setup_ps);
  op.poff_mhz = 1.0e6 / (dynamic_worst_arrival_ps + setup_ps);
  op.working_mhz = op.poff_mhz * config.working_over_poff;
  return op;
}

}  // namespace terrors::perf
