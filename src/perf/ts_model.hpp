// Timing-speculative performance model (Section 6.1 of the paper).
//
// The paper's LEON3 build: 718 MHz non-speculative baseline from
// guardbanded SSTA, point of first failure at 810 MHz (1.13x), working
// point 825 MHz (1.15x), instruction replay at half frequency with a
// 24-cycle penalty per error on the 6-stage pipeline.  The published
// mapping "error rate -> performance improvement" (0.4% -> +4.93%,
// 1.068% -> -8.46%) is reproduced exactly by
//
//   improvement = f_ratio / (1 + penalty * error_rate) - 1.
#pragma once

#include "stat/gaussian.hpp"
#include "timing/sta.hpp"

namespace terrors::perf {

struct TsProcessorModel {
  double frequency_ratio = 1.15;  ///< working frequency / baseline
  int penalty_cycles = 24;        ///< per-error correction penalty
  double detection_power_overhead = 0.009;  ///< reported in the paper's setup
  double detection_area_overhead = 0.038;

  /// Relative performance improvement over the non-speculative baseline
  /// at a given error rate (negative = degradation).
  [[nodiscard]] double performance_improvement(double error_rate) const;
  /// Error rate at which speculation stops paying off (improvement == 0).
  [[nodiscard]] double break_even_error_rate() const;
};

/// Operating points of a synthesised design, derived the way Section 6.1
/// derives them for LEON3.
struct OperatingPoints {
  double baseline_mhz = 0.0;  ///< guardbanded SSTA maximum frequency
  double poff_mhz = 0.0;      ///< point of first failure
  double working_mhz = 0.0;   ///< chosen speculative frequency
};

struct OperatingPointConfig {
  double guardband = 1.10;     ///< voltage-droop style margin on delay
  double sigma_quantile = 3.0; ///< worst-case chip quantile for the baseline
  double working_over_poff = 1.02;  ///< working frequency relative to PoFF
};

/// Derive operating points from a static worst arrival (STA, guardbanded)
/// and the largest *observed dynamic* activated arrival of a calibration
/// workload (which sets the point of first failure).
[[nodiscard]] OperatingPoints derive_operating_points(double static_worst_arrival_ps,
                                                      double static_worst_arrival_sd_ps,
                                                      double dynamic_worst_arrival_ps,
                                                      double setup_ps,
                                                      const OperatingPointConfig& config = {});

}  // namespace terrors::perf
