// Analysis observation hooks: a minimal interface the estimation pipeline
// calls into when a collector is attached (src/report's
// AttributionCollector implements it).
//
// The interface lives in core so the hot layers (marginal solver,
// estimator) can notify a collector without core depending on the report
// subsystem.  The determinism contract (DESIGN §5e): an attached observer
// may cost extra work (e.g. the solver keeps pre-solve copies to compute
// residuals) but must be bit-invisible to every analysis output —
// estimates, marginals, and non-report metrics are identical with and
// without it, at any thread count.  All hooks fire from the serial
// estimation phase, so implementations need no locking.
#pragma once

#include <cstdint>

#include "isa/program.hpp"
#include "stat/samples.hpp"

namespace terrors::core {

/// Diagnostics of one strongly-connected component's marginal solve,
/// aggregated over the M sample worlds.
struct SccSolveDiag {
  std::uint32_t scc = 0;
  std::size_t size = 0;   ///< member blocks
  bool cyclic = false;    ///< solved as a dense linear system
  /// max_s max_i |A x - b| over the component's per-sample solves
  /// (0 for acyclic components, which are solved by substitution).
  double max_residual = 0.0;
  /// True when at least one sample world needed the degradation path
  /// (iterative refinement or the bounded fixed-point fallback) because
  /// the direct solve was singular, non-finite, or ill-conditioned.
  bool degraded = false;
};

class AnalysisObserver {
 public:
  virtual ~AnalysisObserver() = default;

  /// One executed SCC of the marginal solve (fires once per SCC, after
  /// all sample worlds are solved).
  virtual void on_scc_solve(const SccSolveDiag& diag) = 0;

  /// Block `b`'s contribution to lambda = E[N_E]: the aligned sample
  /// vector e_b * sum_k p_{b_k}(s).  Summing the means over blocks
  /// recovers the headline lambda.mean up to FP re-association.
  virtual void on_block_lambda(isa::BlockId b, const stat::Samples& contribution) = 0;
};

}  // namespace terrors::core
