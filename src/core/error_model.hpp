// Instruction error probabilities (Section 4.1).
//
// For every static instruction (per basic block) the model produces two
// random variables over data variation, realised as aligned sample vectors
// (stat::Samples) of length M:
//   p^c — error probability given the previous instruction executed
//         correctly, and
//   p^e — error probability given the previous instruction experienced a
//         timing error, i.e. after the error-correction mechanism acted
//         (a pipeline flush leaves a bubble in front of the instruction,
//         changing which datapath paths activate — Section 4.1's
//         nop-instrumentation emulation).
//
// Each probability is Pr(DTS < 0) over process variation, with DTS the
// statistical minimum of the instruction's control-network DTS (from the
// gate-level characterisation) and its operand-dependent datapath DTS
// (from the trained architectural model), correlated through the
// chip-global variation component.
#pragma once

#include <cstdint>
#include <vector>

#include "dta/control_characterizer.hpp"
#include "dta/datapath_model.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "stat/samples.hpp"
#include "timing/sta.hpp"

namespace terrors::core {

/// Error-correction scheme being emulated.
enum class CorrectionScheme {
  /// Detection flushes the pipeline and reissues at half frequency (the
  /// paper's evaluation setup, after the 45nm resilient Intel core): the
  /// instruction after an error sees a bubble in front of it.
  kPipelineFlush,
  /// Idealised replay without flush: the corrected predecessor's values
  /// are restored, so p^e == p^c (ablation baseline).
  kReplayWithoutFlush,
};

struct InstrErrorDistributions {
  stat::Samples p_correct;  ///< p^c_{i_k}, length M
  stat::Samples p_error;    ///< p^e_{i_k}, length M
};

struct BlockErrorDistributions {
  std::vector<InstrErrorDistributions> instr;
  bool executed = false;
};

struct ErrorModelConfig {
  std::size_t mixed_samples = 64;  ///< M: common-random-number sample count
  CorrectionScheme scheme = CorrectionScheme::kPipelineFlush;
};

class InstructionErrorModel {
 public:
  InstructionErrorModel(const dta::DatapathModel& datapath, timing::TimingSpec spec,
                        ErrorModelConfig config = {});

  /// Error probability of one dynamic instance.  `ctrl` is the control-
  /// network DTS of the instruction along the traversed edge (nullopt =
  /// no activated control path); `prev_errored` selects the correction
  /// context.
  [[nodiscard]] double instance_error_probability(
      const std::optional<dta::DtsGaussian>& ctrl, const isa::InstrDynContext& ctx,
      bool prev_errored) const;

  /// Build the per-block p^c / p^e distributions for a whole program by
  /// mixing the per-edge sampled contexts according to the measured edge
  /// activation probabilities (deterministic proportional allocation of
  /// the M sample slots).
  [[nodiscard]] std::vector<BlockErrorDistributions> build(
      const isa::Program& program, const isa::Cfg& cfg, const isa::ProgramProfile& profile,
      const std::vector<dta::BlockControlDts>& control) const;

  [[nodiscard]] const timing::TimingSpec& spec() const { return spec_; }
  [[nodiscard]] const ErrorModelConfig& config() const { return config_; }

 private:
  const dta::DatapathModel& datapath_;
  timing::TimingSpec spec_;
  ErrorModelConfig config_;
};

}  // namespace terrors::core
