// Marginal error probabilities (Section 4.2).
//
// Inside a block, Eq. (1) is a linear recurrence
//   p_k = p^e_k p_{k-1} + p^c_k (1 - p_{k-1}),
// so every instruction's marginal probability is affine in the block's
// input error probability p^in.  Across blocks, Eq. (2) mixes the output
// probabilities of the predecessors with the measured edge-activation
// probabilities.  Cycles in the CFG yield linear systems, which are solved
// per strongly-connected component in the condensation's topological order
// (Tarjan), exactly as the paper prescribes.  The program entry uses the
// paper's flushed-state assumption p^in = 1.
//
// All quantities are random variables over data variation, realised as
// aligned sample vectors; the solve is performed independently per sample
// index (each index is one common-random-numbers "world").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/error_model.hpp"
#include "core/observer.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "isa/program.hpp"

namespace terrors::core {

struct BlockMarginals {
  stat::Samples p_in;                ///< p_i^in
  std::vector<stat::Samples> instr;  ///< p_{i_k}
  bool executed = false;
};

class MarginalSolver {
 public:
  MarginalSolver(const isa::Program& program, const isa::Cfg& cfg,
                 const isa::ProgramProfile& profile);

  /// With an observer attached, per-SCC solve diagnostics (size, cyclic,
  /// max residual over sample worlds) are reported after the solve.  The
  /// observer is bit-invisible to the returned marginals: residuals are
  /// computed from pre-solve copies, never from the factored system.
  [[nodiscard]] std::vector<BlockMarginals> solve(
      const std::vector<BlockErrorDistributions>& cond,
      AnalysisObserver* observer = nullptr) const;

 private:
  const isa::Program& program_;
  const isa::Cfg& cfg_;
  const isa::ProgramProfile& profile_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting (A is
/// n*n row-major, overwritten).  Exposed for tests.
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b);

/// Outcome of the degradation-aware SCC solve (DESIGN §5f).
struct RobustSolveResult {
  std::vector<double> x;
  /// True when the direct solve was singular / non-finite /
  /// ill-conditioned and refinement or the fixed-point fallback ran.
  bool degraded = false;
  /// max_i |A x - b| of the returned solution.
  double residual = 0.0;
};

/// Degradation-aware wrapper around solve_dense for the marginal SCC
/// systems x = C x + r (spectral radius of C < 1 for probability
/// systems):
///   1. direct solve; accept when finite with a small residual —
///      bit-identical to solve_dense on healthy systems;
///   2. one step of iterative refinement on an ill-conditioned solve;
///   3. a bounded ([0,1]-clamped, <=256 iteration) fixed-point fallback
///      when the system is singular or refinement did not converge.
/// `fault_key` (the SCC id) arms the `solver.pivot` injection site ahead
/// of the direct solve.  Exposed for `terrors doctor` and tests.
RobustSolveResult solve_scc_robust(const std::vector<double>& a, const std::vector<double>& b,
                                   std::optional<std::uint64_t> fault_key = std::nullopt);

}  // namespace terrors::core
