// Marginal error probabilities (Section 4.2).
//
// Inside a block, Eq. (1) is a linear recurrence
//   p_k = p^e_k p_{k-1} + p^c_k (1 - p_{k-1}),
// so every instruction's marginal probability is affine in the block's
// input error probability p^in.  Across blocks, Eq. (2) mixes the output
// probabilities of the predecessors with the measured edge-activation
// probabilities.  Cycles in the CFG yield linear systems, which are solved
// per strongly-connected component in the condensation's topological order
// (Tarjan), exactly as the paper prescribes.  The program entry uses the
// paper's flushed-state assumption p^in = 1.
//
// All quantities are random variables over data variation, realised as
// aligned sample vectors; the solve is performed independently per sample
// index (each index is one common-random-numbers "world").
#pragma once

#include <vector>

#include "core/error_model.hpp"
#include "core/observer.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "isa/program.hpp"

namespace terrors::core {

struct BlockMarginals {
  stat::Samples p_in;                ///< p_i^in
  std::vector<stat::Samples> instr;  ///< p_{i_k}
  bool executed = false;
};

class MarginalSolver {
 public:
  MarginalSolver(const isa::Program& program, const isa::Cfg& cfg,
                 const isa::ProgramProfile& profile);

  /// With an observer attached, per-SCC solve diagnostics (size, cyclic,
  /// max residual over sample worlds) are reported after the solve.  The
  /// observer is bit-invisible to the returned marginals: residuals are
  /// computed from pre-solve copies, never from the factored system.
  [[nodiscard]] std::vector<BlockMarginals> solve(
      const std::vector<BlockErrorDistributions>& cond,
      AnalysisObserver* observer = nullptr) const;

 private:
  const isa::Program& program_;
  const isa::Cfg& cfg_;
  const isa::ProgramProfile& profile_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting (A is
/// n*n row-major, overwritten).  Exposed for tests.
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b);

}  // namespace terrors::core
