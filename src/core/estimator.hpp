// Program error count / error rate estimation (Section 5).
//
// The error count N_E is a weighted sum of dependent Bernoulli indicators
// (Eq. 6).  It is approximated by a Poisson distribution whose parameter
// lambda (Eq. 10) is itself approximated by a normal distribution (CLT);
// the estimated CDF integrates the Poisson CDF over the Gaussian lambda
// (Eq. 14).  Approximation quality is certified, not Monte-Carlo-tested:
// the Chen–Stein method bounds d_K(N_E, Poisson) via Eqs. (7)–(9), and
// Stein's method (Thm 5.2) bounds d_K(lambda, normal).  Lower/upper bound
// CDFs combine both errors as described in Section 6.4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/marginal.hpp"
#include "core/observer.hpp"
#include "stat/gaussian.hpp"
#include "stat/poisson_mixture.hpp"
#include "stat/stein.hpp"

namespace terrors::core {

struct ErrorRateEstimate {
  /// Gaussian approximation of lambda = E[N_E] over data variation, with
  /// the variance computed under the paper's chain-dependence assumption
  /// (p_{i_k} depends only on p_{i_{k-1}}).
  stat::Gaussian lambda;
  /// Empirical SD of the lambda samples with FULL inter-instruction
  /// correlation (common program input).  The gap to lambda.sd quantifies
  /// the effect of the correlations the paper's model truncates.
  double lambda_empirical_sd = 0.0;
  std::uint64_t total_instructions = 0;  ///< per profiled run (averaged)
  double dk_lambda = 0.0;  ///< Stein bound on d_K(lambda, normal)
  double dk_count = 0.0;   ///< Chen-Stein bound on d_K(N_E, Poisson) == d_K(R_E)
  double b1_worst = 0.0;   ///< worst-case Chen-Stein b1 (mean + 6 sd)
  double b2_worst = 0.0;
  /// Diagnostics of the Stein computation (chain-dependence variance and
  /// the absolute third / fourth central moment sums).
  double sigma_chain = 0.0;
  double stein_sum_abs3 = 0.0;
  double stein_sum4 = 0.0;

  /// Mean / SD of the program error rate distribution.
  [[nodiscard]] double rate_mean() const;
  [[nodiscard]] double rate_sd() const;

  /// Estimated CDF of the error count (Eq. 14).
  [[nodiscard]] double count_cdf(std::int64_t k) const;
  /// CDF of the error rate R_E = N_E / total_instructions.
  [[nodiscard]] double rate_cdf(double rate) const;
  /// Lower / upper bound CDFs (Section 6.4): lambda shifted by the Stein
  /// bound, then the Chen-Stein bound applied to the CDF value.
  [[nodiscard]] double rate_cdf_lower(double rate) const;
  [[nodiscard]] double rate_cdf_upper(double rate) const;
};

struct EstimatorInputs {
  const isa::Program* program = nullptr;
  const isa::ProgramProfile* profile = nullptr;
  const std::vector<BlockErrorDistributions>* conditionals = nullptr;
  const std::vector<BlockMarginals>* marginals = nullptr;
  /// Execution-count extrapolation: block execution counts (and the total
  /// instruction count) are multiplied by this factor before the limit
  /// theorems are applied.  Benches that simulate a 1e-4 slice of the
  /// paper's dynamic instruction counts pass 1e4 here so lambda and the
  /// Stein / Chen-Stein bounds are evaluated at full program scale (the
  /// error *rate* itself is scale-invariant).
  double execution_scale = 1.0;
  /// Chen-Stein neighbourhood radius.  0 reproduces the paper's Eqs. (7)
  /// and (8) literally (adjacent-pair products only).  Radius r >= 1 uses
  /// the full Chen-Stein terms over |alpha - beta| <= r, including the
  /// p_alpha^2 self-terms and the Markov propagation of E[X_a X_b] —
  /// needed because the correction-induced error chain correlates
  /// instructions beyond distance one when p^e >> p^c (see
  /// bench_limit_theorems).
  std::size_t chen_stein_radius = 0;
  /// Optional attribution sink: receives each executed block's lambda
  /// contribution (per-sample, scaled by the block's execution weight).
  /// Attaching it is bit-invisible to the returned estimate.
  AnalysisObserver* observer = nullptr;
};

/// Computes lambda, the Stein and Chen–Stein bounds, and packages the
/// estimate.  Block execution counts e_i come from the profile, averaged
/// over runs.
[[nodiscard]] ErrorRateEstimate estimate_error_rate(const EstimatorInputs& in);

}  // namespace terrors::core
