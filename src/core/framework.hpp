// The end-to-end framework facade: everything the paper's Figure 2 flow
// does, behind one call.
//
//   analyze(program, inputs):
//     1. simulation phase — run the instrumented program on the inputs
//        (architecture-level executor; records activation probabilities
//        and operand contexts),
//     2. training phase — control-network DTS characterisation per
//        (block, incoming edge) on the gate-level pipeline, plus the
//        (shared, one-time) datapath-model training,
//     3. instruction error probabilities, marginal-probability solve, and
//        the limit-theorem estimate with Stein/Chen–Stein bounds.
//
// Training and simulation wall-clock times are reported per benchmark,
// mirroring Table 2's runtime columns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "core/error_model.hpp"
#include "core/estimator.hpp"
#include "core/marginal.hpp"
#include "core/observer.hpp"
#include "dta/control_characterizer.hpp"
#include "dta/datapath_model.hpp"
#include "isa/executor.hpp"
#include "netlist/pipeline.hpp"
#include "timing/variation.hpp"

namespace terrors::core {

struct FrameworkConfig {
  timing::TimingSpec spec{};
  /// See EstimatorInputs::execution_scale.
  double execution_scale = 1.0;
  /// See EstimatorInputs::chen_stein_radius (0 = paper's Eqs. 7-8).
  std::size_t chen_stein_radius = 0;
  timing::VariationConfig variation{};
  ErrorModelConfig error_model{};
  isa::ExecutorConfig executor{};
  dta::DtsConfig dts{};
  dta::ControlCharacterizerConfig characterizer{};
  /// Directory for the content-addressed artifact cache. Empty (the
  /// default) disables caching; the TERRORS_CACHE_DIR environment
  /// variable is honoured when this is empty (see cache::resolve_cache_dir).
  std::string cache_dir;
  /// Externally owned artifact store.  When set it takes precedence over
  /// `cache_dir`: the framework loads and stores artifacts through it and
  /// never constructs its own on-disk cache.  `terrors serve` injects its
  /// shared in-memory LRU tier here so every per-request framework reuses
  /// the same warm artifacts.  Must outlive the framework.
  cache::ArtifactStore* artifact_store = nullptr;
  /// Run-journal file: one wide JSONL event is appended per analyze()
  /// call (DESIGN §5g). Empty (the default) consults TERRORS_JOURNAL and
  /// disables journaling when that is unset too. Journal appends are a
  /// peripheral: a failed write degrades the run, never fails it.
  std::string journal_path;
};

/// Full per-benchmark analysis result (one Table 2 row plus the Figure 3
/// distribution accessors through `estimate`).
struct BenchmarkResult {
  std::string name;
  /// Deterministic 16-hex run id (obs::RunContext): identical framework
  /// inputs + program + analyze ordinal give identical ids, so reports
  /// and journal events from the same logical run correlate byte-stably.
  std::string run_id;
  std::uint64_t instructions = 0;  ///< simulated dynamic instructions (all runs)
  std::size_t basic_blocks = 0;
  double training_seconds = 0.0;
  double simulation_seconds = 0.0;
  /// Error-model build + marginal solve + limit-theorem estimate.
  double estimation_seconds = 0.0;
  /// cache.hits / cache.misses deltas accrued during this analyze() call
  /// (0/0 when the artifact cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// True when any graceful-degradation policy fired during this run
  /// (DESIGN §5f): the estimate is still best-effort valid, but a cache
  /// read/write, SCC solve, or worker task needed a fallback.
  bool degraded = false;
  /// Sorted unique degradation site tags ("cache", "solver", "pool", "io").
  std::vector<std::string> degraded_sites;
  ErrorRateEstimate estimate;
};

class ErrorRateFramework {
 public:
  ErrorRateFramework(const netlist::Pipeline& pipeline, FrameworkConfig config = {});

  /// Analyse one program over the given input datasets.  An attached
  /// observer receives solver and attribution diagnostics during the
  /// (serial) estimation phase; it is bit-invisible to the returned
  /// result, the artifacts, and every non-report metric (DESIGN §5e).
  [[nodiscard]] BenchmarkResult analyze(const isa::Program& program,
                                        const std::vector<isa::ProgramInput>& inputs,
                                        AnalysisObserver* observer = nullptr);

  [[nodiscard]] const dta::DatapathModel& datapath_model() const { return *datapath_; }
  [[nodiscard]] const timing::VariationModel& variation_model() const { return vm_; }
  [[nodiscard]] const FrameworkConfig& config() const { return config_; }
  /// The control characterizer (shared path enumerator, DTS analyzer);
  /// the report builder queries it for culprit-path statistics.
  [[nodiscard]] dta::ControlCharacterizer& characterizer() { return *characterizer_; }
  [[nodiscard]] const netlist::Pipeline& pipeline() const { return pipeline_; }
  /// Change the operating point (affects subsequent analyze() calls).
  void set_spec(timing::TimingSpec spec);
  /// Per-benchmark executor configuration (instruction budget, reservoir).
  void set_executor_config(const isa::ExecutorConfig& cfg) { config_.executor = cfg; }
  /// Switch correction scheme / sample count for subsequent analyses.
  void set_error_model_config(const ErrorModelConfig& cfg) { config_.error_model = cfg; }

  /// Intermediate artefacts of the last analyze() call, for ablation
  /// benches and tests.
  struct Artifacts {
    std::unique_ptr<isa::Cfg> cfg;
    std::unique_ptr<isa::Executor> executor;
    std::vector<dta::BlockControlDts> control;
    std::vector<BlockErrorDistributions> conditionals;
    std::vector<BlockMarginals> marginals;
  };
  [[nodiscard]] const Artifacts& last() const { return last_; }

 private:
  const netlist::Pipeline& pipeline_;
  FrameworkConfig config_;
  timing::VariationModel vm_;
  /// Owner of the dir-based cache when `cache_dir` selected one.
  std::unique_ptr<cache::ArtifactCache> cache_;
  /// The store artifacts actually go through: `config.artifact_store` if
  /// injected, else `cache_.get()`, else nullptr (caching off).
  cache::ArtifactStore* store_ = nullptr;
  // Component hashes of the cache key, fixed at construction time.
  std::uint64_t netlist_hash_ = 0;
  std::uint64_t variation_hash_ = 0;
  std::uint64_t dts_hash_ = 0;
  std::uint64_t charcfg_hash_ = 0;
  /// The path artifact is consulted/stored at most once per framework:
  /// after the first characterisation the enumerator already holds the set.
  bool paths_cache_checked_ = false;
  /// Resolved journal path ("" = journaling off), fixed at construction.
  std::string journal_path_;
  /// Per-framework analyze() ordinal folded into the run key, so repeated
  /// analyses of the same program get distinct (still deterministic) ids.
  std::uint64_t analyze_ordinal_ = 0;
  std::unique_ptr<dta::DatapathModel> datapath_;
  std::unique_ptr<dta::ControlCharacterizer> characterizer_;
  Artifacts last_;
};

}  // namespace terrors::core
