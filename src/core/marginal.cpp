#include "core/marginal.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/degrade.hpp"
#include "robust/fault_injection.hpp"
#include "support/check.hpp"

namespace terrors::core {

using isa::BlockId;

std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  TE_REQUIRE(a.size() == n * n, "matrix size mismatch");
  static obs::Counter& solves = obs::MetricsRegistry::instance().counter("solver.linear_solves");
  static obs::Histogram& sizes =
      obs::MetricsRegistry::instance().histogram("solver.system_size");
  solves.increment();
  sizes.observe(static_cast<double>(n));
  // Singularity threshold relative to the system's scale: a uniformly
  // scaled matrix (e.g. tiny edge weights) must solve exactly like its
  // well-scaled counterpart instead of tripping an absolute cutoff.
  double max_abs = 0.0;
  for (const double v : a) max_abs = std::max(max_abs, std::fabs(v));
  TE_REQUIRE(max_abs > 0.0, "singular system");
  const double pivot_tol = 1e-14 * max_abs;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    TE_REQUIRE(std::fabs(a[pivot * n + col]) > pivot_tol, "singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri * n + c] * x[c];
    x[ri] = s / a[ri * n + ri];
  }
  return x;
}

namespace {

double max_residual_of(const std::vector<double>& a, const std::vector<double>& b,
                       const std::vector<double>& x) {
  const std::size_t n = b.size();
  double r = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0;
    for (std::size_t c = 0; c < n; ++c) ax += a[i * n + c] * x[c];
    r = std::max(r, std::fabs(ax - b[i]));
  }
  return r;
}

bool all_finite(const std::vector<double>& x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

RobustSolveResult solve_scc_robust(const std::vector<double>& a, const std::vector<double>& b,
                                   std::optional<std::uint64_t> fault_key) {
  const std::size_t n = b.size();
  // Acceptance threshold, relative to the right-hand side's scale.
  // Healthy probability systems land near 1e-16, so the direct result is
  // accepted bit-identically; only genuinely sick solves go further.
  double b_scale = 1.0;
  for (const double v : b) b_scale = std::max(b_scale, std::fabs(v));
  const double accept = 1e-8 * b_scale;

  RobustSolveResult out;
  bool solved = false;
  try {
    if (fault_key.has_value()) robust::maybe_fault("solver.pivot", *fault_key);
    out.x = solve_dense(a, b);
    solved = all_finite(out.x);
    if (solved) {
      out.residual = max_residual_of(a, b, out.x);
      if (out.residual > accept) {
        // One step of iterative refinement: solve A dx = b - A x.
        // Registered lazily: a healthy run's metrics stay exactly as before.
        obs::MetricsRegistry::instance().counter("solver.refinements").increment();
        out.degraded = true;
        std::vector<double> r(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          double ax = 0.0;
          for (std::size_t c = 0; c < n; ++c) ax += a[i * n + c] * out.x[c];
          r[i] = b[i] - ax;
        }
        const std::vector<double> dx = solve_dense(a, r);
        std::vector<double> refined = out.x;
        for (std::size_t i = 0; i < n; ++i) refined[i] += dx[i];
        if (all_finite(refined)) {
          const double res = max_residual_of(a, b, refined);
          if (res < out.residual) {
            out.x = std::move(refined);
            out.residual = res;
          }
        }
        solved = out.residual <= accept;
      }
    }
  } catch (const std::exception&) {
    solved = false;  // singular (or injected) — fall through to fixed point
  }
  if (solved) return out;

  // Bounded fixed-point fallback.  The marginal systems have the form
  // x = C x + r with C = I - A the weighted predecessor mixing (row sums
  // of |C| <= 1 for probability weights), so the iteration contracts;
  // clamping to [0,1] keeps every iterate a probability even when the
  // inputs are degenerate, and the iteration cap bounds the work.
  obs::MetricsRegistry::instance().counter("solver.fixed_point_fallbacks").increment();
  out.degraded = true;
  std::vector<double> x(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < 256; ++iter) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double v = b[i];
      for (std::size_t c = 0; c < n; ++c) {
        const double cij = (i == c ? 1.0 : 0.0) - a[i * n + c];
        if (cij != 0.0) v += cij * x[c];
      }
      if (!std::isfinite(v)) v = 0.0;
      v = std::clamp(v, 0.0, 1.0);
      delta = std::max(delta, std::fabs(v - x[i]));
      next[i] = v;
    }
    x.swap(next);
    if (delta < 1e-12) break;
  }
  out.x = std::move(x);
  out.residual = max_residual_of(a, b, out.x);
  return out;
}

MarginalSolver::MarginalSolver(const isa::Program& program, const isa::Cfg& cfg,
                               const isa::ProgramProfile& profile)
    : program_(program), cfg_(cfg), profile_(profile) {
  TE_REQUIRE(profile.blocks.size() == program.block_count(), "profile/program mismatch");
}

std::vector<BlockMarginals> MarginalSolver::solve(
    const std::vector<BlockErrorDistributions>& cond, AnalysisObserver* observer) const {
  const std::size_t nb = program_.block_count();
  TE_REQUIRE(cond.size() == nb, "conditional distributions/program mismatch");
  obs::ScopedSpan span("marginal.solve");
  span.counter("blocks", static_cast<double>(nb));
  span.counter("sccs", static_cast<double>(cfg_.scc_topo_order().size()));
  static obs::Counter& sccs_metric =
      obs::MetricsRegistry::instance().counter("solver.sccs_processed");
  std::size_t m = 0;
  for (const auto& bd : cond) {
    if (!bd.instr.empty()) {
      m = bd.instr[0].p_correct.size();
      break;
    }
  }
  TE_REQUIRE(m > 0, "no instruction distributions");
  span.counter("samples", static_cast<double>(m));

  std::vector<BlockMarginals> out(nb);
  for (BlockId b = 0; b < nb; ++b) {
    out[b].p_in = stat::Samples(m, 0.0);
    out[b].instr.assign(program_.block(b).size(), stat::Samples(m, 0.0));
    out[b].executed = cond[b].executed;
  }

  // Per-sample scalar solve.
  std::vector<double> alpha(nb, 0.0);
  std::vector<double> beta(nb, 0.0);
  std::vector<double> p_in(nb, 0.0);
  // Observer diagnostics, aggregated across the M sample worlds.
  std::vector<double> scc_residual;
  std::vector<std::uint8_t> scc_touched;
  if (observer != nullptr) {
    scc_residual.assign(cfg_.scc_count(), 0.0);
    scc_touched.assign(cfg_.scc_count(), 0);
  }
  // Degradation flags are tracked observer or not: the DegradationLog and
  // run report need them even on plain CLI runs.
  std::vector<std::uint8_t> scc_degraded(cfg_.scc_count(), 0);
  for (std::size_t s = 0; s < m; ++s) {
    // Affine fold of Eq. (1): p_out = alpha + beta * p_in.
    for (BlockId b = 0; b < nb; ++b) {
      if (!cond[b].executed) {
        alpha[b] = 0.0;
        beta[b] = 0.0;
        continue;
      }
      double a = 0.0;
      double bb = 1.0;
      for (const auto& d : cond[b].instr) {
        const double pc = d.p_correct[s];
        const double pe = d.p_error[s];
        const double diff = pe - pc;
        a = pc + diff * a;
        bb = diff * bb;
      }
      alpha[b] = a;
      beta[b] = bb;
    }

    // Edge weights (activation probabilities + entry pseudo-edge).
    auto entry_weight = [&](BlockId b) {
      const auto& bp = profile_.blocks[b];
      return bp.executions == 0
                 ? 0.0
                 : static_cast<double>(bp.entry_count) / static_cast<double>(bp.executions);
    };
    auto edge_weight = [&](BlockId b, std::size_t j) {
      const auto& bp = profile_.blocks[b];
      return bp.executions == 0
                 ? 0.0
                 : static_cast<double>(bp.edge_counts[j]) / static_cast<double>(bp.executions);
    };

    // Solve SCCs in topological order.
    std::fill(p_in.begin(), p_in.end(), 0.0);
    sccs_metric.increment(cfg_.scc_topo_order().size());
    for (std::uint32_t scc : cfg_.scc_topo_order()) {
      const auto& members = cfg_.scc_members(scc);
      // Skip SCCs with no executed blocks.
      bool any = false;
      for (BlockId b : members) any = any || cond[b].executed;
      if (!any) continue;

      if (observer != nullptr) scc_touched[scc] = 1;
      if (!cfg_.scc_is_cyclic(scc)) {
        const BlockId b = members[0];
        if (!cond[b].executed) continue;
        double v = entry_weight(b) * 1.0;  // flushed state at program start
        const auto& preds = cfg_.predecessors(b);
        for (std::size_t j = 0; j < preds.size(); ++j) {
          const BlockId t = preds[j].from;
          v += edge_weight(b, j) * (alpha[t] + beta[t] * p_in[t]);
        }
        p_in[b] = v;
        continue;
      }

      // Cyclic SCC: x_i - sum_{t in scc} w_ij beta_t x_t = rhs_i.
      const std::size_t n = members.size();
      std::vector<std::size_t> local(nb, n);
      for (std::size_t i = 0; i < n; ++i) local[members[i]] = i;
      std::vector<double> mat(n * n, 0.0);
      std::vector<double> rhs(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const BlockId b = members[i];
        mat[i * n + i] = 1.0;
        if (!cond[b].executed) continue;  // x = 0 row
        double r = entry_weight(b) * 1.0;
        const auto& preds = cfg_.predecessors(b);
        for (std::size_t j = 0; j < preds.size(); ++j) {
          const BlockId t = preds[j].from;
          const double w = edge_weight(b, j);
          if (w == 0.0) continue;
          if (local[t] < n) {
            mat[i * n + local[t]] -= w * beta[t];
            r += w * alpha[t];
          } else {
            r += w * (alpha[t] + beta[t] * p_in[t]);
          }
        }
        rhs[i] = r;
      }
      // Degradation-aware solve (DESIGN §5f): bit-identical to solve_dense
      // on healthy systems, iterative refinement / bounded fixed-point on
      // singular or ill-conditioned ones.  The solver.pivot injection site
      // is keyed by SCC id so fault decisions are thread-count independent.
      const RobustSolveResult solved =
          solve_scc_robust(mat, rhs, static_cast<std::uint64_t>(scc));
      if (solved.degraded && !scc_degraded[scc]) {
        scc_degraded[scc] = 1;
        robust::note_degraded(
            "solver", "scc " + std::to_string(scc) +
                          " direct solve rejected; served refinement/fixed-point result");
      }
      if (observer != nullptr)
        scc_residual[scc] = std::max(scc_residual[scc], solved.residual);
      for (std::size_t i = 0; i < n; ++i) p_in[members[i]] = solved.x[i];
    }

    // Recover per-instruction marginals via the recurrence.
    for (BlockId b = 0; b < nb; ++b) {
      if (!cond[b].executed) continue;
      out[b].p_in[s] = p_in[b];
      double prev = p_in[b];
      for (std::size_t k = 0; k < cond[b].instr.size(); ++k) {
        const double pc = cond[b].instr[k].p_correct[s];
        const double pe = cond[b].instr[k].p_error[s];
        prev = pe * prev + pc * (1.0 - prev);
        out[b].instr[k][s] = prev;
      }
    }
  }

  if (observer != nullptr) {
    for (std::uint32_t scc : cfg_.scc_topo_order()) {
      if (!scc_touched[scc]) continue;
      SccSolveDiag diag;
      diag.scc = scc;
      diag.size = cfg_.scc_members(scc).size();
      diag.cyclic = cfg_.scc_is_cyclic(scc);
      diag.max_residual = scc_residual[scc];
      diag.degraded = scc_degraded[scc] != 0;
      observer->on_scc_solve(diag);
    }
  }
  return out;
}

}  // namespace terrors::core
