#include "core/framework.hpp"

#include <chrono>
#include <optional>

#include "cache/key.hpp"
#include "cache/serialize.hpp"
#include "obs/journal.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "obs/trace.hpp"
#include "robust/degrade.hpp"
#include "robust/hooks.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace terrors::core {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Degradation policy (DESIGN §5f): the cache is an accelerator, never a
// dependency.  A throwing load is a miss (recompute), a throwing store
// loses only warm-start time; both are recorded, neither fails analyze().
std::optional<std::vector<std::uint8_t>> safe_cache_load(const cache::ArtifactStore& c,
                                                         std::string_view kind,
                                                         std::uint64_t key) {
  try {
    return c.load(kind, key);
  } catch (const std::exception& e) {
    robust::note_degraded("cache",
                          std::string(kind) + " load failed, recomputing: " + e.what());
    return std::nullopt;
  }
}

void safe_cache_store(const cache::ArtifactStore& c, std::string_view kind, std::uint64_t key,
                      const std::vector<std::uint8_t>& payload) {
  try {
    c.store(kind, key, payload);
  } catch (const std::exception& e) {
    robust::note_degraded(
        "cache", std::string(kind) + " store failed, artifact not persisted: " + e.what());
  }
}
}  // namespace

ErrorRateFramework::ErrorRateFramework(const netlist::Pipeline& pipeline, FrameworkConfig config)
    : pipeline_(pipeline), config_(config), vm_(pipeline.netlist, config.variation) {
  obs::ScopedSpan span("framework.init");

  // Component hashes feed both cache keys and run ids, so they are
  // computed whether or not the cache is enabled.
  netlist_hash_ = cache::hash_netlist(pipeline_.netlist);
  variation_hash_ = cache::hash_variation(config_.variation);
  dts_hash_ = cache::hash_dts_config(config_.dts);
  charcfg_hash_ = cache::hash_characterizer_config(config_.characterizer);

  if (config_.artifact_store != nullptr) {
    store_ = config_.artifact_store;
    obs::log_info("cache", "external artifact store attached", {});
  } else if (const std::string dir = cache::resolve_cache_dir(config_.cache_dir); !dir.empty()) {
    cache_ = std::make_unique<cache::ArtifactCache>(dir);
    store_ = cache_.get();
    obs::log_info("cache", "artifact cache enabled", {{"dir", dir}});
  }
  journal_path_ = obs::resolve_journal_path(config_.journal_path);
  if (!journal_path_.empty()) {
    obs::log_info("core", "run journal enabled", {{"path", journal_path_}});
  }

  // Datapath-model training is spec-independent (arrival-form parameters),
  // so its key omits the timing spec.
  if (store_) {
    const std::uint64_t key =
        cache::combine({cache::kModelVersion, netlist_hash_, variation_hash_, dts_hash_});
    if (auto bytes = safe_cache_load(*store_, "datapath", key)) {
      cache::ByteReader r(*bytes);
      if (auto params = cache::decode_datapath(r)) {
        datapath_ = std::make_unique<dta::DatapathModel>(
            dta::DatapathModel::from_params(*params));
      }
    }
    if (!datapath_) {
      datapath_ = std::make_unique<dta::DatapathModel>(
          dta::DatapathModel::train(pipeline_, vm_, config_.dts));
      cache::ByteWriter w;
      cache::encode_datapath(datapath_->params(), w);
      safe_cache_store(*store_, "datapath", key, w.bytes());
    }
  } else {
    datapath_ = std::make_unique<dta::DatapathModel>(
        dta::DatapathModel::train(pipeline_, vm_, config_.dts));
  }

  characterizer_ = std::make_unique<dta::ControlCharacterizer>(
      pipeline_, vm_, config_.spec, config_.dts, config_.characterizer);
  obs::log_debug("core", "framework initialised",
                 {{"period_ps", config_.spec.period_ps}});
}

void ErrorRateFramework::set_spec(timing::TimingSpec spec) {
  config_.spec = spec;
  // The characterizer's analyzer caches paths, which are spec-independent;
  // only the slack conversion uses the spec.
  characterizer_->analyzer().set_spec(spec);
}

BenchmarkResult ErrorRateFramework::analyze(const isa::Program& program,
                                            const std::vector<isa::ProgramInput>& inputs,
                                            AnalysisObserver* observer) {
  TE_REQUIRE(!inputs.empty(), "analyze() needs at least one input dataset");
  static obs::Counter& analyze_calls =
      obs::MetricsRegistry::instance().counter("core.analyze_calls");
  static obs::Counter& instr_metric =
      obs::MetricsRegistry::instance().counter("core.instructions_simulated");
  analyze_calls.increment();

  // Per-run degradation bookkeeping starts clean, and the pool's fault /
  // retry hooks are wired before any parallel region can run.
  robust::DegradationLog::instance().begin_run();
  robust::install_pool_hooks();

  obs::ScopedSpan span("analyze");
  span.counter("inputs", static_cast<double>(inputs.size()));

  // Run identity (DESIGN §5g): the same inputs at the same ordinal give
  // the same id, so a run correlates across report, journal, and logs
  // without any nondeterministic token.
  const std::uint64_t run_key = cache::combine(
      {cache::kModelVersion, netlist_hash_, variation_hash_, dts_hash_, charcfg_hash_,
       cache::hash_spec(config_.spec), cache::hash_program(program), analyze_ordinal_++});
  obs::RunContext ctx(run_key, program.name());
  obs::RunContext::Scope run_scope(ctx);
  {
    std::vector<obs::LogField> fields = {{"program", program.name()},
                                         {"inputs", inputs.size()},
                                         {"run", ctx.id()}};
    if (!ctx.request_id().empty()) fields.push_back({"req", ctx.request_id()});
    obs::log_info("core", "analyze start", fields);
  }

  BenchmarkResult result;
  result.name = program.name();
  result.run_id = ctx.id();
  result.basic_blocks = program.block_count();

  const support::ThreadPool::Stats pool_before = support::global_pool().stats();

  last_ = Artifacts{};
  last_.cfg = std::make_unique<isa::Cfg>(program);
  last_.executor = std::make_unique<isa::Executor>(program, *last_.cfg, config_.executor);

  // --- simulation phase (the paper's instrumented native execution) -----
  {
    obs::ScopedSpan phase("simulation");
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& in : inputs) last_.executor->run(in);
    result.simulation_seconds = seconds_since(t0);
    ctx.set_phase_seconds("simulation", result.simulation_seconds);
    phase.counter("instructions",
                  static_cast<double>(last_.executor->profile().total_instructions));
  }
  result.instructions = last_.executor->profile().total_instructions;
  instr_metric.increment(result.instructions);
  obs::log_info("core", "simulation phase done",
                {{"seconds", result.simulation_seconds},
                 {"instructions", result.instructions}});

  // --- training phase (gate-level control-network characterisation) -----
  {
    obs::ScopedSpan phase("training");
    const auto t0 = std::chrono::steady_clock::now();

    // A control-table hit skips gate-level characterisation entirely; the
    // key covers everything the tables depend on (see cache/key.hpp), and
    // the decoder additionally rejects artifacts whose recorded spec is
    // not bit-identical to the current one.
    bool loaded = false;
    std::uint64_t control_key = 0;
    if (store_) {
      control_key = cache::combine(
          {cache::kModelVersion, netlist_hash_, variation_hash_, dts_hash_, charcfg_hash_,
           cache::hash_spec(config_.spec), cache::hash_program(program),
           cache::hash_profile(last_.executor->profile())});
      if (auto bytes = safe_cache_load(*store_, "control", control_key)) {
        cache::ByteReader r(*bytes);
        if (auto control = cache::decode_control(r, config_.spec)) {
          last_.control = std::move(*control);
          loaded = true;
        }
      }
    }

    if (!loaded) {
      if (store_ && !paths_cache_checked_) {
        // Seed the shared enumerator from the path artifact if present;
        // characterize() then warms only what's missing.  The path set is
        // spec- and variation-independent (nominal STA ordering only).
        paths_cache_checked_ = true;
        timing::PathEnumerator& paths = characterizer_->analyzer().paths();
        const std::uint64_t paths_key = cache::combine(
            {cache::kModelVersion, netlist_hash_, cache::hash_path_config(paths.config()),
             static_cast<std::uint64_t>(config_.dts.top_k)});
        bool paths_loaded = false;
        if (auto bytes = safe_cache_load(*store_, "paths", paths_key)) {
          cache::ByteReader r(*bytes);
          if (auto warmed = cache::decode_paths(r)) {
            try {
              paths.import_warmed(*warmed);
              paths_loaded = true;
            } catch (const std::exception& e) {
              obs::log_warn("cache", "rejecting path artifact",
                            {{"error", std::string(e.what())}});
            }
          }
        }
        characterizer_->warm_paths();
        if (!paths_loaded) {
          cache::ByteWriter w;
          cache::encode_paths(paths.export_warmed(), w);
          safe_cache_store(*store_, "paths", paths_key, w.bytes());
        }
      }
      last_.control =
          characterizer_->characterize(program, *last_.cfg, last_.executor->profile());
      if (store_) {
        cache::ByteWriter w;
        cache::encode_control(last_.control, config_.spec, w);
        safe_cache_store(*store_, "control", control_key, w.bytes());
      }
    }
    result.training_seconds = seconds_since(t0);
    ctx.set_phase_seconds("training", result.training_seconds);
  }
  obs::log_info("core", "training phase done",
                {{"seconds", result.training_seconds},
                 {"blocks", result.basic_blocks}});

  // --- estimation ---------------------------------------------------------
  {
    obs::ScopedSpan phase("estimation");
    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::ScopedSpan build_span("error_model.build");
      const InstructionErrorModel model(*datapath_, config_.spec, config_.error_model);
      last_.conditionals =
          model.build(program, *last_.cfg, last_.executor->profile(), last_.control);
    }
    const MarginalSolver solver(program, *last_.cfg, last_.executor->profile());
    last_.marginals = solver.solve(last_.conditionals, observer);

    obs::ScopedSpan estimate_span("estimate");
    EstimatorInputs est_in;
    est_in.program = &program;
    est_in.profile = &last_.executor->profile();
    est_in.conditionals = &last_.conditionals;
    est_in.marginals = &last_.marginals;
    est_in.execution_scale = config_.execution_scale;
    est_in.chen_stein_radius = config_.chen_stein_radius;
    est_in.observer = observer;
    result.estimate = estimate_error_rate(est_in);
    result.estimation_seconds = seconds_since(t0);
    ctx.set_phase_seconds("estimation", result.estimation_seconds);
  }
  obs::log_info("core", "estimation phase done",
                {{"seconds", result.estimation_seconds},
                 {"rate_mean", result.estimate.rate_mean()},
                 {"rate_sd", result.estimate.rate_sd()}});

  // Publish the pool's cumulative scheduling counters; support cannot link
  // against obs (obs already links support), so the bridge lives here.
  {
    support::ThreadPool& pool = support::global_pool();
    const auto stats = pool.stats();
    auto& registry = obs::MetricsRegistry::instance();
    registry.gauge("pool.threads").set(static_cast<double>(pool.size()));
    registry.gauge("pool.tasks").set(static_cast<double>(stats.tasks));
    registry.gauge("pool.steal_or_wait").set(static_cast<double>(stats.steal_or_wait));
    // Registered lazily: a run with no serial retries keeps its metrics
    // file byte-identical to builds without the robustness layer.
    if (stats.retries > 0) registry.gauge("pool.retries").set(static_cast<double>(stats.retries));
  }
  result.cache_hits = ctx.metrics().delta("cache.hits");
  result.cache_misses = ctx.metrics().delta("cache.misses");
  const auto& degradation = robust::DegradationLog::instance();
  result.degraded = degradation.degraded();
  result.degraded_sites = degradation.sites();
  if (result.degraded) {
    obs::log_warn("core", "analysis degraded",
                  {{"sites", static_cast<std::uint64_t>(result.degraded_sites.size())}});
  }

  // Wide-event journal append (DESIGN §5g).  Strictly observational: the
  // event is assembled from the finished result, and a failed append
  // degrades the run like any other peripheral I/O.
  if (!journal_path_.empty()) {
    obs::RunEvent event;
    event.run_id = ctx.id();
    event.request_id = ctx.request_id();
    event.unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    event.program = result.name;
    event.config_hash = obs::format_run_id(
        cache::combine({cache::kModelVersion, netlist_hash_, variation_hash_, dts_hash_,
                        charcfg_hash_, cache::hash_spec(config_.spec)}));
    event.program_hash = obs::format_run_id(cache::hash_program(program));
    event.period_ps = config_.spec.period_ps;
    event.threads = support::global_pool().size();
    event.runs = inputs.size();
    event.instructions = result.instructions;
    event.simulation_seconds = result.simulation_seconds;
    event.training_seconds = result.training_seconds;
    event.estimation_seconds = result.estimation_seconds;
    event.counters = ctx.metrics().deltas();
    const support::ThreadPool::Stats pool_after = support::global_pool().stats();
    event.pool_tasks = pool_after.tasks - pool_before.tasks;
    event.pool_retries = pool_after.retries - pool_before.retries;
    event.lambda_mean = result.estimate.lambda.mean;
    event.rate_mean = result.estimate.rate_mean();
    event.rate_sd = result.estimate.rate_sd();
    event.degraded = result.degraded;
    event.degraded_sites = result.degraded_sites;
    event.peak_rss_bytes = obs::peak_rss_bytes();
    try {
      obs::append_event(journal_path_, event);
    } catch (const std::exception& e) {
      robust::note_degraded("io", "journal append failed: " + std::string(e.what()));
      result.degraded = degradation.degraded();
      result.degraded_sites = degradation.sites();
    }
  }
  return result;
}

}  // namespace terrors::core
