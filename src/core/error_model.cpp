#include "core/error_model.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace terrors::core {

using dta::DtsGaussian;
using isa::BlockId;

InstructionErrorModel::InstructionErrorModel(const dta::DatapathModel& datapath,
                                             timing::TimingSpec spec, ErrorModelConfig config)
    : datapath_(datapath), spec_(spec), config_(config) {
  TE_REQUIRE(config.mixed_samples > 0, "need at least one data-variation sample");
}

double InstructionErrorModel::instance_error_probability(const std::optional<DtsGaussian>& ctrl,
                                                         const isa::InstrDynContext& ctx,
                                                         bool prev_errored) const {
  // Correction-scheme emulation: a flush leaves a bubble (nop values) in
  // front of the instruction; replay-without-flush restores the previous
  // instruction's own values.
  isa::ExContext prev = ctx.prev;
  if (prev_errored && config_.scheme == CorrectionScheme::kPipelineFlush)
    prev = isa::ExContext{};  // bubble

  const auto data = datapath_.ex_slack(ctx.cur, prev, spec_);

  std::optional<DtsGaussian> dts;
  if (ctrl.has_value() && data.has_value()) {
    dts = dta::dts_min(*ctrl, *data);
  } else if (ctrl.has_value()) {
    dts = ctrl;
  } else if (data.has_value()) {
    dts = data;
  }
  if (!dts.has_value()) return 0.0;  // nothing activated: cannot fail
  return dts->slack.prob_below_zero();
}

std::vector<BlockErrorDistributions> InstructionErrorModel::build(
    const isa::Program& program, const isa::Cfg& cfg, const isa::ProgramProfile& profile,
    const std::vector<dta::BlockControlDts>& control) const {
  (void)cfg;  // kept for interface symmetry with the characterizer
  TE_REQUIRE(profile.blocks.size() == program.block_count(), "profile/program mismatch");
  TE_REQUIRE(control.size() == program.block_count(), "characterisation/program mismatch");

  const std::size_t m = config_.mixed_samples;
  std::vector<BlockErrorDistributions> out(program.block_count());

  for (BlockId b = 0; b < program.block_count(); ++b) {
    const isa::BasicBlock& blk = program.block(b);
    const isa::BlockProfile& bp = profile.blocks[b];
    BlockErrorDistributions& bd = out[b];
    bd.instr.resize(blk.size());
    for (auto& d : bd.instr) {
      d.p_correct = stat::Samples(m, 0.0);
      d.p_error = stat::Samples(m, 0.0);
    }
    if (bp.executions == 0) continue;
    bd.executed = true;

    // Deterministic proportional allocation of the M sample slots across
    // the incoming edges (plus the entry pseudo-edge), weighted by the
    // measured traversal counts.
    struct Source {
      const isa::EdgeSamples* samples;
      const dta::EdgeControlDts* control;
      std::uint64_t count;
    };
    std::vector<Source> sources;
    if (bp.entry_count > 0)
      sources.push_back({&bp.entry_samples, &control[b].entry, bp.entry_count});
    for (std::size_t j = 0; j < bp.edge_counts.size(); ++j) {
      if (bp.edge_counts[j] == 0) continue;
      sources.push_back({&bp.edge_samples[j], &control[b].per_edge[j], bp.edge_counts[j]});
    }
    TE_CHECK(!sources.empty(), "executed block without traversed edges");

    // Largest-remainder slot allocation.
    std::uint64_t total = 0;
    for (const auto& s : sources) total += s.count;
    std::vector<std::size_t> alloc(sources.size(), 0);
    std::size_t assigned = 0;
    std::vector<std::pair<double, std::size_t>> remainders;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const double exact =
          static_cast<double>(m) * static_cast<double>(sources[s].count) / static_cast<double>(total);
      alloc[s] = static_cast<std::size_t>(exact);
      assigned += alloc[s];
      remainders.emplace_back(exact - static_cast<double>(alloc[s]), s);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t r = 0; assigned < m; ++r, ++assigned) {
      ++alloc[remainders[r % remainders.size()].second];
    }

    std::size_t slot = 0;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const auto& dyn = sources[s].samples->samples;
      for (std::size_t a = 0; a < alloc[s]; ++a, ++slot) {
        // Cycle through the reservoir when it has fewer entries than slots.
        const isa::BlockSample* sample = dyn.empty() ? nullptr : &dyn[a % dyn.size()];
        for (std::size_t k = 0; k < blk.size(); ++k) {
          const auto& ctrl_dts = k < sources[s].control->instr.size()
                                     ? sources[s].control->instr[k]
                                     : std::optional<DtsGaussian>{};
          if (sample == nullptr || k >= sample->instrs.size()) {
            // No recorded context (partial sample near the budget guard):
            // control network only.
            isa::InstrDynContext empty;
            empty.cur.op = blk.instructions[k].op;
            empty.cur.unit = isa::ex_unit(blk.instructions[k].op);
            bd.instr[k].p_correct[slot] =
                ctrl_dts.has_value() ? ctrl_dts->slack.prob_below_zero() : 0.0;
            bd.instr[k].p_error[slot] = instance_error_probability(ctrl_dts, empty, true);
            continue;
          }
          const isa::InstrDynContext& ctx = sample->instrs[k];
          bd.instr[k].p_correct[slot] = instance_error_probability(ctrl_dts, ctx, false);
          bd.instr[k].p_error[slot] = instance_error_probability(ctrl_dts, ctx, true);
        }
      }
    }
    TE_CHECK(slot == m, "sample slot allocation mismatch");
  }
  return out;
}

}  // namespace terrors::core
