// Monte-Carlo validation of the limit-theorem machinery.
//
// The paper cannot Monte-Carlo its full-size benchmarks (the baseline
// simulator is too slow) and instead certifies the Poisson/normal
// approximations with Stein-type bounds.  Our reproduction can afford MC
// on small programs, which lets us check that the Chen–Stein bound indeed
// dominates the observed Kolmogorov distance — the validation experiment
// behind bench_limit_theorems.
//
// A trial samples one data world m (one common-random-numbers input) and
// walks a recorded dynamic block trace, drawing each instruction's error
// Bernoulli from p^c or p^e according to whether the previous instruction
// errored (the paper's Markov error-correction dependence), starting from
// the flushed state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error_model.hpp"
#include "core/estimator.hpp"
#include "isa/executor.hpp"
#include "support/rng.hpp"

namespace terrors::core {

/// Empirical error counts, one per trial.  Requires the profile to have
/// been collected with ExecutorConfig::record_block_trace = true.
/// `fixed_world` >= 0 pins the data world (validates the Poisson step in
/// isolation: N_E | lambda(world)); -1 samples a world per trial
/// (validates the full mixture of Eq. 14).
///
/// Trial `t` draws from the independent stream rng.split(t) (the caller's
/// generator state is not advanced), and trials shard across
/// support::global_pool() — counts are bit-identical at any thread count.
[[nodiscard]] std::vector<std::uint64_t> monte_carlo_error_counts(
    const isa::ProgramProfile& profile, const std::vector<BlockErrorDistributions>& cond,
    std::size_t trials, support::Rng& rng, std::ptrdiff_t fixed_world = -1);

/// Empirical CDF helper: Pr(count <= k) over the trial results.
[[nodiscard]] double empirical_cdf(const std::vector<std::uint64_t>& counts, std::uint64_t k);

/// Kolmogorov distance between the Monte-Carlo empirical error-count CDF
/// and the analytic mixture CDF of `est` (Eq. 14), evaluated at every
/// observed count value.  The report subsystem records this as the
/// "MC vs analytic divergence" diagnostic; the Chen–Stein bound dk_count
/// should dominate it (up to MC sampling noise) when the approximation
/// chain holds.
[[nodiscard]] double mc_analytic_divergence(const std::vector<std::uint64_t>& counts,
                                            const ErrorRateEstimate& est);

}  // namespace terrors::core
