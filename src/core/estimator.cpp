#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/math.hpp"

namespace terrors::core {

double ErrorRateEstimate::rate_mean() const {
  if (total_instructions == 0) return 0.0;
  return lambda.mean / static_cast<double>(total_instructions);
}

double ErrorRateEstimate::rate_sd() const {
  if (total_instructions == 0) return 0.0;
  // Var(N_E) of the mixture = E[lambda] + Var(lambda).
  return std::sqrt(lambda.mean + lambda.variance()) / static_cast<double>(total_instructions);
}

double ErrorRateEstimate::count_cdf(std::int64_t k) const {
  return stat::PoissonMixture(lambda).cdf(k);
}

double ErrorRateEstimate::rate_cdf(double rate) const {
  const auto k = static_cast<std::int64_t>(
      std::floor(rate * static_cast<double>(total_instructions)));
  return count_cdf(k);
}

double ErrorRateEstimate::rate_cdf_lower(double rate) const {
  // Section 6.4: shift both instances of lambda by the Stein bound, then
  // subtract the Chen-Stein bound from the CDF value.
  const stat::Gaussian shifted{lambda.mean + dk_lambda, lambda.sd};
  const auto k = static_cast<std::int64_t>(
      std::floor(rate * static_cast<double>(total_instructions)));
  const double c = stat::PoissonMixture(shifted).cdf(k) - dk_count;
  return support::clamp(c, 0.0, 1.0);
}

double ErrorRateEstimate::rate_cdf_upper(double rate) const {
  const stat::Gaussian shifted{std::max(0.0, lambda.mean - dk_lambda), lambda.sd};
  const auto k = static_cast<std::int64_t>(
      std::floor(rate * static_cast<double>(total_instructions)));
  const double c = stat::PoissonMixture(shifted).cdf(k) + dk_count;
  return support::clamp(c, 0.0, 1.0);
}

ErrorRateEstimate estimate_error_rate(const EstimatorInputs& in) {
  TE_REQUIRE(in.program != nullptr && in.profile != nullptr && in.conditionals != nullptr &&
                 in.marginals != nullptr,
             "estimator inputs incomplete");
  const auto& program = *in.program;
  const auto& profile = *in.profile;
  const auto& cond = *in.conditionals;
  const auto& marg = *in.marginals;
  TE_REQUIRE(profile.runs > 0, "profile has no runs");

  std::size_t m = 0;
  for (const auto& bm : marg) {
    if (!bm.instr.empty()) {
      m = bm.instr[0].size();
      break;
    }
  }
  TE_REQUIRE(m > 0, "marginals are empty");

  TE_REQUIRE(in.execution_scale > 0.0, "execution scale must be positive");
  const double runs = static_cast<double>(profile.runs) / in.execution_scale;

  // lambda, b1, b2 as aligned sample vectors (Eqs. 10, 7, 8).
  stat::Samples lambda_s(m, 0.0);
  stat::Samples b1_s(m, 0.0);
  stat::Samples b2_s(m, 0.0);
  // Stein moment sums over all (replicated) variables e_i * X_{i_k}.
  double sum_abs3 = 0.0;
  double sum_4 = 0.0;

  for (isa::BlockId b = 0; b < program.block_count(); ++b) {
    if (!marg[b].executed) continue;
    const double e_i = static_cast<double>(profile.blocks[b].executions) / runs;
    if (e_i == 0.0) continue;
    const auto& bm = marg[b];
    const auto& bc = cond[b];
    const std::size_t radius = in.chen_stein_radius;
    stat::Samples block_lambda(in.observer != nullptr ? m : 0, 0.0);
    for (std::size_t s = 0; s < m; ++s) {
      double block_sum = 0.0;
      double block_b1 = 0.0;
      double block_b2 = 0.0;
      double prev = bm.p_in[s];
      for (std::size_t k = 0; k < bm.instr.size(); ++k) {
        const double p = bm.instr[k][s];
        block_sum += p;
        if (radius == 0) {
          // Paper Eqs. (7) and (8) verbatim: adjacent-pair products.
          block_b1 += prev * p;
          block_b2 += prev * bc.instr[k].p_error[s];
        } else {
          // Full Chen-Stein terms over |alpha - beta| <= radius: the
          // self term p^2, symmetric pair products, and E[X_a X_b]
          // propagated through the Markov error chain
          // (q_j = q_{j-1} p^e_j + (1 - q_{j-1}) p^c_j).
          block_b1 += p * p;
          double q = 1.0;
          for (std::size_t r = 1; r <= radius && k + r < bm.instr.size(); ++r) {
            const std::size_t j = k + r;
            const double pj = bm.instr[j][s];
            block_b1 += 2.0 * p * pj;
            q = q * bc.instr[j].p_error[s] + (1.0 - q) * bc.instr[j].p_correct[s];
            block_b2 += 2.0 * p * q;
          }
        }
        prev = p;
      }
      lambda_s[s] += e_i * block_sum;
      b1_s[s] += e_i * block_b1;
      b2_s[s] += e_i * block_b2;
      if (in.observer != nullptr) block_lambda[s] = e_i * block_sum;
    }
    if (in.observer != nullptr) in.observer->on_block_lambda(b, block_lambda);
    // Stein's moments (Thm 5.2): the CLT is over the dynamic instruction
    // *instances* — each execution of instruction k is one variable with
    // the distribution of p_{i_k} and a D=2 dependency neighbourhood —
    // so the moment sums carry weight e_i per static instruction.
    for (std::size_t k = 0; k < bm.instr.size(); ++k) {
      sum_abs3 += e_i * bm.instr[k].abs_central_moment3();
      sum_4 += e_i * bm.instr[k].central_moment4();
    }
  }

  // Var(lambda) under the paper's chain-dependence assumption over
  // dynamic instances: Var = sum over instances of [Var(p) + 2 Cov with
  // the previous instance] (plus the block-entry boundary term).  This is
  // the variance the CLT / Stein bound certifies.
  double var_chain = 0.0;
  for (isa::BlockId b = 0; b < program.block_count(); ++b) {
    if (!marg[b].executed) continue;
    const double e_i = static_cast<double>(profile.blocks[b].executions) / runs;
    if (e_i == 0.0) continue;
    const auto& bm = marg[b];
    for (std::size_t k = 0; k < bm.instr.size(); ++k) {
      var_chain += e_i * bm.instr[k].variance();
      const stat::Samples& prev = k == 0 ? bm.p_in : bm.instr[k - 1];
      var_chain += 2.0 * e_i * stat::covariance(prev, bm.instr[k]);
    }
  }

  ErrorRateEstimate est;
  // The reported lambda distribution carries the full data variation of
  // the common program input (the empirical sample spread); var_chain is
  // its chain-dependence lower envelope used inside the Stein bound.
  est.lambda = {std::max(0.0, lambda_s.mean()), lambda_s.stddev()};
  est.lambda_empirical_sd = lambda_s.stddev();
  est.total_instructions = static_cast<std::uint64_t>(
      static_cast<double>(profile.total_instructions) * in.execution_scale /
      static_cast<double>(profile.runs));

  est.sigma_chain = std::sqrt(std::max(0.0, var_chain));
  est.stein_sum_abs3 = sum_abs3;
  est.stein_sum4 = sum_4;

  stat::SteinNormalInputs stein;
  stein.sigma = est.sigma_chain;
  stein.sum_abs_central3 = sum_abs3;
  stein.sum_central4 = sum_4;
  stein.max_dep = 2;
  est.dk_lambda = stat::stein_normal_bound(stein);

  est.b1_worst = b1_s.worst_case(6.0);
  est.b2_worst = b2_s.worst_case(6.0);
  stat::ChenSteinInputs cs;
  cs.b1 = est.b1_worst;
  cs.b2 = est.b2_worst;
  cs.lambda = est.lambda.mean;
  est.dk_count = stat::chen_stein_bound(cs);
  return est;
}

}  // namespace terrors::core
