#include "core/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace terrors::core {

std::vector<std::uint64_t> monte_carlo_error_counts(
    const isa::ProgramProfile& profile, const std::vector<BlockErrorDistributions>& cond,
    std::size_t trials, support::Rng& rng, std::ptrdiff_t fixed_world) {
  TE_REQUIRE(!profile.block_traces.empty(),
             "Monte-Carlo needs a block trace (record_block_trace)");
  std::size_t m = 0;
  for (const auto& bd : cond) {
    if (!bd.instr.empty()) {
      m = bd.instr[0].p_correct.size();
      break;
    }
  }
  TE_REQUIRE(m > 0, "no conditional distributions");
  TE_REQUIRE(fixed_world < static_cast<std::ptrdiff_t>(m), "world index out of range");

  // Each trial draws from its own RNG stream split(t) off the caller's
  // seed, so the chip samples shard across pool workers with results
  // bit-identical at any thread count (and to the serial run).
  std::vector<std::uint64_t> counts(trials, 0);
  auto run_trial = [&](std::size_t t, std::size_t /*worker*/) {
    support::Rng trial_rng = rng.split(static_cast<std::uint64_t>(t));
    const auto& trace = profile.block_traces[t % profile.block_traces.size()];
    const std::size_t world =
        fixed_world >= 0 ? static_cast<std::size_t>(fixed_world) : trial_rng.uniform_index(m);
    bool prev_errored = true;  // flushed state at program start (p_in = 1)
    std::uint64_t n_e = 0;
    for (const auto& step : trace) {
      const auto& bd = cond[step.block];
      for (const auto& instr : bd.instr) {
        const double p = prev_errored ? instr.p_error[world] : instr.p_correct[world];
        const bool err = trial_rng.bernoulli(p);
        n_e += err ? 1u : 0u;
        prev_errored = err;
      }
    }
    counts[t] = n_e;
  };

  support::ThreadPool& pool = support::global_pool();
  // Trials are cheap relative to an edge characterisation; chunk them so
  // scheduling overhead stays negligible.
  const std::size_t grain = std::max<std::size_t>(1, trials / (pool.size() * 8));
  pool.parallel_for(trials, grain, run_trial);
  return counts;
}

double empirical_cdf(const std::vector<std::uint64_t>& counts, std::uint64_t k) {
  TE_REQUIRE(!counts.empty(), "empty Monte-Carlo sample");
  std::size_t le = 0;
  for (std::uint64_t c : counts) le += c <= k ? 1u : 0u;
  return static_cast<double>(le) / static_cast<double>(counts.size());
}

double mc_analytic_divergence(const std::vector<std::uint64_t>& counts,
                              const ErrorRateEstimate& est) {
  TE_REQUIRE(!counts.empty(), "empty Monte-Carlo sample");
  // The empirical CDF is a step function jumping at the observed counts,
  // so the sup distance is attained at (or just below) an observed value.
  std::vector<std::uint64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const double n = static_cast<double>(counts.size());
  double d = 0.0;
  std::size_t below = 0;  // trials with count < k, maintained over sorted ks
  std::size_t idx = 0;
  std::vector<std::uint64_t> all = counts;
  std::sort(all.begin(), all.end());
  for (const std::uint64_t k : sorted) {
    while (idx < all.size() && all[idx] < k) ++idx;
    below = idx;
    std::size_t at = idx;
    while (at < all.size() && all[at] == k) ++at;
    const double analytic = est.count_cdf(static_cast<std::int64_t>(k));
    const double emp_at = static_cast<double>(at) / n;          // Pr(N <= k)
    const double emp_before = static_cast<double>(below) / n;   // Pr(N < k)
    d = std::max(d, std::fabs(emp_at - analytic));
    d = std::max(d, std::fabs(emp_before - analytic));
  }
  return d;
}

}  // namespace terrors::core
