#include "core/monte_carlo.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace terrors::core {

std::vector<std::uint64_t> monte_carlo_error_counts(
    const isa::ProgramProfile& profile, const std::vector<BlockErrorDistributions>& cond,
    std::size_t trials, support::Rng& rng, std::ptrdiff_t fixed_world) {
  TE_REQUIRE(!profile.block_traces.empty(),
             "Monte-Carlo needs a block trace (record_block_trace)");
  std::size_t m = 0;
  for (const auto& bd : cond) {
    if (!bd.instr.empty()) {
      m = bd.instr[0].p_correct.size();
      break;
    }
  }
  TE_REQUIRE(m > 0, "no conditional distributions");

  std::vector<std::uint64_t> counts;
  counts.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto& trace = profile.block_traces[t % profile.block_traces.size()];
    TE_REQUIRE(fixed_world < static_cast<std::ptrdiff_t>(m), "world index out of range");
    const std::size_t world =
        fixed_world >= 0 ? static_cast<std::size_t>(fixed_world) : rng.uniform_index(m);
    bool prev_errored = true;  // flushed state at program start (p_in = 1)
    std::uint64_t n_e = 0;
    for (const auto& step : trace) {
      const auto& bd = cond[step.block];
      for (const auto& instr : bd.instr) {
        const double p = prev_errored ? instr.p_error[world] : instr.p_correct[world];
        const bool err = rng.bernoulli(p);
        n_e += err ? 1u : 0u;
        prev_errored = err;
      }
    }
    counts.push_back(n_e);
  }
  return counts;
}

double empirical_cdf(const std::vector<std::uint64_t>& counts, std::uint64_t k) {
  TE_REQUIRE(!counts.empty(), "empty Monte-Carlo sample");
  std::size_t le = 0;
  for (std::uint64_t c : counts) le += c <= k ? 1u : 0u;
  return static_cast<double>(le) / static_cast<double>(counts.size());
}

}  // namespace terrors::core
