#include "obs/run_context.hpp"

#include <mutex>

namespace terrors::obs {

namespace {
// The installed context.  A plain atomic pointer: installation happens on
// the analyzing thread, readers (pool workers, the degradation log) only
// dereference immutable members.
std::atomic<RunContext*> g_current{nullptr};

// The installed request id.  Unlike the context pointer this is a mutable
// string, so reads take a lock and return a copy — request installation
// happens once per served analyze, far off any hot path.
std::mutex g_request_mutex;
std::string g_request_id;
}  // namespace

std::uint64_t MetricsScope::delta(std::string_view name) const {
  const std::uint64_t now = registry_->counter(name).value();
  const auto it = baseline_.find(std::string(name));
  const std::uint64_t before = it == baseline_.end() ? 0 : it->second;
  return now >= before ? now - before : 0;
}

std::map<std::string, std::uint64_t> MetricsScope::deltas() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, now] : registry_->counter_values()) {
    const auto it = baseline_.find(name);
    const std::uint64_t before = it == baseline_.end() ? 0 : it->second;
    if (now > before) out.emplace(name, now - before);
  }
  return out;
}

std::string format_run_id(std::uint64_t key) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 15; i >= 0; --i) {
    id[static_cast<std::size_t>(i)] = kHex[key & 0xF];
    key >>= 4;
  }
  return id;
}

RunContext::RunContext(std::uint64_t key, std::string label)
    : key_(key), id_(format_run_id(key)), label_(std::move(label)),
      request_id_(current_request_id()), metrics_(MetricsRegistry::instance()) {}

void RunContext::set_phase_seconds(std::string_view phase, double seconds) {
  for (auto& [name, value] : phases_) {
    if (name == phase) {
      value = seconds;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), seconds);
}

RunContext* RunContext::current() { return g_current.load(std::memory_order_acquire); }

RunContext::Scope::Scope(RunContext& ctx)
    : previous_(g_current.exchange(&ctx, std::memory_order_acq_rel)) {}

RunContext::Scope::~Scope() { g_current.store(previous_, std::memory_order_release); }

std::string current_run_id() {
  const RunContext* ctx = RunContext::current();
  return ctx == nullptr ? std::string() : ctx->id();
}

RequestScope::RequestScope(std::string request_id) {
  const std::lock_guard<std::mutex> lock(g_request_mutex);
  previous_ = std::move(g_request_id);
  g_request_id = std::move(request_id);
}

RequestScope::~RequestScope() {
  const std::lock_guard<std::mutex> lock(g_request_mutex);
  g_request_id = std::move(previous_);
}

std::string current_request_id() {
  const std::lock_guard<std::mutex> lock(g_request_mutex);
  return g_request_id;
}

}  // namespace terrors::obs
