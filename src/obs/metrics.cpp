#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace terrors::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":";
    json_number(os, c.value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":";
    json_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    const auto& s = h.stats();
    os << ":{\"count\":";
    json_number(os, static_cast<std::uint64_t>(s.count()));
    os << ",\"mean\":";
    json_number(os, s.empty() ? 0.0 : s.mean());
    os << ",\"stddev\":";
    json_number(os, s.empty() ? 0.0 : s.stddev());
    os << ",\"min\":";
    json_number(os, s.empty() ? 0.0 : s.min());
    os << ",\"max\":";
    json_number(os, s.empty() ? 0.0 : s.max());
    os << "}";
  }
  os << "}}\n";
}

}  // namespace terrors::obs
