#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace terrors::obs {

void Histogram::reservoir_observe(double v) {
  if (seen_ % stride_ == 0) {
    if (reservoir_.size() == kReservoirDepth) {
      // Compact: keep every other sample (preserving the systematic
      // spacing) and double the stride going forward.
      for (std::size_t i = 1; 2 * i < reservoir_.size(); ++i) reservoir_[i] = reservoir_[2 * i];
      reservoir_.resize(kReservoirDepth / 2);
      stride_ *= 2;
      if (seen_ % stride_ == 0) reservoir_.push_back(v);
    } else {
      reservoir_.push_back(v);
    }
  }
  ++seen_;
}

double Histogram::quantile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (reservoir_.empty()) return 0.0;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::floor(p * static_cast<double>(sorted.size()))));
  return sorted[idx];
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_.insert_or_assign(std::string(name), std::string(help));
}

std::string MetricsRegistry::help(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.value());
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":";
    json_number(os, c.value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":";
    json_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    const auto& s = h.stats();
    os << ":{\"count\":";
    json_number(os, static_cast<std::uint64_t>(s.count()));
    os << ",\"mean\":";
    json_number(os, s.empty() ? 0.0 : s.mean());
    os << ",\"stddev\":";
    json_number(os, s.empty() ? 0.0 : s.stddev());
    os << ",\"min\":";
    json_number(os, s.empty() ? 0.0 : s.min());
    os << ",\"max\":";
    json_number(os, s.empty() ? 0.0 : s.max());
    os << ",\"p50\":";
    json_number(os, h.quantile(0.50));
    os << ",\"p95\":";
    json_number(os, h.quantile(0.95));
    os << ",\"p99\":";
    json_number(os, h.quantile(0.99));
    os << "}";
  }
  os << "}}\n";
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string prometheus_sanitize_name(std::string_view name) {
  std::string out = "terrors_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_escape_help(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void prom_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    json_number(os, v);  // same round-trippable formatting
  }
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Caller holds mutex_, so look help up directly instead of via help().
  const auto help_line = [this, &os](const std::string& name, const std::string& prom) {
    const auto it = help_.find(name);
    const std::string& text = it == help_.end() ? name : it->second;
    os << "# HELP " << prom << " " << prometheus_escape_help(text) << "\n";
  };
  for (const auto& [name, c] : counters_) {
    const std::string prom = prometheus_sanitize_name(name);
    help_line(name, prom);
    os << "# TYPE " << prom << " counter\n";
    os << prom << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = prometheus_sanitize_name(name);
    help_line(name, prom);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " ";
    prom_number(os, g.value());
    os << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = prometheus_sanitize_name(name);
    const auto& s = h.stats();
    help_line(name, prom);
    os << "# TYPE " << prom << " summary\n";
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}) {
      os << prom << "{quantile=\"" << prometheus_escape_label(label) << "\"} ";
      prom_number(os, h.quantile(q));
      os << "\n";
    }
    os << prom << "_sum ";
    prom_number(os, s.empty() ? 0.0 : s.mean() * static_cast<double>(s.count()));
    os << "\n" << prom << "_count " << s.count() << "\n";
  }
}

}  // namespace terrors::obs
