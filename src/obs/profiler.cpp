#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <set>
#include <stdexcept>

#include "obs/trace.hpp"

namespace terrors::obs {

namespace {

/// Folded keys use ';' between frames and ' ' before the count; span
/// names never should contain either, but a defensive mapping keeps the
/// file parseable no matter what gets instrumented later.
std::string sanitize_frame(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return out;
}

std::vector<std::string> split_frames(const std::string& stack) {
  std::vector<std::string> frames;
  std::size_t start = 0;
  while (start <= stack.size()) {
    const std::size_t semi = stack.find(';', start);
    if (semi == std::string::npos) {
      frames.push_back(stack.substr(start));
      break;
    }
    frames.push_back(stack.substr(start, semi - start));
    start = semi + 1;
  }
  return frames;
}

}  // namespace

SpanProfiler& SpanProfiler::instance() {
  static SpanProfiler profiler;
  return profiler;
}

void SpanProfiler::start(const ProfilerOptions& options) {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  sampler_ = std::thread([this, interval = options.interval_us] { sampler_main(interval); });
}

void SpanProfiler::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (sampler_.joinable()) sampler_.join();
}

void SpanProfiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_.clear();
  ticks_ = 0;
}

std::uint64_t SpanProfiler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

std::map<std::string, std::uint64_t> SpanProfiler::folded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

void SpanProfiler::write_folded(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [stack, count] : counts_) {
    os << stack << " " << count << "\n";
  }
}

void SpanProfiler::sampler_main(std::uint64_t interval_us) {
  const auto interval = std::chrono::microseconds(interval_us);
  while (running_.load(std::memory_order_relaxed)) {
    const auto stacks = Tracer::instance().open_span_names();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++ticks_;
      for (const auto& stack : stacks) {
        std::string key;
        for (const auto& name : stack) {
          if (!key.empty()) key += ';';
          key += sanitize_frame(name);
        }
        ++counts_[key];
      }
    }
    std::this_thread::sleep_for(interval);
  }
}

std::map<std::string, std::uint64_t> parse_folded(std::istream& is) {
  std::map<std::string, std::uint64_t> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      throw std::runtime_error("folded stacks: malformed line " + std::to_string(lineno));
    }
    const std::string stack = line.substr(0, sp);
    std::uint64_t count = 0;
    for (std::size_t i = sp + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '\r' && i + 1 == line.size()) break;
      if (c < '0' || c > '9') {
        throw std::runtime_error("folded stacks: bad count on line " + std::to_string(lineno));
      }
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out[stack] += count;
  }
  return out;
}

std::vector<SpanHotspot> hotspots_from_folded(
    const std::map<std::string, std::uint64_t>& folded) {
  std::map<std::string, SpanHotspot> by_name;
  for (const auto& [stack, count] : folded) {
    const std::vector<std::string> frames = split_frames(stack);
    // Count each name once per stack (self-recursion must not double its
    // inclusive time).
    std::set<std::string> seen;
    for (const auto& frame : frames) {
      if (!seen.insert(frame).second) continue;
      auto& spot = by_name[frame];
      spot.name = frame;
      spot.inclusive += count;
    }
    if (!frames.empty()) by_name[frames.back()].exclusive += count;
  }
  std::vector<SpanHotspot> out;
  out.reserve(by_name.size());
  for (auto& [name, spot] : by_name) out.push_back(std::move(spot));
  std::sort(out.begin(), out.end(), [](const SpanHotspot& a, const SpanHotspot& b) {
    if (a.inclusive != b.inclusive) return a.inclusive > b.inclusive;
    return a.name < b.name;
  });
  return out;
}

void write_hotspots(const std::map<std::string, std::uint64_t>& folded, std::ostream& os,
                    std::size_t top) {
  std::uint64_t total = 0;
  for (const auto& [stack, count] : folded) total += count;
  const auto spots = hotspots_from_folded(folded);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-32s %10s %7s %10s %7s\n", "span", "incl", "incl%",
                "excl", "excl%");
  os << buf;
  std::size_t shown = 0;
  for (const auto& spot : spots) {
    if (shown++ >= top) break;
    const double denom = total == 0 ? 1.0 : static_cast<double>(total);
    std::snprintf(buf, sizeof(buf), "%-32s %10llu %6.1f%% %10llu %6.1f%%\n", spot.name.c_str(),
                  static_cast<unsigned long long>(spot.inclusive),
                  100.0 * static_cast<double>(spot.inclusive) / denom,
                  static_cast<unsigned long long>(spot.exclusive),
                  100.0 * static_cast<double>(spot.exclusive) / denom);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "%llu sampled stack(s) across %zu span name(s)\n",
                static_cast<unsigned long long>(total), spots.size());
  os << buf;
}

}  // namespace terrors::obs
