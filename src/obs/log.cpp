#include "obs/log.hpp"

#include <set>

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace terrors::obs {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool needs_quoting(std::string_view s) {
  if (s.empty()) return true;
  for (const char c : s) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
      return true;
  }
  return false;
}

void write_value(std::ostream& os, std::string_view s, bool quote) {
  if (!quote || !needs_quoting(s)) {
    // Quoted-but-simple values print bare for readability.
    os << s;
    return;
  }
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (c == '\n') {
      os << "\\n";
      continue;
    }
    os << c;
  }
  os << '"';
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "off" || name == "none") return LogLevel::kOff;
  if (name == "error") return LogLevel::kError;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  return std::nullopt;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

LogField::LogField(std::string_view k, double v) : key(k), value(format_double(v)) {}
LogField::LogField(std::string_view k, std::uint64_t v) : key(k), value(std::to_string(v)) {}
LogField::LogField(std::string_view k, std::int64_t v) : key(k), value(std::to_string(v)) {}

Logger::Logger() {
  if (const char* env = std::getenv("TERRORS_LOG_LEVEL")) {
    if (const auto lvl = parse_log_level(env)) level_ = *lvl;
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message,
                 std::initializer_list<LogField> fields) {
  log_impl(level, component, message, fields.begin(), fields.end());
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message,
                 const std::vector<LogField>& fields) {
  log_impl(level, component, message, fields.data(), fields.data() + fields.size());
}

void Logger::log_impl(LogLevel level, std::string_view component, std::string_view message,
                      const LogField* begin, const LogField* end) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& os = sink_ != nullptr ? *sink_ : std::cerr;
  os << "level=" << log_level_name(level) << " comp=";
  write_value(os, component, true);
  os << " msg=";
  write_value(os, message, true);
  for (const LogField* f = begin; f != end; ++f) {
    os << ' ' << f->key << '=';
    write_value(os, f->value, f->quote);
  }
  os << '\n';
}

void log_error(std::string_view comp, std::string_view msg,
               std::initializer_list<LogField> fields) {
  Logger::instance().log(LogLevel::kError, comp, msg, fields);
}
void log_warn(std::string_view comp, std::string_view msg,
              std::initializer_list<LogField> fields) {
  Logger::instance().log(LogLevel::kWarn, comp, msg, fields);
}
void log_warn(std::string_view comp, std::string_view msg,
              const std::vector<LogField>& fields) {
  Logger::instance().log(LogLevel::kWarn, comp, msg, fields);
}
void log_info(std::string_view comp, std::string_view msg,
              std::initializer_list<LogField> fields) {
  Logger::instance().log(LogLevel::kInfo, comp, msg, fields);
}
void log_info(std::string_view comp, std::string_view msg,
              const std::vector<LogField>& fields) {
  Logger::instance().log(LogLevel::kInfo, comp, msg, fields);
}
void log_debug(std::string_view comp, std::string_view msg,
               std::initializer_list<LogField> fields) {
  Logger::instance().log(LogLevel::kDebug, comp, msg, fields);
}

bool log_warn_once(std::string_view once_key, std::string_view comp, std::string_view msg,
                   std::initializer_list<LogField> fields) {
  static std::mutex mutex;
  static std::set<std::string, std::less<>> seen;
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (!seen.emplace(once_key).second) return false;
  }
  Logger::instance().log(LogLevel::kWarn, comp, msg, fields);
  return true;
}

}  // namespace terrors::obs
