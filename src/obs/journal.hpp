// The wide-event run journal (DESIGN §5g): one self-describing JSONL
// line per analyze() call, appended to a log file that outlives the
// process.
//
// Philosophy: instead of scattering a run's story across log lines and
// metric families, emit ONE wide event carrying everything — identity
// (run id, program), shape (period, threads, instructions), cost (phase
// wall times, per-run counter deltas, peak RSS), outcome (headline
// lambda / error rate, degradation sites).  `terrors stats` and `terrors
// tail` aggregate and render the file; nothing ever reads it on the
// analysis path, so journaling is bit-invisible to the estimate.
//
// The journal path resolves as `--journal FILE` > TERRORS_JOURNAL > off.
// Appends are atomic in the practical sense: the full line is built in
// memory and written with a single O_APPEND write, so concurrent
// processes sharing a journal interleave whole events, never bytes.
//
// Schema evolution mirrors run reports: kind + schema_version lead every
// event, and readers (report/journal_stats.hpp) reject versions they do
// not understand.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace terrors::obs {

inline constexpr int kJournalSchemaVersion = 1;
/// Distinguishes run events from the repo's other JSON documents.
inline constexpr const char* kJournalKind = "terrors_run_event";

inline constexpr int kAccessJournalSchemaVersion = 1;
/// Distinguishes serve access events from run events in mixed tooling.
inline constexpr const char* kAccessJournalKind = "terrors_access_event";

/// One analyze() call, wide.  Field order below is the JSON key order.
struct RunEvent {
  int schema_version = kJournalSchemaVersion;
  std::string run_id;            ///< 16-hex-digit deterministic id
  std::string request_id;        ///< serve request id; "" outside the daemon
  std::uint64_t unix_ms = 0;     ///< wall-clock append time (not deterministic)
  std::string program;
  std::string config_hash;       ///< 16-hex netlist+config component of the key
  std::string program_hash;      ///< 16-hex program component of the key
  double period_ps = 0.0;
  std::size_t threads = 1;
  std::uint64_t runs = 0;        ///< input datasets analyzed
  std::uint64_t instructions = 0;

  // Phase wall times (seconds).
  double simulation_seconds = 0.0;
  double training_seconds = 0.0;
  double estimation_seconds = 0.0;

  // Run-scoped counter deltas (MetricsScope::deltas()): cache.*, pool
  // retries, degradation events, sim cycles — whatever the run touched.
  std::map<std::string, std::uint64_t> counters;

  // Pool scheduling cost of this run (cumulative-stat deltas).
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_retries = 0;

  // Outcome.
  double lambda_mean = 0.0;
  double rate_mean = 0.0;
  double rate_sd = 0.0;
  bool degraded = false;
  std::vector<std::string> degraded_sites;  ///< sorted unique site tags

  std::uint64_t peak_rss_bytes = 0;

  [[nodiscard]] double analyze_seconds() const {
    return simulation_seconds + training_seconds + estimation_seconds;
  }
};

/// One `terrors serve` request, wide (DESIGN §5i): identity (request id,
/// op, coalescing signature, run id), cost (queue wait, executor time,
/// total session time, response bytes), and outcome (coalesced/rejected
/// flags, error category).  Field order below is the JSON key order.
struct AccessEvent {
  int schema_version = kAccessJournalSchemaVersion;
  std::string request_id;        ///< client-supplied or daemon-derived id
  std::string op;                ///< ping | list | metrics | analyze | invalid
  std::string signature;         ///< 16-hex coalescing key; "" for cheap ops
  std::string run_id;            ///< analyze run id; "" when none was assigned
  std::uint64_t unix_ms = 0;     ///< wall-clock append time

  double queue_wait_seconds = 0.0;  ///< admission queue dwell (analyze only)
  double executor_seconds = 0.0;    ///< executor wall time (analyze only)
  double total_seconds = 0.0;       ///< parse -> response, as the session saw it

  bool coalesced = false;        ///< follower attached to an in-flight leader
  bool rejected = false;         ///< bounced at admission (queue full)
  bool ok = true;                ///< envelope carried "ok":true
  std::string error_category;    ///< robust category name; "" when ok

  std::uint64_t response_bytes = 0;    ///< envelope size incl. trailing '\n'
  std::uint64_t queue_depth_peak = 0;  ///< high-water queue depth at append time

  // Supervision fields (DESIGN §5j), emitted only when set so pre-PR-10
  // event bytes are unchanged: how the sandbox worker died ("timeout",
  // "oom", "signal:N", "exit:N", "spawn"), whether this failure tripped
  // the signature's circuit breaker, whether admission was refused by an
  // open breaker, and the backoff hint served with a rejection.
  std::string kill_reason;
  bool breaker_tripped = false;
  bool breaker_rejected = false;
  std::uint64_t retry_after_ms = 0;
};

/// Serialise one event as a single JSON line (no trailing newline).
[[nodiscard]] std::string event_line(const RunEvent& event);
[[nodiscard]] std::string access_event_line(const AccessEvent& event);

/// Append one event (plus '\n') to `path`, creating the file if needed.
/// Throws std::runtime_error when the file cannot be opened or written —
/// callers on the analysis path degrade instead of failing the run.
void append_event(const std::string& path, const RunEvent& event);
void append_access_event(const std::string& path, const AccessEvent& event);

/// Journal path resolution: explicit flag value > TERRORS_JOURNAL > "".
[[nodiscard]] std::string resolve_journal_path(const std::string& flag_value);

/// Peak resident set size of this process in bytes (getrusage; 0 where
/// unsupported).  Monotone over the process lifetime.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace terrors::obs
