// The wide-event run journal (DESIGN §5g): one self-describing JSONL
// line per analyze() call, appended to a log file that outlives the
// process.
//
// Philosophy: instead of scattering a run's story across log lines and
// metric families, emit ONE wide event carrying everything — identity
// (run id, program), shape (period, threads, instructions), cost (phase
// wall times, per-run counter deltas, peak RSS), outcome (headline
// lambda / error rate, degradation sites).  `terrors stats` and `terrors
// tail` aggregate and render the file; nothing ever reads it on the
// analysis path, so journaling is bit-invisible to the estimate.
//
// The journal path resolves as `--journal FILE` > TERRORS_JOURNAL > off.
// Appends are atomic in the practical sense: the full line is built in
// memory and written with a single O_APPEND write, so concurrent
// processes sharing a journal interleave whole events, never bytes.
//
// Schema evolution mirrors run reports: kind + schema_version lead every
// event, and readers (report/journal_stats.hpp) reject versions they do
// not understand.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace terrors::obs {

inline constexpr int kJournalSchemaVersion = 1;
/// Distinguishes run events from the repo's other JSON documents.
inline constexpr const char* kJournalKind = "terrors_run_event";

/// One analyze() call, wide.  Field order below is the JSON key order.
struct RunEvent {
  int schema_version = kJournalSchemaVersion;
  std::string run_id;            ///< 16-hex-digit deterministic id
  std::uint64_t unix_ms = 0;     ///< wall-clock append time (not deterministic)
  std::string program;
  std::string config_hash;       ///< 16-hex netlist+config component of the key
  std::string program_hash;      ///< 16-hex program component of the key
  double period_ps = 0.0;
  std::size_t threads = 1;
  std::uint64_t runs = 0;        ///< input datasets analyzed
  std::uint64_t instructions = 0;

  // Phase wall times (seconds).
  double simulation_seconds = 0.0;
  double training_seconds = 0.0;
  double estimation_seconds = 0.0;

  // Run-scoped counter deltas (MetricsScope::deltas()): cache.*, pool
  // retries, degradation events, sim cycles — whatever the run touched.
  std::map<std::string, std::uint64_t> counters;

  // Pool scheduling cost of this run (cumulative-stat deltas).
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_retries = 0;

  // Outcome.
  double lambda_mean = 0.0;
  double rate_mean = 0.0;
  double rate_sd = 0.0;
  bool degraded = false;
  std::vector<std::string> degraded_sites;  ///< sorted unique site tags

  std::uint64_t peak_rss_bytes = 0;

  [[nodiscard]] double analyze_seconds() const {
    return simulation_seconds + training_seconds + estimation_seconds;
  }
};

/// Serialise one event as a single JSON line (no trailing newline).
[[nodiscard]] std::string event_line(const RunEvent& event);

/// Append one event (plus '\n') to `path`, creating the file if needed.
/// Throws std::runtime_error when the file cannot be opened or written —
/// callers on the analysis path degrade instead of failing the run.
void append_event(const std::string& path, const RunEvent& event);

/// Journal path resolution: explicit flag value > TERRORS_JOURNAL > "".
[[nodiscard]] std::string resolve_journal_path(const std::string& flag_value);

/// Peak resident set size of this process in bytes (getrusage; 0 where
/// unsupported).  Monotone over the process lifetime.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace terrors::obs
