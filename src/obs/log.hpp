// Leveled, structured key=value logging for the estimation pipeline.
//
// Library code logs through the process-wide Logger; output is OFF by
// default so stdout/stderr of the CLI, benches, and tests stay exactly as
// before.  Enable with the TERRORS_LOG_LEVEL environment variable
// (error|warn|info|debug|trace) or programmatically (the CLI's
// --log-level flag).  Records go to stderr (configurable sink) as one
// line of `key=value` pairs:
//
//   level=info comp=core msg="training phase done" seconds=1.82 blocks=14
//
// The format is grep- and logfmt-friendly; values containing spaces or
// quotes are quoted with minimal escaping.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace terrors::obs {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

/// Parse a level name ("off", "error", "warn", "info", "debug", "trace");
/// nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);
std::string_view log_level_name(LogLevel level);

/// One structured field.  Implicit constructors let call sites write
/// `{"seconds", 1.82}` or `{"name", bench.name}` directly.
struct LogField {
  std::string key;
  std::string value;
  bool quote = false;  ///< string values are quoted, numbers are not

  LogField(std::string_view k, std::string_view v) : key(k), value(v), quote(true) {}
  LogField(std::string_view k, const char* v) : key(k), value(v), quote(true) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v), quote(true) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, std::uint64_t v);
  LogField(std::string_view k, std::int64_t v);
  LogField(std::string_view k, int v) : LogField(k, static_cast<std::int64_t>(v)) {}
  LogField(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}
};

class Logger {
 public:
  /// Process-wide logger; level is initialised once from TERRORS_LOG_LEVEL.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_) && level != LogLevel::kOff;
  }

  /// Redirect output (tests); nullptr restores the default (stderr).
  void set_sink(std::ostream* sink) { sink_ = sink; }

  void log(LogLevel level, std::string_view component, std::string_view message,
           std::initializer_list<LogField> fields = {});
  /// Overload for call sites that compose their field list at runtime
  /// (e.g. optional run=/req= tags).
  void log(LogLevel level, std::string_view component, std::string_view message,
           const std::vector<LogField>& fields);

  /// Fork hygiene (serve/worker.hpp): a multi-threaded parent must hold
  /// the logger mutex across fork(), or a child forked while another
  /// thread was mid-log inherits a locked mutex nobody will ever release.
  /// lock_for_fork() is called immediately before fork() and
  /// unlock_after_fork() immediately after in BOTH parent and child (the
  /// child's only thread is the forking thread's clone, so it owns the
  /// lock) — the classic pthread_atfork prepare/parent/child pattern.
  void lock_for_fork() { mutex_.lock(); }
  void unlock_after_fork() { mutex_.unlock(); }

 private:
  void log_impl(LogLevel level, std::string_view component, std::string_view message,
                const LogField* begin, const LogField* end);
  Logger();
  LogLevel level_ = LogLevel::kOff;
  std::ostream* sink_ = nullptr;  ///< nullptr = stderr
  std::mutex mutex_;              ///< records from pool workers stay whole lines
};

/// Convenience wrappers: log_info("core", "phase done", {{"seconds", s}}).
void log_error(std::string_view comp, std::string_view msg,
               std::initializer_list<LogField> fields = {});
void log_warn(std::string_view comp, std::string_view msg,
              std::initializer_list<LogField> fields = {});
void log_warn(std::string_view comp, std::string_view msg,
              const std::vector<LogField>& fields);
void log_info(std::string_view comp, std::string_view msg,
              std::initializer_list<LogField> fields = {});
void log_info(std::string_view comp, std::string_view msg,
              const std::vector<LogField>& fields);
void log_debug(std::string_view comp, std::string_view msg,
               std::initializer_list<LogField> fields = {});

/// log_warn that fires only the first time `once_key` is seen in this
/// process: repeated failures (e.g. every store against a read-only cache
/// dir, or a prob=1 chaos plan) produce one line instead of thousands.
/// Returns true when the line was emitted.
bool log_warn_once(std::string_view once_key, std::string_view comp, std::string_view msg,
                   std::initializer_list<LogField> fields = {});

}  // namespace terrors::obs
