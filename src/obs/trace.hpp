// Scoped-span tracing: a hierarchical phase tree over the estimation
// pipeline (simulation → training → estimation, with nested DTA and
// solver spans), exportable as a Chrome trace_event JSON file
// (chrome://tracing, Perfetto) or rendered as a plain-text tree.
//
// Tracing is OFF by default: a ScopedSpan constructed while the tracer is
// disabled is a no-op (one relaxed atomic load), so the instrumented hot
// layers cost nothing in normal library use.  The CLI's --trace flag and
// the benches enable it around the work they want profiled.
//
//   obs::Tracer::instance().set_enabled(true);
//   {
//     obs::ScopedSpan span("training");
//     span.counter("blocks", nb);
//     ... nested ScopedSpans become children ...
//   }
//   obs::Tracer::instance().write_chrome_trace(file);
//
// The tracer keeps one span stack per thread (pool workers emit their own
// spans, attributed via a `worker` counter and a per-thread `tid` in the
// Chrome export); within a thread spans must strictly nest, which RAII
// enforces.  begin/end/counter are mutex-protected — tracing is opt-in
// profiling, so the lock is acceptable and keeps worker spans readable.
//
// The span buffer is bounded (set_span_limit / --trace-limit, default
// 1M spans): once full, new spans are counted in dropped() and the
// `trace.dropped` metric instead of recorded, so long-running or served
// processes cannot grow memory without bound.  The per-thread open-span
// stacks stay consistent either way, which is what the span-sampling
// profiler (obs/profiler.hpp) walks via open_span_names().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace terrors::obs {

class Tracer {
 public:
  static Tracer& instance();

  /// One completed (or open) span.  `end_ns == 0` means still open.
  struct Node {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::size_t parent = kNoParent;  ///< index into nodes(), kNoParent = root
    std::uint32_t tid = 0;           ///< recording thread (0 = first seen, usually main)
    std::vector<std::pair<std::string, double>> counters;
  };
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  /// Sentinel index returned by begin_span once the buffer is full; the
  /// matching end_span / span_counter calls are no-ops.
  static constexpr std::size_t kDroppedSpan = static_cast<std::size_t>(-2);
  /// Default span cap: generous for any CLI run, finite for a daemon.
  static constexpr std::size_t kDefaultSpanLimit = std::size_t{1} << 20;

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Cap the recorded-span buffer (existing spans are kept even if over a
  /// newly lowered cap; only future begin_span calls are affected).
  void set_span_limit(std::size_t limit);
  [[nodiscard]] std::size_t span_limit() const;
  /// Spans discarded because the buffer was full (since last reset()).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all recorded spans and the dropped count (keeps the enabled
  /// flag and the span limit).
  void reset();

  /// Low-level span API; prefer ScopedSpan.
  std::size_t begin_span(std::string_view name);
  void end_span(std::size_t index);
  void span_counter(std::size_t index, std::string_view key, double value);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  /// Snapshot of the currently-open span names, one stack per recording
  /// thread (outermost first), ordered by tid.  This is the span-sampling
  /// profiler's view: it never touches closed spans, so sampling cost is
  /// one mutex acquisition plus a name copy per open span.
  [[nodiscard]] std::vector<std::vector<std::string>> open_span_names() const;
  /// Nanoseconds since the tracer's epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Chrome trace_event JSON ("X" complete events, microsecond units);
  /// span counters become event args.
  void write_chrome_trace(std::ostream& os) const;
  /// Indented tree with per-span wall time in ms and counters.
  void write_text_tree(std::ostream& os) const;

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  ///< guards nodes_, stacks_, tids_, limit_, dropped_
  std::size_t limit_ = kDefaultSpanLimit;
  std::uint64_t dropped_ = 0;
  std::vector<Node> nodes_;
  /// Open-span stack per recording thread; spans nest within a thread.
  std::unordered_map<std::thread::id, std::vector<std::size_t>> stacks_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII span.  Captures the tracer's enabled state at construction, so
/// toggling mid-span cannot unbalance the stack.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if (Tracer::instance().enabled()) {
      active_ = true;
      index_ = Tracer::instance().begin_span(name);
    }
  }
  ~ScopedSpan() {
    if (active_) Tracer::instance().end_span(index_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a named counter to this span (shows up in trace args).
  void counter(std::string_view key, double value) {
    if (active_) Tracer::instance().span_counter(index_, key, value);
  }
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
  std::size_t index_ = 0;
};

}  // namespace terrors::obs
