// Process-wide registry of named counters, gauges, and histograms.
//
// Counters are relaxed atomics so the hot layers (logic simulation, path
// enumeration, Clark combinations) can increment them unconditionally at
// negligible cost; histograms reuse support::MomentAccumulator, giving
// mean / sd / central moments / min / max without storing samples.
// Nothing is ever printed unless a caller asks for write_json() (the
// CLI's --metrics flag, the bench JSON reports), so default output is
// untouched.
//
// Hot-path idiom — resolve the handle once, then increment:
//
//   static obs::Counter& cycles = obs::MetricsRegistry::instance().counter("sim.cycles");
//   cycles.increment();
//
// Registration is mutex-protected and handles are stable for the process
// lifetime; increments themselves are lock-free.  All three metric kinds
// are safe under the PR-2 thread pool: counters and gauges are relaxed
// atomics (gauge add() is a CAS loop), histograms serialise observe()
// behind a per-histogram mutex — they sit off the per-cycle hot paths
// (cache load/store timings, solver residuals), so a short critical
// section is cheaper than sharding.
//
// Per-run views are layered on top by obs::RunContext / MetricsScope
// (run_context.hpp): the registry can snapshot every counter, and a scope
// deltas the snapshot against live values — process-lifetime handles stay
// lock-free while `terrors serve`-style callers get per-request numbers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/accumulator.hpp"

namespace terrors::obs {

class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Atomic read-modify-write (CAS loop): pool workers may adjust the
  /// same gauge concurrently without losing updates.
  void add(double by) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + by, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// Fixed depth of the deterministic reservoir backing the quantile
  /// estimates.  Small on purpose: a histogram handle lives for the
  /// process lifetime, and the moments already capture the bulk shape.
  static constexpr std::size_t kReservoirDepth = 64;

  void observe(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    acc_.add(v);
    reservoir_observe(v);
  }
  /// Consistent copy of the moment statistics (mutex-guarded: concurrent
  /// observe() calls from pool workers never expose a half-updated
  /// accumulator to a reader).
  [[nodiscard]] support::MomentAccumulator stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return acc_;
  }

  /// Quantile estimate over the reservoir (nearest-rank, matching
  /// stat::Samples::quantile); 0 when nothing was observed.  Exact for
  /// streams up to kReservoirDepth samples; beyond that the reservoir is
  /// a systematic (every stride-th) sample of the stream, so the estimate
  /// is deterministic — identical streams give identical quantiles.
  [[nodiscard]] double quantile(double p) const;

  /// Reservoir snapshot (unsorted, stream order), for tests.
  [[nodiscard]] std::vector<double> reservoir() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reservoir_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    acc_.reset();
    reservoir_.clear();
    stride_ = 1;
    seen_ = 0;
  }

 private:
  /// Deterministic systematic sampling: keep every stride_-th observation;
  /// when the buffer fills, drop every other kept sample and double the
  /// stride.  No RNG, so replays are bit-reproducible.  Caller holds mutex_.
  void reservoir_observe(double v);

  mutable std::mutex mutex_;  ///< guards acc_ + reservoir state as one unit
  support::MomentAccumulator acc_;
  std::vector<double> reservoir_;
  std::uint64_t stride_ = 1;
  std::uint64_t seen_ = 0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create; the returned reference is valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Attach operator-facing help text to a metric name, surfaced as the
  /// Prometheus `# HELP` line.  Idempotent; last writer wins.  Metrics
  /// without help fall back to their raw (pre-sanitisation) name, so the
  /// exposition always carries a HELP line per family.
  void set_help(std::string_view name, std::string_view help);
  /// The registered help text for `name`, or "" when none was set.
  [[nodiscard]] std::string help(std::string_view name) const;

  /// Zero every registered metric (registrations stay).
  void reset();
  /// Total number of registered metrics across the three kinds.
  [[nodiscard]] std::size_t size() const;

  /// Point-in-time snapshot of every registered counter, for per-run
  /// delta views (obs::MetricsScope).  Names are sorted (std::map).
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;

  /// Fork hygiene (serve/worker.hpp): held across fork() so a child never
  /// inherits the registration mutex locked by a non-forking thread.  See
  /// Logger::lock_for_fork for the protocol.  Per-Histogram mutexes are
  /// NOT covered — worker children and session threads touch disjoint
  /// histogram families by construction.
  void lock_for_fork() { mutex_.lock(); }
  void unlock_after_fork() { mutex_.unlock(); }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  /// Histogram entries include reservoir quantiles p50/p95/p99.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition format (version 0.0.4): counters and
  /// gauges as single samples, histograms as summaries (quantile-labelled
  /// samples plus _sum/_count).  Metric names are sanitised to the
  /// Prometheus charset under a "terrors_" prefix; label values are
  /// escaped per the format spec (see prometheus_escape_label).
  void write_prometheus(std::ostream& os) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;  ///< guards map mutation, not metric updates
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// Escape Prometheus HELP text: backslash and newline must be
/// backslash-escaped (double quotes are legal in HELP, unlike labels).
[[nodiscard]] std::string prometheus_escape_help(std::string_view value);

/// Escape a Prometheus label value: backslash, double quote, and newline
/// must be backslash-escaped inside the quoted label string.
[[nodiscard]] std::string prometheus_escape_label(std::string_view value);

/// Map an arbitrary metric name onto the Prometheus name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* by replacing every other character with '_'.
[[nodiscard]] std::string prometheus_sanitize_name(std::string_view name);

}  // namespace terrors::obs
