// Process-wide registry of named counters, gauges, and histograms.
//
// Counters are relaxed atomics so the hot layers (logic simulation, path
// enumeration, Clark combinations) can increment them unconditionally at
// negligible cost; histograms reuse support::MomentAccumulator, giving
// mean / sd / central moments / min / max without storing samples.
// Nothing is ever printed unless a caller asks for write_json() (the
// CLI's --metrics flag, the bench JSON reports), so default output is
// untouched.
//
// Hot-path idiom — resolve the handle once, then increment:
//
//   static obs::Counter& cycles = obs::MetricsRegistry::instance().counter("sim.cycles");
//   cycles.increment();
//
// Registration is mutex-protected and handles are stable for the process
// lifetime; increments themselves are lock-free.  Histograms and gauges
// are not thread-safe (the pipeline is single-threaded today).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "support/accumulator.hpp"

namespace terrors::obs {

class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  void observe(double v) { acc_.add(v); }
  [[nodiscard]] const support::MomentAccumulator& stats() const { return acc_; }
  void reset() { acc_.reset(); }

 private:
  support::MomentAccumulator acc_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create; the returned reference is valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every registered metric (registrations stay).
  void reset();
  /// Total number of registered metrics across the three kinds.
  [[nodiscard]] std::size_t size() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  void write_json(std::ostream& os) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;  ///< guards map mutation, not metric updates
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace terrors::obs
