#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace terrors::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch_)
                                        .count());
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.clear();
  stacks_.clear();
  tids_.clear();
  dropped_ = 0;
}

void Tracer::set_span_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  limit_ = limit;
}

std::size_t Tracer::span_limit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limit_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t Tracer::begin_span(std::string_view name) {
  const std::uint64_t start = now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  if (nodes_.size() >= limit_) {
    ++dropped_;
    // Resolved once: the registry handle is stable for the process.
    static Counter& dropped_metric = MetricsRegistry::instance().counter("trace.dropped");
    dropped_metric.increment();
    return kDroppedSpan;
  }
  const std::thread::id self = std::this_thread::get_id();
  auto [tid_it, fresh] = tids_.try_emplace(self, static_cast<std::uint32_t>(tids_.size()));
  auto& stack = stacks_[self];
  Node node;
  node.name = std::string(name);
  node.start_ns = start;
  node.parent = stack.empty() ? kNoParent : stack.back();
  node.tid = tid_it->second;
  const std::size_t index = nodes_.size();
  nodes_.push_back(std::move(node));
  stack.push_back(index);
  return index;
}

void Tracer::end_span(std::size_t index) {
  if (index == kDroppedSpan) return;
  const std::uint64_t end = now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  TE_REQUIRE(index < nodes_.size(), "end_span on unknown span");
  auto& stack = stacks_[std::this_thread::get_id()];
  TE_REQUIRE(!stack.empty() && stack.back() == index,
             "spans must close in strict LIFO order on their own thread");
  stack.pop_back();
  nodes_[index].end_ns = end;
}

void Tracer::span_counter(std::size_t index, std::string_view key, double value) {
  if (index == kDroppedSpan) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TE_REQUIRE(index < nodes_.size(), "span_counter on unknown span");
  auto& counters = nodes_[index].counters;
  for (auto& [k, v] : counters) {
    if (k == key) {
      v += value;  // repeated keys accumulate (per-iteration counters)
      return;
    }
  }
  counters.emplace_back(std::string(key), value);
}

std::vector<std::vector<std::string>> Tracer::open_span_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Order stacks by tid so two samples of the same state agree exactly.
  std::vector<std::pair<std::uint32_t, const std::vector<std::size_t>*>> ordered;
  ordered.reserve(stacks_.size());
  for (const auto& [thread, stack] : stacks_) {
    if (stack.empty()) continue;
    ordered.emplace_back(tids_.at(thread), &stack);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::vector<std::string>> out;
  out.reserve(ordered.size());
  for (const auto& [tid, stack] : ordered) {
    std::vector<std::string> names;
    names.reserve(stack->size());
    for (const std::size_t index : *stack) names.push_back(nodes_[index].name);
    out.push_back(std::move(names));
  }
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& node : nodes_) {
    if (!first) os << ",";
    first = false;
    const std::uint64_t end = node.end_ns != 0 ? node.end_ns : node.start_ns;
    os << "{\"name\":";
    json_string(os, node.name);
    os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << node.tid << ",\"ts\":";
    json_number(os, node.start_ns / 1000);
    os << ",\"dur\":";
    json_number(os, (end - node.start_ns) / 1000);
    if (!node.counters.empty()) {
      os << ",\"args\":{";
      bool cfirst = true;
      for (const auto& [key, value] : node.counters) {
        if (!cfirst) os << ",";
        cfirst = false;
        json_string(os, key);
        os << ":";
        json_number(os, value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedSpans\":";
  json_number(os, dropped_);
  os << "}}\n";
}

void Tracer::write_text_tree(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Children, in recording order, per parent.
  std::vector<std::vector<std::size_t>> children(nodes_.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == kNoParent) {
      roots.push_back(i);
    } else {
      children[nodes_[i].parent].push_back(i);
    }
  }
  // Iterative pre-order walk.
  struct Frame {
    std::size_t index;
    int depth;
  };
  std::vector<Frame> work;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) work.push_back({*it, 0});
  while (!work.empty()) {
    const Frame f = work.back();
    work.pop_back();
    const Node& node = nodes_[f.index];
    const std::uint64_t end = node.end_ns != 0 ? node.end_ns : node.start_ns;
    for (int d = 0; d < f.depth; ++d) os << "  ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(end - node.start_ns) / 1e6);
    os << node.name << "  " << buf << " ms";
    for (const auto& [key, value] : node.counters) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      os << "  " << key << "=" << buf;
    }
    os << "\n";
    const auto& kids = children[f.index];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) work.push_back({*it, f.depth + 1});
  }
}

}  // namespace terrors::obs
