#include "obs/journal.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace terrors::obs {
namespace {

/// One O_APPEND write per line: concurrent writers sharing the file
/// interleave whole events, never bytes.
void append_line(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("cannot open journal '" + path + "'");
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
  if (!out) throw std::runtime_error("append to journal '" + path + "' failed");
}

}  // namespace

std::string event_line(const RunEvent& event) {
  std::ostringstream os;
  os << "{\"kind\":";
  json_string(os, kJournalKind);
  os << ",\"schema_version\":";
  json_number(os, static_cast<std::uint64_t>(event.schema_version));
  os << ",\"run_id\":";
  json_string(os, event.run_id);
  // Optional: only daemon-served runs carry a request id, and omitting
  // the key keeps CLI journal bytes identical to pre-serve releases.
  if (!event.request_id.empty()) {
    os << ",\"request_id\":";
    json_string(os, event.request_id);
  }
  os << ",\"unix_ms\":";
  json_number(os, event.unix_ms);
  os << ",\"program\":";
  json_string(os, event.program);
  os << ",\"config_hash\":";
  json_string(os, event.config_hash);
  os << ",\"program_hash\":";
  json_string(os, event.program_hash);
  os << ",\"period_ps\":";
  json_number(os, event.period_ps);
  os << ",\"threads\":";
  json_number(os, static_cast<std::uint64_t>(event.threads));
  os << ",\"runs\":";
  json_number(os, event.runs);
  os << ",\"instructions\":";
  json_number(os, event.instructions);
  os << ",\"phases\":{\"simulation_seconds\":";
  json_number(os, event.simulation_seconds);
  os << ",\"training_seconds\":";
  json_number(os, event.training_seconds);
  os << ",\"estimation_seconds\":";
  json_number(os, event.estimation_seconds);
  os << ",\"analyze_seconds\":";
  json_number(os, event.analyze_seconds());
  os << "},\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : event.counters) {
    if (!first) os << ",";
    first = false;
    json_string(os, name);
    os << ":";
    json_number(os, value);
  }
  os << "},\"pool\":{\"tasks\":";
  json_number(os, event.pool_tasks);
  os << ",\"retries\":";
  json_number(os, event.pool_retries);
  os << "},\"estimate\":{\"lambda_mean\":";
  json_number(os, event.lambda_mean);
  os << ",\"rate_mean\":";
  json_number(os, event.rate_mean);
  os << ",\"rate_sd\":";
  json_number(os, event.rate_sd);
  os << "},\"degraded\":" << (event.degraded ? "true" : "false");
  os << ",\"degraded_sites\":[";
  for (std::size_t i = 0; i < event.degraded_sites.size(); ++i) {
    if (i != 0) os << ",";
    json_string(os, event.degraded_sites[i]);
  }
  os << "],\"peak_rss_bytes\":";
  json_number(os, event.peak_rss_bytes);
  os << "}";
  return os.str();
}

std::string access_event_line(const AccessEvent& event) {
  std::ostringstream os;
  os << "{\"kind\":";
  json_string(os, kAccessJournalKind);
  os << ",\"schema_version\":";
  json_number(os, static_cast<std::uint64_t>(event.schema_version));
  os << ",\"request_id\":";
  json_string(os, event.request_id);
  os << ",\"op\":";
  json_string(os, event.op);
  os << ",\"signature\":";
  json_string(os, event.signature);
  os << ",\"run_id\":";
  json_string(os, event.run_id);
  os << ",\"unix_ms\":";
  json_number(os, event.unix_ms);
  os << ",\"timing\":{\"queue_wait_seconds\":";
  json_number(os, event.queue_wait_seconds);
  os << ",\"executor_seconds\":";
  json_number(os, event.executor_seconds);
  os << ",\"total_seconds\":";
  json_number(os, event.total_seconds);
  os << "},\"coalesced\":" << (event.coalesced ? "true" : "false");
  os << ",\"rejected\":" << (event.rejected ? "true" : "false");
  os << ",\"ok\":" << (event.ok ? "true" : "false");
  os << ",\"error_category\":";
  json_string(os, event.error_category);
  os << ",\"response_bytes\":";
  json_number(os, event.response_bytes);
  os << ",\"queue_depth_peak\":";
  json_number(os, event.queue_depth_peak);
  // Supervision fields (DESIGN §5j) ride at the end and only when set, so
  // events from requests the supervisor never touched keep their exact
  // pre-PR-10 bytes.
  if (!event.kill_reason.empty()) {
    os << ",\"kill_reason\":";
    json_string(os, event.kill_reason);
  }
  if (event.breaker_tripped) os << ",\"breaker_tripped\":true";
  if (event.breaker_rejected) os << ",\"breaker_rejected\":true";
  if (event.retry_after_ms > 0) {
    os << ",\"retry_after_ms\":";
    json_number(os, event.retry_after_ms);
  }
  os << "}";
  return os.str();
}

void append_event(const std::string& path, const RunEvent& event) {
  append_line(path, event_line(event) + "\n");
  static Counter& events = MetricsRegistry::instance().counter("journal.events");
  events.increment();
}

void append_access_event(const std::string& path, const AccessEvent& event) {
  append_line(path, access_event_line(event) + "\n");
  static Counter& events =
      MetricsRegistry::instance().counter("journal.access_events");
  events.increment();
}

std::string resolve_journal_path(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("TERRORS_JOURNAL"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return {};
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace terrors::obs
