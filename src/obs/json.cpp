#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace terrors::obs {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

void json_number(std::ostream& os, std::uint64_t v) { os << v; }

}  // namespace terrors::obs
