#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace terrors::obs {

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double v = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return v;
}

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Shortest representation that round-trips: journal consumers compare
  // parsed values against live BenchmarkResult fields bit-for-bit.  Both
  // directions must ignore the process locale — snprintf("%g") writes
  // "3,14" under LC_NUMERIC=de_DE and strtod stops reading at the comma,
  // so a journal written by one process would fail to round-trip in
  // another.  std::to_chars emits the C-locale shortest form that
  // from_chars (parse_double) recovers bit-exactly.
  char buf[40];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  os << std::string_view(buf, static_cast<std::size_t>(r.ptr - buf));
}

void json_number(std::ostream& os, std::uint64_t v) { os << v; }

}  // namespace terrors::obs
