#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace terrors::obs {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Shortest representation that round-trips: journal consumers compare
  // parsed values against live BenchmarkResult fields bit-for-bit.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

void json_number(std::ostream& os, std::uint64_t v) { os << v; }

}  // namespace terrors::obs
