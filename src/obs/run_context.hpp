// Run-scoped telemetry: a RunContext identifies one analyze() call and
// carries its per-run metric view (DESIGN §5g).
//
// The MetricsRegistry is process-wide and cumulative — the right shape
// for lock-free hot-path handles, the wrong shape for "what did *this*
// run cost?".  MetricsScope bridges the two without touching the hot
// paths: it snapshots every counter at construction and deltas the
// snapshot against live values on demand.  RunContext owns one scope per
// run plus the run's identity:
//
//   * a 64-bit run key derived from the cache-key machinery (model
//     version + netlist/config/program hashes + a per-framework analyze
//     ordinal), rendered as a 16-hex-digit run id.  Identical inputs
//     produce identical ids — deterministic like every other artifact of
//     the pipeline; the run journal's wall-clock timestamp distinguishes
//     repeated occurrences in time.
//   * phase wall times, recorded by the framework as each phase closes.
//
// RunContext::current() is the propagation seam: the framework installs
// the context for the duration of analyze() (RAII Scope), and downstream
// layers that cannot take a parameter — the degradation log, cache log
// lines — annotate their output with the active run id.  `terrors serve`
// will install one context per request on the same seam.
//
// Everything here is observational: a RunContext never feeds back into
// the estimate, so runs with and without one attached are bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace terrors::obs {

/// Per-run view over the cumulative MetricsRegistry counters: snapshots
/// every counter at construction, exposes (live - snapshot) deltas.
/// Counters registered after construction delta against zero.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry& registry)
      : registry_(&registry), baseline_(registry.counter_values()) {}

  /// Delta of one counter since the scope opened (0 if never registered).
  [[nodiscard]] std::uint64_t delta(std::string_view name) const;

  /// All counters with a nonzero delta since the scope opened, sorted by
  /// name.  This is the "wide event" payload: self-describing, and only
  /// as wide as what the run actually touched.
  [[nodiscard]] std::map<std::string, std::uint64_t> deltas() const;

 private:
  MetricsRegistry* registry_;
  std::map<std::string, std::uint64_t> baseline_;
};

/// Format a run key as the canonical 16-hex-digit run id.
[[nodiscard]] std::string format_run_id(std::uint64_t key);

class RunContext {
 public:
  /// `key` comes from cache::combine over the run's input hashes; `label`
  /// is a human tag (the program name).
  RunContext(std::uint64_t key, std::string label);

  [[nodiscard]] std::uint64_t key() const { return key_; }
  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  /// The serve request id active when this context was built ("" outside
  /// the daemon).  Captured once so pool workers can read it lock-free.
  [[nodiscard]] const std::string& request_id() const { return request_id_; }

  [[nodiscard]] MetricsScope& metrics() { return metrics_; }
  [[nodiscard]] const MetricsScope& metrics() const { return metrics_; }

  /// Record a phase wall time (insertion order preserved; re-recording a
  /// phase overwrites it, so retries report their final time).
  void set_phase_seconds(std::string_view phase, double seconds);
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  /// The context installed by the innermost active Scope (nullptr outside
  /// any run).  Safe to call from pool workers: the id/label of an
  /// installed context are immutable.
  [[nodiscard]] static RunContext* current();

  /// RAII installer; restores the previous context on destruction so
  /// nested analyses (doctor's golden micro-analysis inside a run) keep
  /// their own identities.
  class Scope {
   public:
    explicit Scope(RunContext& ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RunContext* previous_;
  };

 private:
  std::uint64_t key_;
  std::string id_;
  std::string label_;
  std::string request_id_;
  MetricsScope metrics_;
  std::vector<std::pair<std::string, double>> phases_;
};

/// The active run id, or "" when no run is in flight — for log/journal
/// call sites that want a field value without null checks.
[[nodiscard]] std::string current_run_id();

/// RAII installer for the serve request id (DESIGN §5i): the daemon's
/// executor wraps each analyze in a RequestScope so RunContexts built
/// inside capture the id and degradation warnings can tag `req=`.
/// Restores the previous id on destruction, mirroring RunContext::Scope.
class RequestScope {
 public:
  explicit RequestScope(std::string request_id);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::string previous_;
};

/// The request id installed by the innermost active RequestScope, or ""
/// outside the daemon.  Mutex-guarded: callers get a copy, never a view.
[[nodiscard]] std::string current_request_id();

}  // namespace terrors::obs
