// Minimal JSON writing helpers shared by the trace / metrics exporters.
//
// Deliberately tiny: the observability layer only ever *writes* JSON
// (Chrome trace_event files, metrics snapshots, bench records), so a full
// parser/DOM dependency would be dead weight.  Escaping follows RFC 8259;
// non-finite doubles are emitted as null so the files stay loadable.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>

namespace terrors::obs {

/// Parse `text` as a double with the C-locale grammar, independent of the
/// process locale (std::from_chars, not strtod: under LC_NUMERIC=de_DE a
/// strtod-based reader stops at the '.' in "3.14" and journals written by
/// one process stop round-tripping in another).  Returns nullopt unless
/// the entire input parses.  Bit-exact inverse of json_number(double) for
/// every finite value.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Write `s` as a quoted JSON string, escaping quotes, backslashes,
/// control characters, and anything below 0x20 as \uXXXX.
void json_string(std::ostream& os, std::string_view s);

/// Write a double as a JSON number (round-trippable precision); NaN and
/// infinities become null, which JSON cannot represent.
void json_number(std::ostream& os, double v);

/// Write an unsigned integer (no precision loss through double).
void json_number(std::ostream& os, std::uint64_t v);

}  // namespace terrors::obs
