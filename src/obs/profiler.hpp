// Span-sampling profiler (DESIGN §5g): where does analyze time go?
//
// A sampler thread periodically walks the tracer's per-thread open-span
// stacks (Tracer::open_span_names) and folds each stack into a
// "root;child;leaf" key with a hit count — the collapsed-stack format
// flamegraph.pl and speedscope consume directly.  No signal-based
// unwinding: the sampler only ever observes names the instrumentation
// already recorded, so it is portable, allocation-bounded, and
// deterministic in *what* it can observe (counts vary with timing, names
// never do).  Sampling cost is one tracer mutex acquisition per tick;
// at the default 1 ms interval that is noise next to the pipeline's
// critical sections.
//
// The profiler requires the tracer to be enabled (stacks are only
// maintained for recorded spans); `terrors analyze --profile FILE` turns
// both on, writes the folded stacks, and `terrors profile FILE` renders
// the top hotspots with inclusive/exclusive sample counts.
//
// Like every obs facility, profiling is bit-invisible: it reads tracer
// state and writes a side file, never anything the estimate consumes.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace terrors::obs {

struct ProfilerOptions {
  /// Sampling period.  1 ms resolves phases and multi-ms kernels; drop to
  /// ~100 us for short runs (the CLI's --profile-interval-us).
  std::uint64_t interval_us = 1000;
};

class SpanProfiler {
 public:
  static SpanProfiler& instance();

  /// Launch the sampler thread.  No-op when already running.
  void start(const ProfilerOptions& options = {});
  /// Stop and join the sampler; the folded counts remain readable.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Drop accumulated counts (keeps the running sampler, if any).
  void reset();

  /// Total sampling ticks taken since the last reset (including ticks
  /// that found no open span).
  [[nodiscard]] std::uint64_t samples() const;
  /// Collapsed-stack counts: "analyze;training;dta.characterize" -> hits.
  [[nodiscard]] std::map<std::string, std::uint64_t> folded() const;

  /// Folded-stack text, one "stack count" line per key, sorted by key —
  /// feed to flamegraph.pl / speedscope.
  void write_folded(std::ostream& os) const;

 private:
  SpanProfiler() = default;
  /// Join the sampler on teardown so an abandoned profiler (analyze threw
  /// mid-run) never terminates the process at static destruction.
  ~SpanProfiler() { stop(); }
  void sampler_main(std::uint64_t interval_us);

  std::atomic<bool> running_{false};
  std::thread sampler_;
  mutable std::mutex mutex_;  ///< guards counts_ + ticks_
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t ticks_ = 0;
};

/// Parse folded-stack text (inverse of write_folded; blank lines are
/// skipped).  Throws std::runtime_error on a malformed line.
[[nodiscard]] std::map<std::string, std::uint64_t> parse_folded(std::istream& is);

/// Per-span aggregate over a folded-stack map: inclusive = samples with
/// the span anywhere on the stack, exclusive = samples with it on top.
struct SpanHotspot {
  std::string name;
  std::uint64_t inclusive = 0;
  std::uint64_t exclusive = 0;
};

/// Hotspots sorted by inclusive count (desc), ties by name.
[[nodiscard]] std::vector<SpanHotspot> hotspots_from_folded(
    const std::map<std::string, std::uint64_t>& folded);

/// Render the top-N hotspot table (`terrors profile`).
void write_hotspots(const std::map<std::string, std::uint64_t>& folded, std::ostream& os,
                    std::size_t top);

}  // namespace terrors::obs
