#include "netlist/builder.hpp"

#include <cmath>

#include "support/check.hpp"

namespace terrors::netlist {

NetlistBuilder::NetlistBuilder(support::Rng rng) : rng_(rng) {}

void NetlistBuilder::set_delay_jitter(double frac) {
  TE_REQUIRE(frac >= 0.0 && frac < 1.0, "jitter fraction out of range");
  jitter_ = frac;
}

void NetlistBuilder::begin_component(std::uint8_t stage, float x, float y, float spread) {
  stage_ = stage;
  cx_ = x;
  cy_ = y;
  spread_ = spread;
}

GateId NetlistBuilder::add_placed(GateKind kind, std::array<GateId, 3> fanin) {
  const GateId id = nl_.add(kind, fanin, stage_);
  const float dx = static_cast<float>(rng_.uniform(-spread_, spread_));
  const float dy = static_cast<float>(rng_.uniform(-spread_, spread_));
  nl_.set_placement(id, cx_ + dx, cy_ + dy);
  if (jitter_ > 0.0 && info(kind).combinational) {
    Gate& g = nl_.gate(id);
    g.delay_ps *= static_cast<float>(1.0 + rng_.uniform(-jitter_, jitter_));
  }
  return id;
}

GateId NetlistBuilder::input(const std::string& name) {
  const GateId id = add_placed(GateKind::kInput, {kNoGate, kNoGate, kNoGate});
  nl_.set_name(id, name);
  return id;
}

Word NetlistBuilder::input_word(const std::string& name, int width) {
  TE_REQUIRE(width > 0, "word width must be positive");
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w.push_back(input(name + "[" + std::to_string(i) + "]"));
  return w;
}

GateId NetlistBuilder::constant(bool value) {
  return add_placed(value ? GateKind::kConst1 : GateKind::kConst0, {kNoGate, kNoGate, kNoGate});
}

Word NetlistBuilder::constant_word(std::uint64_t value, int width) {
  TE_REQUIRE(width > 0 && width <= 64, "constant width out of range");
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w.push_back(constant(((value >> i) & 1ull) != 0));
  return w;
}

GateId NetlistBuilder::dff(const std::string& name, EndpointClass cls) {
  const GateId id = add_placed(GateKind::kDff, {kNoGate, kNoGate, kNoGate});
  nl_.set_name(id, name);
  nl_.set_endpoint_class(id, cls);
  return id;
}

Word NetlistBuilder::dff_word(const std::string& name, int width, EndpointClass cls) {
  TE_REQUIRE(width > 0, "word width must be positive");
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w.push_back(dff(name + "[" + std::to_string(i) + "]", cls));
  return w;
}

GateId NetlistBuilder::output(const std::string& name, GateId driver, EndpointClass cls) {
  const GateId id = add_placed(GateKind::kOutput, {driver, kNoGate, kNoGate});
  nl_.set_name(id, name);
  nl_.set_endpoint_class(id, cls);
  return id;
}

void NetlistBuilder::connect(GateId dff_gate, GateId driver) {
  TE_REQUIRE(nl_.gate(dff_gate).kind == GateKind::kDff, "connect() targets flip-flops");
  nl_.set_fanin(dff_gate, 0, driver);
}

void NetlistBuilder::connect_word(const Word& dffs, const Word& drivers) {
  TE_REQUIRE(dffs.size() == drivers.size(), "word width mismatch in connect_word");
  for (std::size_t i = 0; i < dffs.size(); ++i) connect(dffs[i], drivers[i]);
}

GateId NetlistBuilder::gate(GateKind kind, GateId a, GateId b, GateId c) {
  return add_placed(kind, {a, b, c});
}

Word NetlistBuilder::not_word(const Word& a) {
  Word out;
  out.reserve(a.size());
  for (GateId g : a) out.push_back(gate(GateKind::kInv, g));
  return out;
}

namespace {
void require_same_width(const Word& a, const Word& b) {
  TE_REQUIRE(a.size() == b.size(), "word width mismatch");
}
}  // namespace

Word NetlistBuilder::and_word(const Word& a, const Word& b) {
  require_same_width(a, b);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(gate(GateKind::kAnd2, a[i], b[i]));
  return out;
}

Word NetlistBuilder::or_word(const Word& a, const Word& b) {
  require_same_width(a, b);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(gate(GateKind::kOr2, a[i], b[i]));
  return out;
}

Word NetlistBuilder::xor_word(const Word& a, const Word& b) {
  require_same_width(a, b);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(gate(GateKind::kXor2, a[i], b[i]));
  return out;
}

Word NetlistBuilder::mux_word(const Word& a, const Word& b, GateId sel) {
  require_same_width(a, b);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(gate(GateKind::kMux2, a[i], b[i], sel));
  return out;
}

NetlistBuilder::AdderResult NetlistBuilder::ripple_adder(const Word& a, const Word& b,
                                                         GateId carry_in) {
  require_same_width(a, b);
  TE_REQUIRE(!a.empty(), "adder width must be positive");
  GateId carry = carry_in == kNoGate ? constant(false) : carry_in;
  Word sum;
  sum.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder: s = a ^ b ^ c;  cout = (a & b) | (c & (a ^ b)).
    const GateId axb = gate(GateKind::kXor2, a[i], b[i]);
    sum.push_back(gate(GateKind::kXor2, axb, carry));
    const GateId g1 = gate(GateKind::kAnd2, a[i], b[i]);
    const GateId g2 = gate(GateKind::kAnd2, carry, axb);
    carry = gate(GateKind::kOr2, g1, g2);
  }
  return {std::move(sum), carry};
}

NetlistBuilder::AdderResult NetlistBuilder::carry_select_adder(const Word& a, const Word& b,
                                                               int block, GateId carry_in) {
  require_same_width(a, b);
  TE_REQUIRE(!a.empty(), "adder width must be positive");
  TE_REQUIRE(block >= 1, "block size must be positive");
  GateId carry = carry_in == kNoGate ? constant(false) : carry_in;
  Word sum;
  sum.reserve(a.size());
  for (std::size_t base = 0; base < a.size(); base += static_cast<std::size_t>(block)) {
    const std::size_t end = std::min(a.size(), base + static_cast<std::size_t>(block));
    const Word asec(a.begin() + static_cast<std::ptrdiff_t>(base),
                    a.begin() + static_cast<std::ptrdiff_t>(end));
    const Word bsec(b.begin() + static_cast<std::ptrdiff_t>(base),
                    b.begin() + static_cast<std::ptrdiff_t>(end));
    const AdderResult zero = ripple_adder(asec, bsec, constant(false));
    const AdderResult one = ripple_adder(asec, bsec, constant(true));
    Word ssec = mux_word(zero.sum, one.sum, carry);
    sum.insert(sum.end(), ssec.begin(), ssec.end());
    carry = gate(GateKind::kMux2, zero.carry_out, one.carry_out, carry);
  }
  return {std::move(sum), carry};
}

NetlistBuilder::AdderResult NetlistBuilder::subtractor(const Word& a, const Word& b) {
  return ripple_adder(a, not_word(b), constant(true));
}

Word NetlistBuilder::shift_left(const Word& a, const Word& amount) {
  TE_REQUIRE(!a.empty(), "shifter width must be positive");
  Word cur = a;
  const std::size_t levels =
      std::min<std::size_t>(amount.size(), static_cast<std::size_t>(std::ceil(
                                               std::log2(static_cast<double>(a.size())) + 0.5)));
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    const std::size_t dist = std::size_t{1} << lvl;
    Word next;
    next.reserve(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const GateId shifted = i >= dist ? cur[i - dist] : constant(false);
      next.push_back(gate(GateKind::kMux2, cur[i], shifted, amount[lvl]));
    }
    cur = std::move(next);
  }
  return cur;
}

Word NetlistBuilder::shift_right(const Word& a, const Word& amount) {
  TE_REQUIRE(!a.empty(), "shifter width must be positive");
  Word cur = a;
  const std::size_t levels =
      std::min<std::size_t>(amount.size(), static_cast<std::size_t>(std::ceil(
                                               std::log2(static_cast<double>(a.size())) + 0.5)));
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    const std::size_t dist = std::size_t{1} << lvl;
    Word next;
    next.reserve(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const GateId shifted = i + dist < cur.size() ? cur[i + dist] : constant(false);
      next.push_back(gate(GateKind::kMux2, cur[i], shifted, amount[lvl]));
    }
    cur = std::move(next);
  }
  return cur;
}

GateId NetlistBuilder::reduce(GateKind kind, const Word& a) {
  TE_REQUIRE(!a.empty(), "reduction of empty word");
  Word level = a;
  while (level.size() > 1) {
    Word next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(gate(kind, level[i], level[i + 1]));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

GateId NetlistBuilder::or_reduce(const Word& a) { return reduce(GateKind::kOr2, a); }

GateId NetlistBuilder::and_reduce(const Word& a) { return reduce(GateKind::kAnd2, a); }

GateId NetlistBuilder::equals(const Word& a, const Word& b) {
  require_same_width(a, b);
  Word diff = xor_word(a, b);
  return gate(GateKind::kInv, or_reduce(diff));
}

Word NetlistBuilder::mux_tree(const std::vector<Word>& options, const Word& select) {
  TE_REQUIRE(!options.empty(), "mux tree needs options");
  TE_REQUIRE(options.size() == (std::size_t{1} << select.size()),
             "mux tree needs 2^select options");
  std::vector<Word> level = options;
  for (std::size_t s = 0; s < select.size(); ++s) {
    std::vector<Word> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(mux_word(level[i], level[i + 1], select[s]));
    level = std::move(next);
  }
  TE_CHECK(level.size() == 1, "mux tree did not reduce to one word");
  return level[0];
}

Word NetlistBuilder::decoder(const Word& select) {
  TE_REQUIRE(!select.empty() && select.size() <= 8, "decoder select width out of range");
  const std::size_t n = std::size_t{1} << select.size();
  Word inverted = not_word(select);
  Word out;
  out.reserve(n);
  for (std::size_t code = 0; code < n; ++code) {
    Word terms;
    terms.reserve(select.size());
    for (std::size_t b = 0; b < select.size(); ++b)
      terms.push_back(((code >> b) & 1u) != 0 ? select[b] : inverted[b]);
    out.push_back(and_reduce(terms));
  }
  return out;
}

Word NetlistBuilder::random_cloud(const Word& inputs, int width, int depth) {
  TE_REQUIRE(!inputs.empty(), "random cloud needs inputs");
  TE_REQUIRE(width > 0 && depth > 0, "cloud dimensions must be positive");
  static constexpr GateKind kinds[] = {GateKind::kAnd2, GateKind::kNand2, GateKind::kOr2,
                                       GateKind::kNor2, GateKind::kXor2,  GateKind::kXnor2,
                                       GateKind::kInv};
  Word prev = inputs;
  for (int d = 0; d < depth; ++d) {
    Word layer;
    layer.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const GateKind kind = kinds[rng_.uniform_index(std::size(kinds))];
      // Mostly consume the previous layer (to build depth), occasionally
      // reach back to the primary inputs (to create reconvergence).
      auto pick = [&]() -> GateId {
        if (d > 0 && rng_.uniform() < 0.15) return inputs[rng_.uniform_index(inputs.size())];
        return prev[rng_.uniform_index(prev.size())];
      };
      const GateId a = pick();
      if (info(kind).arity == 1) {
        layer.push_back(gate(kind, a));
      } else {
        layer.push_back(gate(kind, a, pick()));
      }
    }
    prev = std::move(layer);
  }
  return prev;
}

}  // namespace terrors::netlist
