// The netlist graph N of the paper (Section 3): vertices are gates, edges
// are nets.  Flip-flops and I/O ports are "endpoints"; every timing path
// starts at an endpoint output and ends at an endpoint input (Def. 3.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/gate.hpp"

namespace terrors::netlist {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xFFFFFFFFu;

/// Control vs data endpoint classification (Section 4 of the paper): data
/// endpoints hold operands / results / condition codes / addresses; control
/// endpoints are everything else (PC, IR, decode, hazard, FSM state).
enum class EndpointClass : std::uint8_t { kNone, kControl, kData };

/// One gate instance.
struct Gate {
  GateKind kind = GateKind::kInput;
  std::array<GateId, 3> fanin = {kNoGate, kNoGate, kNoGate};
  std::uint8_t stage = 0;  ///< pipeline stage of this gate's logic cloud
  EndpointClass endpoint_class = EndpointClass::kNone;
  float x = 0.0f;  ///< placement, arbitrary die units (for spatial correlation)
  float y = 0.0f;
  float delay_ps = 0.0f;  ///< nominal propagation delay of this instance

  [[nodiscard]] int arity() const { return info(kind).arity; }
  [[nodiscard]] bool is_endpoint() const {
    return kind == GateKind::kDff || kind == GateKind::kOutput || kind == GateKind::kInput;
  }
  /// Endpoints that *terminate* paths (capture data): DFFs and outputs.
  [[nodiscard]] bool is_capture_endpoint() const {
    return kind == GateKind::kDff || kind == GateKind::kOutput;
  }
};

/// A gate-level netlist with pipeline-stage and placement annotations.
class Netlist {
 public:
  /// Add a gate; fanins may be kNoGate and filled in later via set_fanin
  /// (needed for sequential loops through DFFs).
  GateId add(GateKind kind, std::array<GateId, 3> fanin = {kNoGate, kNoGate, kNoGate},
             std::uint8_t stage = 0);

  void set_fanin(GateId gate, int slot, GateId driver);
  void set_endpoint_class(GateId gate, EndpointClass c);
  void set_placement(GateId gate, float x, float y);
  void set_name(GateId gate, std::string name);

  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id]; }
  [[nodiscard]] Gate& gate(GateId id) { return gates_[id]; }
  [[nodiscard]] const std::string& name(GateId id) const;

  /// Seal the netlist: verifies completeness (all fanins wired, DFF loops
  /// only through DFFs), computes the combinational topological order and
  /// fanout lists.  Must be called before simulation / timing analysis.
  void finalize(std::uint8_t stage_count);

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::uint8_t stage_count() const { return stage_count_; }
  /// Combinational gates in evaluation order.
  [[nodiscard]] const std::vector<GateId>& topo_order() const;
  [[nodiscard]] const std::vector<GateId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<GateId>& dffs() const { return dffs_; }
  [[nodiscard]] const std::vector<GateId>& outputs() const { return outputs_; }
  /// E(N, s): capture endpoints of pipeline stage s.
  [[nodiscard]] const std::vector<GateId>& stage_endpoints(std::uint8_t s) const;
  [[nodiscard]] const std::vector<GateId>& fanout(GateId id) const;

  /// Summary counters for reporting.
  struct Stats {
    std::size_t gates = 0;
    std::size_t combinational = 0;
    std::size_t dffs = 0;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::string> names_;
  std::vector<GateId> topo_;
  std::vector<GateId> inputs_;
  std::vector<GateId> dffs_;
  std::vector<GateId> outputs_;
  std::vector<std::vector<GateId>> stage_endpoints_;
  std::vector<std::vector<GateId>> fanouts_;
  std::uint8_t stage_count_ = 0;
  bool finalized_ = false;
};

}  // namespace terrors::netlist
