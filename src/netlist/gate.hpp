// The gate library: a small standard-cell set sufficient to structurally
// elaborate an in-order integer pipeline (adders, shifters, mux trees,
// decoders, random control clouds) with per-kind nominal delays loosely
// modelled on a 45nm general-purpose library.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace terrors::netlist {

enum class GateKind : std::uint8_t {
  kInput,   ///< primary input (endpoint in the paper's sense: a path source)
  kConst0,  ///< constant 0
  kConst1,  ///< constant 1
  kBuf,
  kInv,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,  ///< fanins: (a, b, sel) -> sel ? b : a
  kDff,   ///< fanin: (d); output is the captured state (a path endpoint)
  kOutput,  ///< primary output (endpoint); fanin: (d)
};

inline constexpr int kGateKindCount = 14;

/// Static properties of a gate kind.
struct GateKindInfo {
  std::string_view name;
  int arity;              ///< number of fanins
  double delay_ps;        ///< nominal propagation delay (DFF: clk-to-q)
  bool combinational;     ///< participates in combinational evaluation
};

/// Lookup table of gate-kind properties.
const GateKindInfo& info(GateKind kind);

/// Evaluate the boolean function of a combinational gate kind.
/// `in` must have exactly info(kind).arity entries.
bool eval_gate(GateKind kind, std::span<const bool> in);

/// Setup time budget of flip-flops / primary outputs, in picoseconds.
inline constexpr double kSetupTimePs = 30.0;

}  // namespace terrors::netlist
