#include "netlist/gate.hpp"

#include <array>

#include "support/check.hpp"

namespace terrors::netlist {
namespace {

// Nominal delays loosely follow the relative drive strengths of a 45nm
// general-purpose cell library; absolute values only matter up to the
// clock-period scale chosen by the timing spec.
constexpr std::array<GateKindInfo, kGateKindCount> kInfo = {{
    {"input", 0, 0.0, false},    // kInput
    {"const0", 0, 0.0, false},   // kConst0
    {"const1", 0, 0.0, false},   // kConst1
    {"buf", 1, 10.0, true},      // kBuf
    {"inv", 1, 7.0, true},       // kInv
    {"and2", 2, 16.0, true},     // kAnd2
    {"nand2", 2, 11.0, true},    // kNand2
    {"or2", 2, 18.0, true},      // kOr2
    {"nor2", 2, 13.0, true},     // kNor2
    {"xor2", 2, 24.0, true},     // kXor2
    {"xnor2", 2, 24.0, true},    // kXnor2
    {"mux2", 3, 22.0, true},     // kMux2
    {"dff", 1, 42.0, false},     // kDff (clk-to-q)
    {"output", 1, 0.0, false},   // kOutput
}};

}  // namespace

const GateKindInfo& info(GateKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  TE_REQUIRE(idx < kInfo.size(), "unknown gate kind");
  return kInfo[idx];
}

bool eval_gate(GateKind kind, std::span<const bool> in) {
  TE_REQUIRE(static_cast<int>(in.size()) == info(kind).arity, "fanin arity mismatch");
  switch (kind) {
    case GateKind::kBuf:
      return in[0];
    case GateKind::kInv:
      return !in[0];
    case GateKind::kAnd2:
      return in[0] && in[1];
    case GateKind::kNand2:
      return !(in[0] && in[1]);
    case GateKind::kOr2:
      return in[0] || in[1];
    case GateKind::kNor2:
      return !(in[0] || in[1]);
    case GateKind::kXor2:
      return in[0] != in[1];
    case GateKind::kXnor2:
      return in[0] == in[1];
    case GateKind::kMux2:
      return in[2] ? in[1] : in[0];
    default:
      TE_REQUIRE(false, "eval_gate on non-combinational gate");
  }
  return false;  // unreachable
}

}  // namespace terrors::netlist
