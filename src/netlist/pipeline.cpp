#include "netlist/pipeline.hpp"

#include "support/check.hpp"

namespace terrors::netlist {
namespace {

constexpr std::uint8_t kFe = 0;
constexpr std::uint8_t kDe = 1;
constexpr std::uint8_t kRa = 2;
constexpr std::uint8_t kEx = 3;
constexpr std::uint8_t kMe = 4;
constexpr std::uint8_t kWb = 5;

}  // namespace

Pipeline build_pipeline(const PipelineConfig& config) {
  TE_REQUIRE(config.width >= 8 && config.width <= 64, "datapath width out of range");
  TE_REQUIRE(config.cloud_width > 0 && config.cloud_depth > 0, "bad cloud dimensions");
  const int w = config.width;

  NetlistBuilder b(support::Rng(config.seed));
  b.set_delay_jitter(config.delay_jitter);
  Pipeline p;
  p.config = config;
  PipelinePorts& ports = p.ports;
  PipelineTaps& taps = p.taps;

  // ---------------------------------------------------------------- FE --
  b.begin_component(kFe, 0.5f, 0.8f);
  taps.pc_reg = b.dff_word("pc", w, EndpointClass::kControl);
  ports.branch_target = b.input_word("branch_target", w);
  ports.branch_taken = b.input("branch_taken");
  // PC + 4 ripple incrementer: the long control-network path whose
  // activation depth depends on the PC value's carry chain.
  auto pc_inc = b.ripple_adder(taps.pc_reg, b.constant_word(4, w));
  Word next_pc = b.mux_word(pc_inc.sum, ports.branch_target, ports.branch_taken);
  b.connect_word(taps.pc_reg, next_pc);

  b.begin_component(kFe, 0.5f, 0.4f);
  ports.instr = b.input_word("instr", w);
  taps.ir_reg = b.dff_word("ir", w, EndpointClass::kControl);
  b.connect_word(taps.ir_reg, ports.instr);

  // Instruction-memory control cloud: consumes PC bits, drives FE state.
  b.begin_component(kFe, 0.5f, 0.1f);
  Word fe_cloud = b.random_cloud(taps.pc_reg, config.cloud_width, config.cloud_depth);
  Word fe_state = b.dff_word("fe_state", config.ctrl_state_bits, EndpointClass::kControl);
  for (std::size_t i = 0; i < fe_state.size(); ++i)
    b.connect(fe_state[i], fe_cloud[i % fe_cloud.size()]);

  // ---------------------------------------------------------------- DE --
  // Decode cloud: IR + FE state -> decode control state.
  b.begin_component(kDe, 1.5f, 0.15f);
  Word de_in = taps.ir_reg;
  de_in.insert(de_in.end(), fe_state.begin(), fe_state.end());
  Word de_cloud = b.random_cloud(de_in, config.cloud_width, config.cloud_depth);
  Word de_state = b.dff_word("de_state", config.ctrl_state_bits, EndpointClass::kControl);
  for (std::size_t i = 0; i < de_state.size(); ++i)
    b.connect(de_state[i], de_cloud[i % de_cloud.size()]);

  // Immediate extraction: low half of IR, sign-extended through muxes.
  b.begin_component(kDe, 1.5f, 0.45f);
  Word imm_de;
  imm_de.reserve(static_cast<std::size_t>(w));
  const GateId sign = taps.ir_reg[static_cast<std::size_t>(w / 2 - 1)];
  for (int i = 0; i < w; ++i) {
    if (i < w / 2) {
      imm_de.push_back(taps.ir_reg[static_cast<std::size_t>(i)]);
    } else {
      imm_de.push_back(b.gate(GateKind::kBuf, sign));
    }
  }
  Word imm_de_reg = b.dff_word("imm_de", w, EndpointClass::kData);
  b.connect_word(imm_de_reg, imm_de);

  // Register-file read port: architectural read values enter as primary
  // inputs and pass through a read-port mux layer gated by decode bits.
  b.begin_component(kDe, 1.5f, 0.75f);
  ports.op_a = b.input_word("rf_a", w);
  ports.op_b = b.input_word("rf_b", w);
  auto read_port = [&](const Word& val, const std::string& name) {
    // Three mux levels emulate the read-port selection tree of a 32-entry
    // register file; selects chosen so the value passes through unchanged.
    const GateId zero = b.constant(false);
    Word cur = val;
    for (int lvl = 0; lvl < 3; ++lvl) {
      Word other(static_cast<std::size_t>(w), zero);
      cur = b.mux_word(other, cur, b.constant(true));
    }
    Word reg = b.dff_word(name, w, EndpointClass::kData);
    b.connect_word(reg, cur);
    return reg;
  };
  taps.op_a_reg = read_port(ports.op_a, "rf_a_reg");
  taps.op_b_reg = read_port(ports.op_b, "rf_b_reg");

  // ---------------------------------------------------------------- RA --
  // Declared early because the bypass network forwards from EX / ME.
  b.begin_component(kEx, 3.5f, 0.5f);
  taps.ex_result_reg = b.dff_word("ex_result", w, EndpointClass::kData);
  b.begin_component(kMe, 4.5f, 0.5f);
  taps.me_result_reg = b.dff_word("me_result", w, EndpointClass::kData);

  b.begin_component(kRa, 2.5f, 0.6f);
  ports.bypass_a = b.input_word("bypass_a", 2);
  ports.bypass_b = b.input_word("bypass_b", 2);
  auto bypass = [&](const Word& reg_val, const Word& sel, const std::string& name) {
    // 00: register value, 01: forward from EX, 1x: forward from ME.
    Word lvl1 = b.mux_word(reg_val, taps.ex_result_reg, sel[0]);
    Word lvl2 = b.mux_word(lvl1, taps.me_result_reg, sel[1]);
    Word reg = b.dff_word(name, w, EndpointClass::kData);
    b.connect_word(reg, lvl2);
    return reg;
  };
  taps.ra_a_reg = bypass(taps.op_a_reg, ports.bypass_a, "ra_a");
  taps.ra_b_reg = bypass(taps.op_b_reg, ports.bypass_b, "ra_b");

  Word imm_ra_reg = b.dff_word("imm_ra", w, EndpointClass::kData);
  b.connect_word(imm_ra_reg, imm_de_reg);

  // Branch comparator + hazard cloud.
  b.begin_component(kRa, 2.5f, 0.15f);
  const GateId cmp_eq = b.equals(taps.op_a_reg, taps.op_b_reg);
  Word ra_in = de_state;
  ra_in.push_back(cmp_eq);
  Word ra_cloud = b.random_cloud(ra_in, config.cloud_width, config.cloud_depth);
  Word ra_state = b.dff_word("ra_state", config.ctrl_state_bits, EndpointClass::kControl);
  for (std::size_t i = 0; i < ra_state.size(); ++i)
    b.connect(ra_state[i], ra_cloud[i % ra_cloud.size()]);

  // ---------------------------------------------------------------- EX --
  b.begin_component(kEx, 3.5f, 0.75f);
  ports.sel_imm = b.input("sel_imm");
  ports.sub_mode = b.input("sub_mode");
  ports.alu_sel = b.input_word("alu_sel", 2);
  ports.logic_sel = b.input_word("logic_sel", 2);
  ports.shift_dir = b.input("shift_dir");

  Word opb_mux = b.mux_word(taps.ra_b_reg, imm_ra_reg, ports.sel_imm);
  // Add / subtract: b XOR sub_mode with carry-in sub_mode.
  Word sub_word(static_cast<std::size_t>(w), ports.sub_mode);
  Word b_eff = b.xor_word(opb_mux, sub_word);
  auto add = config.ex_adder == AdderKind::kCarrySelect
                 ? b.carry_select_adder(taps.ra_a_reg, b_eff, 4, ports.sub_mode)
                 : b.ripple_adder(taps.ra_a_reg, b_eff, ports.sub_mode);

  b.begin_component(kEx, 3.5f, 0.45f);
  Word and_out = b.and_word(taps.ra_a_reg, opb_mux);
  Word or_out = b.or_word(taps.ra_a_reg, opb_mux);
  Word xor_out = b.xor_word(taps.ra_a_reg, opb_mux);
  Word nota_out = b.not_word(taps.ra_a_reg);
  Word logic_out = b.mux_tree({and_out, or_out, xor_out, nota_out}, ports.logic_sel);

  b.begin_component(kEx, 3.5f, 0.25f);
  Word shamt(ports.alu_sel);  // placeholder width; real shift amount = low 5 bits of operand B
  shamt.assign(opb_mux.begin(), opb_mux.begin() + 5);
  Word shl = b.shift_left(taps.ra_a_reg, shamt);
  Word shr = b.shift_right(taps.ra_a_reg, shamt);
  Word shift_out = b.mux_word(shl, shr, ports.shift_dir);

  Word alu_out = b.mux_tree({add.sum, logic_out, shift_out, opb_mux}, ports.alu_sel);
  b.connect_word(taps.ex_result_reg, alu_out);

  // Condition codes: N, Z, C, V (data endpoints per the paper).
  b.begin_component(kEx, 3.5f, 0.08f);
  const GateId cc_n = b.gate(GateKind::kBuf, alu_out.back());
  const GateId cc_z = b.gate(GateKind::kInv, b.or_reduce(alu_out));
  const GateId cc_c = b.gate(GateKind::kBuf, add.carry_out);
  const GateId a_msb = taps.ra_a_reg.back();
  const GateId b_msb = b_eff.back();
  const GateId r_msb = add.sum.back();
  // Signed overflow: carry into MSB != carry out of MSB, expressed through
  // operand/result signs: V = (a == b) && (r != a).
  const GateId same_in = b.gate(GateKind::kXnor2, a_msb, b_msb);
  const GateId diff_out = b.gate(GateKind::kXor2, a_msb, r_msb);
  const GateId cc_v = b.gate(GateKind::kAnd2, same_in, diff_out);
  taps.cc_reg = {b.dff("cc_n", EndpointClass::kData), b.dff("cc_z", EndpointClass::kData),
                 b.dff("cc_c", EndpointClass::kData), b.dff("cc_v", EndpointClass::kData)};
  b.connect(taps.cc_reg[0], cc_n);
  b.connect(taps.cc_reg[1], cc_z);
  b.connect(taps.cc_reg[2], cc_c);
  b.connect(taps.cc_reg[3], cc_v);

  // Exception / trap cloud.
  b.begin_component(kEx, 3.5f, 0.9f);
  Word ex_in = ra_state;
  ex_in.push_back(add.carry_out);
  Word ex_cloud = b.random_cloud(ex_in, config.cloud_width, config.cloud_depth);
  Word ex_state = b.dff_word("ex_state", config.ctrl_state_bits, EndpointClass::kControl);
  for (std::size_t i = 0; i < ex_state.size(); ++i)
    b.connect(ex_state[i], ex_cloud[i % ex_cloud.size()]);

  // ---------------------------------------------------------------- ME --
  b.begin_component(kMe, 4.5f, 0.8f);
  taps.mem_addr_reg = b.dff_word("mem_addr", w, EndpointClass::kData);
  b.connect_word(taps.mem_addr_reg, taps.ex_result_reg);

  ports.mem_data = b.input_word("mem_data", w);
  ports.mem_is_load = b.input("mem_is_load");
  Word me_mux = b.mux_word(taps.ex_result_reg, ports.mem_data, ports.mem_is_load);
  b.connect_word(taps.me_result_reg, me_mux);

  b.begin_component(kMe, 4.5f, 0.15f);
  Word me_in = ex_state;
  me_in.push_back(ports.mem_is_load);
  Word me_cloud = b.random_cloud(me_in, config.cloud_width, config.cloud_depth);
  Word me_state = b.dff_word("me_state", config.ctrl_state_bits, EndpointClass::kControl);
  for (std::size_t i = 0; i < me_state.size(); ++i)
    b.connect(me_state[i], me_cloud[i % me_cloud.size()]);

  // ---------------------------------------------------------------- WB --
  b.begin_component(kWb, 5.5f, 0.6f);
  taps.wb_result_reg = b.dff_word("wb_result", w, EndpointClass::kData);
  // Writeback passes the ME result through a commit mux (pass-through
  // select models the regfile write port enable).
  Word wb_mux = b.mux_word(taps.me_result_reg, taps.me_result_reg, me_state[0]);
  b.connect_word(taps.wb_result_reg, wb_mux);
  for (int i = 0; i < w; i += 8)
    b.output("commit[" + std::to_string(i) + "]", taps.wb_result_reg[static_cast<std::size_t>(i)],
             EndpointClass::kData);

  b.begin_component(kWb, 5.5f, 0.15f);
  ports.ctrl_noise = b.input_word("ctrl_noise", 4);
  Word wb_in = me_state;
  wb_in.insert(wb_in.end(), ports.ctrl_noise.begin(), ports.ctrl_noise.end());
  Word wb_cloud = b.random_cloud(wb_in, config.cloud_width, config.cloud_depth);
  Word wb_state = b.dff_word("wb_state", config.ctrl_state_bits, EndpointClass::kControl);
  for (std::size_t i = 0; i < wb_state.size(); ++i)
    b.connect(wb_state[i], wb_cloud[i % wb_cloud.size()]);

  p.netlist = std::move(b.netlist());
  p.netlist.finalize(Pipeline::kStages);
  return p;
}

}  // namespace terrors::netlist
