// Word-level structural elaboration on top of Netlist: adders, shifters,
// comparators, mux trees, decoders and random control clouds.  These are
// the building blocks the pipeline generator assembles into a processor.
//
// Words are little-endian vectors of gate ids (index 0 = LSB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace terrors::netlist {

using Word = std::vector<GateId>;

/// Structural builder. All gates created while a component is open are
/// placed around the component centre (for spatial-correlation locality)
/// and tagged with the current pipeline stage.
class NetlistBuilder {
 public:
  explicit NetlistBuilder(support::Rng rng);

  [[nodiscard]] Netlist& netlist() { return nl_; }
  [[nodiscard]] const Netlist& netlist() const { return nl_; }

  /// Per-instance delay jitter: every combinational gate's delay is scaled
  /// by (1 + U(-frac, frac)) to diversify path delays like real placement,
  /// sizing and wire load do.  Deterministic in the builder's RNG.
  void set_delay_jitter(double frac);

  /// Start a new logic cloud at die position (x, y) in stage `stage`;
  /// subsequent gates scatter around the centre with the given spread.
  void begin_component(std::uint8_t stage, float x, float y, float spread = 0.06f);

  // --- primitives -------------------------------------------------------
  GateId input(const std::string& name);
  Word input_word(const std::string& name, int width);
  GateId constant(bool value);
  Word constant_word(std::uint64_t value, int width);
  /// A flip-flop whose data input may be wired later via connect().
  GateId dff(const std::string& name, EndpointClass cls);
  Word dff_word(const std::string& name, int width, EndpointClass cls);
  GateId output(const std::string& name, GateId driver, EndpointClass cls);
  void connect(GateId dff_gate, GateId driver);
  void connect_word(const Word& dffs, const Word& drivers);
  GateId gate(GateKind kind, GateId a, GateId b = kNoGate, GateId c = kNoGate);

  // --- bitwise words ----------------------------------------------------
  Word not_word(const Word& a);
  Word and_word(const Word& a, const Word& b);
  Word or_word(const Word& a, const Word& b);
  Word xor_word(const Word& a, const Word& b);
  /// sel ? b : a, elementwise.
  Word mux_word(const Word& a, const Word& b, GateId sel);

  // --- arithmetic -------------------------------------------------------
  struct AdderResult {
    Word sum;
    GateId carry_out = kNoGate;
  };
  /// Ripple-carry adder; widths must match.
  AdderResult ripple_adder(const Word& a, const Word& b, GateId carry_in = kNoGate);
  /// Carry-select adder: `block` bits per section, each section computes
  /// both carry assumptions with ripple chains and muxes on the incoming
  /// carry — the classic speed/area trade against the plain ripple.
  AdderResult carry_select_adder(const Word& a, const Word& b, int block = 4,
                                 GateId carry_in = kNoGate);
  /// a - b via two's complement (inverted b, carry-in 1).
  AdderResult subtractor(const Word& a, const Word& b);
  /// Logarithmic barrel shifter; shift amount uses the low bits of `amount`.
  Word shift_left(const Word& a, const Word& amount);
  Word shift_right(const Word& a, const Word& amount);

  // --- reductions and selection -----------------------------------------
  GateId or_reduce(const Word& a);
  GateId and_reduce(const Word& a);
  /// 1 iff a == b.
  GateId equals(const Word& a, const Word& b);
  /// Binary-select mux tree; options.size() must be a power of two equal to
  /// 2^select.size(); all options share one width.
  Word mux_tree(const std::vector<Word>& options, const Word& select);
  /// n-to-2^n one-hot decoder.
  Word decoder(const Word& select);

  // --- random control logic ---------------------------------------------
  /// A layered random logic cloud: `width` gates per layer, `depth` layers,
  /// fanins drawn from the previous layer (and occasionally the inputs).
  /// Returns the final layer.  Deterministic in the builder RNG.
  Word random_cloud(const Word& inputs, int width, int depth);

 private:
  GateId add_placed(GateKind kind, std::array<GateId, 3> fanin);
  GateId reduce(GateKind kind, const Word& a);

  Netlist nl_;
  support::Rng rng_;
  double jitter_ = 0.0;
  std::uint8_t stage_ = 0;
  float cx_ = 0.0f;
  float cy_ = 0.0f;
  float spread_ = 0.06f;
};

}  // namespace terrors::netlist
