#include "netlist/netlist.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace terrors::netlist {

GateId Netlist::add(GateKind kind, std::array<GateId, 3> fanin, std::uint8_t stage) {
  TE_REQUIRE(!finalized_, "cannot add gates after finalize()");
  Gate g;
  g.kind = kind;
  g.fanin = fanin;
  g.stage = stage;
  g.delay_ps = static_cast<float>(info(kind).delay_ps);
  const auto id = static_cast<GateId>(gates_.size());
  gates_.push_back(g);
  names_.emplace_back();
  return id;
}

void Netlist::set_fanin(GateId gate_id, int slot, GateId driver) {
  TE_REQUIRE(!finalized_, "cannot rewire after finalize()");
  TE_REQUIRE(gate_id < gates_.size() && driver < gates_.size(), "gate id out of range");
  TE_REQUIRE(slot >= 0 && slot < gates_[gate_id].arity(), "fanin slot out of range");
  gates_[gate_id].fanin[static_cast<std::size_t>(slot)] = driver;
}

void Netlist::set_endpoint_class(GateId gate_id, EndpointClass c) {
  TE_REQUIRE(gate_id < gates_.size(), "gate id out of range");
  TE_REQUIRE(gates_[gate_id].is_capture_endpoint(),
             "endpoint class applies to DFFs and outputs only");
  gates_[gate_id].endpoint_class = c;
}

void Netlist::set_placement(GateId gate_id, float x, float y) {
  TE_REQUIRE(gate_id < gates_.size(), "gate id out of range");
  gates_[gate_id].x = x;
  gates_[gate_id].y = y;
}

void Netlist::set_name(GateId gate_id, std::string name) {
  TE_REQUIRE(gate_id < gates_.size(), "gate id out of range");
  names_[gate_id] = std::move(name);
}

const std::string& Netlist::name(GateId id) const {
  TE_REQUIRE(id < gates_.size(), "gate id out of range");
  return names_[id];
}

void Netlist::finalize(std::uint8_t stage_count) {
  TE_REQUIRE(!finalized_, "finalize() called twice");
  TE_REQUIRE(stage_count > 0, "pipeline needs at least one stage");
  stage_count_ = stage_count;

  inputs_.clear();
  dffs_.clear();
  outputs_.clear();
  fanouts_.assign(gates_.size(), {});
  stage_endpoints_.assign(stage_count, {});

  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    TE_REQUIRE(g.stage < stage_count, "gate stage out of range");
    for (int s = 0; s < g.arity(); ++s) {
      const GateId f = g.fanin[static_cast<std::size_t>(s)];
      TE_REQUIRE(f != kNoGate, "unwired fanin at finalize()");
      TE_REQUIRE(f < gates_.size(), "fanin out of range");
      fanouts_[f].push_back(id);
    }
    switch (g.kind) {
      case GateKind::kInput:
        inputs_.push_back(id);
        break;
      case GateKind::kDff:
        dffs_.push_back(id);
        stage_endpoints_[g.stage].push_back(id);
        break;
      case GateKind::kOutput:
        outputs_.push_back(id);
        stage_endpoints_[g.stage].push_back(id);
        break;
      default:
        break;
    }
  }

  // Kahn topological sort over combinational gates.  DFF outputs, inputs
  // and constants are sources; DFF data inputs and outputs are sinks, so
  // sequential loops are legal while combinational loops are rejected.
  std::vector<int> pending(gates_.size(), 0);
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (!info(g.kind).combinational) continue;
    int count = 0;
    for (int s = 0; s < g.arity(); ++s) {
      const Gate& f = gates_[g.fanin[static_cast<std::size_t>(s)]];
      if (info(f.kind).combinational) ++count;
    }
    pending[id] = count;
  }
  topo_.clear();
  topo_.reserve(gates_.size());
  std::vector<GateId> ready;
  for (GateId id = 0; id < gates_.size(); ++id) {
    if (info(gates_[id].kind).combinational && pending[id] == 0) ready.push_back(id);
  }
  std::size_t comb_total = 0;
  for (GateId id = 0; id < gates_.size(); ++id)
    if (info(gates_[id].kind).combinational) ++comb_total;
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    topo_.push_back(id);
    for (GateId out : fanouts_[id]) {
      if (!info(gates_[out].kind).combinational) continue;
      if (--pending[out] == 0) ready.push_back(out);
    }
  }
  TE_REQUIRE(topo_.size() == comb_total, "combinational cycle detected");
  finalized_ = true;
}

const std::vector<GateId>& Netlist::topo_order() const {
  TE_REQUIRE(finalized_, "netlist not finalized");
  return topo_;
}

const std::vector<GateId>& Netlist::stage_endpoints(std::uint8_t s) const {
  TE_REQUIRE(finalized_, "netlist not finalized");
  TE_REQUIRE(s < stage_count_, "stage out of range");
  return stage_endpoints_[s];
}

const std::vector<GateId>& Netlist::fanout(GateId id) const {
  TE_REQUIRE(finalized_, "netlist not finalized");
  TE_REQUIRE(id < gates_.size(), "gate id out of range");
  return fanouts_[id];
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.gates = gates_.size();
  for (const Gate& g : gates_) {
    if (info(g.kind).combinational) ++s.combinational;
    if (g.kind == GateKind::kDff) ++s.dffs;
    if (g.kind == GateKind::kInput) ++s.inputs;
    if (g.kind == GateKind::kOutput) ++s.outputs;
  }
  return s;
}

}  // namespace terrors::netlist
