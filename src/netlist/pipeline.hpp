// Generator for a LEON3-like 6-stage in-order integer pipeline netlist:
//
//   FE (0): PC register, PC+4 ripple incrementer, branch-target mux,
//           instruction-memory control cloud, IR.
//   DE (1): instruction decode cloud, immediate extraction, register-file
//           read port (operand values injected as primary inputs through a
//           read-port mux layer).
//   RA (2): operand bypass network, hazard-detection cloud, branch
//           comparator.
//   EX (3): ALU (ripple adder, logic unit, barrel shifter), result mux,
//           condition codes, exception cloud.
//   ME (4): memory address register, memory control cloud, load-data mux.
//   WB (5): writeback mux, commit control cloud, architectural outputs.
//
// This plays the role of the paper's synthesised LEON3 integer unit: a
// gate graph with multi-stage endpoints, control vs data endpoint classes,
// realistic depth distribution (the carry chains are the near-critical
// paths) and a 2-D placement for the spatial-correlation model.
//
// The register file itself is modelled architecturally: read values enter
// as primary inputs at DE through the read-port mux layer (see DESIGN.md,
// substitution table).
#pragma once

#include <cstdint>

#include "netlist/builder.hpp"

namespace terrors::netlist {

/// EX-stage adder architecture (ablation knob: the ripple adder's
/// operand-dependent carry chains are the paper-relevant default; carry
/// select compresses the dynamic-slack spread).
enum class AdderKind : std::uint8_t { kRipple, kCarrySelect };

struct PipelineConfig {
  int width = 32;           ///< datapath width in bits
  AdderKind ex_adder = AdderKind::kRipple;
  std::uint64_t seed = 1;   ///< elaboration seed (placement, clouds, jitter)
  double delay_jitter = 0.08;
  int cloud_width = 40;     ///< gates per layer in random control clouds
  int cloud_depth = 7;      ///< layers per random control cloud
  int ctrl_state_bits = 16; ///< control state flip-flops per stage cloud
};

/// Primary-input handles, grouped by the cycle they must be driven in
/// relative to an instruction's fetch cycle t.
struct PipelinePorts {
  // Driven at t (instruction in FE):
  Word instr;
  Word branch_target;
  GateId branch_taken = kNoGate;
  // Driven at t+1 (instruction in DE):
  Word op_a;
  Word op_b;
  // Driven at t+2 (instruction in RA):
  Word bypass_a;  ///< 2 bits
  Word bypass_b;  ///< 2 bits
  // Driven at t+3 (instruction in EX):
  Word alu_sel;        ///< 2 bits: 0=add/sub, 1=logic, 2=shift, 3=pass-B
  GateId sel_imm = kNoGate;
  GateId sub_mode = kNoGate;
  GateId shift_dir = kNoGate;
  Word logic_sel;  ///< 2 bits: and / or / xor / not-A
  // Driven at t+4 (instruction in ME):
  Word mem_data;
  GateId mem_is_load = kNoGate;
  // Driven every cycle (asynchronous control environment):
  Word ctrl_noise;
};

/// Named endpoint groups used by the DTA layer and the datapath model.
struct PipelineTaps {
  Word pc_reg;         ///< FE control endpoints
  Word ir_reg;         ///< FE control endpoints
  Word op_a_reg;       ///< DE data endpoints (register-file read latch)
  Word op_b_reg;
  Word ra_a_reg;       ///< RA data endpoints (post-bypass operands)
  Word ra_b_reg;
  Word ex_result_reg;  ///< EX data endpoints (ALU result)
  Word cc_reg;         ///< EX data endpoints (condition codes)
  Word mem_addr_reg;   ///< ME data endpoints (load/store address)
  Word me_result_reg;  ///< ME data endpoints
  Word wb_result_reg;  ///< WB data endpoints
};

struct Pipeline {
  static constexpr std::uint8_t kStages = 6;
  Netlist netlist;
  PipelinePorts ports;
  PipelineTaps taps;
  PipelineConfig config;
};

/// Elaborate, place and finalize the pipeline netlist.
Pipeline build_pipeline(const PipelineConfig& config);

}  // namespace terrors::netlist
