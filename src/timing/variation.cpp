#include "timing/variation.hpp"

#include <cmath>

#include "support/check.hpp"

namespace terrors::timing {

VariationModel::VariationModel(const netlist::Netlist& nl, const VariationConfig& config)
    : nl_(nl), config_(config) {
  TE_REQUIRE(nl.finalized(), "variation model needs a finalized netlist");
  TE_REQUIRE(config.sigma >= 0.0, "negative variation sigma");
  TE_REQUIRE(config.anchors_x > 0 && config.anchors_y > 0, "bad anchor grid");
  TE_REQUIRE(config.corr_length > 0.0, "correlation length must be positive");

  // Normalise the component weights so total per-gate variance is sigma^2.
  double wg = config.w_global;
  double ws = config.spatial_enabled ? config.w_spatial : 0.0;
  double wi = config.spatial_enabled
                  ? config.w_indep
                  : std::sqrt(config.w_indep * config.w_indep + config.w_spatial * config.w_spatial);
  const double norm = std::sqrt(wg * wg + ws * ws + wi * wi);
  TE_REQUIRE(norm > 0.0, "all variation weights are zero");
  wg_ = wg / norm;
  ws_ = ws / norm;
  wi_ = wi / norm;

  // Anchor grid over the bounding box of the placement.
  float min_x = 0.0f;
  float max_x = 1.0f;
  float min_y = 0.0f;
  float max_y = 1.0f;
  if (nl.size() > 0) {
    min_x = max_x = nl.gate(0).x;
    min_y = max_y = nl.gate(0).y;
    for (netlist::GateId g = 0; g < nl.size(); ++g) {
      min_x = std::min(min_x, nl.gate(g).x);
      max_x = std::max(max_x, nl.gate(g).x);
      min_y = std::min(min_y, nl.gate(g).y);
      max_y = std::max(max_y, nl.gate(g).y);
    }
  }
  for (int iy = 0; iy < config.anchors_y; ++iy) {
    for (int ix = 0; ix < config.anchors_x; ++ix) {
      const double fx = config.anchors_x == 1 ? 0.5 : static_cast<double>(ix) / (config.anchors_x - 1);
      const double fy = config.anchors_y == 1 ? 0.5 : static_cast<double>(iy) / (config.anchors_y - 1);
      anchor_x_.push_back(min_x + fx * (max_x - min_x));
      anchor_y_.push_back(min_y + fy * (max_y - min_y));
    }
  }

  // Per-gate anchor weights: exponential distance decay, unit L2 norm so
  // the spatial field has unit variance everywhere.
  anchor_weights_.assign(nl.size(), {});
  if (ws_ > 0.0) {
    for (netlist::GateId g = 0; g < nl.size(); ++g) {
      std::vector<float> w(anchor_x_.size());
      double norm2 = 0.0;
      for (std::size_t k = 0; k < anchor_x_.size(); ++k) {
        const double dx = nl.gate(g).x - anchor_x_[k];
        const double dy = nl.gate(g).y - anchor_y_[k];
        const double d = std::sqrt(dx * dx + dy * dy);
        const double wk = std::exp(-d / config.corr_length);
        w[k] = static_cast<float>(wk);
        norm2 += wk * wk;
      }
      const double inv = norm2 > 0.0 ? 1.0 / std::sqrt(norm2) : 0.0;
      for (auto& x : w) x = static_cast<float>(x * inv);
      anchor_weights_[g] = std::move(w);
    }
  }
}

double VariationModel::mean(netlist::GateId g) const { return nl_.gate(g).delay_ps; }

double VariationModel::sigma(netlist::GateId g) const {
  return config_.sigma * nl_.gate(g).delay_ps;
}

double VariationModel::global_loading(netlist::GateId g) const { return wg_ * sigma(g); }

const std::vector<float>& VariationModel::spatial_loadings(netlist::GateId g) const {
  return anchor_weights_[g];
}

double VariationModel::indep_sigma(netlist::GateId g) const { return wi_ * sigma(g); }

double VariationModel::covariance(netlist::GateId a, netlist::GateId b) const {
  const double sa = sigma(a);
  const double sb = sigma(b);
  double rho = wg_ * wg_;
  if (ws_ > 0.0) {
    const auto& wa = anchor_weights_[a];
    const auto& wb = anchor_weights_[b];
    double dot = 0.0;
    for (std::size_t k = 0; k < wa.size(); ++k) dot += static_cast<double>(wa[k]) * wb[k];
    rho += ws_ * ws_ * dot;
  }
  double cov = sa * sb * rho;
  if (a == b) cov += wi_ * sa * wi_ * sb;
  return cov;
}

ChipSample VariationModel::sample_chip(support::Rng& rng) const {
  const double z0 = rng.normal();
  std::vector<double> s(anchor_x_.size());
  for (auto& v : s) v = rng.normal();
  ChipSample chip(nl_.size());
  for (netlist::GateId g = 0; g < nl_.size(); ++g) {
    double dev = wg_ * z0;
    if (ws_ > 0.0) {
      const auto& w = anchor_weights_[g];
      double sp = 0.0;
      for (std::size_t k = 0; k < w.size(); ++k) sp += w[k] * s[k];
      dev += ws_ * sp;
    }
    dev += wi_ * rng.normal();
    const double d = nl_.gate(g).delay_ps * (1.0 + config_.sigma * dev);
    chip[g] = static_cast<float>(d < 0.0 ? 0.0 : d);
  }
  return chip;
}

}  // namespace terrors::timing
