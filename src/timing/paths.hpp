// Per-endpoint k-most-critical path enumeration (lazy, best-first) and
// path-level SSTA statistics.
//
// Paths follow Definition 3.1 of the paper: an ordered set of gates whose
// first element is the only endpoint in the set (the launching flip-flop
// or primary input) and whose last gate drives a capture endpoint.  The
// enumerator yields paths in non-increasing nominal delay, using the STA
// arrival time as an admissible bound (the classic k-longest-paths
// best-first search).  Path lists are extended lazily, which implements
// the "while P_i != empty" loop of Algorithm 1 without materialising the
// (exponential) full path set.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "stat/gaussian.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace terrors::timing {

struct TimingPath {
  netlist::GateId endpoint = netlist::kNoGate;  ///< capture endpoint
  /// Launch endpoint first, then the combinational gates in order.
  std::vector<netlist::GateId> gates;
  double delay_ps = 0.0;  ///< nominal delay incl. launch clk-to-q

  [[nodiscard]] double slack(const TimingSpec& spec) const {
    return spec.period_ps - spec.setup_ps - delay_ps;
  }
};

/// Factor-model Gaussian statistics of a path delay under a VariationModel:
/// delay = mean + g_loading * Z0 + sum_k s_loading[k] * S_k + indep, which
/// makes path-to-path covariance (needed by the Clark statistical minimum)
/// a couple of dot products plus a shared-gate scan.
struct PathStat {
  double mean = 0.0;
  double g_loading = 0.0;
  std::vector<double> s_loading;
  double indep_var = 0.0;
  std::vector<netlist::GateId> sorted_gates;  ///< for shared-gate covariance

  [[nodiscard]] double variance() const;
  [[nodiscard]] stat::Gaussian delay() const;
  /// Gaussian slack under `spec`.
  [[nodiscard]] stat::Gaussian slack(const TimingSpec& spec) const;
};

/// Delay statistics of a path.
PathStat path_stat(const TimingPath& path, const VariationModel& vm);

/// Covariance between two path delays (global + spatial + shared-gate
/// independent components).
double path_cov(const PathStat& a, const PathStat& b, const VariationModel& vm);

/// Guards against (exponential) path-set explosion per endpoint.
struct PathConfig {
  std::size_t max_paths = 256;          ///< hard cap of stored paths per endpoint
  std::size_t max_expansions = 200000;  ///< search-node guard per endpoint
};

/// Lazy per-endpoint enumerator of the most critical paths.
class PathEnumerator {
 public:
  explicit PathEnumerator(const netlist::Netlist& nl, PathConfig config = {});
  ~PathEnumerator();  // out of line: Search is incomplete here
  PathEnumerator(const PathEnumerator&) = delete;
  PathEnumerator& operator=(const PathEnumerator&) = delete;

  /// The `k` longest paths ending at `endpoint` (fewer if the endpoint has
  /// fewer paths or a guard tripped).  References stay valid until the
  /// enumerator is destroyed.
  const std::vector<TimingPath>& top_paths(netlist::GateId endpoint, std::size_t k);

  /// Pre-enumerate the top-`k` lists of the given endpoints so later
  /// top_paths(e, k') calls with k' <= k are pure lookups.
  void warm(const std::vector<netlist::GateId>& endpoints, std::size_t k);

  /// While frozen, top_paths() is read-only (and therefore safe to call
  /// concurrently from many threads): querying an endpoint that was not
  /// warmed, or with a larger k than warmed, throws instead of mutating.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// True when the list returned by top_paths() is known to contain ALL
  /// paths of the endpoint (search exhausted, no guard tripped).
  [[nodiscard]] bool exhausted(netlist::GateId endpoint) const;

  /// Serializable snapshot of one endpoint's enumerated path list, for the
  /// on-disk artifact cache.
  struct WarmedEndpoint {
    netlist::GateId endpoint = netlist::kNoGate;
    bool done = false;
    bool guard_tripped = false;
    std::vector<TimingPath> paths;
  };
  /// Snapshot every search's path list, sorted by endpoint id so the
  /// serialized bytes are deterministic.
  [[nodiscard]] std::vector<WarmedEndpoint> export_warmed() const;
  /// Install previously exported lists (replacing any existing search for
  /// those endpoints).  Imported lists are lookup-only: they serve
  /// top_paths(e, k) for any k up to the depth they were warmed with, and
  /// throw if a caller tries to extend them deeper, rather than silently
  /// returning a truncated list.  Unlisted endpoints still enumerate
  /// normally.
  void import_warmed(const std::vector<WarmedEndpoint>& warmed);

  [[nodiscard]] const netlist::Netlist& nl() const { return nl_; }
  [[nodiscard]] const PathConfig& config() const { return config_; }

 private:
  struct Search;
  Search& search_for(netlist::GateId endpoint);
  void extend(Search& s, std::size_t k);

  const netlist::Netlist& nl_;
  PathConfig config_;
  Sta sta_;
  bool frozen_ = false;
  std::unordered_map<netlist::GateId, std::unique_ptr<Search>> searches_;
};

}  // namespace terrors::timing
