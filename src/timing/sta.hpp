// Static timing analysis: longest-path arrival times over the netlist DAG,
// endpoint slacks against a clock spec, and the "activated STA" dynamic
// programming used to cross-check Algorithm 1 (the longest path all of
// whose gates are activated in a given cycle).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/variation.hpp"

namespace terrors::timing {

/// Clock specification.  The paper's working point is 825 MHz (1.15x the
/// 718 MHz non-speculative baseline of its LEON3 build); our synthetic
/// technology is calibrated around the same ratios.
struct TimingSpec {
  double period_ps = 1212.12;
  double setup_ps = netlist::kSetupTimePs;

  [[nodiscard]] double frequency_mhz() const { return 1.0e6 / period_ps; }
  static TimingSpec from_frequency_mhz(double mhz, double setup_ps = netlist::kSetupTimePs) {
    return {1.0e6 / mhz, setup_ps};
  }
};

/// Block-based STA over nominal delays or a sampled chip.
class Sta {
 public:
  /// If `chip` is given it supplies per-gate delays; otherwise nominal
  /// delays from the netlist are used.
  explicit Sta(const netlist::Netlist& nl, const ChipSample* chip = nullptr);

  /// Arrival at the gate's output (includes the gate's own delay); sources
  /// are DFF outputs (clk-to-q) and primary inputs (0).
  [[nodiscard]] double arrival(netlist::GateId g) const { return arrival_[g]; }
  /// Arrival at the data input of a capture endpoint.
  [[nodiscard]] double endpoint_arrival(netlist::GateId e) const;
  /// Setup slack of a capture endpoint.
  [[nodiscard]] double endpoint_slack(netlist::GateId e, const TimingSpec& spec) const;
  /// Worst slack across all capture endpoints.
  [[nodiscard]] double worst_slack(const TimingSpec& spec) const;
  /// Worst slack among endpoints of one pipeline stage.
  [[nodiscard]] double worst_stage_slack(std::uint8_t stage, const TimingSpec& spec) const;
  /// Maximum clock frequency (MHz) at which no endpoint violates setup.
  [[nodiscard]] double max_frequency_mhz(double setup_ps = netlist::kSetupTimePs) const;

 private:
  const netlist::Netlist& nl_;
  std::vector<double> arrival_;
};

/// Longest *activated* path arrival at the data input of endpoint `e` in a
/// cycle whose activation flags are given (Def. 3.2/3.3): a path counts
/// only if every gate on it toggled.  Returns nullopt when no activated
/// path ends at `e` (the endpoint cannot experience a timing error in that
/// cycle).  This is the exact dynamic-programming evaluation of
/// Algorithm 1's deterministic case, used as cross-check and fallback.
std::optional<double> activated_endpoint_arrival(const netlist::Netlist& nl,
                                                 const std::vector<std::uint8_t>& activated,
                                                 netlist::GateId e,
                                                 const ChipSample* chip = nullptr);

/// Bulk variant: arrival (or -inf) at every gate's output.
std::vector<double> activated_arrivals(const netlist::Netlist& nl,
                                       const std::vector<std::uint8_t>& activated,
                                       const ChipSample* chip = nullptr);

}  // namespace terrors::timing
