#include "timing/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace terrors::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

namespace {

double gate_delay(const netlist::Netlist& nl, GateId g, const ChipSample* chip) {
  return chip != nullptr ? static_cast<double>((*chip)[g]) : nl.gate(g).delay_ps;
}

double source_arrival(const netlist::Netlist& nl, GateId g, const ChipSample* chip) {
  // DFF outputs launch at clk-to-q; inputs and constants at t = 0.
  return nl.gate(g).kind == GateKind::kDff ? gate_delay(nl, g, chip) : 0.0;
}

}  // namespace

Sta::Sta(const netlist::Netlist& nl, const ChipSample* chip) : nl_(nl) {
  TE_REQUIRE(nl.finalized(), "STA needs a finalized netlist");
  TE_REQUIRE(chip == nullptr || chip->size() == nl.size(), "chip sample size mismatch");
  arrival_.assign(nl.size(), 0.0);
  for (GateId g = 0; g < nl.size(); ++g) {
    if (!netlist::info(nl.gate(g).kind).combinational) arrival_[g] = source_arrival(nl, g, chip);
  }
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    double worst = 0.0;
    for (int s = 0; s < gate.arity(); ++s)
      worst = std::max(worst, arrival_[gate.fanin[static_cast<std::size_t>(s)]]);
    arrival_[g] = worst + gate_delay(nl, g, chip);
  }
}

double Sta::endpoint_arrival(GateId e) const {
  TE_REQUIRE(nl_.gate(e).is_capture_endpoint(), "not a capture endpoint");
  return arrival_[nl_.gate(e).fanin[0]];
}

double Sta::endpoint_slack(GateId e, const TimingSpec& spec) const {
  return spec.period_ps - spec.setup_ps - endpoint_arrival(e);
}

double Sta::worst_slack(const TimingSpec& spec) const {
  double worst = std::numeric_limits<double>::infinity();
  for (std::uint8_t s = 0; s < nl_.stage_count(); ++s)
    worst = std::min(worst, worst_stage_slack(s, spec));
  return worst;
}

double Sta::worst_stage_slack(std::uint8_t stage, const TimingSpec& spec) const {
  double worst = std::numeric_limits<double>::infinity();
  for (GateId e : nl_.stage_endpoints(stage)) worst = std::min(worst, endpoint_slack(e, spec));
  return worst;
}

double Sta::max_frequency_mhz(double setup_ps) const {
  double worst_arrival = 0.0;
  for (std::uint8_t s = 0; s < nl_.stage_count(); ++s)
    for (GateId e : nl_.stage_endpoints(s)) worst_arrival = std::max(worst_arrival, endpoint_arrival(e));
  TE_CHECK(worst_arrival > 0.0, "netlist with no timing paths");
  return 1.0e6 / (worst_arrival + setup_ps);
}

std::vector<double> activated_arrivals(const netlist::Netlist& nl,
                                       const std::vector<std::uint8_t>& activated,
                                       const ChipSample* chip) {
  TE_REQUIRE(activated.size() == nl.size(), "activation flag size mismatch");
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> arr(nl.size(), kNegInf);
  for (GateId g = 0; g < nl.size(); ++g) {
    const Gate& gate = nl.gate(g);
    if (netlist::info(gate.kind).combinational) continue;
    if (activated[g] != 0) arr[g] = source_arrival(nl, g, chip);
  }
  for (GateId g : nl.topo_order()) {
    if (activated[g] == 0) continue;
    const Gate& gate = nl.gate(g);
    double worst = kNegInf;
    for (int s = 0; s < gate.arity(); ++s)
      worst = std::max(worst, arr[gate.fanin[static_cast<std::size_t>(s)]]);
    if (worst == kNegInf) continue;  // no activated path reaches this gate
    arr[g] = worst + gate_delay(nl, g, chip);
  }
  return arr;
}

std::optional<double> activated_endpoint_arrival(const netlist::Netlist& nl,
                                                 const std::vector<std::uint8_t>& activated,
                                                 GateId e, const ChipSample* chip) {
  TE_REQUIRE(nl.gate(e).is_capture_endpoint(), "not a capture endpoint");
  const std::vector<double> arr = activated_arrivals(nl, activated, chip);
  const double a = arr[nl.gate(e).fanin[0]];
  if (a == -std::numeric_limits<double>::infinity()) return std::nullopt;
  return a;
}

}  // namespace terrors::timing
