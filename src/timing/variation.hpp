// Process-variation model with spatial correlation.
//
// Each gate's delay is a Gaussian
//
//   D_g = mu_g * (1 + sigma * (w_g Z0 + w_s S(x_g, y_g) + w_i eps_g))
//
// with a chip-global component Z0, a spatially correlated field S realised
// as a unit-norm combination of anchor Gaussians on a die grid (correlation
// between two locations decays with their distance, the paper's "spatial
// correlation property of process variation"), and an independent
// per-gate component eps_g.
//
// The factor representation makes both analytic covariance (for SSTA and
// Clark minima) and Monte-Carlo chip sampling cheap and mutually
// consistent.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace terrors::timing {

struct VariationConfig {
  double sigma = 0.05;    ///< total relative delay sigma per gate
  double w_global = 0.5;  ///< weight of the chip-global component
  double w_spatial = 0.6; ///< weight of the spatially correlated component
  double w_indep = 0.624; ///< weight of the independent component
  int anchors_x = 7;      ///< spatial anchor grid
  int anchors_y = 3;
  double corr_length = 1.2;  ///< die units; larger = smoother field
  /// If false, the spatial component's weight is folded into the
  /// independent one (ablation switch).
  bool spatial_enabled = true;
};

/// A manufactured chip: one delay realisation per gate, in picoseconds.
using ChipSample = std::vector<float>;

class VariationModel {
 public:
  VariationModel(const netlist::Netlist& nl, const VariationConfig& config);

  [[nodiscard]] const VariationConfig& config() const { return config_; }
  [[nodiscard]] std::size_t anchor_count() const { return anchor_x_.size(); }

  /// Nominal (mean) delay of a gate, ps.
  [[nodiscard]] double mean(netlist::GateId g) const;
  /// Standard deviation of a gate's delay, ps.
  [[nodiscard]] double sigma(netlist::GateId g) const;
  /// Covariance between two gate delays (includes the independent term
  /// when a == b), ps^2.
  [[nodiscard]] double covariance(netlist::GateId a, netlist::GateId b) const;

  /// Factor loadings of gate g: global loading (ps), spatial loadings per
  /// anchor (ps), independent sd (ps).  Path-level statistics are sums of
  /// these loadings.
  [[nodiscard]] double global_loading(netlist::GateId g) const;
  [[nodiscard]] const std::vector<float>& spatial_loadings(netlist::GateId g) const;
  [[nodiscard]] double indep_sigma(netlist::GateId g) const;

  /// Draw a manufactured chip (deterministic in the RNG state).
  [[nodiscard]] ChipSample sample_chip(support::Rng& rng) const;

 private:
  const netlist::Netlist& nl_;
  VariationConfig config_;
  double wg_ = 0.0;
  double ws_ = 0.0;
  double wi_ = 0.0;
  std::vector<double> anchor_x_;
  std::vector<double> anchor_y_;
  /// Per-gate unit-norm anchor weights (empty rows when spatial disabled).
  std::vector<std::vector<float>> anchor_weights_;
};

}  // namespace terrors::timing
