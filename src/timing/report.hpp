// Signoff-style timing reports: a PrimeTime-flavoured text rendering of
// the N most critical paths (per endpoint or design-wide), with per-gate
// arrival breakdown and optional SSTA statistics.  Useful for inspecting
// the synthetic design the way one would inspect a real EDA flow's output.
#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.hpp"
#include "timing/paths.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace terrors::timing {

struct ReportConfig {
  std::size_t max_paths = 10;      ///< design-wide worst paths reported
  std::size_t paths_per_endpoint = 2;
  bool show_gates = true;          ///< per-gate arrival breakdown
  bool show_statistics = false;    ///< SSTA mean/sigma per path (needs vm)
};

/// Write a timing report for the whole design at the given clock spec.
/// `vm` may be null when show_statistics is false.
void write_timing_report(std::ostream& out, const netlist::Netlist& nl, const TimingSpec& spec,
                         PathEnumerator& paths, const VariationModel* vm = nullptr,
                         const ReportConfig& config = {});

/// One-path detail block (exposed for tests).
void write_path_report(std::ostream& out, const netlist::Netlist& nl, const TimingSpec& spec,
                       const TimingPath& path, const VariationModel* vm, bool show_gates);

}  // namespace terrors::timing
