#include "timing/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <vector>

#include "support/check.hpp"

namespace terrors::timing {

using netlist::GateId;
using netlist::GateKind;

namespace {

std::string gate_label(const netlist::Netlist& nl, GateId g) {
  const auto& name = nl.name(g);
  std::string kind{netlist::info(nl.gate(g).kind).name};
  if (name.empty()) return "g" + std::to_string(g) + " (" + kind + ")";
  return name + " (" + kind + ")";
}

}  // namespace

void write_path_report(std::ostream& out, const netlist::Netlist& nl, const TimingSpec& spec,
                       const TimingPath& path, const VariationModel* vm, bool show_gates) {
  TE_REQUIRE(!path.gates.empty(), "empty path");
  out << "  Startpoint: " << gate_label(nl, path.gates.front()) << "\n";
  out << "  Endpoint:   " << gate_label(nl, path.endpoint) << "  (stage "
      << static_cast<int>(nl.gate(path.endpoint).stage) << ")\n";
  if (show_gates) {
    out << "    " << std::left << std::setw(36) << "point" << std::right << std::setw(10)
        << "incr(ps)" << std::setw(12) << "arrival(ps)" << "\n";
    double arrival = 0.0;
    for (GateId g : path.gates) {
      const double incr = nl.gate(g).delay_ps;
      arrival += incr;
      out << "    " << std::left << std::setw(36) << gate_label(nl, g) << std::right
          << std::fixed << std::setprecision(1) << std::setw(10) << incr << std::setw(12)
          << arrival << "\n";
    }
  }
  const double slack = path.slack(spec);
  out << "    data arrival " << std::fixed << std::setprecision(1) << path.delay_ps
      << " ps, required " << (spec.period_ps - spec.setup_ps) << " ps, slack " << slack
      << " ps (" << (slack >= 0.0 ? "MET" : "VIOLATED") << ")\n";
  if (vm != nullptr) {
    const PathStat st = path_stat(path, *vm);
    const stat::Gaussian sl = st.slack(spec);
    out << "    SSTA: slack " << sl.mean << " +- " << sl.sd
        << " ps, Pr(violation) = " << std::setprecision(6) << sl.cdf(0.0) << "\n";
  }
}

void write_timing_report(std::ostream& out, const netlist::Netlist& nl, const TimingSpec& spec,
                         PathEnumerator& paths, const VariationModel* vm,
                         const ReportConfig& config) {
  TE_REQUIRE(!config.show_statistics || vm != nullptr,
             "statistics require a variation model");
  out << "Timing report @ " << std::fixed << std::setprecision(1) << spec.frequency_mhz()
      << " MHz (period " << spec.period_ps << " ps, setup " << spec.setup_ps << " ps)\n";
  out << "============================================================\n";

  // Collect the most critical paths across all capture endpoints.
  std::vector<const TimingPath*> worst;
  for (std::uint8_t s = 0; s < nl.stage_count(); ++s) {
    for (GateId e : nl.stage_endpoints(s)) {
      const auto& pe = paths.top_paths(e, config.paths_per_endpoint);
      for (const auto& p : pe) worst.push_back(&p);
    }
  }
  std::sort(worst.begin(), worst.end(),
            [](const TimingPath* a, const TimingPath* b) { return a->delay_ps > b->delay_ps; });
  const std::size_t n = std::min(config.max_paths, worst.size());
  out << "reporting " << n << " of " << worst.size() << " collected paths\n\n";
  for (std::size_t i = 0; i < n; ++i) {
    out << "Path " << (i + 1) << ":\n";
    write_path_report(out, nl, spec, *worst[i], config.show_statistics ? vm : nullptr,
                      config.show_gates);
    out << "\n";
  }
}

}  // namespace terrors::timing
