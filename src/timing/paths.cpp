#include "timing/paths.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace terrors::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

double PathStat::variance() const {
  double v = g_loading * g_loading + indep_var;
  for (double s : s_loading) v += s * s;
  return v;
}

stat::Gaussian PathStat::delay() const { return {mean, std::sqrt(variance())}; }

stat::Gaussian PathStat::slack(const TimingSpec& spec) const {
  return {spec.period_ps - spec.setup_ps - mean, std::sqrt(variance())};
}

PathStat path_stat(const TimingPath& path, const VariationModel& vm) {
  PathStat st;
  st.s_loading.assign(vm.anchor_count(), 0.0);
  const bool spatial = vm.config().spatial_enabled;
  for (GateId g : path.gates) {
    // Primary inputs / constants contribute no delay; everything else does
    // (the launch DFF contributes its clk-to-q).
    st.mean += vm.mean(g);
    st.g_loading += vm.global_loading(g);
    if (spatial) {
      const auto& w = vm.spatial_loadings(g);
      const double s = vm.sigma(g);
      // spatial loading of gate g on anchor k = ws * sigma_g * w_k; the
      // VariationModel folds ws into covariance(), so recompute here from
      // the identity sigma_g^2 = gl^2 + sum_k sl_k^2 + iv.
      const double gl = vm.global_loading(g);
      const double iv = vm.indep_sigma(g);
      const double spatial_var = std::max(0.0, s * s - gl * gl - iv * iv);
      const double scale = std::sqrt(spatial_var);
      for (std::size_t k = 0; k < w.size(); ++k) st.s_loading[k] += scale * w[k];
    }
    const double is = vm.indep_sigma(g);
    st.indep_var += is * is;
  }
  st.sorted_gates = path.gates;
  std::sort(st.sorted_gates.begin(), st.sorted_gates.end());
  return st;
}

double path_cov(const PathStat& a, const PathStat& b, const VariationModel& vm) {
  double cov = a.g_loading * b.g_loading;
  const std::size_t nk = std::min(a.s_loading.size(), b.s_loading.size());
  for (std::size_t k = 0; k < nk; ++k) cov += a.s_loading[k] * b.s_loading[k];
  // Independent components are shared only through common gates.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.sorted_gates.size() && j < b.sorted_gates.size()) {
    if (a.sorted_gates[i] < b.sorted_gates[j]) {
      ++i;
    } else if (a.sorted_gates[i] > b.sorted_gates[j]) {
      ++j;
    } else {
      const double is = vm.indep_sigma(a.sorted_gates[i]);
      cov += is * is;
      ++i;
      ++j;
    }
  }
  return cov;
}

// ---------------------------------------------------------------------------

struct PathEnumerator::Search {
  struct Node {
    GateId gate;
    float suffix;  ///< delay from this gate's output to the endpoint D pin
    std::int32_t parent;
  };
  GateId endpoint = netlist::kNoGate;
  std::vector<Node> arena;
  // max-heap of (bound, node index)
  std::priority_queue<std::pair<double, std::int32_t>> heap;
  std::vector<TimingPath> paths;
  std::size_t expansions = 0;
  bool done = false;
  bool guard_tripped = false;
  /// Installed via import_warmed: no heap/arena state, so it can serve
  /// lookups but must never be extended.
  bool imported = false;
};

PathEnumerator::PathEnumerator(const netlist::Netlist& nl, PathConfig config)
    : nl_(nl), config_(config), sta_(nl) {
  TE_REQUIRE(config.max_paths > 0, "max_paths must be positive");
}

PathEnumerator::~PathEnumerator() = default;

PathEnumerator::Search& PathEnumerator::search_for(GateId endpoint) {
  auto it = searches_.find(endpoint);
  if (it != searches_.end()) return *it->second;
  TE_REQUIRE(nl_.gate(endpoint).is_capture_endpoint(), "paths end at capture endpoints");
  auto s = std::make_unique<Search>();
  s->endpoint = endpoint;
  const GateId d = nl_.gate(endpoint).fanin[0];
  s->arena.push_back({d, 0.0f, -1});
  s->heap.emplace(sta_.arrival(d), 0);
  auto [pos, inserted] = searches_.emplace(endpoint, std::move(s));
  TE_CHECK(inserted, "duplicate search insertion");
  return *pos->second;
}

void PathEnumerator::extend(Search& s, std::size_t k) {
  TE_CHECK(!s.imported, "imported path list queried beyond its warmed depth");
  const std::size_t expansions_before = s.expansions;
  const std::size_t paths_before = s.paths.size();
  while (s.paths.size() < k && !s.done) {
    if (s.heap.empty()) {
      s.done = true;
      break;
    }
    if (s.expansions >= config_.max_expansions || s.paths.size() >= config_.max_paths) {
      s.done = true;
      s.guard_tripped = true;
      break;
    }
    const auto [bound, idx] = s.heap.top();
    s.heap.pop();
    ++s.expansions;
    const Search::Node node = s.arena[static_cast<std::size_t>(idx)];
    const Gate& g = nl_.gate(node.gate);
    if (!netlist::info(g.kind).combinational) {
      // Reached a launch point.  Constants never toggle, so paths from
      // them are not timing paths; skip them.
      if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) continue;
      TimingPath p;
      p.endpoint = s.endpoint;
      p.delay_ps = bound;
      std::int32_t cur = idx;
      while (cur >= 0) {
        p.gates.push_back(s.arena[static_cast<std::size_t>(cur)].gate);
        cur = s.arena[static_cast<std::size_t>(cur)].parent;
      }
      // Parent chain runs source -> ... -> endpoint-D already.
      s.paths.push_back(std::move(p));
      continue;
    }
    // Expand into the gate's fanins.
    const float suffix = node.suffix + static_cast<float>(
                             nl_.gate(node.gate).delay_ps);
    for (int slot = 0; slot < g.arity(); ++slot) {
      const GateId f = g.fanin[static_cast<std::size_t>(slot)];
      const auto child = static_cast<std::int32_t>(s.arena.size());
      s.arena.push_back({f, suffix, idx});
      s.heap.emplace(sta_.arrival(f) + suffix, child);
    }
  }
  // Flush once per extension burst rather than per search node.
  static obs::Counter& expansions_metric =
      obs::MetricsRegistry::instance().counter("timing.path_expansions");
  static obs::Counter& paths_metric =
      obs::MetricsRegistry::instance().counter("timing.paths_enumerated");
  expansions_metric.increment(s.expansions - expansions_before);
  paths_metric.increment(s.paths.size() - paths_before);
}

const std::vector<TimingPath>& PathEnumerator::top_paths(GateId endpoint, std::size_t k) {
  if (frozen_) {
    // Read-only lookup: concurrent callers share the warmed lists.
    const auto it = searches_.find(endpoint);
    TE_CHECK(it != searches_.end(), "frozen PathEnumerator queried for an unwarmed endpoint");
    const Search& s = *it->second;
    TE_CHECK(s.paths.size() >= k || s.done,
             "frozen PathEnumerator queried beyond its warmed depth");
    return s.paths;
  }
  Search& s = search_for(endpoint);
  if (s.paths.size() < k && !s.done) extend(s, k);
  return s.paths;
}

void PathEnumerator::warm(const std::vector<GateId>& endpoints, std::size_t k) {
  TE_REQUIRE(!frozen_, "cannot warm a frozen PathEnumerator");
  for (GateId e : endpoints) top_paths(e, k);
}

bool PathEnumerator::exhausted(GateId endpoint) const {
  auto it = searches_.find(endpoint);
  if (it == searches_.end()) return false;
  return it->second->done && !it->second->guard_tripped;
}

std::vector<PathEnumerator::WarmedEndpoint> PathEnumerator::export_warmed() const {
  std::vector<WarmedEndpoint> out;
  out.reserve(searches_.size());
  for (const auto& [endpoint, search] : searches_)
    out.push_back({endpoint, search->done, search->guard_tripped, search->paths});
  std::sort(out.begin(), out.end(),
            [](const WarmedEndpoint& a, const WarmedEndpoint& b) { return a.endpoint < b.endpoint; });
  return out;
}

void PathEnumerator::import_warmed(const std::vector<WarmedEndpoint>& warmed) {
  TE_REQUIRE(!frozen_, "cannot import into a frozen PathEnumerator");
  for (const WarmedEndpoint& we : warmed) {
    TE_REQUIRE(we.endpoint < nl_.size() && nl_.gate(we.endpoint).is_capture_endpoint(),
               "imported path list names a non-endpoint gate");
    for (const TimingPath& p : we.paths) {
      TE_REQUIRE(p.endpoint == we.endpoint, "imported path list endpoint mismatch");
      for (const GateId g : p.gates)
        TE_REQUIRE(g < nl_.size(), "imported path references an out-of-range gate");
    }
    auto s = std::make_unique<Search>();
    s->endpoint = we.endpoint;
    s->paths = we.paths;
    s->done = we.done;
    s->guard_tripped = we.guard_tripped;
    s->imported = true;
    searches_[we.endpoint] = std::move(s);
  }
}

}  // namespace terrors::timing
