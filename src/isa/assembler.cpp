#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "robust/error.hpp"
#include "support/check.hpp"

namespace terrors::isa {
namespace {

struct PendingBranch {
  BlockId block = kNoBlock;
  std::string target;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  robust::raise(robust::Category::kInput, "asm line " + std::to_string(line) + ": " + msg);
}

std::string strip(std::string s) {
  const auto comment = s.find_first_of(";#");
  if (comment != std::string::npos) s.erase(comment);
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  const std::string last = strip(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

int parse_reg(const std::string& tok, int line) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) fail(line, "expected register, got '" + tok + "'");
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) fail(line, "bad register '" + tok + "'");
  }
  const int n = std::stoi(tok.substr(1));
  if (n < 0 || n >= kRegisterCount) fail(line, "register out of range: " + tok);
  return n;
}

int parse_imm(const std::string& tok, int line) {
  try {
    std::size_t used = 0;
    const long v = std::stol(tok, &used, 0);  // handles decimal, 0x, negative
    if (used != tok.size()) fail(line, "bad immediate '" + tok + "'");
    if (v < -32768 || v > 65535) fail(line, "immediate out of 16-bit range: " + tok);
    return static_cast<int>(v);
  } catch (const std::invalid_argument&) {
    fail(line, "bad immediate '" + tok + "'");
  } catch (const std::out_of_range&) {
    fail(line, "immediate out of range '" + tok + "'");
  }
}

struct OpSpec {
  Opcode op;
  enum Form { kRRR, kRRI, kRI, kRR_Branch, kLabelOnly, kNone } form;
};

const std::map<std::string, OpSpec>& mnemonics() {
  static const std::map<std::string, OpSpec> table = {
      {"nop", {Opcode::kNop, OpSpec::kNone}},
      {"add", {Opcode::kAdd, OpSpec::kRRR}},
      {"sub", {Opcode::kSub, OpSpec::kRRR}},
      {"and", {Opcode::kAnd, OpSpec::kRRR}},
      {"or", {Opcode::kOr, OpSpec::kRRR}},
      {"xor", {Opcode::kXor, OpSpec::kRRR}},
      {"sll", {Opcode::kSll, OpSpec::kRRR}},
      {"srl", {Opcode::kSrl, OpSpec::kRRR}},
      {"not", {Opcode::kNot, OpSpec::kRRI}},  // not rd, rs1 (imm ignored)
      {"addi", {Opcode::kAddi, OpSpec::kRRI}},
      {"subi", {Opcode::kSubi, OpSpec::kRRI}},
      {"andi", {Opcode::kAndi, OpSpec::kRRI}},
      {"ori", {Opcode::kOri, OpSpec::kRRI}},
      {"xori", {Opcode::kXori, OpSpec::kRRI}},
      {"slli", {Opcode::kSlli, OpSpec::kRRI}},
      {"srli", {Opcode::kSrli, OpSpec::kRRI}},
      {"movi", {Opcode::kMovi, OpSpec::kRI}},
      {"ld", {Opcode::kLd, OpSpec::kRRI}},
      {"st", {Opcode::kSt, OpSpec::kRRI}},  // st rs2, rs1, imm
      {"beq", {Opcode::kBeq, OpSpec::kRR_Branch}},
      {"bne", {Opcode::kBne, OpSpec::kRR_Branch}},
      {"blt", {Opcode::kBlt, OpSpec::kRR_Branch}},
      {"bge", {Opcode::kBge, OpSpec::kRR_Branch}},
      {"jmp", {Opcode::kJmp, OpSpec::kLabelOnly}},
  };
  return table;
}

}  // namespace

Program assemble(const std::string& source, std::string name) {
  Program program(std::move(name));
  std::map<std::string, BlockId> labels;
  std::vector<PendingBranch> pending_taken;
  std::vector<bool> halted;  // block explicitly ended (halt / jmp)

  BasicBlock current;
  std::vector<std::string> current_labels = {"<entry>"};
  bool block_open = true;
  bool current_halt = false;
  std::vector<std::pair<BlockId, bool>> flushed;  // (id, halted)

  auto flush_block = [&](int line) {
    if (current.instructions.empty()) {
      if (current_labels.empty() || (current_labels.size() == 1 && flushed.empty())) {
        // Empty entry block is fine until something is added.
      }
      if (!block_open) return;
      if (current.instructions.empty() && current_labels.empty()) return;
      if (current.instructions.empty()) {
        // A label directly followed by another label: alias them later by
        // inserting a nop so the block exists.
        if (block_open && !current_labels.empty() && line > 0) {
          current.instructions.push_back(Instruction{});
        } else {
          return;
        }
      }
    }
    const BlockId id = program.add_block(current);
    for (const auto& l : current_labels) {
      if (l == "<entry>") continue;
      if (labels.count(l) != 0) fail(line, "duplicate label '" + l + "'");
      labels[l] = id;
    }
    flushed.emplace_back(id, current_halt);
    current = BasicBlock{};
    current_labels.clear();
    current_halt = false;
  };

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = strip(raw);
    if (line.empty()) continue;

    // Labels (possibly several on one line before an instruction).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string label = strip(line.substr(0, colon));
      if (label.empty() || label.find(' ') != std::string::npos)
        fail(line_no, "bad label '" + label + "'");
      // A label starts a new block if the current one has instructions.
      if (!current.instructions.empty()) flush_block(line_no);
      current_labels.push_back(label);
      line = strip(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Mnemonic + operands.
    const auto sp = line.find_first_of(" \t");
    const std::string mnem = sp == std::string::npos ? line : line.substr(0, sp);
    const std::string rest = sp == std::string::npos ? "" : strip(line.substr(sp));
    std::string lower = mnem;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });

    if (lower == "halt") {
      if (current.instructions.empty()) current.instructions.push_back(Instruction{});
      current_halt = true;
      flush_block(line_no);
      continue;
    }

    const auto it = mnemonics().find(lower);
    if (it == mnemonics().end()) fail(line_no, "unknown mnemonic '" + mnem + "'");
    const OpSpec& spec = it->second;
    const auto ops = split_operands(rest);

    Instruction inst;
    inst.op = spec.op;
    switch (spec.form) {
      case OpSpec::kNone:
        if (!ops.empty()) fail(line_no, "nop takes no operands");
        break;
      case OpSpec::kRRR:
        if (ops.size() != 3) fail(line_no, "expected rd, rs1, rs2");
        inst.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        inst.rs1 = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        inst.rs2 = static_cast<std::uint8_t>(parse_reg(ops[2], line_no));
        break;
      case OpSpec::kRRI:
        if (spec.op == Opcode::kNot) {
          if (ops.size() != 2) fail(line_no, "expected rd, rs1");
          inst.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
          inst.rs1 = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
          break;
        }
        if (ops.size() != 3) fail(line_no, "expected rd, rs1, imm");
        if (spec.op == Opcode::kSt) {
          // st rs2, rs1, imm
          inst.rs2 = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
          inst.rs1 = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        } else {
          inst.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
          inst.rs1 = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        }
        inst.imm = parse_imm(ops[2], line_no);
        break;
      case OpSpec::kRI:
        if (ops.size() != 2) fail(line_no, "expected rd, imm");
        inst.rd = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        inst.imm = parse_imm(ops[1], line_no);
        break;
      case OpSpec::kRR_Branch: {
        if (ops.size() != 3) fail(line_no, "expected rs1, rs2, label");
        inst.rs1 = static_cast<std::uint8_t>(parse_reg(ops[0], line_no));
        inst.rs2 = static_cast<std::uint8_t>(parse_reg(ops[1], line_no));
        current.instructions.push_back(inst);
        pending_taken.push_back({static_cast<BlockId>(program.block_count()), ops[2], line_no});
        flush_block(line_no);
        continue;
      }
      case OpSpec::kLabelOnly: {
        if (ops.size() != 1) fail(line_no, "expected label");
        current.instructions.push_back(inst);
        pending_taken.push_back({static_cast<BlockId>(program.block_count()), ops[0], line_no});
        current_halt = true;  // jmp has no fall-through
        flush_block(line_no);
        continue;
      }
    }
    current.instructions.push_back(inst);
  }
  if (!current.instructions.empty() || !current_labels.empty()) {
    if (current.instructions.empty()) current.instructions.push_back(Instruction{});
    current_halt = true;  // trailing block falls off the end: exit
    flush_block(line_no);
  }
  TE_REQUIRE(!flushed.empty(), "empty assembly source");

  // Wire fall-throughs (textual order) for blocks not explicitly ended.
  for (std::size_t i = 0; i + 1 < flushed.size(); ++i) {
    if (!flushed[i].second) program.block(flushed[i].first).fallthrough = flushed[i + 1].first;
  }
  // Resolve branch targets.
  for (const auto& pb : pending_taken) {
    const auto it = labels.find(pb.target);
    if (it == labels.end()) fail(pb.line, "undefined label '" + pb.target + "'");
    program.block(pb.block).taken = it->second;
  }
  program.set_entry(flushed.front().first);
  program.validate();
  return program;
}

}  // namespace terrors::isa
