// Program representation: a control-flow graph of basic blocks, each a
// straight-line instruction sequence ended by an (implicit fall-through or
// explicit branch) terminator — the unit at which the paper characterises
// the control network and solves for marginal error probabilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace terrors::isa {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = 0xFFFFFFFFu;

struct BasicBlock {
  std::vector<Instruction> instructions;  ///< terminator (if any) last
  /// Successor on a taken conditional branch / unconditional jump.
  BlockId taken = kNoBlock;
  /// Fall-through successor (conditional branch not taken, or no branch).
  BlockId fallthrough = kNoBlock;

  [[nodiscard]] bool is_exit() const { return taken == kNoBlock && fallthrough == kNoBlock; }
  [[nodiscard]] std::size_t size() const { return instructions.size(); }
};

class Program {
 public:
  explicit Program(std::string name = "program") : name_(std::move(name)) {}

  BlockId add_block(BasicBlock block);
  [[nodiscard]] const BasicBlock& block(BlockId id) const;
  [[nodiscard]] BasicBlock& block(BlockId id);
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  void set_entry(BlockId id);
  [[nodiscard]] BlockId entry() const { return entry_; }

  /// Total static instruction count.
  [[nodiscard]] std::size_t instruction_count() const;

  /// Checks structural sanity: entry set, successor ids valid, conditional
  /// terminators have both successors, non-branch blocks have at most a
  /// fall-through, at least one exit block reachable.  Throws on violation.
  void validate() const;

  /// Human-readable listing.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::vector<BasicBlock> blocks_;
  BlockId entry_ = kNoBlock;
};

}  // namespace terrors::isa
