// A small assembler for the SR5 ISA: turns labelled text into a Program,
// so users can write workloads without constructing IR by hand.
//
// Syntax (one instruction per line; ';' or '#' start comments):
//
//   loop:                       ; a label opens a new basic block
//     addi r2, r2, 3
//     subi r1, r1, 1
//     bne  r1, r0, loop         ; conditional branches end the block
//   done:
//     st   r2, r0, 16           ; st rs2, rs1, imm  (mem[rs1+imm] = rs2)
//     halt                      ; pseudo-op: block with no successors
//
// Register operands are r0..r31; immediates are decimal or 0x hex.
// Fall-through between blocks follows the textual order.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace terrors::isa {

/// Assemble a program from source text.  Throws std::invalid_argument
/// with a line-numbered message on any syntax or semantic error.
[[nodiscard]] Program assemble(const std::string& source, std::string name = "asm");

}  // namespace terrors::isa
