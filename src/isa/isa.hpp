// SR5: a small in-order RISC instruction set in the spirit of SPARC V8's
// integer subset, matching the datapath of the generated pipeline netlist
// (32-bit ALU with add/sub, logic unit, barrel shifter, load/store,
// compare-and-branch).
#pragma once

#include <cstdint>
#include <string>

namespace terrors::isa {

enum class Opcode : std::uint8_t {
  kNop,
  // Register-register ALU.
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kNot,
  kSll,  ///< shift left logical by rs2 & 31
  kSrl,  ///< shift right logical by rs2 & 31
  // Register-immediate ALU.
  kAddi,
  kSubi,
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kMovi,  ///< rd = imm
  // Memory.
  kLd,  ///< rd = mem[rs1 + imm]
  kSt,  ///< mem[rs1 + imm] = rs2
  // Control transfer (block terminators).
  kBeq,  ///< taken iff r[rs1] == r[rs2]
  kBne,
  kBlt,  ///< unsigned <
  kBge,  ///< unsigned >=
  kJmp,  ///< unconditional
};

inline constexpr int kOpcodeCount = 24;
inline constexpr int kRegisterCount = 32;

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

[[nodiscard]] bool is_branch(Opcode op);
[[nodiscard]] bool is_conditional_branch(Opcode op);
[[nodiscard]] bool uses_immediate(Opcode op);
[[nodiscard]] bool writes_register(Opcode op);
[[nodiscard]] bool is_memory(Opcode op);
[[nodiscard]] std::string_view mnemonic(Opcode op);
[[nodiscard]] std::string to_string(const Instruction& inst);

/// 32-bit instruction word (op | rd | rs1 | rs2 | imm16) used to drive the
/// fetch/decode control network of the gate-level pipeline.
[[nodiscard]] std::uint32_t encode(const Instruction& inst);

/// ALU stage view of an instruction: the two values entering the EX stage
/// and the datapath unit they exercise.  Used by the architectural
/// datapath timing model.  Conditional branches resolve on a dedicated
/// comparator (kCompare) like LEON3-class cores, not on the main adder;
/// its (shallow) timing is captured by the control-network
/// characterisation through the RA-stage comparator.
enum class ExUnit : std::uint8_t { kNone, kAdder, kLogic, kShifter, kCompare };
[[nodiscard]] ExUnit ex_unit(Opcode op);

}  // namespace terrors::isa
