// Control-flow-graph analysis: predecessor lists (the "incoming edges" of
// Section 4.2), Tarjan's strongly-connected-components algorithm and the
// condensation's topological order — the machinery the paper uses to order
// and solve the per-SCC linear systems of marginal error probabilities.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hpp"

namespace terrors::isa {

/// An incoming edge of a block: which predecessor, and via which successor
/// slot (taken or fall-through).
struct CfgEdge {
  BlockId from = kNoBlock;
  bool via_taken = false;
};

class Cfg {
 public:
  explicit Cfg(const Program& program);

  [[nodiscard]] std::size_t block_count() const { return succ_.size(); }
  [[nodiscard]] const std::vector<BlockId>& successors(BlockId b) const { return succ_[b]; }
  /// Incoming edges in a stable order; index j here is the paper's j-th
  /// incoming edge of the block.
  [[nodiscard]] const std::vector<CfgEdge>& predecessors(BlockId b) const { return pred_[b]; }
  [[nodiscard]] std::size_t indegree(BlockId b) const { return pred_[b].size(); }

  /// SCC id of a block; ids are dense, 0-based.
  [[nodiscard]] std::uint32_t scc_of(BlockId b) const { return scc_of_[b]; }
  [[nodiscard]] std::size_t scc_count() const { return sccs_.size(); }
  /// Members of one SCC.
  [[nodiscard]] const std::vector<BlockId>& scc_members(std::uint32_t scc) const;
  /// SCC ids in topological order of the condensation (sources first):
  /// every edge goes from an earlier to a later entry.
  [[nodiscard]] const std::vector<std::uint32_t>& scc_topo_order() const { return topo_; }
  /// True if the SCC contains a cycle (more than one block, or a self-loop).
  [[nodiscard]] bool scc_is_cyclic(std::uint32_t scc) const;

  /// Blocks reachable from the entry.
  [[nodiscard]] const std::vector<bool>& reachable() const { return reachable_; }

 private:
  std::vector<std::vector<BlockId>> succ_;
  std::vector<std::vector<CfgEdge>> pred_;
  std::vector<std::uint32_t> scc_of_;
  std::vector<std::vector<BlockId>> sccs_;
  std::vector<std::uint32_t> topo_;
  std::vector<bool> reachable_;
};

}  // namespace terrors::isa
