#include "isa/isa.hpp"

#include <array>

#include "support/check.hpp"

namespace terrors::isa {

bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kJmp:
      return true;
    default:
      return false;
  }
}

bool is_conditional_branch(Opcode op) { return is_branch(op) && op != Opcode::kJmp; }

bool uses_immediate(Opcode op) {
  switch (op) {
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kMovi:
    case Opcode::kLd:
    case Opcode::kSt:
      return true;
    default:
      return false;
  }
}

bool writes_register(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kSt:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kJmp:
      return false;
    default:
      return true;
  }
}

bool is_memory(Opcode op) { return op == Opcode::kLd || op == Opcode::kSt; }

std::string_view mnemonic(Opcode op) {
  static constexpr std::array<std::string_view, kOpcodeCount> names = {
      "nop", "add",  "sub",  "and",  "or",   "xor",  "not", "sll",
      "srl", "addi", "subi", "andi", "ori",  "xori", "slli", "srli",
      "movi", "ld",  "st",   "beq",  "bne",  "blt",  "bge", "jmp"};
  const auto idx = static_cast<std::size_t>(op);
  TE_REQUIRE(idx < names.size(), "unknown opcode");
  return names[idx];
}

std::string to_string(const Instruction& inst) {
  std::string s{mnemonic(inst.op)};
  s += " r" + std::to_string(inst.rd);
  s += ", r" + std::to_string(inst.rs1);
  if (uses_immediate(inst.op)) {
    s += ", " + std::to_string(inst.imm);
  } else {
    s += ", r" + std::to_string(inst.rs2);
  }
  return s;
}

std::uint32_t encode(const Instruction& inst) {
  const auto op = static_cast<std::uint32_t>(inst.op) & 0x3F;
  const auto rd = static_cast<std::uint32_t>(inst.rd) & 0x1F;
  const auto rs1 = static_cast<std::uint32_t>(inst.rs1) & 0x1F;
  const auto rs2 = static_cast<std::uint32_t>(inst.rs2) & 0x1F;
  const auto imm = static_cast<std::uint32_t>(inst.imm) & 0xFFFF;
  // imm16 shares the low bits with rs2 the way RISC encodings do.
  return (op << 26) | (rd << 21) | (rs1 << 16) | (rs2 << 11) | imm;
}

ExUnit ex_unit(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kLd:  // address computation
    case Opcode::kSt:
      return ExUnit::kAdder;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
      return ExUnit::kCompare;
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNot:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kMovi:
      return ExUnit::kLogic;
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSlli:
    case Opcode::kSrli:
      return ExUnit::kShifter;
    default:
      return ExUnit::kNone;
  }
}

}  // namespace terrors::isa
