#include "isa/program.hpp"

#include "support/check.hpp"

namespace terrors::isa {

BlockId Program::add_block(BasicBlock block) {
  const auto id = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(std::move(block));
  return id;
}

const BasicBlock& Program::block(BlockId id) const {
  TE_REQUIRE(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

BasicBlock& Program::block(BlockId id) {
  TE_REQUIRE(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

void Program::set_entry(BlockId id) {
  TE_REQUIRE(id < blocks_.size(), "entry block out of range");
  entry_ = id;
}

std::size_t Program::instruction_count() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.instructions.size();
  return n;
}

void Program::validate() const {
  TE_REQUIRE(entry_ != kNoBlock, "program has no entry block");
  TE_REQUIRE(entry_ < blocks_.size(), "entry block out of range");
  bool has_exit = false;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const BasicBlock& b = blocks_[i];
    TE_REQUIRE(!b.instructions.empty(), "empty basic block " + std::to_string(i));
    TE_REQUIRE(b.taken == kNoBlock || b.taken < blocks_.size(), "taken target out of range");
    TE_REQUIRE(b.fallthrough == kNoBlock || b.fallthrough < blocks_.size(),
               "fallthrough target out of range");
    const Opcode term = b.instructions.back().op;
    for (std::size_t k = 0; k + 1 < b.instructions.size(); ++k)
      TE_REQUIRE(!is_branch(b.instructions[k].op),
                 "branch in the middle of block " + std::to_string(i));
    if (is_conditional_branch(term)) {
      TE_REQUIRE(b.taken != kNoBlock && b.fallthrough != kNoBlock,
                 "conditional terminator needs both successors in block " + std::to_string(i));
    } else if (term == Opcode::kJmp) {
      TE_REQUIRE(b.taken != kNoBlock && b.fallthrough == kNoBlock,
                 "jmp needs exactly a taken successor in block " + std::to_string(i));
    } else {
      TE_REQUIRE(b.taken == kNoBlock, "non-branch block cannot have a taken successor");
    }
    if (b.is_exit()) has_exit = true;
  }
  TE_REQUIRE(has_exit, "program has no exit block");
}

std::string Program::to_string() const {
  std::string s = "program " + name_ + " (entry B" + std::to_string(entry_) + ")\n";
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    s += "B" + std::to_string(i) + ":\n";
    for (const auto& inst : blocks_[i].instructions) s += "  " + isa::to_string(inst) + "\n";
    if (blocks_[i].taken != kNoBlock) s += "  -> taken B" + std::to_string(blocks_[i].taken) + "\n";
    if (blocks_[i].fallthrough != kNoBlock)
      s += "  -> fall B" + std::to_string(blocks_[i].fallthrough) + "\n";
  }
  return s;
}

}  // namespace terrors::isa
