// Architecture-level execution with profiling instrumentation.
//
// This is the reproduction's analogue of the paper's LLVM-instrumented
// native execution (Section 4, "Datapath Activity Characterization"): it
// runs the program functionally and records
//   * basic-block execution counts and CFG-edge traversal counts (the
//     activation probabilities p^a of Section 4.2), and
//   * reservoir-sampled dynamic contexts per (block, incoming edge):
//     for every static instruction the operand values entering the EX
//     stage and the values the *previous* instruction put there — the
//     inputs of the operand-dependent datapath timing model and of the
//     error-correction emulation (a flush replaces the previous values by
//     a bubble).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/cfg.hpp"
#include "isa/program.hpp"
#include "support/rng.hpp"

namespace terrors::isa {

/// EX-stage view of one executed instruction.
struct ExContext {
  std::uint32_t a = 0;  ///< effective first ALU operand
  std::uint32_t b = 0;  ///< effective second ALU operand (imm if immediate form)
  ExUnit unit = ExUnit::kNone;
  Opcode op = Opcode::kNop;
};

/// One dynamic instance of one static instruction.
struct InstrDynContext {
  ExContext cur;
  ExContext prev;  ///< previous instruction's EX context under correct execution
  std::uint32_t result = 0;
  std::uint32_t pc = 0;
};

/// One sampled dynamic execution of a basic block (entered via one edge).
struct BlockSample {
  std::vector<InstrDynContext> instrs;  ///< one per static instruction
};

/// Reservoir of sampled executions for one incoming edge.
struct EdgeSamples {
  std::vector<BlockSample> samples;
  std::uint64_t seen = 0;
};

struct BlockProfile {
  std::uint64_t executions = 0;
  /// Traversal counts, aligned with Cfg::predecessors(block).
  std::vector<std::uint64_t> edge_counts;
  /// Sampled contexts per incoming edge (same alignment).
  std::vector<EdgeSamples> edge_samples;
  /// Entries as the program's start block (the paper's flushed-state entry).
  std::uint64_t entry_count = 0;
  EdgeSamples entry_samples;
};

/// One step of the dynamic block sequence (for Monte-Carlo validation).
struct BlockTraceStep {
  BlockId block = kNoBlock;
  std::int32_t incoming_edge = -1;  ///< -1 = program entry
};

struct ProgramProfile {
  std::vector<BlockProfile> blocks;
  std::uint64_t total_instructions = 0;
  std::uint64_t runs = 0;
  /// Dynamic block sequences, one per run (only when record_block_trace).
  std::vector<std::vector<BlockTraceStep>> block_traces;

  /// Activation probability of the j-th incoming edge of `b` (Sect. 4.2);
  /// the optional entry pseudo-edge is excluded (its weight is reported by
  /// entry_fraction).
  [[nodiscard]] double edge_activation(BlockId b, std::size_t j) const;
};

/// Initial architectural state for one run.
struct ProgramInput {
  std::vector<std::uint32_t> registers;  ///< up to kRegisterCount, rest zero
  std::uint64_t memory_seed = 1;         ///< pseudo-random initial memory image
};

struct ExecutorConfig {
  std::uint64_t max_instructions = 2'000'000;  ///< per-run budget guard
  std::size_t samples_per_edge = 32;           ///< reservoir capacity M
  std::size_t memory_words = 1u << 16;
  std::uint64_t sampling_seed = 7;
  /// Record the dynamic (block, incoming-edge) sequence of each run — used
  /// by the Monte-Carlo validation of the limit theorems.  Capped by
  /// max_instructions, so only enable on small programs.
  bool record_block_trace = false;
};

/// Functional in-order executor with profiling.
class Executor {
 public:
  Executor(const Program& program, const Cfg& cfg, ExecutorConfig config = {});

  /// Execute one run; accumulates into the shared profile.  Returns the
  /// number of instructions executed in this run.
  std::uint64_t run(const ProgramInput& input);

  [[nodiscard]] const ProgramProfile& profile() const { return profile_; }
  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] const Cfg& cfg() const { return cfg_; }

 private:
  const Program& program_;
  const Cfg& cfg_;
  ExecutorConfig config_;
  ProgramProfile profile_;
  support::Rng sample_rng_;
  std::vector<std::uint32_t> block_pc_;  ///< virtual base address per block
};

}  // namespace terrors::isa
