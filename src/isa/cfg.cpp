#include "isa/cfg.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace terrors::isa {

Cfg::Cfg(const Program& program) {
  const std::size_t n = program.block_count();
  TE_REQUIRE(n > 0, "CFG of an empty program");
  succ_.assign(n, {});
  pred_.assign(n, {});
  for (BlockId b = 0; b < n; ++b) {
    const BasicBlock& blk = program.block(b);
    if (blk.taken != kNoBlock) {
      succ_[b].push_back(blk.taken);
      pred_[blk.taken].push_back({b, true});
    }
    if (blk.fallthrough != kNoBlock) {
      succ_[b].push_back(blk.fallthrough);
      pred_[blk.fallthrough].push_back({b, false});
    }
  }

  // Reachability from the entry.
  reachable_.assign(n, false);
  std::vector<BlockId> stack = {program.entry()};
  reachable_[program.entry()] = true;
  while (!stack.empty()) {
    const BlockId b = stack.back();
    stack.pop_back();
    for (BlockId s : succ_[b]) {
      if (!reachable_[s]) {
        reachable_[s] = true;
        stack.push_back(s);
      }
    }
  }

  // Tarjan's SCC algorithm, iterative to survive deep CFGs.
  constexpr std::uint32_t kUndef = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUndef);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<BlockId> scc_stack;
  scc_of_.assign(n, kUndef);
  std::uint32_t next_index = 0;

  struct Frame {
    BlockId v;
    std::size_t child;
  };
  for (BlockId root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < succ_[f.v].size()) {
        const BlockId w = succ_[f.v][f.child++];
        if (index[w] == kUndef) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          // f.v is an SCC root; pop its component.
          std::vector<BlockId> members;
          for (;;) {
            const BlockId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            scc_of_[w] = static_cast<std::uint32_t>(sccs_.size());
            members.push_back(w);
            if (w == f.v) break;
          }
          sccs_.push_back(std::move(members));
        }
        const BlockId v = f.v;
        frames.pop_back();
        if (!frames.empty())
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }

  // Tarjan emits SCCs in reverse topological order of the condensation.
  topo_.resize(sccs_.size());
  for (std::size_t i = 0; i < sccs_.size(); ++i)
    topo_[i] = static_cast<std::uint32_t>(sccs_.size() - 1 - i);
}

const std::vector<BlockId>& Cfg::scc_members(std::uint32_t scc) const {
  TE_REQUIRE(scc < sccs_.size(), "SCC id out of range");
  return sccs_[scc];
}

bool Cfg::scc_is_cyclic(std::uint32_t scc) const {
  TE_REQUIRE(scc < sccs_.size(), "SCC id out of range");
  if (sccs_[scc].size() > 1) return true;
  const BlockId b = sccs_[scc][0];
  return std::find(succ_[b].begin(), succ_[b].end(), b) != succ_[b].end();
}

}  // namespace terrors::isa
