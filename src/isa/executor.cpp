#include "isa/executor.hpp"

#include <algorithm>
#include <array>

#include "support/check.hpp"

namespace terrors::isa {

double ProgramProfile::edge_activation(BlockId b, std::size_t j) const {
  TE_REQUIRE(b < blocks.size(), "block out of range");
  const BlockProfile& bp = blocks[b];
  TE_REQUIRE(j < bp.edge_counts.size(), "edge index out of range");
  std::uint64_t total = 0;
  for (std::uint64_t c : bp.edge_counts) total += c;
  if (total == 0) return 0.0;
  return static_cast<double>(bp.edge_counts[j]) / static_cast<double>(total);
}

Executor::Executor(const Program& program, const Cfg& cfg, ExecutorConfig config)
    : program_(program), cfg_(cfg), config_(config), sample_rng_(config.sampling_seed) {
  program.validate();
  TE_REQUIRE(cfg.block_count() == program.block_count(), "CFG does not match program");
  TE_REQUIRE(config.memory_words > 0, "empty memory");
  profile_.blocks.resize(program.block_count());
  for (BlockId b = 0; b < program.block_count(); ++b) {
    profile_.blocks[b].edge_counts.assign(cfg.indegree(b), 0);
    profile_.blocks[b].edge_samples.resize(cfg.indegree(b));
  }
  // Virtual code layout: blocks placed consecutively, 4 bytes/instruction.
  block_pc_.resize(program.block_count());
  std::uint32_t pc = 0x1000;
  for (BlockId b = 0; b < program.block_count(); ++b) {
    block_pc_[b] = pc;
    pc += static_cast<std::uint32_t>(program.block(b).size()) * 4u;
  }
}

namespace {

std::uint32_t memory_init(std::uint64_t seed, std::uint32_t addr) {
  // Cheap stateless hash: deterministic initial memory image without
  // materialising the whole array eagerly would also be possible, but the
  // image is small; we use this to fill it.
  std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ull * (addr + 1));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::uint32_t>(x ^ (x >> 31));
}

}  // namespace

std::uint64_t Executor::run(const ProgramInput& input) {
  TE_REQUIRE(input.registers.size() <= kRegisterCount, "too many initial registers");

  std::array<std::uint32_t, kRegisterCount> regs{};
  for (std::size_t i = 0; i < input.registers.size(); ++i) regs[i] = input.registers[i];
  regs[0] = 0;

  std::vector<std::uint32_t> memory(config_.memory_words);
  for (std::uint32_t a = 0; a < memory.size(); ++a) memory[a] = memory_init(input.memory_seed, a);

  std::uint64_t executed = 0;
  std::vector<BlockTraceStep>* trace = nullptr;
  if (config_.record_block_trace) {
    profile_.block_traces.emplace_back();
    trace = &profile_.block_traces.back();
  }
  BlockId current = program_.entry();
  // -1 encodes "entered as program start"; otherwise the index of the
  // traversed incoming edge in Cfg::predecessors(current).
  std::ptrdiff_t incoming_edge = -1;
  ExContext prev_ex{};  // flushed state at program start (the paper's p_in = 1)

  while (current != kNoBlock && executed < config_.max_instructions) {
    const BasicBlock& blk = program_.block(current);
    BlockProfile& bp = profile_.blocks[current];
    ++bp.executions;
    if (trace != nullptr) trace->push_back({current, static_cast<std::int32_t>(incoming_edge)});
    EdgeSamples* reservoir = nullptr;
    if (incoming_edge < 0) {
      ++bp.entry_count;
      reservoir = &bp.entry_samples;
    } else {
      ++bp.edge_counts[static_cast<std::size_t>(incoming_edge)];
      reservoir = &bp.edge_samples[static_cast<std::size_t>(incoming_edge)];
    }

    // Reservoir decision: pick the slot before executing so we only pay
    // for context recording when the execution will be kept.
    ++reservoir->seen;
    std::size_t slot = config_.samples_per_edge;  // means "do not record"
    if (reservoir->samples.size() < config_.samples_per_edge) {
      slot = reservoir->samples.size();
      reservoir->samples.emplace_back();
    } else {
      const std::uint64_t j = sample_rng_.uniform_index(reservoir->seen);
      if (j < config_.samples_per_edge) slot = static_cast<std::size_t>(j);
    }
    BlockSample* sample = slot < config_.samples_per_edge ? &reservoir->samples[slot] : nullptr;
    if (sample != nullptr) {
      sample->instrs.clear();
      sample->instrs.reserve(blk.size());
    }

    bool branch_taken = false;
    for (std::size_t k = 0; k < blk.instructions.size(); ++k) {
      const Instruction& inst = blk.instructions[k];
      const std::uint32_t ra = regs[inst.rs1];
      const std::uint32_t rb = regs[inst.rs2];
      const std::uint32_t bimm = static_cast<std::uint32_t>(inst.imm);

      ExContext cur;
      cur.op = inst.op;
      cur.unit = ex_unit(inst.op);
      cur.a = ra;
      cur.b = uses_immediate(inst.op) ? bimm : rb;
      std::uint32_t result = 0;
      switch (inst.op) {
        case Opcode::kNop:
          cur.a = 0;
          cur.b = 0;
          break;
        case Opcode::kAdd:
        case Opcode::kAddi:
          result = cur.a + cur.b;
          break;
        case Opcode::kSub:
        case Opcode::kSubi:
          result = cur.a - cur.b;
          break;
        case Opcode::kAnd:
        case Opcode::kAndi:
          result = cur.a & cur.b;
          break;
        case Opcode::kOr:
        case Opcode::kOri:
          result = cur.a | cur.b;
          break;
        case Opcode::kXor:
        case Opcode::kXori:
          result = cur.a ^ cur.b;
          break;
        case Opcode::kNot:
          result = ~cur.a;
          break;
        case Opcode::kSll:
        case Opcode::kSlli:
          result = cur.a << (cur.b & 31u);
          break;
        case Opcode::kSrl:
        case Opcode::kSrli:
          result = cur.a >> (cur.b & 31u);
          break;
        case Opcode::kMovi:
          cur.a = 0;
          result = bimm;
          break;
        case Opcode::kLd: {
          const std::uint32_t addr = (cur.a + cur.b) % config_.memory_words;
          result = memory[addr];
          break;
        }
        case Opcode::kSt: {
          const std::uint32_t addr = (cur.a + cur.b) % config_.memory_words;
          // The stored value rides the B bus architecturally; the EX adder
          // computes the address, which cur.a/cur.b already describe.
          memory[addr] = rb;
          break;
        }
        case Opcode::kBeq:
          branch_taken = ra == rb;
          cur.b = rb;
          break;
        case Opcode::kBne:
          branch_taken = ra != rb;
          cur.b = rb;
          break;
        case Opcode::kBlt:
          branch_taken = ra < rb;
          cur.b = rb;
          break;
        case Opcode::kBge:
          branch_taken = ra >= rb;
          cur.b = rb;
          break;
        case Opcode::kJmp:
          branch_taken = true;
          break;
      }
      if (writes_register(inst.op) && inst.rd != 0) regs[inst.rd] = result;

      if (sample != nullptr) {
        InstrDynContext ctx;
        ctx.cur = cur;
        ctx.prev = prev_ex;
        ctx.result = result;
        ctx.pc = block_pc_[current] + static_cast<std::uint32_t>(k) * 4u;
        sample->instrs.push_back(ctx);
      }
      prev_ex = cur;
      ++executed;
      if (executed >= config_.max_instructions) break;
    }

    // Control transfer.
    const BlockId next = branch_taken ? blk.taken : blk.fallthrough;
    if (next == kNoBlock) break;
    // Locate the traversed edge's index among the successor's predecessors.
    const auto& preds = cfg_.predecessors(next);
    incoming_edge = -1;
    for (std::size_t j = 0; j < preds.size(); ++j) {
      if (preds[j].from == current && preds[j].via_taken == branch_taken) {
        incoming_edge = static_cast<std::ptrdiff_t>(j);
        break;
      }
    }
    TE_CHECK(incoming_edge >= 0, "traversed edge missing from CFG");
    current = next;
  }

  profile_.total_instructions += executed;
  ++profile_.runs;
  return executed;
}

}  // namespace terrors::isa
