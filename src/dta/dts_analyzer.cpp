#include "dta/dts_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace terrors::dta {

using netlist::EndpointClass;
using netlist::GateId;
using stat::Gaussian;
using timing::PathStat;
using timing::TimingPath;

double DtsGaussian::global_corr(const DtsGaussian& other) const {
  const double denom = slack.sd * other.slack.sd;
  if (denom == 0.0) return 0.0;
  return support::clamp(global_loading * other.global_loading / denom, -1.0, 1.0);
}

DtsGaussian dts_min(const DtsGaussian& a, const DtsGaussian& b) {
  const stat::ClarkResult r = stat::clark_min(a.slack, b.slack, a.global_corr(b));
  DtsGaussian out;
  out.slack = r.value;
  // Clark's linear covariance propagation applies to factor loadings too.
  out.global_loading = r.tightness * a.global_loading + (1.0 - r.tightness) * b.global_loading;
  out.global_loading = std::min(out.global_loading, out.slack.sd);
  return out;
}

DtsGaussian statistical_path_min(const std::vector<PathStat>& paths,
                                 const timing::VariationModel& vm,
                                 const timing::TimingSpec& spec, const DtsConfig& config) {
  TE_REQUIRE(!paths.empty(), "statistical_path_min over an empty AP set");

  // Prune paths that cannot win the minimum slack: path i is irrelevant
  // when its mean slack exceeds the best one by more than prune_sigmas
  // combined standard deviations.
  double best_mean = std::numeric_limits<double>::infinity();
  std::size_t dominant = 0;
  std::vector<Gaussian> slacks(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    slacks[i] = paths[i].slack(spec);
    if (slacks[i].mean < best_mean) {
      best_mean = slacks[i].mean;
      dominant = i;
    }
  }
  const double sd_best = slacks[dominant].sd;
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (slacks[i].mean - best_mean <= config.prune_sigmas * (slacks[i].sd + sd_best) + 1e-9)
      keep.push_back(i);
  }
  TE_CHECK(!keep.empty(), "pruning removed all paths");

  std::vector<Gaussian> vars;
  vars.reserve(keep.size());
  for (std::size_t i : keep) vars.push_back(slacks[i]);
  std::vector<double> cov(keep.size() * keep.size());
  for (std::size_t u = 0; u < keep.size(); ++u) {
    for (std::size_t v = u; v < keep.size(); ++v) {
      const double c = u == v ? paths[keep[u]].variance()
                              : timing::path_cov(paths[keep[u]], paths[keep[v]], vm);
      cov[u * keep.size() + v] = c;
      cov[v * keep.size() + u] = c;
    }
  }
  DtsGaussian out;
  out.slack = stat::statistical_min(vars, cov, config.ordering);
  // Global loading of the result: approximate with the dominant (minimum
  // mean slack) path's loading, clipped to the result spread.
  out.global_loading = std::min(paths[dominant].g_loading, out.slack.sd);
  return out;
}

// ---------------------------------------------------------------------------

CycleActivation::CycleActivation(const netlist::Netlist& nl, std::vector<std::uint8_t> flags)
    : nl_(nl), flags_(std::move(flags)), arrivals_once_(std::make_unique<std::once_flag>()) {
  TE_REQUIRE(flags_.size() == nl.size(), "activation flag size mismatch");
}

const std::vector<double>& CycleActivation::arrivals() const {
  std::call_once(*arrivals_once_,
                 [this] { arrivals_ = timing::activated_arrivals(nl_, flags_); });
  return arrivals_;
}

// ---------------------------------------------------------------------------

DtsAnalyzer::DtsAnalyzer(const netlist::Netlist& nl, const timing::VariationModel& vm,
                         timing::TimingSpec spec, DtsConfig config,
                         timing::PathConfig path_config)
    : nl_(nl),
      vm_(vm),
      spec_(spec),
      config_(config),
      owned_paths_(std::make_unique<timing::PathEnumerator>(nl, path_config)),
      paths_(owned_paths_.get()) {
  TE_REQUIRE(config.top_k > 0, "top_k must be positive");
  TE_REQUIRE(config.percentile_low > 0.0 && config.percentile_high < 1.0 &&
                 config.percentile_low < config.percentile_high,
             "bad percentile configuration");
}

DtsAnalyzer::DtsAnalyzer(const netlist::Netlist& nl, const timing::VariationModel& vm,
                         timing::TimingSpec spec, DtsConfig config,
                         timing::PathEnumerator& shared_paths)
    : nl_(nl), vm_(vm), spec_(spec), config_(config), paths_(&shared_paths) {
  TE_REQUIRE(config.top_k > 0, "top_k must be positive");
  TE_REQUIRE(config.percentile_low > 0.0 && config.percentile_high < 1.0 &&
                 config.percentile_low < config.percentile_high,
             "bad percentile configuration");
}

DtsAnalyzer::EndpointCache& DtsAnalyzer::endpoint_cache(GateId endpoint) {
  EndpointCache& c = cache_[endpoint];
  const auto& candidates = paths_->top_paths(endpoint, config_.top_k);
  if (c.built == candidates.size()) return c;
  for (std::size_t i = c.built; i < candidates.size(); ++i)
    c.stats.push_back(timing::path_stat(candidates[i], vm_));
  c.built = candidates.size();
  // Two fixed orderings (Section 3): by worst-case (1st pct) slack — i.e.
  // largest 99th-percentile delay — and by best-case (99th pct) slack.
  const double z = support::normal_quantile(config_.percentile_high);
  c.order_low.resize(c.built);
  c.order_high.resize(c.built);
  for (std::size_t i = 0; i < c.built; ++i) c.order_low[i] = c.order_high[i] = i;
  std::sort(c.order_low.begin(), c.order_low.end(), [&](std::size_t a, std::size_t b) {
    return c.stats[a].mean + z * std::sqrt(c.stats[a].variance()) >
           c.stats[b].mean + z * std::sqrt(c.stats[b].variance());
  });
  std::sort(c.order_high.begin(), c.order_high.end(), [&](std::size_t a, std::size_t b) {
    return c.stats[a].mean - z * std::sqrt(c.stats[a].variance()) >
           c.stats[b].mean - z * std::sqrt(c.stats[b].variance());
  });
  return c;
}

std::vector<DtsAnalyzer::EndpointPath> DtsAnalyzer::endpoint_path_stats(GateId endpoint,
                                                                        std::size_t k) {
  const EndpointCache& c = endpoint_cache(endpoint);
  const auto& candidates = paths_->top_paths(endpoint, config_.top_k);
  const std::size_t n = std::min(k, c.built);
  std::vector<EndpointPath> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back({&candidates[i], &c.stats[i]});
  return out;
}

std::optional<PathStat> DtsAnalyzer::endpoint_critical_activated(GateId endpoint,
                                                                 CycleActivation& cycle) {
  const auto& flags = cycle.flags();
  const GateId d = nl_.gate(endpoint).fanin[0];
  // Fast reject: if the endpoint's data input did not toggle, no activated
  // path ends here and the endpoint cannot capture a wrong value.
  if (flags[d] == 0) return std::nullopt;

  const EndpointCache& cache = endpoint_cache(endpoint);
  const auto& candidates = paths_->top_paths(endpoint, config_.top_k);

  auto is_activated = [&](const TimingPath& p) {
    for (GateId g : p.gates) {
      if (flags[g] == 0) return false;
    }
    return true;
  };

  std::ptrdiff_t found_low = -1;
  std::ptrdiff_t found_high = -1;
  for (std::size_t i : cache.order_low) {
    if (is_activated(candidates[i])) {
      found_low = static_cast<std::ptrdiff_t>(i);
      break;
    }
  }
  for (std::size_t i : cache.order_high) {
    if (is_activated(candidates[i])) {
      found_high = static_cast<std::ptrdiff_t>(i);
      break;
    }
  }

  // Exact DP over the activated subgraph: needed as fallback when the
  // capped candidate list contains no activated path, and as insurance
  // when the list's guard tripped before the true activated critical path.
  const auto& act_arr = cycle.arrivals();
  const double dp_arrival = act_arr[d];
  TE_CHECK(dp_arrival > -std::numeric_limits<double>::infinity(),
           "D input activated but no activated path found by DP");

  std::vector<PathStat> ap;
  double best_found_delay = -std::numeric_limits<double>::infinity();
  if (found_low >= 0) {
    ap.push_back(cache.stats[static_cast<std::size_t>(found_low)]);
    best_found_delay =
        std::max(best_found_delay, cache.stats[static_cast<std::size_t>(found_low)].mean);
  }
  if (found_high >= 0 && found_high != found_low)
    ap.push_back(cache.stats[static_cast<std::size_t>(found_high)]);

  if (ap.empty() || dp_arrival > best_found_delay + 1e-6) {
    // Reconstruct the DP's maximising activated path (memoised: activated
    // carry chains recur across cycles).
    GateId g = d;
    std::vector<GateId> rev;
    std::uint64_t h = 0xCBF29CE484222325ull ^ endpoint;
    for (;;) {
      rev.push_back(g);
      h = (h ^ g) * 0x100000001B3ull;
      const netlist::Gate& gate = nl_.gate(g);
      if (!netlist::info(gate.kind).combinational) break;
      GateId best = netlist::kNoGate;
      double best_arr = -std::numeric_limits<double>::infinity();
      for (int s = 0; s < gate.arity(); ++s) {
        const GateId f = gate.fanin[static_cast<std::size_t>(s)];
        if (act_arr[f] > best_arr) {
          best_arr = act_arr[f];
          best = f;
        }
      }
      TE_CHECK(best != netlist::kNoGate, "activated DP chain broke during backtrack");
      g = best;
    }
    static obs::Counter& dp_fallbacks =
        obs::MetricsRegistry::instance().counter("dta.dp_fallbacks");
    dp_fallbacks.increment();
    TimingPath p;
    p.endpoint = endpoint;
    p.gates.assign(rev.rbegin(), rev.rend());
    p.delay_ps = dp_arrival;
    auto it = dp_cache_.find(h);
    if (it == dp_cache_.end() || it->second.gates != p.gates) {
      // Miss, or a hash collision (different gate sequence behind the same
      // FNV key): (re)compute and store the verified entry.
      if (it != dp_cache_.end()) {
        static obs::Counter& collisions =
            obs::MetricsRegistry::instance().counter("dta.dp_cache_collisions");
        collisions.increment();
      }
      DpEntry entry;
      entry.gates = p.gates;
      entry.stat = timing::path_stat(p, vm_);
      it = dp_cache_.insert_or_assign(h, std::move(entry)).first;
    }
    ap.push_back(it->second.stat);
  }

  // Reduce this endpoint's contributions to a single most-critical stat?
  // No: return them all; the caller accumulates AP across endpoints.  To
  // keep the interface simple we fold them here with the statistical min
  // when there are several.
  if (ap.size() == 1) return ap[0];
  // Keep the path with minimum mean slack as representative but widen to
  // the statistical min by folding the others in at the caller level is
  // equivalent; to stay faithful we return the nominal-worst path and rely
  // on the caller's AP union already containing near-duplicates.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < ap.size(); ++i) {
    if (ap[i].mean > ap[worst].mean) worst = i;
  }
  // Also merge the alternates into the caller's AP through last_ap_ later:
  // the caller re-collects all of them via collect_ap_.
  for (std::size_t i = 0; i < ap.size(); ++i) {
    if (i != worst) pending_alternates_.push_back(ap[i]);
  }
  return ap[worst];
}

std::optional<DtsGaussian> DtsAnalyzer::stage_dts(std::uint8_t stage, CycleActivation& cycle,
                                                  EndpointClass cls) {
  TE_REQUIRE(stage < nl_.stage_count(), "stage out of range");
  static obs::Counter& queries = obs::MetricsRegistry::instance().counter("dta.stage_dts_queries");
  queries.increment();
  last_ap_.clear();
  pending_alternates_.clear();
  for (GateId e : nl_.stage_endpoints(stage)) {
    if (cls != EndpointClass::kNone && nl_.gate(e).endpoint_class != cls) continue;
    auto st = endpoint_critical_activated(e, cycle);
    if (st.has_value()) last_ap_.push_back(std::move(*st));
  }
  for (auto& alt : pending_alternates_) last_ap_.push_back(std::move(alt));
  pending_alternates_.clear();
  if (last_ap_.empty()) return std::nullopt;
  return statistical_path_min(last_ap_, vm_, spec_, config_);
}

std::optional<DtsGaussian> DtsAnalyzer::endpoint_dts(GateId endpoint, CycleActivation& cycle) {
  pending_alternates_.clear();
  auto st = endpoint_critical_activated(endpoint, cycle);
  if (!st.has_value()) return std::nullopt;
  std::vector<PathStat> ap;
  ap.push_back(std::move(*st));
  for (auto& alt : pending_alternates_) ap.push_back(std::move(alt));
  pending_alternates_.clear();
  return statistical_path_min(ap, vm_, spec_, config_);
}

std::optional<double> DtsAnalyzer::stage_dts_deterministic(std::uint8_t stage,
                                                           const std::vector<std::uint8_t>& activated,
                                                           EndpointClass cls,
                                                           const timing::ChipSample* chip) const {
  TE_REQUIRE(stage < nl_.stage_count(), "stage out of range");
  const std::vector<double> arr = timing::activated_arrivals(nl_, activated, chip);
  double worst = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (GateId e : nl_.stage_endpoints(stage)) {
    if (cls != EndpointClass::kNone && nl_.gate(e).endpoint_class != cls) continue;
    const double a = arr[nl_.gate(e).fanin[0]];
    if (a == -std::numeric_limits<double>::infinity()) continue;
    worst = std::max(worst, a);
    any = true;
  }
  if (!any) return std::nullopt;
  return spec_.period_ps - spec_.setup_ps - worst;
}

}  // namespace terrors::dta
