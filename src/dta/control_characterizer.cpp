#include "dta/control_characterizer.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace terrors::dta {

using isa::BlockId;
using isa::BlockSample;

ControlCharacterizer::ControlCharacterizer(const netlist::Pipeline& pipeline,
                                           const timing::VariationModel& vm,
                                           timing::TimingSpec spec, DtsConfig dts_config,
                                           ControlCharacterizerConfig config)
    : pipeline_(pipeline),
      vm_(vm),
      dts_config_(dts_config),
      analyzer_(pipeline.netlist, vm, spec, dts_config),
      driver_(pipeline),
      config_(config) {
  TE_REQUIRE(config.pred_tail >= 0 && config.warmup_nops >= 0, "negative context lengths");
}

namespace {

/// The first recorded sample for an edge reservoir, or nullptr.
const BlockSample* representative(const isa::EdgeSamples& es) {
  return es.samples.empty() ? nullptr : &es.samples.front();
}

/// Build slots for one instruction sequence, reading contexts from a block
/// sample when available and falling back to zero-operand contexts.
void append_block_slots(std::vector<FetchSlot>& slots, const isa::BasicBlock& block,
                        std::uint32_t base_pc, const BlockSample* sample, std::size_t from,
                        std::size_t count) {
  for (std::size_t k = from; k < from + count && k < block.size(); ++k) {
    const isa::Instruction& inst = block.instructions[k];
    isa::InstrDynContext ctx;
    if (sample != nullptr && k < sample->instrs.size()) {
      ctx = sample->instrs[k];
    } else {
      ctx.cur.op = inst.op;
      ctx.cur.unit = isa::ex_unit(inst.op);
      ctx.pc = base_pc + static_cast<std::uint32_t>(k) * 4u;
    }
    slots.push_back(FetchSlot::from_context(inst, ctx));
  }
}

}  // namespace

EdgeControlDts ControlCharacterizer::characterize_edge(const isa::Program& program,
                                                       const isa::Cfg& cfg,
                                                       const isa::ProgramProfile& profile,
                                                       BlockId block, std::ptrdiff_t edge) {
  return characterize_edge_with(analyzer_, driver_, program, cfg, profile, block, edge);
}

EdgeControlDts ControlCharacterizer::characterize_edge_with(
    DtsAnalyzer& analyzer, PipelineDriver& driver, const isa::Program& program,
    const isa::Cfg& cfg, const isa::ProgramProfile& profile, BlockId block,
    std::ptrdiff_t edge) const {
  const isa::BasicBlock& blk = program.block(block);
  const isa::BlockProfile& bp = profile.blocks[block];

  EdgeControlDts out;
  out.instr.assign(blk.size(), std::nullopt);

  const BlockSample* sample = nullptr;
  const BlockSample* pred_sample = nullptr;
  BlockId pred = isa::kNoBlock;
  if (edge < 0) {
    sample = representative(bp.entry_samples);
    if (bp.entry_count == 0) return out;  // never entered this way
  } else {
    const auto j = static_cast<std::size_t>(edge);
    TE_REQUIRE(j < cfg.indegree(block), "edge index out of range");
    if (bp.edge_counts[j] == 0) return out;  // edge never traversed
    sample = representative(bp.edge_samples[j]);
    pred = cfg.predecessors(block)[j].from;
    // Any sample of the predecessor block supplies tail contexts.
    const isa::BlockProfile& pp = profile.blocks[pred];
    pred_sample = representative(pp.entry_samples);
    for (const auto& es : pp.edge_samples) {
      if (pred_sample != nullptr) break;
      pred_sample = representative(es);
    }
  }

  // Assemble the fetch stream: warm-up bubbles, predecessor tail, block.
  std::vector<FetchSlot> slots;
  for (int i = 0; i < config_.warmup_nops; ++i)
    slots.push_back(FetchSlot::nop(0x100u + 4u * static_cast<std::uint32_t>(i)));
  if (pred != isa::kNoBlock) {
    const isa::BasicBlock& pb = program.block(pred);
    const std::size_t tail = std::min<std::size_t>(static_cast<std::size_t>(config_.pred_tail),
                                                   pb.size());
    append_block_slots(slots, pb, 0x400u, pred_sample, pb.size() - tail, tail);
  }
  const std::size_t first_block_slot = slots.size();
  std::uint32_t base_pc = 0x1000u;
  if (sample != nullptr && !sample->instrs.empty()) base_pc = sample->instrs.front().pc;
  append_block_slots(slots, blk, base_pc, sample, 0, blk.size());

  static obs::Counter& edges_metric =
      obs::MetricsRegistry::instance().counter("dta.edges_characterized");
  static obs::Counter& slots_metric =
      obs::MetricsRegistry::instance().counter("dta.slots_driven");
  edges_metric.increment();
  slots_metric.increment(slots.size());

  auto cycles = driver.run(slots);

  // Algorithm 2: instruction DTS = min over the stages it traverses.
  for (std::size_t k = 0; k < blk.size(); ++k) {
    const std::size_t t = first_block_slot + k;
    std::optional<DtsGaussian> acc;
    for (std::uint8_t s = 0; s < netlist::Pipeline::kStages; ++s) {
      const std::size_t c = t + s;
      if (c >= cycles.size()) break;
      auto stage = analyzer.stage_dts(s, cycles[c], netlist::EndpointClass::kControl);
      if (!stage.has_value()) continue;
      acc = acc.has_value() ? dts_min(*acc, *stage) : *stage;
    }
    out.instr[k] = acc;
  }
  return out;
}

void ControlCharacterizer::warm_paths() {
  if (paths_warmed_) return;
  analyzer_.paths().warm(control_endpoints(), dts_config_.top_k);
  paths_warmed_ = true;
}

std::vector<netlist::GateId> ControlCharacterizer::control_endpoints() const {
  const netlist::Netlist& nl = pipeline_.netlist;
  std::vector<netlist::GateId> endpoints;
  for (std::uint8_t s = 0; s < netlist::Pipeline::kStages; ++s) {
    for (netlist::GateId e : nl.stage_endpoints(s)) {
      if (nl.gate(e).endpoint_class == netlist::EndpointClass::kControl) endpoints.push_back(e);
    }
  }
  return endpoints;
}

std::vector<BlockControlDts> ControlCharacterizer::characterize(
    const isa::Program& program, const isa::Cfg& cfg, const isa::ProgramProfile& profile) {
  TE_REQUIRE(profile.blocks.size() == program.block_count(), "profile does not match program");
  obs::ScopedSpan span("dta.characterize");
  span.counter("blocks", static_cast<double>(program.block_count()));

  std::vector<BlockControlDts> out(program.block_count());
  support::ThreadPool& pool = support::global_pool();

  if (pool.size() <= 1) {
    // Serial path: reuse the characterizer-owned analyzer and driver.
    for (BlockId b = 0; b < program.block_count(); ++b) {
      obs::ScopedSpan block_span("dta.block");
      block_span.counter("block", static_cast<double>(b));
      block_span.counter("edges", static_cast<double>(cfg.indegree(b)));
      out[b].per_edge.resize(cfg.indegree(b));
      for (std::size_t j = 0; j < cfg.indegree(b); ++j)
        out[b].per_edge[j] =
            characterize_edge(program, cfg, profile, b, static_cast<std::ptrdiff_t>(j));
      out[b].entry = characterize_edge(program, cfg, profile, b, -1);
    }
    return out;
  }

  // Flatten the (block, edge) task list and pre-size every result slot so
  // workers write disjoint memory and ordering never depends on schedule.
  struct Task {
    BlockId block;
    std::ptrdiff_t edge;  ///< -1 = entry
    EdgeControlDts* slot;
  };
  std::vector<Task> tasks;
  for (BlockId b = 0; b < program.block_count(); ++b) {
    out[b].per_edge.resize(cfg.indegree(b));
    for (std::size_t j = 0; j < cfg.indegree(b); ++j)
      tasks.push_back({b, static_cast<std::ptrdiff_t>(j), &out[b].per_edge[j]});
    tasks.push_back({b, -1, &out[b].entry});
  }
  span.counter("tasks", static_cast<double>(tasks.size()));

  // Pre-warm the shared enumerator once with every control endpoint, then
  // freeze it for the parallel region: workers only read the path lists.
  timing::PathEnumerator& shared_paths = analyzer_.paths();
  warm_paths();
  shared_paths.set_frozen(true);

  struct WorkerCtx {
    DtsAnalyzer analyzer;
    PipelineDriver driver;
    WorkerCtx(const netlist::Pipeline& pipeline, const timing::VariationModel& vm,
              timing::TimingSpec spec, DtsConfig dts_config, timing::PathEnumerator& paths)
        : analyzer(pipeline.netlist, vm, spec, dts_config, paths), driver(pipeline) {}
  };
  std::vector<std::unique_ptr<WorkerCtx>> ctxs(pool.size());
  const timing::TimingSpec spec = analyzer_.spec();

  try {
    pool.parallel_for(tasks.size(), [&](std::size_t i, std::size_t w) {
      auto& ctx = ctxs[w];
      if (!ctx)
        ctx = std::make_unique<WorkerCtx>(pipeline_, vm_, spec, dts_config_, shared_paths);
      obs::ScopedSpan edge_span("dta.edge");
      edge_span.counter("worker", static_cast<double>(w));
      edge_span.counter("block", static_cast<double>(tasks[i].block));
      edge_span.counter("edge", static_cast<double>(tasks[i].edge));
      *tasks[i].slot = characterize_edge_with(ctx->analyzer, ctx->driver, program, cfg, profile,
                                              tasks[i].block, tasks[i].edge);
    });
  } catch (...) {
    shared_paths.set_frozen(false);
    throw;
  }
  shared_paths.set_frozen(false);
  return out;
}

}  // namespace terrors::dta
