// Drives the gate-level pipeline netlist with an instruction stream,
// producing per-cycle activation records (the VCD(t) input of Algorithm 1).
//
// Each FetchSlot describes one instruction entering the fetch stage in one
// cycle; the driver applies the stage-appropriate primary inputs with the
// right skew (register-file values one cycle later, ALU selects three
// cycles later, memory data four cycles later) and sequences the PC inputs
// so the program counter register follows the architectural fetch stream.
#pragma once

#include <cstdint>
#include <vector>

#include "dta/dts_analyzer.hpp"
#include "isa/executor.hpp"
#include "isa/isa.hpp"
#include "netlist/pipeline.hpp"
#include "sim/logic_sim.hpp"

namespace terrors::dta {

struct FetchSlot {
  std::uint32_t pc = 0;
  std::uint32_t word = 0;  ///< encoded instruction
  isa::ExContext ex;       ///< EX-stage operand values of this instruction
  std::uint32_t mem_data = 0;
  bool is_load = false;

  /// Build a slot from a static instruction and one dynamic context.
  static FetchSlot from_context(const isa::Instruction& inst, const isa::InstrDynContext& ctx);
  /// A pipeline bubble.
  static FetchSlot nop(std::uint32_t pc = 0);
};

/// ALU control-input values for an opcode, mirroring the netlist datapath.
struct ExDrive {
  std::uint8_t alu_sel = 3;  ///< 0 add/sub, 1 logic, 2 shift, 3 pass-B
  std::uint8_t logic_sel = 0;
  bool sel_imm = false;
  bool sub_mode = false;
  bool shift_dir = false;
};
[[nodiscard]] ExDrive ex_drive_for(isa::Opcode op);

class PipelineDriver {
 public:
  explicit PipelineDriver(const netlist::Pipeline& pipeline);

  /// Simulate the slot stream from reset plus `drain` trailing bubbles.
  /// Returns one CycleActivation per simulated cycle; the instruction of
  /// slots[t] occupies pipeline stage s in cycle t + s.
  [[nodiscard]] std::vector<CycleActivation> run(const std::vector<FetchSlot>& slots,
                                                 int drain = netlist::Pipeline::kStages);

  [[nodiscard]] const netlist::Pipeline& pipeline() const { return p_; }

 private:
  void drive_cycle(const std::vector<FetchSlot>& slots, std::size_t t);

  const netlist::Pipeline& p_;
  sim::LogicSimulator sim_;
};

}  // namespace terrors::dta
