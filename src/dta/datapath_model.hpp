// The architecture-level datapath timing model of Section 4 ("Datapath DTS
// Characterization"), in the style of the authors' CODES'14 model [2]:
// instead of gate-level analysis per cycle, the EX-stage DTS is predicted
// from architecturally visible operand values.  The model is *trained* by
// running special instruction sequences on the gate-level pipeline that
// selectively activate timing paths of controlled length (carry chains of
// length L, shifter levels, logic ops) and measuring the stage DTS with
// Algorithm 1; at inference the activated carry-chain length is computed
// exactly from the operand values of consecutive instructions, which is
// how the error-correction scheme enters: a pipeline flush replaces the
// previous instruction's values by a bubble, changing the activation.
#pragma once

#include <cstdint>
#include <optional>

#include "dta/dts_analyzer.hpp"
#include "isa/executor.hpp"
#include "netlist/pipeline.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace terrors::dta {

class DatapathModel {
 public:
  /// Train against the gate-level pipeline (uses its own driver/analyzer).
  static DatapathModel train(const netlist::Pipeline& pipeline,
                             const timing::VariationModel& vm, const DtsConfig& dts_config = {});

  /// EX-stage arrival statistics (mean / sd / global loading, in ps) for
  /// an instruction with EX context `cur` whose predecessor in the
  /// pipeline had context `prev`.  nullopt when nothing toggles (no
  /// activated datapath path, hence no possible timing error).
  [[nodiscard]] std::optional<DtsGaussian> ex_arrival(const isa::ExContext& cur,
                                                      const isa::ExContext& prev) const;

  /// Slack form under a clock spec: DTS = period - setup - arrival.
  [[nodiscard]] std::optional<DtsGaussian> ex_slack(const isa::ExContext& cur,
                                                    const isa::ExContext& prev,
                                                    const timing::TimingSpec& spec) const;

  /// Activated carry-chain length used by the model for an adder-class
  /// instruction pair (exposed for tests / ablation).  -1 = no activation.
  static int adder_chain_length(const isa::ExContext& cur, const isa::ExContext& prev);

  /// Model parameters (linear in chain length for the adder).
  struct Linear {
    double base = 0.0;
    double per_unit = 0.0;
    [[nodiscard]] double at(int length) const { return base + per_unit * length; }
  };
  [[nodiscard]] const Linear& adder_mean() const { return adder_mean_; }

  /// Complete trained-parameter snapshot: the model is a pure function of
  /// these, which is what makes it a cacheable on-disk artifact.
  struct Params {
    Linear adder_mean;
    Linear adder_sd;
    Linear adder_gl;
    DtsGaussian logic;
    DtsGaussian shift;
    DtsGaussian pass;
    double period_ref = 0.0;
  };
  [[nodiscard]] Params params() const;
  /// Rebuild a model from a snapshot (warm-start path): bit-identical to
  /// the trained original because inference only reads these parameters.
  static DatapathModel from_params(const Params& p);

 private:
  // Adder: linear fits in the activated chain length.
  Linear adder_mean_;
  Linear adder_sd_;
  Linear adder_gl_;
  // Logic / shifter / pass-through: constant arrival statistics.
  DtsGaussian logic_{};
  DtsGaussian shift_{};
  DtsGaussian pass_{};
  double period_ref_ = 0.0;  ///< spec used during training (for conversion)
};

}  // namespace terrors::dta
