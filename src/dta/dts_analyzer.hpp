// Algorithm 1 of the paper: dynamic timing slack of a pipeline stage in a
// given clock cycle, as the (statistical) minimum slack over the most
// critical *activated* paths of the stage's endpoints.
//
// Under SSTA every slack is a Gaussian.  Following Section 3, the critical-
// path scan runs twice per endpoint — once ordering candidate paths by
// worst-case (1st percentile) slack and once by best-case (99th
// percentile) slack — and the stage DTS is the statistical minimum of the
// collected activated paths (greedy pairwise Clark minimum with full path
// covariance, after Sinha et al. [21]).
//
// Engineering notes (documented deviations):
//  * Candidate path lists are enumerated lazily in decreasing nominal
//    delay and capped (PathConfig); ripple-carry endpoints have
//    exponentially many near-identical paths.  When no candidate is
//    activated, an exact activated-subgraph longest-path DP reconstructs
//    the most critical activated path (by nominal delay) and that path
//    joins AP.  This matches the deterministic semantics exactly and is a
//    principled approximation under SSTA.
//  * Besides the Gaussian DTS we propagate the path's chip-global variance
//    loading through the Clark combinations, so later minima against the
//    datapath model can account for the dominant cross-network
//    correlation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "stat/clark.hpp"
#include "stat/gaussian.hpp"
#include "timing/paths.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace terrors::dta {

/// A Gaussian DTS that remembers how much of its variance is the
/// chip-global variation component (for cross-network correlation).
struct DtsGaussian {
  stat::Gaussian slack;
  double global_loading = 0.0;  ///< ps of slack sd attributable to Z0

  /// Correlation with another DtsGaussian through the global component.
  [[nodiscard]] double global_corr(const DtsGaussian& other) const;
};

/// Statistical minimum of two DtsGaussians using their global correlation.
DtsGaussian dts_min(const DtsGaussian& a, const DtsGaussian& b);

/// One simulated cycle's activation flags plus a lazily computed (and
/// cached) activated-subgraph longest-path table, shared across the stage /
/// endpoint queries of that cycle.
class CycleActivation {
 public:
  CycleActivation(const netlist::Netlist& nl, std::vector<std::uint8_t> flags);

  [[nodiscard]] const std::vector<std::uint8_t>& flags() const { return flags_; }
  /// Longest activated arrival per gate output.  Computed on first use;
  /// the init is call_once-guarded so a cycle shared between concurrent
  /// stage_dts queries stays safe (each worker usually owns its cycles,
  /// but the contract must not depend on that).
  [[nodiscard]] const std::vector<double>& arrivals() const;

 private:
  const netlist::Netlist& nl_;
  std::vector<std::uint8_t> flags_;
  /// unique_ptr keeps CycleActivation movable (std::once_flag is not).
  std::unique_ptr<std::once_flag> arrivals_once_;
  mutable std::vector<double> arrivals_;
};

struct DtsConfig {
  std::size_t top_k = 24;  ///< candidate paths examined per endpoint and pass
  double percentile_low = 0.01;
  double percentile_high = 0.99;
  stat::MinOrdering ordering = stat::MinOrdering::kGreedyTightness;
  /// Paths whose mean slack exceeds the best mean by more than
  /// prune_sigmas * (their combined sd) cannot win the minimum; drop them.
  double prune_sigmas = 6.0;
};

class DtsAnalyzer {
 public:
  DtsAnalyzer(const netlist::Netlist& nl, const timing::VariationModel& vm,
              timing::TimingSpec spec, DtsConfig config = {},
              timing::PathConfig path_config = {});

  /// Borrowing variant: share a pre-warmed (and frozen, when used
  /// concurrently) PathEnumerator instead of owning one.  Worker-local
  /// analyzers in the parallel characterisation use this so the expensive
  /// path enumeration happens once per process, not once per worker.
  DtsAnalyzer(const netlist::Netlist& nl, const timing::VariationModel& vm,
              timing::TimingSpec spec, DtsConfig config, timing::PathEnumerator& shared_paths);

  /// DTS of `stage` for the given cycle, restricted to endpoints of class
  /// `cls` (kNone = all endpoints).  nullopt when no endpoint of the stage
  /// has an activated path (the stage cannot fail in this cycle).
  [[nodiscard]] std::optional<DtsGaussian> stage_dts(std::uint8_t stage, CycleActivation& cycle,
                                                     netlist::EndpointClass cls);

  /// DTS of a single endpoint for the cycle.
  [[nodiscard]] std::optional<DtsGaussian> endpoint_dts(netlist::GateId endpoint,
                                                        CycleActivation& cycle);

  /// Deterministic DTS (no process variation): slack of the longest
  /// activated path ending in the stage, on nominal or chip delays.
  /// Used for Monte-Carlo validation.
  [[nodiscard]] std::optional<double> stage_dts_deterministic(
      std::uint8_t stage, const std::vector<std::uint8_t>& activated, netlist::EndpointClass cls,
      const timing::ChipSample* chip = nullptr) const;

  [[nodiscard]] const timing::TimingSpec& spec() const { return spec_; }
  void set_spec(timing::TimingSpec spec) { spec_ = spec; }
  [[nodiscard]] const DtsConfig& config() const { return config_; }
  [[nodiscard]] timing::PathEnumerator& paths() { return *paths_; }

  /// Collected activated critical paths (AP set) of the last stage_dts
  /// call, for inspection and for Algorithm 2's cross-stage minimum.
  [[nodiscard]] const std::vector<timing::PathStat>& last_ap() const { return last_ap_; }

  /// The endpoint's enumerated candidate paths paired with their SSTA
  /// statistics, in enumeration (non-increasing nominal delay) order,
  /// capped at min(k, config().top_k).  Shares the per-endpoint cache the
  /// stage_dts queries build, so after an analysis this is a pure lookup.
  /// Pointers stay valid until the next call that extends the same
  /// endpoint's cache.  The report subsystem uses this to surface the
  /// culprit timing paths behind the error attribution.
  struct EndpointPath {
    const timing::TimingPath* path = nullptr;
    const timing::PathStat* stat = nullptr;
  };
  [[nodiscard]] std::vector<EndpointPath> endpoint_path_stats(netlist::GateId endpoint,
                                                              std::size_t k);

 private:
  /// Per-endpoint cache of candidate-path statistics and the two
  /// percentile orderings (they do not depend on the cycle).
  struct EndpointCache {
    std::size_t built = 0;  ///< candidates processed so far
    std::vector<timing::PathStat> stats;
    std::vector<std::size_t> order_low;   ///< by worst-case slack
    std::vector<std::size_t> order_high;  ///< by best-case slack
  };

  std::optional<timing::PathStat> endpoint_critical_activated(netlist::GateId endpoint,
                                                              CycleActivation& cycle);
  EndpointCache& endpoint_cache(netlist::GateId endpoint);

  const netlist::Netlist& nl_;
  const timing::VariationModel& vm_;
  timing::TimingSpec spec_;
  DtsConfig config_;
  std::unique_ptr<timing::PathEnumerator> owned_paths_;  ///< null when borrowing
  timing::PathEnumerator* paths_;
  std::vector<timing::PathStat> last_ap_;
  std::vector<timing::PathStat> pending_alternates_;
  std::unordered_map<netlist::GateId, EndpointCache> cache_;
  /// DP-fallback path statistics keyed by the FNV hash of (endpoint, gate
  /// sequence): activated carry chains recur across cycles.  The entry
  /// stores the gates so a hash collision is detected instead of silently
  /// returning the wrong path's statistics.
  struct DpEntry {
    std::vector<netlist::GateId> gates;  ///< source -> endpoint-D order
    timing::PathStat stat;
  };
  std::unordered_map<std::uint64_t, DpEntry> dp_cache_;
};

/// Statistical minimum over a set of path slacks with full covariance;
/// exposed for Algorithm 2 (minimum over stages) and tests.
DtsGaussian statistical_path_min(const std::vector<timing::PathStat>& paths,
                                 const timing::VariationModel& vm,
                                 const timing::TimingSpec& spec, const DtsConfig& config);

}  // namespace terrors::dta
