#include "dta/graph_dta.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace terrors::dta {

using netlist::GateId;

namespace {
constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
}

GraphDta::GraphDta(const netlist::Netlist& nl, GraphDtaConfig config)
    : nl_(nl), config_(config) {
  TE_REQUIRE(nl.finalized(), "graph DTA needs a finalized netlist");
  TE_REQUIRE(config.n_worst > 0, "n_worst must be positive");
  slot_of_.assign(nl.size(), kNoSlot);
  std::uint32_t next = 0;
  for (std::uint8_t s = 0; s < nl.stage_count(); ++s) {
    for (GateId e : nl.stage_endpoints(s)) slot_of_[e] = next++;
  }
  n_worst_.resize(next);
  stats_.resize(next);
}

void GraphDta::observe(CycleActivation& cycle) {
  const auto& arr = cycle.arrivals();
  for (std::uint8_t s = 0; s < nl_.stage_count(); ++s) {
    for (GateId e : nl_.stage_endpoints(s)) {
      const double a = arr[nl_.gate(e).fanin[0]];
      if (a == -std::numeric_limits<double>::infinity()) continue;
      const std::uint32_t slot = slot_of_[e];
      stats_[slot].add(a);
      worst_ = std::max(worst_, a);
      auto& worst_list = n_worst_[slot];
      // Insert in descending order, keeping at most n_worst entries.
      auto pos = std::lower_bound(worst_list.begin(), worst_list.end(), a,
                                  std::greater<double>());
      if (pos != worst_list.end() || worst_list.size() < config_.n_worst) {
        worst_list.insert(pos, a);
        if (worst_list.size() > config_.n_worst) worst_list.pop_back();
      }
    }
  }
  ++cycles_;
}

const std::vector<double>& GraphDta::worst_arrivals(GateId endpoint) const {
  TE_REQUIRE(endpoint < slot_of_.size() && slot_of_[endpoint] != kNoSlot,
             "not a capture endpoint");
  return n_worst_[slot_of_[endpoint]];
}

const support::MomentAccumulator& GraphDta::arrival_stats(GateId endpoint) const {
  TE_REQUIRE(endpoint < slot_of_.size() && slot_of_[endpoint] != kNoSlot,
             "not a capture endpoint");
  return stats_[slot_of_[endpoint]];
}

double GraphDta::error_free_frequency_mhz(double setup_ps, double margin) const {
  TE_REQUIRE(cycles_ > 0, "no cycles observed");
  TE_REQUIRE(margin >= 1.0, "margin derates delay and must be >= 1");
  TE_CHECK(worst_ > 0.0, "observed no activated arrivals");
  return 1.0e6 / (worst_ * margin + setup_ps);
}

}  // namespace terrors::dta
