// Graph-based dynamic timing analysis — the related-work baseline of the
// paper's Section 2 (Cherupalli & Sartori, ICCAD'17 "Scalable N-worst
// algorithms for dynamic timing and activity analysis", and the
// error-free operating-point use of Cherupalli et al., ISCA'16).
//
// Instead of predicting per-cycle timing errors, graph-based DTA
// aggregates activated-path arrivals over an entire run directly on the
// netlist graph (one DP per cycle, no path enumeration) and reports the
// N worst observed arrivals per endpoint.  Its natural application is the
// *error-free* operating point: the fastest clock at which no observed
// cycle would have violated — exactly the use the paper contrasts with
// its own cycle-by-cycle error-rate estimation.  The bench
// bench_baseline_graph_dta quantifies that contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "dta/dts_analyzer.hpp"
#include "netlist/netlist.hpp"
#include "support/accumulator.hpp"
#include "timing/sta.hpp"

namespace terrors::dta {

struct GraphDtaConfig {
  std::size_t n_worst = 8;  ///< arrivals kept per endpoint
};

class GraphDta {
 public:
  GraphDta(const netlist::Netlist& nl, GraphDtaConfig config = {});

  /// Fold one simulated cycle into the aggregate (uses the cycle's
  /// activated-arrival DP).
  void observe(CycleActivation& cycle);

  [[nodiscard]] std::uint64_t cycles_observed() const { return cycles_; }

  /// The N worst activated arrivals seen at `endpoint`, descending.
  [[nodiscard]] const std::vector<double>& worst_arrivals(netlist::GateId endpoint) const;

  /// Design-wide worst activated arrival over the whole run.
  [[nodiscard]] double worst_arrival() const { return worst_; }

  /// Arrival statistics per endpoint (mean/max over activated cycles).
  [[nodiscard]] const support::MomentAccumulator& arrival_stats(netlist::GateId endpoint) const;

  /// Error-free operating frequency for the observed activity: the
  /// fastest clock at which every observed arrival still meets setup,
  /// derated by `margin` (the ISCA'16 use).
  [[nodiscard]] double error_free_frequency_mhz(double setup_ps = netlist::kSetupTimePs,
                                                double margin = 1.0) const;

 private:
  const netlist::Netlist& nl_;
  GraphDtaConfig config_;
  std::uint64_t cycles_ = 0;
  double worst_ = 0.0;
  /// Indexed by capture-endpoint *slot* (dense remap of endpoint ids).
  std::vector<std::uint32_t> slot_of_;  // gate id -> slot or npos
  std::vector<std::vector<double>> n_worst_;
  std::vector<support::MomentAccumulator> stats_;
};

}  // namespace terrors::dta
