#include "dta/datapath_model.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "dta/pipeline_driver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/math.hpp"
#include "support/thread_pool.hpp"

namespace terrors::dta {

using isa::ExContext;
using isa::ExUnit;
using isa::Opcode;

namespace {

/// Carry bits c_1..c_w of a + b + cin (bit i of the result holds c_{i+1}).
std::uint64_t carry_bits(std::uint32_t a, std::uint32_t b, bool cin) {
  std::uint64_t carries = 0;
  std::uint32_t c = cin ? 1u : 0u;
  for (int i = 0; i < 32; ++i) {
    const std::uint32_t ai = (a >> i) & 1u;
    const std::uint32_t bi = (b >> i) & 1u;
    c = (ai & bi) | (c & (ai ^ bi));
    carries |= static_cast<std::uint64_t>(c) << i;
  }
  return carries;
}

/// Effective adder inputs of an EX context (subtracts invert B and set the
/// carry-in, like the hardware does).
void adder_inputs(const ExContext& cx, std::uint32_t& a, std::uint32_t& b, bool& cin) {
  const bool sub = cx.op == Opcode::kSub || cx.op == Opcode::kSubi;
  a = cx.a;
  b = sub ? ~cx.b : cx.b;
  cin = sub;
}

int longest_run(std::uint64_t bits) {
  int best = 0;
  int cur = 0;
  while (bits != 0) {
    if (bits & 1ull) {
      ++cur;
      best = std::max(best, cur);
    } else {
      cur = 0;
    }
    bits >>= 1;
  }
  return best;
}

struct Measurement {
  int length;
  DtsGaussian dts;  ///< arrival form (mean is the activated arrival)
};

DatapathModel::Linear fit_linear(const std::vector<Measurement>& ms,
                                 double (*extract)(const DtsGaussian&)) {
  TE_REQUIRE(!ms.empty(), "no measurements to fit");
  // Least squares y = base + per_unit * L.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (const auto& m : ms) {
    const double x = m.length;
    const double y = extract(m.dts);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(ms.size());
  const double denom = n * sxx - sx * sx;
  DatapathModel::Linear lin;
  if (std::fabs(denom) < 1e-12) {
    lin.base = sy / n;
    lin.per_unit = 0.0;
  } else {
    lin.per_unit = (n * sxy - sx * sy) / denom;
    lin.base = (sy - lin.per_unit * sx) / n;
  }
  return lin;
}

}  // namespace

int DatapathModel::adder_chain_length(const ExContext& cur, const ExContext& prev) {
  std::uint32_t a1 = 0;
  std::uint32_t b1 = 0;
  bool c1 = false;
  std::uint32_t a0 = 0;
  std::uint32_t b0 = 0;
  bool c0 = false;
  adder_inputs(cur, a1, b1, c1);
  adder_inputs(prev, a0, b0, c0);
  if (a1 == a0 && b1 == b0 && c1 == c0) return -1;  // nothing toggles
  const std::uint64_t toggles = carry_bits(a1, b1, c1) ^ carry_bits(a0, b0, c0);
  const int run = longest_run(toggles);
  // Inputs changed but no carry toggles: local (single full-adder) activity.
  return run == 0 ? 1 : run + 1;
}

DatapathModel DatapathModel::train(const netlist::Pipeline& pipeline,
                                   const timing::VariationModel& vm,
                                   const DtsConfig& dts_config) {
  obs::ScopedSpan span("dta.datapath_train");
  // Counted so warm-start layers (cache, `terrors serve`) can assert how
  // many times training was actually paid.
  static obs::Counter& trainings =
      obs::MetricsRegistry::instance().counter("dta.datapath_trainings");
  trainings.increment();
  // The spec used for training only shifts slack by a constant; we store
  // arrival statistics (period - setup - slack) so it cancels out.
  const timing::TimingSpec spec{10000.0, netlist::kSetupTimePs};

  constexpr std::uint8_t kExStage = 3;

  // One measurement = one short instruction sequence driven through the
  // gate-level pipeline.  The sequences are independent, so they fan out
  // over (opcode, operand-class) tasks with results in indexed slots; the
  // fits below consume them in fixed declaration order regardless of
  // which worker produced them.
  struct MeasureTask {
    Opcode prev_op;
    std::uint32_t pa, pb;
    Opcode cur_op;
    std::uint32_t ca, cb;
  };
  std::vector<MeasureTask> tasks;
  const std::size_t first_adder = tasks.size();
  for (int len = 2; len <= 32; len += 2) {
    const std::uint32_t a = len >= 32 ? 0xFFFFFFFFu : ((1u << len) - 1u);
    tasks.push_back({Opcode::kAdd, 0, 0, Opcode::kAdd, a, 1u});
  }
  const std::size_t logic_idx = tasks.size();
  tasks.push_back({Opcode::kXor, 0, 0, Opcode::kXor, 0xA5A5A5A5u, 0x5A5A5A5Au});
  const std::size_t shift_idx = tasks.size();
  tasks.push_back({Opcode::kSll, 0, 0, Opcode::kSll, 0xDEADBEEFu, 17u});
  const std::size_t pass_idx = tasks.size();
  tasks.push_back({Opcode::kMovi, 0, 0, Opcode::kMovi, 0, 0x1234u});

  auto measure_with = [&](DtsAnalyzer& analyzer, PipelineDriver& driver,
                          const MeasureTask& t) -> std::optional<DtsGaussian> {
    static obs::Counter& measurements =
        obs::MetricsRegistry::instance().counter("dta.train_measurements");
    measurements.increment();
    std::vector<FetchSlot> slots;
    std::uint32_t pc = 0x2000;
    for (int i = 0; i < 6; ++i) {
      slots.push_back(FetchSlot::nop(pc));
      pc += 4;
    }
    isa::Instruction prev_inst;
    prev_inst.op = t.prev_op;
    isa::InstrDynContext prev_ctx;
    prev_ctx.cur = {t.pa, t.pb, isa::ex_unit(t.prev_op), t.prev_op};
    prev_ctx.pc = pc;
    slots.push_back(FetchSlot::from_context(prev_inst, prev_ctx));
    pc += 4;
    isa::Instruction cur_inst;
    cur_inst.op = t.cur_op;
    isa::InstrDynContext cur_ctx;
    cur_ctx.cur = {t.ca, t.cb, isa::ex_unit(t.cur_op), t.cur_op};
    cur_ctx.pc = pc;
    slots.push_back(FetchSlot::from_context(cur_inst, cur_ctx));
    const std::size_t cur_slot = slots.size() - 1;

    auto cycles = driver.run(slots);
    CycleActivation& ex_cycle = cycles[cur_slot + kExStage];
    auto dts = analyzer.stage_dts(kExStage, ex_cycle, netlist::EndpointClass::kData);
    if (!dts.has_value()) return std::nullopt;
    // Convert slack statistics to arrival statistics.
    DtsGaussian arr;
    arr.slack = {spec.period_ps - spec.setup_ps - dts->slack.mean, dts->slack.sd};
    arr.global_loading = dts->global_loading;
    return arr;
  };

  std::vector<std::optional<DtsGaussian>> results(tasks.size());
  support::ThreadPool& pool = support::global_pool();
  if (pool.size() <= 1) {
    DtsAnalyzer analyzer(pipeline.netlist, vm, spec, dts_config);
    PipelineDriver driver(pipeline);
    for (std::size_t i = 0; i < tasks.size(); ++i)
      results[i] = measure_with(analyzer, driver, tasks[i]);
  } else {
    // Shared pre-warmed enumerator (EX-stage data endpoints), one
    // thread-local analyzer + driver per worker.
    timing::PathEnumerator shared_paths(pipeline.netlist);
    std::vector<netlist::GateId> endpoints;
    for (netlist::GateId e : pipeline.netlist.stage_endpoints(kExStage)) {
      if (pipeline.netlist.gate(e).endpoint_class == netlist::EndpointClass::kData)
        endpoints.push_back(e);
    }
    shared_paths.warm(endpoints, dts_config.top_k);
    shared_paths.set_frozen(true);
    struct WorkerCtx {
      DtsAnalyzer analyzer;
      PipelineDriver driver;
      WorkerCtx(const netlist::Pipeline& p, const timing::VariationModel& v,
                timing::TimingSpec s, const DtsConfig& c, timing::PathEnumerator& paths)
          : analyzer(p.netlist, v, s, c, paths), driver(p) {}
    };
    std::vector<std::unique_ptr<WorkerCtx>> ctxs(pool.size());
    pool.parallel_for(tasks.size(), [&](std::size_t i, std::size_t w) {
      auto& ctx = ctxs[w];
      if (!ctx) ctx = std::make_unique<WorkerCtx>(pipeline, vm, spec, dts_config, shared_paths);
      obs::ScopedSpan task_span("dta.train_measure");
      task_span.counter("worker", static_cast<double>(w));
      results[i] = measure_with(ctx->analyzer, ctx->driver, tasks[i]);
    });
  }
  span.counter("measurements", static_cast<double>(tasks.size()));

  DatapathModel model;
  model.period_ref_ = spec.period_ps;

  // --- adder: controlled carry chains of length L --------------------------
  std::vector<Measurement> adder_ms;
  for (std::size_t i = first_adder; i < logic_idx; ++i) {
    if (!results[i].has_value()) continue;
    const MeasureTask& t = tasks[i];
    const int l = adder_chain_length({t.ca, t.cb, ExUnit::kAdder, Opcode::kAdd},
                                     {t.pa, t.pb, ExUnit::kAdder, Opcode::kAdd});
    adder_ms.push_back({l, *results[i]});
  }
  TE_CHECK(adder_ms.size() >= 4, "adder training produced too few measurements");
  model.adder_mean_ = fit_linear(adder_ms, [](const DtsGaussian& g) { return g.slack.mean; });
  model.adder_sd_ = fit_linear(adder_ms, [](const DtsGaussian& g) { return g.slack.sd; });
  model.adder_gl_ = fit_linear(adder_ms, [](const DtsGaussian& g) { return g.global_loading; });

  // --- logic unit -----------------------------------------------------------
  TE_CHECK(results[logic_idx].has_value(), "logic-unit training measurement failed");
  model.logic_ = *results[logic_idx];
  // --- shifter ---------------------------------------------------------------
  TE_CHECK(results[shift_idx].has_value(), "shifter training measurement failed");
  model.shift_ = *results[shift_idx];
  // --- pass-through (movi / nop): may produce a very short path; fall back
  // to logic statistics if nothing was activated.
  model.pass_ = results[pass_idx].has_value() ? *results[pass_idx] : model.logic_;
  return model;
}

DatapathModel::Params DatapathModel::params() const {
  return {adder_mean_, adder_sd_, adder_gl_, logic_, shift_, pass_, period_ref_};
}

DatapathModel DatapathModel::from_params(const Params& p) {
  DatapathModel model;
  model.adder_mean_ = p.adder_mean;
  model.adder_sd_ = p.adder_sd;
  model.adder_gl_ = p.adder_gl;
  model.logic_ = p.logic;
  model.shift_ = p.shift;
  model.pass_ = p.pass;
  model.period_ref_ = p.period_ref;
  return model;
}

std::optional<DtsGaussian> DatapathModel::ex_arrival(const ExContext& cur,
                                                     const ExContext& prev) const {
  switch (cur.unit) {
    case ExUnit::kAdder: {
      const int len = adder_chain_length(cur, prev);
      if (len < 0) return std::nullopt;
      DtsGaussian g;
      g.slack = {adder_mean_.at(len), std::max(0.0, adder_sd_.at(len))};
      g.global_loading = support::clamp(adder_gl_.at(len), 0.0, g.slack.sd);
      return g;
    }
    case ExUnit::kLogic:
      if (cur.a == prev.a && cur.b == prev.b && cur.op == prev.op) return std::nullopt;
      return logic_;
    case ExUnit::kShifter:
      if (cur.a == prev.a && cur.b == prev.b && cur.op == prev.op) return std::nullopt;
      return shift_;
    case ExUnit::kCompare:
      // Dedicated comparator + EX pass-through; operand change activates
      // the (shallow) pass path, the comparator itself is covered by the
      // control-network characterisation.
      if (cur.a == prev.a && cur.b == prev.b) return std::nullopt;
      return pass_;
    case ExUnit::kNone:
      if (cur.b == prev.b) return std::nullopt;
      return pass_;
  }
  return std::nullopt;
}

std::optional<DtsGaussian> DatapathModel::ex_slack(const ExContext& cur, const ExContext& prev,
                                                   const timing::TimingSpec& spec) const {
  auto arr = ex_arrival(cur, prev);
  if (!arr.has_value()) return std::nullopt;
  DtsGaussian out = *arr;
  out.slack = {spec.period_ps - spec.setup_ps - arr->slack.mean, arr->slack.sd};
  return out;
}

}  // namespace terrors::dta
