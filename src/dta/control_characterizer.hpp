// Control-network DTS characterisation (Section 4): for every basic block
// and every incoming CFG edge, the pipeline netlist executes the
// predecessor's tail followed by the block, and Algorithm 2 (minimum of
// Algorithm 1's stage DTS across the stages each instruction traverses)
// yields one control-network DTS per instruction.  The control network's
// activated paths depend on the instruction stream, not on operand values,
// which is why this expensive gate-level step runs only once per
// (block, edge) — the paper's key efficiency argument.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dta/dts_analyzer.hpp"
#include "dta/pipeline_driver.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "isa/program.hpp"
#include "netlist/pipeline.hpp"
#include "timing/variation.hpp"

namespace terrors::dta {

/// Control DTS of every instruction of a block entered via one edge;
/// nullopt entries mean "no activated control path" (cannot fail).
struct EdgeControlDts {
  std::vector<std::optional<DtsGaussian>> instr;
};

struct BlockControlDts {
  std::vector<EdgeControlDts> per_edge;  ///< aligned with Cfg::predecessors
  EdgeControlDts entry;                  ///< entered as program start
};

struct ControlCharacterizerConfig {
  int pred_tail = 4;     ///< predecessor instructions replayed for context
  int warmup_nops = 4;   ///< bubbles after reset before the context
};

class ControlCharacterizer {
 public:
  ControlCharacterizer(const netlist::Pipeline& pipeline, const timing::VariationModel& vm,
                       timing::TimingSpec spec, DtsConfig dts_config = {},
                       ControlCharacterizerConfig config = {});

  /// Characterise all (block, edge) pairs of the program, using the
  /// executor profile's sampled contexts as representative operand values.
  /// Unexecuted edges get empty (nullopt) characterisations.
  ///
  /// The (block, edge) tasks fan out across support::global_pool(): each
  /// worker owns a thread-local DtsAnalyzer + PipelineDriver over this
  /// characterizer's shared, pre-warmed (frozen) PathEnumerator, and every
  /// result lands in its pre-sized slot indexed by (block, edge) — so AP
  /// ordering and Clark-min folding are bit-identical to the serial run at
  /// any worker count.
  [[nodiscard]] std::vector<BlockControlDts> characterize(const isa::Program& program,
                                                          const isa::Cfg& cfg,
                                                          const isa::ProgramProfile& profile);

  /// Characterise a single (block, edge) pair; edge == -1 means entry.
  [[nodiscard]] EdgeControlDts characterize_edge(const isa::Program& program, const isa::Cfg& cfg,
                                                 const isa::ProgramProfile& profile,
                                                 isa::BlockId block, std::ptrdiff_t edge);

  [[nodiscard]] DtsAnalyzer& analyzer() { return analyzer_; }

  /// Pre-enumerate the shared path set over every control endpoint.
  /// Idempotent; characterize() calls it before its parallel fan-out, and
  /// the artifact cache uses it to materialise the path set for export.
  /// After a PathEnumerator::import_warmed this is a cheap no-op pass.
  void warm_paths();

  /// Control-class capture endpoints of every stage (the set Algorithm 2
  /// queries), for pre-warming the shared path enumerator.
  [[nodiscard]] std::vector<netlist::GateId> control_endpoints() const;

 private:
  /// The shared characterisation body: pure function of its arguments
  /// plus the (deterministic, order-independent) analyzer caches, so the
  /// serial path and every worker compute bit-identical results.
  EdgeControlDts characterize_edge_with(DtsAnalyzer& analyzer, PipelineDriver& driver,
                                        const isa::Program& program, const isa::Cfg& cfg,
                                        const isa::ProgramProfile& profile, isa::BlockId block,
                                        std::ptrdiff_t edge) const;

  const netlist::Pipeline& pipeline_;
  const timing::VariationModel& vm_;
  DtsConfig dts_config_;
  DtsAnalyzer analyzer_;
  PipelineDriver driver_;
  ControlCharacterizerConfig config_;
  bool paths_warmed_ = false;
};

}  // namespace terrors::dta
