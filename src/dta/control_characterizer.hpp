// Control-network DTS characterisation (Section 4): for every basic block
// and every incoming CFG edge, the pipeline netlist executes the
// predecessor's tail followed by the block, and Algorithm 2 (minimum of
// Algorithm 1's stage DTS across the stages each instruction traverses)
// yields one control-network DTS per instruction.  The control network's
// activated paths depend on the instruction stream, not on operand values,
// which is why this expensive gate-level step runs only once per
// (block, edge) — the paper's key efficiency argument.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dta/dts_analyzer.hpp"
#include "dta/pipeline_driver.hpp"
#include "isa/cfg.hpp"
#include "isa/executor.hpp"
#include "isa/program.hpp"
#include "netlist/pipeline.hpp"
#include "timing/variation.hpp"

namespace terrors::dta {

/// Control DTS of every instruction of a block entered via one edge;
/// nullopt entries mean "no activated control path" (cannot fail).
struct EdgeControlDts {
  std::vector<std::optional<DtsGaussian>> instr;
};

struct BlockControlDts {
  std::vector<EdgeControlDts> per_edge;  ///< aligned with Cfg::predecessors
  EdgeControlDts entry;                  ///< entered as program start
};

struct ControlCharacterizerConfig {
  int pred_tail = 4;     ///< predecessor instructions replayed for context
  int warmup_nops = 4;   ///< bubbles after reset before the context
};

class ControlCharacterizer {
 public:
  ControlCharacterizer(const netlist::Pipeline& pipeline, const timing::VariationModel& vm,
                       timing::TimingSpec spec, DtsConfig dts_config = {},
                       ControlCharacterizerConfig config = {});

  /// Characterise all (block, edge) pairs of the program, using the
  /// executor profile's sampled contexts as representative operand values.
  /// Unexecuted edges get empty (nullopt) characterisations.
  [[nodiscard]] std::vector<BlockControlDts> characterize(const isa::Program& program,
                                                          const isa::Cfg& cfg,
                                                          const isa::ProgramProfile& profile);

  /// Characterise a single (block, edge) pair; edge == -1 means entry.
  [[nodiscard]] EdgeControlDts characterize_edge(const isa::Program& program, const isa::Cfg& cfg,
                                                 const isa::ProgramProfile& profile,
                                                 isa::BlockId block, std::ptrdiff_t edge);

  [[nodiscard]] DtsAnalyzer& analyzer() { return analyzer_; }

 private:
  const netlist::Pipeline& pipeline_;
  DtsAnalyzer analyzer_;
  PipelineDriver driver_;
  ControlCharacterizerConfig config_;
};

}  // namespace terrors::dta
