#include "dta/pipeline_driver.hpp"

#include "support/check.hpp"

namespace terrors::dta {

using isa::Opcode;

FetchSlot FetchSlot::from_context(const isa::Instruction& inst, const isa::InstrDynContext& ctx) {
  FetchSlot s;
  s.pc = ctx.pc;
  s.word = isa::encode(inst);
  s.ex = ctx.cur;
  if (inst.op == Opcode::kLd) {
    s.is_load = true;
    s.mem_data = ctx.result;
  }
  return s;
}

FetchSlot FetchSlot::nop(std::uint32_t pc) {
  FetchSlot s;
  s.pc = pc;
  s.word = isa::encode(isa::Instruction{});
  s.ex = isa::ExContext{};
  return s;
}

ExDrive ex_drive_for(Opcode op) {
  ExDrive d;
  d.sel_imm = isa::uses_immediate(op);
  switch (isa::ex_unit(op)) {
    case isa::ExUnit::kAdder:
      d.alu_sel = 0;
      d.sub_mode = op == Opcode::kSub || op == Opcode::kSubi;
      break;
    case isa::ExUnit::kCompare:
      // Branches resolve on the RA-stage comparator; the EX ALU just
      // passes the B bus.
      d.alu_sel = 3;
      break;
    case isa::ExUnit::kLogic:
      d.alu_sel = 1;
      switch (op) {
        case Opcode::kAnd:
        case Opcode::kAndi:
          d.logic_sel = 0;
          break;
        case Opcode::kOr:
        case Opcode::kOri:
          d.logic_sel = 1;
          break;
        case Opcode::kXor:
        case Opcode::kXori:
          d.logic_sel = 2;
          break;
        case Opcode::kNot:
          d.logic_sel = 3;
          break;
        case Opcode::kMovi:
          d.alu_sel = 3;  // pass the immediate through the B bus
          break;
        default:
          break;
      }
      break;
    case isa::ExUnit::kShifter:
      d.alu_sel = 2;
      d.shift_dir = op == Opcode::kSrl || op == Opcode::kSrli;
      break;
    case isa::ExUnit::kNone:
      d.alu_sel = 3;
      break;
  }
  return d;
}

PipelineDriver::PipelineDriver(const netlist::Pipeline& pipeline)
    : p_(pipeline), sim_(pipeline.netlist) {}

void PipelineDriver::drive_cycle(const std::vector<FetchSlot>& slots, std::size_t t) {
  const auto& ports = p_.ports;
  auto slot_at = [&](std::size_t idx) -> const FetchSlot* {
    return idx < slots.size() ? &slots[idx] : nullptr;
  };

  // Fetch-stage inputs: the instruction entering FE this cycle, and the PC
  // steering for the *next* fetch (the PC register captures at the end of
  // this cycle).
  static const FetchSlot kBubble = FetchSlot::nop();
  const FetchSlot& cur = slot_at(t) != nullptr ? *slot_at(t) : kBubble;
  sim_.set_input_word(ports.instr, cur.word);
  const FetchSlot* next = slot_at(t + 1);
  const std::uint32_t next_pc = next != nullptr ? next->pc : cur.pc + 4;
  const bool sequential = next_pc == cur.pc + 4;
  sim_.set_input(ports.branch_taken, !sequential);
  sim_.set_input_word(ports.branch_target, sequential ? 0 : next_pc);

  // DE-stage inputs: register-file read values of the instruction fetched
  // at t-1.
  const FetchSlot* de = t >= 1 ? slot_at(t - 1) : nullptr;
  sim_.set_input_word(ports.op_a, de != nullptr ? de->ex.a : 0);
  sim_.set_input_word(ports.op_b, de != nullptr ? de->ex.b : 0);

  // RA-stage inputs: no forwarding (architectural values injected at DE).
  sim_.set_input_word(ports.bypass_a, 0);
  sim_.set_input_word(ports.bypass_b, 0);

  // EX-stage inputs for the instruction fetched at t-3.
  const FetchSlot* ex = t >= 3 ? slot_at(t - 3) : nullptr;
  const ExDrive d = ex_drive_for(ex != nullptr ? ex->ex.op : Opcode::kNop);
  sim_.set_input_word(ports.alu_sel, d.alu_sel);
  sim_.set_input_word(ports.logic_sel, d.logic_sel);
  sim_.set_input(ports.sel_imm, d.sel_imm);
  sim_.set_input(ports.sub_mode, d.sub_mode);
  sim_.set_input(ports.shift_dir, d.shift_dir);

  // ME-stage inputs for the instruction fetched at t-4.
  const FetchSlot* me = t >= 4 ? slot_at(t - 4) : nullptr;
  sim_.set_input(ports.mem_is_load, me != nullptr && me->is_load);
  sim_.set_input_word(ports.mem_data, me != nullptr ? me->mem_data : 0);

  sim_.set_input_word(ports.ctrl_noise, 0);
}

std::vector<CycleActivation> PipelineDriver::run(const std::vector<FetchSlot>& slots, int drain) {
  TE_REQUIRE(drain >= 0, "negative drain");
  sim_.reset();
  std::vector<CycleActivation> cycles;
  const std::size_t total = slots.size() + static_cast<std::size_t>(drain);
  cycles.reserve(total);
  for (std::size_t t = 0; t < total; ++t) {
    drive_cycle(slots, t);
    sim_.step();
    cycles.emplace_back(p_.netlist, sim_.activation_flags());
  }
  return cycles;
}

}  // namespace terrors::dta
