#include "support/math.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace terrors::support {

double normal_pdf(double x) {
  static const double inv_sqrt_2pi = 0.3989422804014327;
  return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

double normal_quantile(double p) {
  TE_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires 0 < p < 1");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x = 0.0;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double log_gamma(double x) {
  TE_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  // Lanczos approximation (g = 7, n = 9), relative error < 1e-13.
  static const double coeff[] = {0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
                                 771.32342877765313,   -176.61502916214059, 12.507343278686905,
                                 -0.13857109526572012, 9.9843695780195716e-6,
                                 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = coeff[0];
  for (int i = 1; i < 9; ++i) sum += coeff[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t + std::log(sum);
}

namespace {

// Series representation of P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1
// (modified Lentz's method).
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  TE_REQUIRE(a > 0.0, "gamma_p requires a > 0");
  TE_REQUIRE(x >= 0.0, "gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  TE_REQUIRE(a > 0.0, "gamma_q requires a > 0");
  TE_REQUIRE(x >= 0.0, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double poisson_cdf(std::int64_t k, double lambda) {
  TE_REQUIRE(lambda >= 0.0, "poisson_cdf requires lambda >= 0");
  if (k < 0) return 0.0;
  if (lambda == 0.0) return 1.0;
  return gamma_q(static_cast<double>(k) + 1.0, lambda);
}

double poisson_pmf(std::int64_t k, double lambda) {
  TE_REQUIRE(lambda >= 0.0, "poisson_pmf requires lambda >= 0");
  if (k < 0) return 0.0;
  if (lambda == 0.0) return k == 0 ? 1.0 : 0.0;
  const double kk = static_cast<double>(k);
  return std::exp(kk * std::log(lambda) - lambda - log_gamma(kk + 1.0));
}

double clamp(double x, double lo, double hi) {
  TE_REQUIRE(lo <= hi, "clamp with inverted bounds");
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace terrors::support
