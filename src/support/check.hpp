// Lightweight precondition / invariant checking for the terrors library.
//
// TE_REQUIRE is used for preconditions on public interfaces: it is always
// enabled and throws std::invalid_argument so callers can recover.
// TE_CHECK is used for internal invariants: it is always enabled (the
// library is not performance-critical enough to justify silent corruption)
// and throws std::logic_error, signalling a bug in this library.
#pragma once

#include <stdexcept>
#include <string>

namespace terrors::support {

[[noreturn]] inline void throw_require_failure(const char* expr, const char* file, int line,
                                               const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed: " + expr + (msg.empty() ? "" : " — " + msg));
}

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": internal invariant violated: " + expr +
                         (msg.empty() ? "" : " — " + msg));
}

}  // namespace terrors::support

#define TE_REQUIRE(expr, msg)                                                     \
  do {                                                                            \
    if (!(expr)) ::terrors::support::throw_require_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define TE_CHECK(expr, msg)                                                     \
  do {                                                                          \
    if (!(expr)) ::terrors::support::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
