#include "support/rng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace terrors::support {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng Rng::split(std::uint64_t tag) const {
  // Mix the tag into the original seed through splitmix; independent of the
  // parent's current position so splits are stable regardless of draw order.
  std::uint64_t s = seed_ ^ (0xA0761D6478BD642Full * (tag + 1));
  return Rng(splitmix64(s));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TE_REQUIRE(lo <= hi, "empty uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  TE_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Lemire-style rejection-free mapping is fine here; modulo bias is
  // negligible for our n << 2^64 but we debias anyway.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TE_REQUIRE(lo <= hi, "empty integer range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  TE_REQUIRE(sd >= 0.0, "negative standard deviation");
  return mean + sd * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  TE_REQUIRE(!weights.empty(), "weighted_index needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    TE_REQUIRE(w >= 0.0, "negative weight");
    total += w;
  }
  TE_REQUIRE(total > 0.0, "all weights are zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace terrors::support
