// Online statistics accumulators.
//
// MomentAccumulator tracks central moments up to order four with Welford /
// Pébay update formulas, which the Stein bound computation (Thm 5.2 of the
// paper) needs for E|X|^3 and E[X^4].
#pragma once

#include <cstddef>
#include <limits>

namespace terrors::support {

/// Running mean / variance / skew / kurtosis with numerically stable updates.
class MomentAccumulator {
 public:
  void add(double x);
  void merge(const MomentAccumulator& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Population variance (divides by n).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Central moments E[(X - mean)^k] for k = 2, 3, 4.
  [[nodiscard]] double central_moment2() const;
  [[nodiscard]] double central_moment3() const;
  [[nodiscard]] double central_moment4() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace terrors::support
