// Fixed-size worker pool with a chunked parallel_for, built for the
// estimation engine's embarrassing parallelism (per-edge control
// characterisation, datapath training measurements, Monte-Carlo shards).
//
// Design constraints, in order:
//  * Determinism: parallel_for only distributes *indices*; callers write
//    results into pre-sized slots keyed by index, so the output is
//    bit-identical regardless of worker count or scheduling.  The pool
//    itself never reorders observable results.
//  * Serial fallback: a pool of size 1 runs every index inline on the
//    calling thread, in order, with no locking — `threads=1` is exactly
//    the old serial code path.
//  * Exception containment: an index that throws is recorded (it does
//    not cancel the remaining indices) and retried ONCE, serially, on
//    the calling thread after the loop quiesces — transient failures
//    therefore leave the result identical to an all-serial run.  If the
//    retry throws again, that exception propagates to the caller (so
//    deterministic task bugs still surface exactly as before).
//
// The process-wide pool size comes from set_global_threads() (the CLI /
// bench `--threads` flag) or, if never set, the TERRORS_THREADS
// environment variable; the default is 1 so library behaviour is serial
// unless explicitly asked otherwise.  `0` means "all hardware threads".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace terrors::support {

struct PoolHooks;

class ThreadPool {
 public:
  /// fn(index, worker): one loop index, executed by worker `worker` in
  /// [0, size()).  The calling thread participates as worker 0.
  using Task = std::function<void(std::size_t index, std::size_t worker)>;

  /// `threads` is the total worker count including the calling thread;
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_; }

  /// Run fn over [0, n), distributing contiguous chunks of `grain`
  /// indices to workers.  Blocks until every index ran (or was skipped
  /// after an exception).  Nested calls from inside a task run inline.
  void parallel_for(std::size_t n, std::size_t grain, const Task& fn);
  void parallel_for(std::size_t n, const Task& fn) { parallel_for(n, 1, fn); }

  /// Cumulative scheduling counters (exported as pool.* metrics).
  struct Stats {
    std::uint64_t jobs = 0;           ///< parallel_for invocations
    std::uint64_t tasks = 0;          ///< chunks executed
    std::uint64_t steal_or_wait = 0;  ///< wake-ups that found no chunk left
    std::uint64_t retries = 0;        ///< failed indices re-run serially
  };
  [[nodiscard]] Stats stats() const;

  /// Worker index of the calling thread: its id inside a parallel_for
  /// task, 0 on the main thread / outside any pool region.
  [[nodiscard]] static std::size_t current_worker();

 private:
  struct Job;
  struct Failure;
  void worker_main(std::size_t worker);
  void run_chunks(Job& job, std::size_t worker);
  /// Serially re-run failed indices (sorted) once; rethrows on a second
  /// failure of the same index.
  void retry_failures(std::vector<Failure>& failures, const PoolHooks* hooks, const Task& fn);

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: a new job was published
  std::condition_variable done_cv_;  ///< caller: job finished and quiesced
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> retries_{0};
};

/// Process-wide pool, sized by set_global_threads() / TERRORS_THREADS
/// (see above).  Resized lazily: the pool is (re)built on the next
/// global_pool() call after the configured size changes.
ThreadPool& global_pool();

/// Configure the global pool size (0 = hardware concurrency).  Takes
/// effect on the next global_pool() call; not safe to call from inside a
/// parallel_for.
void set_global_threads(std::size_t threads);

/// The currently configured global pool size (after env / flag resolution).
std::size_t global_threads();

/// Fork hygiene (serve/worker.hpp): hold the global-pool registry mutex
/// across fork() so a child never inherits it locked by another thread.
/// In the child, the inherited pool object is abandoned (its worker
/// threads were not cloned by fork, so destroying it would hang on join);
/// the next global_pool() call rebuilds a fresh pool with live threads.
void lock_global_pool_for_fork();
void unlock_global_pool_after_fork(bool in_child);

/// Cross-cutting hooks, installed once by the robust layer (support is
/// the bottom of the link order and cannot call obs/robust directly).
///
///  * task_enter(index) runs immediately before each loop index, on the
///    worker that owns it.  A throw from the hook is treated exactly like
///    the task itself throwing — this is the `pool.task` fault-injection
///    site.  Must be deterministic in `index` (never in worker/arrival
///    order), or chaos runs lose reproducibility.
///  * task_retry(index, what, ok) reports the outcome of the serial
///    retry of a failed index (degradation metering + logging).
///
/// Both must be thread-safe; either may be empty.
struct PoolHooks {
  std::function<void(std::size_t index)> task_enter;
  std::function<void(std::size_t index, const char* what, bool retry_ok)> task_retry;
};
void set_pool_hooks(PoolHooks hooks);

}  // namespace terrors::support
