// Deterministic, splittable random number generation.
//
// All stochastic behaviour in the library flows through Rng so experiments
// are reproducible bit-for-bit from a single seed.  The generator is
// xoshiro256++ seeded through splitmix64 (the combination recommended by
// the xoshiro authors).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace terrors::support {

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derive an independent stream; deterministic in (parent seed, tag).
  [[nodiscard]] Rng split(std::uint64_t tag) const;

  std::uint64_t next_u64();
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n); requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached spare value).
  double normal();
  /// Normal with given mean / standard deviation (sd >= 0).
  double normal(double mean, double sd);
  /// Bernoulli draw.
  bool bernoulli(double p);
  /// Sample an index according to non-negative weights (need not sum to 1).
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
  std::uint64_t seed_ = 0;
};

}  // namespace terrors::support
