// Special functions used by the statistical machinery: the standard normal
// CDF and quantile, log-gamma, the regularised incomplete gamma functions
// (which give the Poisson CDF), and numerically careful helpers.
#pragma once

#include <cstdint>

namespace terrors::support {

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step); requires 0 < p < 1.
double normal_quantile(double p);

/// Natural log of the gamma function for x > 0 (Lanczos).
double log_gamma(double x);

/// Regularised lower incomplete gamma P(a, x), a > 0, x >= 0.
double gamma_p(double a, double x);

/// Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// CDF of a Poisson(lambda) variable at integer k: Pr(X <= k) = Q(k+1, lambda).
/// Defined as 0 for k < 0 and 1 for lambda == 0 with k >= 0.
double poisson_cdf(std::int64_t k, double lambda);

/// Probability mass function of Poisson(lambda) at k (computed in log space).
double poisson_pmf(std::int64_t k, double lambda);

/// Clamp x into [lo, hi].
double clamp(double x, double lo, double hi);

}  // namespace terrors::support
