#include "support/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace terrors::support {

void MomentAccumulator::add(double x) {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double mean = mean_ + delta * nb / n;
  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 = m4_ + other.m4_ +
                    delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
                    4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  n_ += other.n_;
  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void MomentAccumulator::reset() { *this = MomentAccumulator{}; }

double MomentAccumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double MomentAccumulator::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double MomentAccumulator::stddev() const { return std::sqrt(variance()); }

double MomentAccumulator::central_moment2() const { return variance(); }

double MomentAccumulator::central_moment3() const {
  return n_ == 0 ? 0.0 : m3_ / static_cast<double>(n_);
}

double MomentAccumulator::central_moment4() const {
  return n_ == 0 ? 0.0 : m4_ / static_cast<double>(n_);
}

}  // namespace terrors::support
