#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "support/check.hpp"

namespace terrors::support {

namespace {

thread_local std::size_t tl_worker = 0;
thread_local bool tl_in_parallel = false;

}  // namespace

/// One published parallel_for: an atomic chunk cursor plus completion and
/// quiescence accounting.  Lives on the caller's stack; `refs` (mutated
/// under the pool mutex) keeps workers from touching it after retirement.
struct ThreadPool::Job {
  const Task* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr error;
  std::size_t refs = 0;  ///< workers currently attached (guarded by mutex_)
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                            : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::current_worker() { return tl_worker; }

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.steal_or_wait = waits_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::run_chunks(Job& job, std::size_t worker) {
  bool got_work = false;
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) break;
    got_work = true;
    const std::size_t end = std::min(job.n, begin + job.grain);
    if (!job.cancelled.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t i = begin; i < end; ++i) {
          if (job.cancelled.load(std::memory_order_relaxed)) break;
          (*job.fn)(i, worker);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
        job.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    tasks_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t finished =
        job.done.fetch_add(end - begin, std::memory_order_acq_rel) + (end - begin);
    if (finished == job.n) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  if (!got_work) waits_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::worker_main(std::size_t worker) {
  tl_worker = worker;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;
    ++job->refs;
    lock.unlock();
    tl_in_parallel = true;
    run_chunks(*job, worker);
    tl_in_parallel = false;
    lock.lock();
    --job->refs;
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, const Task& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  jobs_.fetch_add(1, std::memory_order_relaxed);

  // Serial fallback and nested calls: run inline, in index order.
  if (threads_ == 1 || n == 1 || tl_in_parallel) {
    for (std::size_t i = 0; i < n; ++i) fn(i, tl_worker);
    tasks_.fetch_add((n + grain - 1) / grain, std::memory_order_relaxed);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = grain;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TE_CHECK(job_ == nullptr, "concurrent parallel_for on one ThreadPool");
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  tl_in_parallel = true;
  run_chunks(job, /*worker=*/0);
  tl_in_parallel = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for all indices to finish AND all workers to detach before the
    // stack-allocated job can be retired.
    done_cv_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.n && job.refs == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

// ---------------------------------------------------------------------------

namespace {

std::size_t env_default_threads() {
  if (const char* env = std::getenv("TERRORS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

std::mutex g_pool_mutex;
std::size_t g_threads = static_cast<std::size_t>(-1);  ///< -1 = env not read yet
std::unique_ptr<ThreadPool> g_pool;

std::size_t resolve(std::size_t threads) {
  return threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency()) : threads;
}

}  // namespace

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_threads = resolve(threads);
}

std::size_t global_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_threads == static_cast<std::size_t>(-1)) g_threads = resolve(env_default_threads());
  return g_threads;
}

ThreadPool& global_pool() {
  const std::size_t want = global_threads();
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->size() != want) g_pool = std::make_unique<ThreadPool>(want);
  return *g_pool;
}

}  // namespace terrors::support
