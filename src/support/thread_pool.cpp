#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "support/check.hpp"

namespace terrors::support {

namespace {

thread_local std::size_t tl_worker = 0;
thread_local bool tl_in_parallel = false;

std::mutex g_hooks_mutex;
std::shared_ptr<const PoolHooks> g_hooks;

std::shared_ptr<const PoolHooks> hooks_snapshot() {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  return g_hooks;
}

/// What() of an exception_ptr, for the retry hook.
std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void set_pool_hooks(PoolHooks hooks) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks = std::make_shared<const PoolHooks>(std::move(hooks));
}

/// One index whose task threw, with the exception — retried serially by
/// the caller after quiescence.
struct ThreadPool::Failure {
  std::size_t index;
  std::exception_ptr error;
};

/// One published parallel_for: an atomic chunk cursor plus completion and
/// quiescence accounting.  Lives on the caller's stack; `refs` (mutated
/// under the pool mutex) keeps workers from touching it after retirement.
struct ThreadPool::Job {
  const Task* fn = nullptr;
  const PoolHooks* hooks = nullptr;  ///< per-job snapshot (may be null)
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::vector<Failure> failures;  ///< guarded by mutex_
  std::size_t refs = 0;           ///< workers currently attached (guarded by mutex_)
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                            : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::current_worker() { return tl_worker; }

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.steal_or_wait = waits_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::run_chunks(Job& job, std::size_t worker) {
  bool got_work = false;
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) break;
    got_work = true;
    const std::size_t end = std::min(job.n, begin + job.grain);
    for (std::size_t i = begin; i < end; ++i) {
      // A failing index never cancels its siblings: it is recorded and
      // retried serially by the caller after the loop quiesces, so a
      // transient fault leaves every slot identical to a serial run.
      try {
        if (job.hooks != nullptr && job.hooks->task_enter) job.hooks->task_enter(i);
        (*job.fn)(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        job.failures.push_back({i, std::current_exception()});
      }
    }
    tasks_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t finished =
        job.done.fetch_add(end - begin, std::memory_order_acq_rel) + (end - begin);
    if (finished == job.n) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  if (!got_work) waits_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::retry_failures(std::vector<Failure>& failures, const PoolHooks* hooks,
                                const Task& fn) {
  std::sort(failures.begin(), failures.end(),
            [](const Failure& a, const Failure& b) { return a.index < b.index; });
  for (const auto& f : failures) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    const std::string what = describe(f.error);
    // The retry runs the task directly — deliberately NOT through
    // task_enter, so an injected fault at this index fires exactly once.
    try {
      fn(f.index, tl_worker);
    } catch (...) {
      if (hooks != nullptr && hooks->task_retry) hooks->task_retry(f.index, what.c_str(), false);
      throw;
    }
    if (hooks != nullptr && hooks->task_retry) hooks->task_retry(f.index, what.c_str(), true);
  }
}

void ThreadPool::worker_main(std::size_t worker) {
  tl_worker = worker;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;
    ++job->refs;
    lock.unlock();
    tl_in_parallel = true;
    run_chunks(*job, worker);
    tl_in_parallel = false;
    lock.lock();
    --job->refs;
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, const Task& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  jobs_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const PoolHooks> hooks = hooks_snapshot();

  // Serial fallback and nested calls: run inline, in index order, with
  // the same catch-and-retry-once contract as the pooled path.
  if (threads_ == 1 || n == 1 || tl_in_parallel) {
    std::vector<Failure> failures;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        if (hooks && hooks->task_enter) hooks->task_enter(i);
        fn(i, tl_worker);
      } catch (...) {
        failures.push_back({i, std::current_exception()});
      }
    }
    tasks_.fetch_add((n + grain - 1) / grain, std::memory_order_relaxed);
    if (!failures.empty()) retry_failures(failures, hooks.get(), fn);
    return;
  }

  Job job;
  job.fn = &fn;
  job.hooks = hooks.get();
  job.n = n;
  job.grain = grain;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TE_CHECK(job_ == nullptr, "concurrent parallel_for on one ThreadPool");
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  tl_in_parallel = true;
  run_chunks(job, /*worker=*/0);
  tl_in_parallel = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for all indices to finish AND all workers to detach before the
    // stack-allocated job can be retired.
    done_cv_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.n && job.refs == 0;
    });
    job_ = nullptr;
  }
  if (!job.failures.empty()) {
    // Retries happen outside the pool region but must keep the nested-call
    // semantics the task saw the first time (nested parallel_for inlines).
    tl_in_parallel = true;
    try {
      retry_failures(job.failures, hooks.get(), fn);
    } catch (...) {
      tl_in_parallel = false;
      throw;
    }
    tl_in_parallel = false;
  }
}

// ---------------------------------------------------------------------------

namespace {

std::size_t env_default_threads() {
  if (const char* env = std::getenv("TERRORS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

std::mutex g_pool_mutex;
std::size_t g_threads = static_cast<std::size_t>(-1);  ///< -1 = env not read yet
std::unique_ptr<ThreadPool> g_pool;

std::size_t resolve(std::size_t threads) {
  return threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency()) : threads;
}

}  // namespace

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_threads = resolve(threads);
}

std::size_t global_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_threads == static_cast<std::size_t>(-1)) g_threads = resolve(env_default_threads());
  return g_threads;
}

ThreadPool& global_pool() {
  const std::size_t want = global_threads();
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->size() != want) g_pool = std::make_unique<ThreadPool>(want);
  return *g_pool;
}

void lock_global_pool_for_fork() { g_pool_mutex.lock(); }

void unlock_global_pool_after_fork(bool in_child) {
  if (in_child) {
    // fork() clones only the calling thread: the pool's worker threads do
    // not exist in the child, so joining them (the ThreadPool destructor)
    // would hang forever.  Deliberately leak the object and let the next
    // global_pool() call build a fresh pool with live threads.  The child
    // is a short-lived sandbox that exits via _exit(), so the leak is
    // bounded to one pool header per worker process.
    (void)g_pool.release();
  }
  g_pool_mutex.unlock();
}

}  // namespace terrors::support
