// The 12 MiBench-like synthetic benchmarks (two per MiBench category, as
// in Section 6.2).  Basic-block counts match Table 2 of the paper exactly;
// dynamic instruction counts are Table 2's scaled down (configurable, see
// simulated_instructions).  Each category has a characteristic instruction
// mix and operand-value shape, which is what differentiates the programs'
// activated carry chains — and hence their error rates — the same way the
// real MiBench programs differ on the authors' LEON3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace terrors::workloads {

enum class Category : std::uint8_t {
  kAutomotive,  ///< basicmath, bitcount
  kNetwork,     ///< dijkstra, patricia
  kSecurity,    ///< pgp.encode, pgp.decode
  kConsumer,    ///< tiff2bw, typeset
  kOffice,      ///< ghostscript, stringsearch
  kTelecom,     ///< gsm.encode, gsm.decode
};

/// How operand values are shaped in the generated code (this controls the
/// distribution of activated carry-chain lengths).
struct OperandShape {
  std::uint32_t and_mask = 0xFFFFFFFFu;  ///< values are masked to this width
  std::uint32_t or_bias = 0u;            ///< bits OR'd in (creates long runs)
  double run_heavy_fraction = 0.0;       ///< fraction of ops fed saturated values
};

struct WorkloadSpec {
  std::string name;
  Category category = Category::kAutomotive;
  int basic_blocks = 0;                 ///< Table 2 "Basic Blocks"
  std::uint64_t paper_instructions = 0; ///< Table 2 "Instructions"
  // Instruction-mix weights (need not sum to 1).
  double w_arith = 1.0;
  double w_logic = 1.0;
  double w_shift = 1.0;
  double w_mem = 1.0;
  /// Fraction of arithmetic ops that are subtracts.  Subtraction of
  /// dissimilar-magnitude values rips the borrow through the inverted
  /// upper operand bits — the strongest long-chain channel.
  double sub_fraction = 0.0;
  OperandShape operands;
  std::uint64_t seed = 0;  ///< program-structure seed

  /// Dynamic instructions to actually simulate: scale * paper count,
  /// floored so small benchmarks still exercise their CFG.
  [[nodiscard]] std::uint64_t simulated_instructions(double scale = 1e-4,
                                                     std::uint64_t floor_count = 20000) const;
};

/// The paper's 12 benchmarks, in Table 2 order.
[[nodiscard]] const std::vector<WorkloadSpec>& mibench_specs();

[[nodiscard]] std::string_view category_name(Category c);

}  // namespace terrors::workloads
