// Synthetic program generator: builds a structured, guaranteed-terminating
// CFG (nested counted loops, data-dependent diamonds, straight-line
// blocks) with an exact basic-block count, an instruction mix and operand
// shaping taken from the workload spec, and input datasets for it.
//
// Register convention of generated code:
//   r0         zero
//   r1..r6     loop counters (outer to inner)
//   r8..r15    data registers (shaped by the input generator)
//   r16..r19   address registers
//   r20..r23   temporaries
//   r28..r31   shaping constants (and-mask, or-bias, saturation patterns)
#pragma once

#include <cstdint>
#include <vector>

#include "isa/executor.hpp"
#include "isa/program.hpp"
#include "workloads/specs.hpp"

namespace terrors::workloads {

/// Generate the program for a spec (deterministic in spec.seed).
[[nodiscard]] isa::Program generate_program(const WorkloadSpec& spec);

/// Input datasets: `runs` initial machine states (registers shaped per the
/// spec's operand profile, distinct memory seeds).
[[nodiscard]] std::vector<isa::ProgramInput> generate_inputs(const WorkloadSpec& spec,
                                                             std::size_t runs,
                                                             std::uint64_t seed);

/// Executor configuration so that `runs` runs together execute about
/// spec.simulated_instructions(scale) dynamic instructions.
[[nodiscard]] isa::ExecutorConfig executor_config_for(const WorkloadSpec& spec, std::size_t runs,
                                                      double scale = 1e-4,
                                                      std::size_t samples_per_edge = 32);

}  // namespace terrors::workloads
