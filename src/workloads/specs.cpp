#include "workloads/specs.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace terrors::workloads {

std::uint64_t WorkloadSpec::simulated_instructions(double scale,
                                                   std::uint64_t floor_count) const {
  TE_REQUIRE(scale > 0.0, "scale must be positive");
  const auto scaled = static_cast<std::uint64_t>(static_cast<double>(paper_instructions) * scale);
  return std::max(scaled, floor_count);
}

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kAutomotive:
      return "automotive";
    case Category::kNetwork:
      return "network";
    case Category::kSecurity:
      return "security";
    case Category::kConsumer:
      return "consumer";
    case Category::kOffice:
      return "office";
    case Category::kTelecom:
      return "telecom";
  }
  return "unknown";
}

const std::vector<WorkloadSpec>& mibench_specs() {
  // Operand shapes: telecom code (GSM's saturating add/multiply-accumulate
  // chains) produces values with long 1-runs, the worst case for ripple
  // carries; network code manipulates short masked addresses/prefixes;
  // security code mixes uniformly random words; automotive math sits in
  // between; office/consumer lean to bytes and short words.
  static const std::vector<WorkloadSpec> specs = [] {
    std::vector<WorkloadSpec> s;
    auto add = [&](std::string name, Category cat, int blocks, std::uint64_t instrs,
                   double arith, double logic, double shift, double mem, double sub_fraction,
                   OperandShape shape, std::uint64_t seed) {
      WorkloadSpec w;
      w.name = std::move(name);
      w.category = cat;
      w.basic_blocks = blocks;
      w.paper_instructions = instrs;
      w.w_arith = arith;
      w.w_logic = logic;
      w.w_shift = shift;
      w.w_mem = mem;
      w.sub_fraction = sub_fraction;
      w.operands = shape;
      w.seed = seed;
      s.push_back(std::move(w));
    };
    // name, category, BBs, instructions (Table 2), mix weights
    // (arith, logic, shift, mem), sub fraction, operand shape
    // (mask, bias, run-heavy fraction), seed.
    add("basicmath", Category::kAutomotive, 86, 1487629739ull, 3.0, 0.7, 0.6, 1.0, 0.25,
        {0xFFFFFFFFu, 0x000003FFu, 0.05}, 101);
    add("bitcount", Category::kAutomotive, 72, 589809283ull, 2.4, 3.0, 2.0, 0.4, 1.00,
        {0x007FFFFFu, 0x0001FFFFu, 0.12}, 120);
    add("dijkstra", Category::kNetwork, 70, 254491123ull, 2.0, 0.6, 0.3, 2.2, 0.38,
        {0x0003FFFFu, 0x0001FFFFu, 0.30}, 103);
    add("patricia", Category::kNetwork, 184, 1167201ull, 1.0, 1.4, 0.8, 2.6, 0.70,
        {0x00000FFFu, 0x00000003u, 0.03}, 104);
    add("pgp.encode", Category::kSecurity, 49, 782002182ull, 1.5, 2.4, 1.4, 0.9, 0.025,
        {0xFFFFFFFFu, 0x0000FFFFu, 0.25}, 105);
    add("pgp.decode", Category::kSecurity, 56, 212201598ull, 2.6, 2.2, 1.2, 0.9, 1.00,
        {0xFFFFFFFFu, 0x00FFFFFFu, 0.25}, 106);
    add("tiff2bw", Category::kConsumer, 174, 670620091ull, 2.4, 1.0, 1.6, 1.8, 0.95,
        {0x007FFFFFu, 0x000FFFFFu, 0.32}, 107);
    add("typeset", Category::kConsumer, 69, 66490215ull, 1.6, 1.2, 0.8, 2.0, 0.62,
        {0x000FFFFFu, 0x0007FFFFu, 0.30}, 108);
    add("ghostscript", Category::kOffice, 192, 743108760ull, 1.6, 1.1, 0.7, 2.0, 0.30,
        {0x0000FFFFu, 0x0000000Fu, 0.06}, 109);
    add("stringsearch", Category::kOffice, 133, 27984283ull, 2.5, 1.8, 0.9, 2.2, 0.60,
        {0x00FFFFFFu, 0x0003FFFFu, 0.10}, 118);
    add("gsm.encode", Category::kTelecom, 75, 473017210ull, 3.2, 0.8, 1.4, 1.0, 0.80,
        {0xFFFFFFFFu, 0x007FFFFFu, 0.40}, 111);
    add("gsm.decode", Category::kTelecom, 80, 497219812ull, 3.4, 0.7, 1.3, 1.0, 1.00,
        {0xFFFFFFFFu, 0x00FFFFFFu, 0.60}, 112);
    return s;
  }();
  return specs;
}

}  // namespace terrors::workloads
