#include "workloads/generator.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace terrors::workloads {

using isa::BasicBlock;
using isa::BlockId;
using isa::Instruction;
using isa::Opcode;
using isa::Program;
using support::Rng;

namespace {

constexpr std::uint8_t kCounterBase = 1;   // r1..r6
constexpr std::uint8_t kDataBase = 8;      // r8..r15
constexpr int kDataCount = 8;
constexpr std::uint8_t kAddrBase = 16;     // r16..r19
constexpr int kAddrCount = 4;
constexpr std::uint8_t kTempBase = 20;     // r20..r23
constexpr std::uint8_t kTripBase = 24;  // r24..r27 loop-bound registers
constexpr std::uint8_t kMaskReg = 28;
constexpr std::uint8_t kBiasReg = 29;
constexpr std::uint8_t kSatAReg = 30;
constexpr std::uint8_t kSatBReg = 31;

Instruction make(Opcode op, int rd = 0, int rs1 = 0, int rs2 = 0, int imm = 0) {
  Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

/// Builds the program structure recursively under an exact block budget.
class Builder {
 public:
  Builder(const WorkloadSpec& spec, Rng rng)
      : spec_(spec), rng_(rng), knob_rng_(rng.split(0xC0FFEE)) {}

  Program build() {
    Program p(spec_.name);
    // Pre-create all blocks so ids are stable; wire them as we go.
    const int n = spec_.basic_blocks;
    TE_REQUIRE(n >= 4, "need at least 4 basic blocks");
    for (int i = 0; i < n; ++i) p.add_block(BasicBlock{});
    next_block_ = 0;

    // Block 0: entry / initialisation; last block: exit.
    const BlockId entry = acquire();
    const BlockId exit = static_cast<BlockId>(n - 1);

    // Two nested outer loops around the body guarantee enough dynamic
    // instructions for any simulation budget.
    // entry: init counters -> outer1 header ... -> exit
    const int body_budget = n - 2;
    const BlockId body_entry = build_region(p, body_budget, /*depth=*/2);
    TE_CHECK(static_cast<int>(next_block_) == n - 1, "block budget mismatch");

    auto& eb = p.block(entry).instructions;
    eb.push_back(make(Opcode::kMovi, kCounterBase + 1, 0, 0, 0));
    eb.push_back(make(Opcode::kMovi, kTripBase + 3, 0, 0, 30000));
    p.block(entry).fallthrough = body_entry;

    // The collected region exits chain into the outer loop latch, which is
    // folded into the last region block; region_exit_ holds it.
    TE_CHECK(region_exit_ != isa::kNoBlock, "region produced no exit");
    auto& latch = p.block(region_exit_);
    // Outer loop counts UP (the +1 carry chain is the short, realistic
    // trailing-ones run) and compares against a bound register.
    latch.instructions.push_back(
        make(Opcode::kAddi, kCounterBase + 1, kCounterBase + 1, 0, 1));
    latch.instructions.push_back(make(Opcode::kBne, 0, kCounterBase + 1, kTripBase + 3));
    latch.taken = body_entry;
    latch.fallthrough = exit;

    auto& xb = p.block(exit).instructions;
    xb.push_back(make(Opcode::kSt, 0, kAddrBase, kDataBase, 0));
    p.set_entry(entry);
    p.validate();
    return p;
  }

 private:
  BlockId acquire() {
    return next_block_++;
  }

  /// Emit a data-processing instruction according to the category mix.
  void emit_op(std::vector<Instruction>& out) {
    const double total = spec_.w_arith + spec_.w_logic + spec_.w_shift + spec_.w_mem;
    const double x = rng_.uniform(0.0, total);
    const int rd = kDataBase + static_cast<int>(rng_.uniform_index(kDataCount));
    const int ra = kDataBase + static_cast<int>(rng_.uniform_index(kDataCount));
    const int rb = kDataBase + static_cast<int>(rng_.uniform_index(kDataCount));
    if (x < spec_.w_arith) {
      // All tuning-knob decisions draw from a dedicated stream so changing
      // a knob does not reshuffle the generated program structure, and the
      // shaped operand is refreshed from (input-seeded) memory so the
      // operand-value distribution is stationary — otherwise value
      // feedback through the register file makes the error rate a chaotic
      // function of the tuning knobs.
      const bool refresh = knob_rng_.uniform() < 0.6;
      // Subtracts only occur in the refreshed, shaped form: free-running
      // subtract sites have near-deterministic long borrow chains (error
      // probabilities of 0.1+), which would concentrate the program error
      // rate in a handful of static sites; the shaped form's chain length
      // varies smoothly per dynamic instance.
      const bool sub = refresh && knob_rng_.uniform() < spec_.sub_fraction;
      const bool heavy = sub || knob_rng_.uniform() < spec_.operands.run_heavy_fraction;
      const bool imm_form = knob_rng_.uniform() < 0.5;
      const int imm = static_cast<int>(rng_.uniform_index(4096));  // drawn unconditionally
      const int raddr = kAddrBase + static_cast<int>(rng_.uniform_index(kAddrCount));
      const int roffset = static_cast<int>(rng_.uniform_index(256)) * 4;
      if (refresh) {
        out.push_back(make(Opcode::kLd, ra, raddr, 0, roffset));
        out.push_back(make(Opcode::kAnd, ra, ra, kMaskReg));
        // Operand shaping: saturate with a long 1-run to lengthen the
        // activated carry chain (telecom-style values).  For a subtract
        // the run must sit on the subtrahend (the minuend side would
        // suppress the borrow chain instead).
        if (heavy) {
          // Per-instance run length: a dense random word (x | x<<1 | x<<2
          // | x<<3 has bit density ~0.94) windowed by the bias constant,
          // so the activated chain length varies smoothly from instance
          // to instance instead of being a fixed-width spike.
          const int shaped = sub ? rb : ra;
          const int t0 = kTempBase + 2;
          const int t1 = kTempBase + 3;
          out.push_back(make(Opcode::kLd, t0, raddr, 0, (roffset + 512) & 0x3FC));
          out.push_back(make(Opcode::kSlli, t1, t0, 0, 1));
          out.push_back(make(Opcode::kOr, t0, t0, t1));
          out.push_back(make(Opcode::kSlli, t1, t0, 0, 2));
          out.push_back(make(Opcode::kOr, t0, t0, t1));
          out.push_back(make(Opcode::kAnd, t0, t0, kBiasReg));
          out.push_back(make(Opcode::kOr, shaped, shaped, t0));
        }
      }
      // Subtraction of dissimilar-magnitude values rips the borrow chain
      // through the inverted upper operand bits — the strongest long-chain
      // channel, so its share is an explicit spec knob.
      const bool reg_form_sub = sub;  // rb was shaped
      const Opcode op = sub ? (imm_form && !reg_form_sub ? Opcode::kSubi : Opcode::kSub)
                            : (imm_form ? Opcode::kAddi : Opcode::kAdd);
      if (isa::uses_immediate(op)) {
        out.push_back(make(op, rd, ra, 0, imm));
      } else {
        out.push_back(make(op, rd, ra, rb));
      }
      // Keep values inside the category's width.
      if (spec_.operands.and_mask != 0xFFFFFFFFu && rng_.uniform() < 0.5)
        out.push_back(make(Opcode::kAnd, rd, rd, kMaskReg));
    } else if (x < spec_.w_arith + spec_.w_logic) {
      const Opcode ops[] = {Opcode::kAnd, Opcode::kOr,  Opcode::kXor,  Opcode::kNot,
                            Opcode::kAndi, Opcode::kOri, Opcode::kXori};
      const Opcode op = ops[rng_.uniform_index(7)];
      if (isa::uses_immediate(op)) {
        out.push_back(make(op, rd, ra, 0, static_cast<int>(rng_.uniform_index(32768))));
      } else {
        out.push_back(make(op, rd, ra, rb));
      }
    } else if (x < spec_.w_arith + spec_.w_logic + spec_.w_shift) {
      const Opcode ops[] = {Opcode::kSll, Opcode::kSrl, Opcode::kSlli, Opcode::kSrli};
      const Opcode op = ops[rng_.uniform_index(4)];
      if (isa::uses_immediate(op)) {
        out.push_back(make(op, rd, ra, 0, static_cast<int>(rng_.uniform_index(31)) + 1));
      } else {
        out.push_back(make(op, rd, ra, rb));
      }
    } else {
      const int addr = kAddrBase + static_cast<int>(rng_.uniform_index(kAddrCount));
      const int offset = static_cast<int>(rng_.uniform_index(256)) * 4;
      if (rng_.uniform() < 0.6) {
        out.push_back(make(Opcode::kLd, rd, addr, 0, offset));
        if (spec_.operands.and_mask != 0xFFFFFFFFu)
          out.push_back(make(Opcode::kAnd, rd, rd, kMaskReg));
      } else {
        out.push_back(make(Opcode::kSt, 0, addr, ra, offset));
      }
      // Walk the address register.
      out.push_back(make(Opcode::kAddi, addr, addr, 0, 4));
    }
  }

  void fill_block(Program& p, BlockId b, int min_ops = 2, int max_ops = 7) {
    auto& out = p.block(b).instructions;
    const int ops = min_ops + static_cast<int>(rng_.uniform_index(
                                  static_cast<std::uint64_t>(max_ops - min_ops + 1)));
    for (int i = 0; i < ops; ++i) emit_op(out);
  }

  /// Build a region of exactly `budget` blocks; returns the entry block.
  /// Sets region_exit_ to the region's single exit block (the block whose
  /// successors the caller wires up).
  BlockId build_region(Program& p, int budget, int depth) {
    TE_REQUIRE(budget >= 1, "region budget must be positive");
    if (budget == 1 || depth >= 5) {
      // Straight-line chain consuming the whole budget.
      const BlockId first = acquire();
      fill_block(p, first);
      BlockId prev = first;
      for (int i = 1; i < budget; ++i) {
        const BlockId b = acquire();
        fill_block(p, b);
        p.block(prev).fallthrough = b;
        prev = b;
      }
      region_exit_ = prev;
      return first;
    }
    const double choice = rng_.uniform();
    if (budget >= 3 && choice < 0.35) {
      // Counted loop: init block + body region, back edge on the latch.
      const BlockId init = acquire();
      fill_block(p, init, 1, 3);
      const int trip = 3 + static_cast<int>(rng_.uniform_index(8));
      const int ctr = kCounterBase + depth;
      const int bound = depth < 4 ? kTripBase + depth - 2 : 7;  // see register map
      p.block(init).instructions.push_back(make(Opcode::kMovi, ctr, 0, 0, 0));
      p.block(init).instructions.push_back(make(Opcode::kMovi, bound, 0, 0, trip));
      const int body_budget = 1 + static_cast<int>(rng_.uniform_index(
                                      static_cast<std::uint64_t>(std::min(budget - 2, 8)) )) ;
      const BlockId body = build_region(p, body_budget, depth + 1);
      p.block(init).fallthrough = body;
      BlockId latch = region_exit_;
      p.block(latch).instructions.push_back(make(Opcode::kAddi, ctr, ctr, 0, 1));
      p.block(latch).instructions.push_back(make(Opcode::kBne, 0, ctr, bound));
      p.block(latch).taken = body;
      const int rest = budget - 1 - body_budget;
      if (rest > 0) {
        const BlockId next = build_region(p, rest, depth);
        p.block(latch).fallthrough = next;
        return init;  // region_exit_ already set by the tail region
      }
      // Need a fall-through target inside the region: not possible with
      // zero rest, so add the loop as sole content and let the caller wire
      // the latch's fall-through.
      region_exit_ = latch;
      // The latch already has a taken successor; its fall-through is the
      // region exit the caller wires.  But the caller appends more
      // terminator instructions to region_exit_, which already ends in a
      // branch — so interpose is required.  To keep the invariant simple
      // we never take this path: body_budget <= budget - 2 guarantees
      // rest >= 1.
      TE_CHECK(false, "loop region must leave at least one tail block");
      return init;
    }
    if (budget >= 4 && choice < 0.70) {
      // Diamond: cond + then + else joined into a tail region.
      const BlockId cond = acquire();
      fill_block(p, cond, 1, 4);
      // Data- or parity-dependent condition.
      const int t = kTempBase + static_cast<int>(rng_.uniform_index(4));
      if (rng_.uniform() < 0.5) {
        const int ra = kDataBase + static_cast<int>(rng_.uniform_index(kDataCount));
        p.block(cond).instructions.push_back(
            make(Opcode::kAndi, t, ra, 0, 1 << rng_.uniform_index(3)));
        p.block(cond).instructions.push_back(make(Opcode::kBne, 0, t, 0));
      } else {
        const int ra = kDataBase + static_cast<int>(rng_.uniform_index(kDataCount));
        const int rb = kDataBase + static_cast<int>(rng_.uniform_index(kDataCount));
        p.block(cond).instructions.push_back(make(Opcode::kBlt, 0, ra, rb));
      }
      int remaining = budget - 1;
      const int then_budget = 1 + static_cast<int>(rng_.uniform_index(
                                      static_cast<std::uint64_t>(std::min(remaining - 2, 4))));
      remaining -= then_budget;
      const int else_budget = 1 + static_cast<int>(rng_.uniform_index(
                                      static_cast<std::uint64_t>(std::min(remaining - 1, 4))));
      remaining -= else_budget;

      const BlockId then_b = build_region(p, then_budget, depth + 1);
      const BlockId then_exit = region_exit_;
      const BlockId else_b = build_region(p, else_budget, depth + 1);
      const BlockId else_exit = region_exit_;
      p.block(cond).taken = then_b;
      p.block(cond).fallthrough = else_b;

      if (remaining > 0) {
        const BlockId join = build_region(p, remaining, depth);
        p.block(then_exit).instructions.push_back(make(Opcode::kJmp));
        p.block(then_exit).taken = join;
        p.block(else_exit).fallthrough = join;
        return cond;  // region_exit_ from the tail region
      }
      // No join budget: merge by making else_exit the region exit and
      // jumping the then side into it — needs a join block, so reserve one
      // by construction (remaining >= 1 is guaranteed by the budgets).
      TE_CHECK(false, "diamond region must leave at least one join block");
      return cond;
    }
    // Plain block followed by the rest of the region.
    const BlockId b = acquire();
    fill_block(p, b);
    const BlockId rest = build_region(p, budget - 1, depth);
    p.block(b).fallthrough = rest;
    return b;
  }

  const WorkloadSpec& spec_;
  Rng rng_;
  Rng knob_rng_;
  BlockId next_block_ = 0;
  BlockId region_exit_ = isa::kNoBlock;
};

}  // namespace

Program generate_program(const WorkloadSpec& spec) {
  Builder b(spec, Rng(spec.seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull));
  return b.build();
}

std::vector<isa::ProgramInput> generate_inputs(const WorkloadSpec& spec, std::size_t runs,
                                               std::uint64_t seed) {
  TE_REQUIRE(runs > 0, "need at least one run");
  std::vector<isa::ProgramInput> inputs;
  inputs.reserve(runs);
  Rng rng(seed ^ (spec.seed << 17));
  for (std::size_t r = 0; r < runs; ++r) {
    isa::ProgramInput in;
    in.registers.assign(32, 0);
    for (int d = 0; d < kDataCount; ++d) {
      std::uint32_t v = static_cast<std::uint32_t>(rng.next_u64());
      v &= spec.operands.and_mask;
      if (rng.uniform() < spec.operands.run_heavy_fraction) v |= spec.operands.or_bias;
      in.registers[kDataBase + d] = v;
    }
    for (int a = 0; a < kAddrCount; ++a)
      in.registers[kAddrBase + a] = static_cast<std::uint32_t>(rng.uniform_index(1u << 14)) * 4u;
    in.registers[kMaskReg] = spec.operands.and_mask;
    in.registers[kBiasReg] = spec.operands.or_bias;
    in.registers[kSatAReg] = 0xFFFF0000u;
    in.registers[kSatBReg] = 0x0000FFFFu;
    in.memory_seed = rng.next_u64();
    inputs.push_back(std::move(in));
  }
  return inputs;
}

isa::ExecutorConfig executor_config_for(const WorkloadSpec& spec, std::size_t runs, double scale,
                                        std::size_t samples_per_edge) {
  TE_REQUIRE(runs > 0, "need at least one run");
  isa::ExecutorConfig cfg;
  cfg.max_instructions = std::max<std::uint64_t>(1, spec.simulated_instructions(scale) / runs);
  cfg.samples_per_edge = samples_per_edge;
  cfg.sampling_seed = spec.seed * 31 + 7;
  return cfg;
}

}  // namespace terrors::workloads
