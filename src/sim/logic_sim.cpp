#include "sim/logic_sim.hpp"

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace terrors::sim {

using netlist::Gate;
using netlist::GateId;
using netlist::GateKind;

LogicSimulator::LogicSimulator(const netlist::Netlist& nl) : nl_(nl) {
  TE_REQUIRE(nl.finalized(), "simulator needs a finalized netlist");
  values_.assign(nl.size(), 0);
  prev_values_.assign(nl.size(), 0);
  pending_inputs_.assign(nl.size(), 0);
  activated_.assign(nl.size(), 0);
  reset();
}

void LogicSimulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(pending_inputs_.begin(), pending_inputs_.end(), 0);
  std::fill(activated_.begin(), activated_.end(), 0);
  cycle_ = 0;
  settle();
  prev_values_ = values_;
}

void LogicSimulator::set_input(GateId input, bool v) {
  TE_REQUIRE(nl_.gate(input).kind == GateKind::kInput, "set_input on a non-input gate");
  // Staged: the value takes effect in the cycle started by the next step(),
  // so driving inputs never contaminates the previous cycle's settled state.
  pending_inputs_[input] = v ? 1 : 0;
}

void LogicSimulator::set_input_word(const std::vector<GateId>& word, std::uint64_t v) {
  TE_REQUIRE(word.size() <= 64, "input word too wide");
  for (std::size_t i = 0; i < word.size(); ++i) set_input(word[i], ((v >> i) & 1ull) != 0);
}

std::uint64_t LogicSimulator::value_word(const std::vector<GateId>& word) const {
  TE_REQUIRE(word.size() <= 64, "word too wide");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < word.size(); ++i)
    if (value(word[i])) v |= (1ull << i);
  return v;
}

void LogicSimulator::force_state(GateId dff, bool v) {
  TE_REQUIRE(nl_.gate(dff).kind == GateKind::kDff, "force_state on a non-DFF gate");
  values_[dff] = v ? 1 : 0;
}

void LogicSimulator::settle() {
  for (GateId id : nl_.topo_order()) {
    const Gate& g = nl_.gate(id);
    bool v = false;
    switch (g.kind) {
      case GateKind::kBuf:
        v = values_[g.fanin[0]] != 0;
        break;
      case GateKind::kInv:
        v = values_[g.fanin[0]] == 0;
        break;
      case GateKind::kAnd2:
        v = values_[g.fanin[0]] != 0 && values_[g.fanin[1]] != 0;
        break;
      case GateKind::kNand2:
        v = !(values_[g.fanin[0]] != 0 && values_[g.fanin[1]] != 0);
        break;
      case GateKind::kOr2:
        v = values_[g.fanin[0]] != 0 || values_[g.fanin[1]] != 0;
        break;
      case GateKind::kNor2:
        v = !(values_[g.fanin[0]] != 0 || values_[g.fanin[1]] != 0);
        break;
      case GateKind::kXor2:
        v = (values_[g.fanin[0]] != 0) != (values_[g.fanin[1]] != 0);
        break;
      case GateKind::kXnor2:
        v = (values_[g.fanin[0]] != 0) == (values_[g.fanin[1]] != 0);
        break;
      case GateKind::kMux2:
        v = values_[g.fanin[2]] != 0 ? values_[g.fanin[1]] != 0 : values_[g.fanin[0]] != 0;
        break;
      default:
        TE_CHECK(false, "non-combinational gate in topo order");
    }
    values_[id] = v ? 1 : 0;
  }
  // Primary outputs mirror their driver.
  for (GateId id : nl_.outputs()) values_[id] = values_[nl_.gate(id).fanin[0]];
  // Constants.
  for (GateId id = 0; id < nl_.size(); ++id) {
    const GateKind k = nl_.gate(id).kind;
    if (k == GateKind::kConst1) values_[id] = 1;
    if (k == GateKind::kConst0) values_[id] = 0;
  }
}

void LogicSimulator::step() {
  // 1. Remember the previous cycle's settled values (activation baseline).
  prev_values_ = values_;
  // 2. Flip-flops capture their data input's previous settled value.
  for (GateId id : nl_.dffs()) values_[id] = prev_values_[nl_.gate(id).fanin[0]];
  // 3. Primary inputs take their newly driven values.
  for (GateId id : nl_.inputs()) values_[id] = pending_inputs_[id];
  // 4. Combinational logic settles.
  settle();
  // 5. Activation per Def. 3.2.
  std::uint64_t toggles = 0;
  for (GateId id = 0; id < nl_.size(); ++id) {
    activated_[id] = values_[id] != prev_values_[id] ? 1 : 0;
    toggles += activated_[id];
  }
  ++cycle_;

  static obs::Counter& cycles_metric = obs::MetricsRegistry::instance().counter("sim.cycles");
  static obs::Counter& toggles_metric =
      obs::MetricsRegistry::instance().counter("sim.gate_toggles");
  cycles_metric.increment();
  toggles_metric.increment(toggles);
}

}  // namespace terrors::sim
