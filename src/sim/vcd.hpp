// Minimal VCD (value change dump) text writer, for exporting simulation
// traces in the industry format the paper's flow consumes (Figure 1).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic_sim.hpp"

namespace terrors::sim {

/// Streams a VCD file for a selected set of nets.  Usage:
///   VcdWriter vcd(out, nl, watched);
///   loop { sim.step(); vcd.sample(sim); }
class VcdWriter {
 public:
  /// `watched` lists the gate ids to dump; names come from the netlist.
  VcdWriter(std::ostream& out, const netlist::Netlist& nl, std::vector<netlist::GateId> watched,
            std::string timescale = "1ps", double period_ps = 1000.0);

  /// Emit value changes for the simulator's current cycle.
  void sample(const LogicSimulator& sim);

 private:
  static std::string identifier(std::size_t index);

  std::ostream& out_;
  std::vector<netlist::GateId> watched_;
  std::vector<int> last_;  // -1 = not yet dumped
  double period_ps_;
  std::uint64_t sample_index_ = 0;
};

}  // namespace terrors::sim
