#include "sim/activation.hpp"

#include "support/check.hpp"

namespace terrors::sim {

ActivationTrace::ActivationTrace(std::size_t gate_count)
    : gate_count_(gate_count), words_per_cycle_((gate_count + 63) / 64) {
  TE_REQUIRE(gate_count > 0, "activation trace over an empty netlist");
}

void ActivationTrace::record(const std::vector<std::uint8_t>& flags) {
  TE_REQUIRE(flags.size() == gate_count_, "activation flag size mismatch");
  const std::size_t base = bits_.size();
  bits_.resize(base + words_per_cycle_, 0);
  for (std::size_t g = 0; g < gate_count_; ++g) {
    if (flags[g] != 0) bits_[base + g / 64] |= (1ull << (g % 64));
  }
  ++cycles_;
}

void ActivationTrace::clear() {
  bits_.clear();
  cycles_ = 0;
}

bool ActivationTrace::activated(std::size_t t, netlist::GateId gate) const {
  TE_REQUIRE(t < cycles_, "cycle out of range");
  TE_REQUIRE(gate < gate_count_, "gate out of range");
  return (bits_[t * words_per_cycle_ + gate / 64] >> (gate % 64)) & 1ull;
}

}  // namespace terrors::sim
