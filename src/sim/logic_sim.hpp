// Levelised two-value gate-level logic simulation.
//
// The simulator realises Definition 3.2 of the paper: a gate is *activated*
// in a clock cycle iff, were the clock period sufficiently long, its output
// would eventually change.  On a glitch-free zero-delay abstraction this is
// exactly "the settled output value in cycle t differs from cycle t-1".
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace terrors::sim {

class LogicSimulator {
 public:
  explicit LogicSimulator(const netlist::Netlist& nl);

  /// Reset all state, inputs, and history to 0 and settle.
  void reset();

  /// Drive a primary input for the upcoming cycle.
  void set_input(netlist::GateId input, bool value);
  /// Drive a word (little-endian) of primary inputs.
  void set_input_word(const std::vector<netlist::GateId>& word, std::uint64_t value);

  /// Advance one clock cycle: flip-flops capture the previous cycle's
  /// settled D values, then combinational logic settles with the currently
  /// driven inputs.  Activation flags are recomputed.
  void step();

  /// Settled value of a gate's output in the current cycle.
  [[nodiscard]] bool value(netlist::GateId g) const { return values_[g] != 0; }
  /// Read a word (little-endian) of settled values.
  [[nodiscard]] std::uint64_t value_word(const std::vector<netlist::GateId>& word) const;
  /// Whether the gate was activated in the current cycle (Def. 3.2).
  [[nodiscard]] bool activated(netlist::GateId g) const { return activated_[g] != 0; }
  /// Dense activation flags, indexed by gate id.
  [[nodiscard]] const std::vector<std::uint8_t>& activation_flags() const { return activated_; }
  /// Cycles elapsed since reset.
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  /// Force a flip-flop's current output (used to model error-correction
  /// induced state, e.g. a flushed pipeline).
  void force_state(netlist::GateId dff, bool value);

  [[nodiscard]] const netlist::Netlist& nl() const { return nl_; }

 private:
  void settle();

  const netlist::Netlist& nl_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> prev_values_;
  std::vector<std::uint8_t> pending_inputs_;  ///< staged until the next step()
  std::vector<std::uint8_t> activated_;
  std::uint64_t cycle_ = 0;
};

}  // namespace terrors::sim
