#include "sim/vcd.hpp"

#include <cmath>

#include "support/check.hpp"

namespace terrors::sim {

VcdWriter::VcdWriter(std::ostream& out, const netlist::Netlist& nl,
                     std::vector<netlist::GateId> watched, std::string timescale,
                     double period_ps)
    : out_(out), watched_(std::move(watched)), period_ps_(period_ps) {
  TE_REQUIRE(!watched_.empty(), "VCD writer needs at least one watched net");
  TE_REQUIRE(period_ps_ > 0.0, "VCD clock period must be positive");
  last_.assign(watched_.size(), -1);
  out_ << "$date reproduction run $end\n";
  out_ << "$version terrors VcdWriter $end\n";
  out_ << "$timescale " << timescale << " $end\n";
  out_ << "$scope module pipeline $end\n";
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    const auto& name = nl.name(watched_[i]);
    out_ << "$var wire 1 " << identifier(i) << " "
         << (name.empty() ? "g" + std::to_string(watched_[i]) : name) << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::identifier(std::size_t index) {
  // Printable-ASCII identifier code, base-94 starting at '!'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdWriter::sample(const LogicSimulator& sim) {
  bool emitted_time = false;
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    const int v = sim.value(watched_[i]) ? 1 : 0;
    if (v == last_[i]) continue;
    if (!emitted_time) {
      out_ << "#" << static_cast<std::uint64_t>(std::llround(
                         static_cast<double>(sample_index_) * period_ps_))
           << "\n";
      emitted_time = true;
    }
    out_ << v << identifier(i) << "\n";
    last_[i] = v;
  }
  ++sample_index_;
}

}  // namespace terrors::sim
