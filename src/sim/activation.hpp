// Per-cycle activation traces: the in-memory equivalent of the paper's VCD
// input to Algorithm 1 — VCD(t) is "the set of all activated gates in
// cycle t" (Table 1).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace terrors::sim {

/// A windowed record of activation bitsets, one per recorded cycle.
class ActivationTrace {
 public:
  explicit ActivationTrace(std::size_t gate_count);

  /// Append the activation flags of one cycle (size must equal gate_count).
  void record(const std::vector<std::uint8_t>& flags);
  void clear();

  [[nodiscard]] std::size_t cycles() const { return cycles_; }
  [[nodiscard]] std::size_t gate_count() const { return gate_count_; }
  /// VCD(t) membership query: was `gate` activated in recorded cycle t?
  [[nodiscard]] bool activated(std::size_t t, netlist::GateId gate) const;

 private:
  std::size_t gate_count_;
  std::size_t words_per_cycle_;
  std::size_t cycles_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace terrors::sim
