// Minimal VCD (value change dump) parser: the inverse of VcdWriter.
//
// The paper's Figure 1 flow feeds Algorithm 1 from an RTL simulator's VCD;
// this parser lets the DTA layer consume dumps produced by an external
// simulator (or by our own writer) instead of the in-process logic
// simulator.  Supported subset: $timescale/$var/$enddefinitions headers,
// scalar (1-bit) value changes, #timestamp records, $dumpvars sections.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <unordered_map>
#include <vector>

namespace terrors::sim {

struct VcdSignal {
  std::string identifier;  ///< short ASCII id code
  std::string name;        ///< declared wire name
  int width = 1;
};

/// A parsed dump: signal table plus per-sample values, sampled at
/// multiples of the given clock period (value changes between samples
/// resolve to the last write).
class VcdDump {
 public:
  [[nodiscard]] const std::vector<VcdSignal>& signals() const { return signals_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  /// Value of signal `s` (index into signals()) at sample t.
  [[nodiscard]] bool value(std::size_t t, std::size_t s) const;
  /// Was the signal's sampled value different from the previous sample?
  /// (Def. 3.2 activation on the sampled abstraction; t = 0 compares
  /// against the initial dumpvars values.)
  [[nodiscard]] bool changed(std::size_t t, std::size_t s) const;
  /// Index of a signal by declared name; -1 if absent.
  [[nodiscard]] std::ptrdiff_t signal_index(const std::string& name) const;

 private:
  friend class VcdParser;
  std::vector<VcdSignal> signals_;
  std::vector<std::vector<std::uint8_t>> samples_;  ///< [t][signal]
};

/// Streaming parser.  `period_ps` defines the sampling grid: a sample
/// closes whenever a #timestamp crosses the next multiple of the period.
class VcdParser {
 public:
  explicit VcdParser(double period_ps);

  /// Parse an entire stream.  Throws std::invalid_argument on malformed
  /// input (unknown identifier codes, missing $enddefinitions, vector
  /// changes for undeclared widths).
  [[nodiscard]] VcdDump parse(std::istream& in) const;

 private:
  double period_ps_;
};

}  // namespace terrors::sim
