#include "sim/vcd_parser.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "robust/error.hpp"
#include "robust/fault_injection.hpp"
#include "support/check.hpp"

namespace terrors::sim {

bool VcdDump::value(std::size_t t, std::size_t s) const {
  TE_REQUIRE(t < samples_.size(), "sample index out of range");
  TE_REQUIRE(s < signals_.size(), "signal index out of range");
  return samples_[t][s] != 0;
}

bool VcdDump::changed(std::size_t t, std::size_t s) const {
  TE_REQUIRE(t < samples_.size(), "sample index out of range");
  if (t == 0) return false;  // no pre-dump baseline
  return samples_[t][s] != samples_[t - 1][s];
}

std::ptrdiff_t VcdDump::signal_index(const std::string& name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    if (signals_[i].name == name) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

VcdParser::VcdParser(double period_ps) : period_ps_(period_ps) {
  TE_REQUIRE(period_ps > 0.0, "sampling period must be positive");
}

VcdDump VcdParser::parse(std::istream& in) const {
  robust::maybe_fault("vcd.parse");
  VcdDump dump;
  std::unordered_map<std::string, std::size_t> by_id;

  // Byte offset of the most recently extracted token, for diagnostics.
  // tellg() can be -1 on a stream whose eofbit is already set; those late
  // failures report "near end of stream" instead of a bogus offset.
  long long tok_offset = -1;
  std::string tok;
  auto next = [&]() -> bool {
    if (!(in >> tok)) return false;
    const auto g = in.tellg();
    tok_offset = g >= 0 ? static_cast<long long>(g) - static_cast<long long>(tok.size()) : -1;
    return true;
  };
  auto fail = [&](const std::string& msg) {
    const std::string where =
        tok_offset >= 0 ? "at byte " + std::to_string(tok_offset) : "near end of stream";
    robust::raise(robust::Category::kInput, "VCD parse error " + where + ": " + msg);
  };

  // --- header ---------------------------------------------------------------
  bool definitions_done = false;
  while (!definitions_done && next()) {
    if (tok == "$var") {
      std::string type;
      int width = 0;
      std::string id;
      std::string name;
      if (!(in >> type >> width >> id >> name)) fail("truncated $var declaration");
      // Consume everything up to $end (names may carry [ranges]).
      std::string rest;
      while (in >> rest && rest != "$end") name += rest;
      if (rest != "$end") fail("$var declaration missing $end");
      if (width < 1) fail("bad $var width for signal '" + name + "'");
      by_id.emplace(id, dump.signals_.size());
      dump.signals_.push_back({id, name, width});
    } else if (tok == "$enddefinitions") {
      std::string end;
      in >> end;
      if (end != "$end") fail("malformed $enddefinitions");
      definitions_done = true;
    } else if (tok[0] == '$') {
      // Skip other header sections ($date, $version, $timescale, $scope...).
      if (tok != "$end") {
        std::string skip;
        while (in >> skip && skip != "$end") {
        }
      }
    } else {
      fail("unexpected token before $enddefinitions: " + tok);
    }
  }
  if (!definitions_done) fail("VCD stream has no $enddefinitions");
  if (dump.signals_.empty()) fail("VCD stream declares no signals");

  // --- value changes ----------------------------------------------------------
  std::vector<std::uint8_t> current(dump.signals_.size(), 0);
  double sample_edge = period_ps_;  // next sampling boundary
  bool any_time = false;
  std::uint64_t last_ticks = 0;
  // True while the window past the last emitted sample holds content (a
  // timestamp strictly inside it, or a value change): only then does EOF
  // close a final partial sample.  A dump whose last `#t` lands exactly on
  // a sampling edge was already fully emitted by close_samples_until.
  bool partial_pending = false;

  auto close_samples_until = [&](double time_ps) {
    while (time_ps >= sample_edge) {
      dump.samples_.push_back(current);
      sample_edge += period_ps_;
    }
    partial_pending = time_ps > sample_edge - period_ps_;
  };

  while (next()) {
    if (tok[0] == '#') {
      // VCD timestamps are unsigned decimal tick counts; anything else
      // (sign, fraction, garbage, overflow) is a corrupt dump.
      const std::string digits = tok.substr(1);
      if (digits.empty()) fail("empty timestamp");
      errno = 0;
      char* end = nullptr;
      const unsigned long long ticks = std::strtoull(digits.c_str(), &end, 10);
      if (end != digits.c_str() + digits.size() || digits[0] == '-' || digits[0] == '+') {
        fail("malformed timestamp '" + tok + "'");
      }
      if (errno == ERANGE) fail("timestamp overflow in '" + tok + "'");
      if (any_time && ticks < last_ticks) {
        fail("non-monotonic timestamp '" + tok + "' (previous " +
             std::to_string(last_ticks) + ")");
      }
      last_ticks = ticks;
      close_samples_until(static_cast<double>(ticks));
      any_time = true;
    } else if (tok == "$dumpvars" || tok == "$end" || tok == "$dumpall" || tok == "$dumpon" ||
               tok == "$dumpoff") {
      continue;
    } else if (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' || tok[0] == 'z' ||
               tok[0] == 'X' || tok[0] == 'Z') {
      const std::string id = tok.substr(1);
      auto it = by_id.find(id);
      if (it == by_id.end()) fail("value change for undeclared identifier: " + id);
      // x/z conservatively map to 0.
      current[it->second] = tok[0] == '1' ? 1 : 0;
      partial_pending = true;
    } else if (tok[0] == 'b' || tok[0] == 'B') {
      // Vector change: bWIDTHBITS identifier.
      if (tok.size() < 2) fail("vector change with no bits");
      const char lsb = tok.back();
      std::string id;
      if (!next()) fail("vector change missing identifier");
      id = tok;
      auto it = by_id.find(id);
      if (it == by_id.end()) fail("vector change for undeclared identifier: " + id);
      // Scalar projection: LSB.
      current[it->second] = lsb == '1' ? 1 : 0;
      partial_pending = true;
    } else {
      fail("unexpected token in value-change section: " + tok);
    }
  }
  // Close the final (possibly partial) sample.
  if (any_time && partial_pending) dump.samples_.push_back(current);
  return dump;
}

}  // namespace terrors::sim
