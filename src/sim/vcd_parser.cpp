#include "sim/vcd_parser.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace terrors::sim {

bool VcdDump::value(std::size_t t, std::size_t s) const {
  TE_REQUIRE(t < samples_.size(), "sample index out of range");
  TE_REQUIRE(s < signals_.size(), "signal index out of range");
  return samples_[t][s] != 0;
}

bool VcdDump::changed(std::size_t t, std::size_t s) const {
  TE_REQUIRE(t < samples_.size(), "sample index out of range");
  if (t == 0) return false;  // no pre-dump baseline
  return samples_[t][s] != samples_[t - 1][s];
}

std::ptrdiff_t VcdDump::signal_index(const std::string& name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    if (signals_[i].name == name) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

VcdParser::VcdParser(double period_ps) : period_ps_(period_ps) {
  TE_REQUIRE(period_ps > 0.0, "sampling period must be positive");
}

VcdDump VcdParser::parse(std::istream& in) const {
  VcdDump dump;
  std::unordered_map<std::string, std::size_t> by_id;

  // --- header ---------------------------------------------------------------
  std::string tok;
  bool definitions_done = false;
  while (!definitions_done && in >> tok) {
    if (tok == "$var") {
      std::string type;
      int width = 0;
      std::string id;
      std::string name;
      in >> type >> width >> id >> name;
      // Consume everything up to $end (names may carry [ranges]).
      std::string rest;
      while (in >> rest && rest != "$end") name += rest;
      TE_REQUIRE(width >= 1, "bad $var width");
      by_id.emplace(id, dump.signals_.size());
      dump.signals_.push_back({id, name, width});
    } else if (tok == "$enddefinitions") {
      std::string end;
      in >> end;
      TE_REQUIRE(end == "$end", "malformed $enddefinitions");
      definitions_done = true;
    } else if (tok[0] == '$') {
      // Skip other header sections ($date, $version, $timescale, $scope...).
      if (tok != "$end") {
        std::string skip;
        while (in >> skip && skip != "$end") {
        }
      }
    } else {
      TE_REQUIRE(false, "unexpected token before $enddefinitions: " + tok);
    }
  }
  TE_REQUIRE(definitions_done, "VCD stream has no $enddefinitions");
  TE_REQUIRE(!dump.signals_.empty(), "VCD stream declares no signals");

  // --- value changes ----------------------------------------------------------
  std::vector<std::uint8_t> current(dump.signals_.size(), 0);
  double sample_edge = period_ps_;  // next sampling boundary
  bool any_time = false;
  // True while the window past the last emitted sample holds content (a
  // timestamp strictly inside it, or a value change): only then does EOF
  // close a final partial sample.  A dump whose last `#t` lands exactly on
  // a sampling edge was already fully emitted by close_samples_until.
  bool partial_pending = false;

  auto close_samples_until = [&](double time_ps) {
    while (time_ps >= sample_edge) {
      dump.samples_.push_back(current);
      sample_edge += period_ps_;
    }
    partial_pending = time_ps > sample_edge - period_ps_;
  };

  while (in >> tok) {
    if (tok[0] == '#') {
      const double t = std::stod(tok.substr(1));
      close_samples_until(t);
      any_time = true;
    } else if (tok == "$dumpvars" || tok == "$end" || tok == "$dumpall" || tok == "$dumpon" ||
               tok == "$dumpoff") {
      continue;
    } else if (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' || tok[0] == 'z' ||
               tok[0] == 'X' || tok[0] == 'Z') {
      const std::string id = tok.substr(1);
      auto it = by_id.find(id);
      TE_REQUIRE(it != by_id.end(), "value change for undeclared identifier: " + id);
      // x/z conservatively map to 0.
      current[it->second] = tok[0] == '1' ? 1 : 0;
      partial_pending = true;
    } else if (tok[0] == 'b' || tok[0] == 'B') {
      // Vector change: bWIDTHBITS identifier.
      std::string id;
      in >> id;
      auto it = by_id.find(id);
      TE_REQUIRE(it != by_id.end(), "vector change for undeclared identifier: " + id);
      // Scalar projection: LSB.
      const char lsb = tok.back();
      current[it->second] = lsb == '1' ? 1 : 0;
      partial_pending = true;
    } else {
      TE_REQUIRE(false, "unexpected token in value-change section: " + tok);
    }
  }
  // Close the final (possibly partial) sample.
  if (any_time && partial_pending) dump.samples_.push_back(current);
  return dump;
}

}  // namespace terrors::sim
