// Content-addressed, versioned on-disk artifact cache.
//
// Layout: one file per artifact at <dir>/<kind>-<16-hex-key>.bin, where the
// key is a 64-bit content hash of everything the artifact's value depends
// on (see cache/key.hpp for the derivation and invalidation rules).  Files
// carry a magic, a format version, the key, the payload length, and a
// trailing FNV checksum of the payload; loads validate all of them and any
// mismatch — truncation, bit rot, a stale format — is treated as a miss so
// the caller silently recomputes (and re-stores) the artifact.
//
// Stores are atomic: the payload is written to a unique temp file in the
// same directory and renamed over the final name, so a crashed or
// concurrent writer can never leave a half-written artifact under the
// content-addressed name.  Concurrent writers of the same key race
// benignly — both rename identical bytes.
//
// Observability: cache.hits / cache.misses / cache.corrupt /
// cache.bytes_written / cache.bytes_read counters, cache.load_seconds and
// cache.store_seconds histograms, and cache.load / cache.store tracer
// spans, all through the src/obs/ layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace terrors::cache {

/// Abstract artifact store: the seam between the framework's warm-start
/// logic and wherever artifacts actually live.  The on-disk ArtifactCache
/// below is the original implementation; `terrors serve` layers a bounded
/// in-memory LRU tier (serve::MemoryArtifactTier) over it so hot artifacts
/// never touch the filesystem between requests.  Implementations must be
/// safe to call from any single analyzing thread at a time and may be
/// shared across framework instances (keys are content-addressed, so two
/// frameworks can only ever agree about a payload).
class ArtifactStore {
 public:
  virtual ~ArtifactStore() = default;

  /// The validated payload of <kind, key>, or nullopt on miss/corruption.
  [[nodiscard]] virtual std::optional<std::vector<std::uint8_t>> load(std::string_view kind,
                                                                      std::uint64_t key) const = 0;

  /// Persist the payload under <kind, key>.  Failures degrade (a store
  /// that cannot write behaves like a store that never hits); they must
  /// not propagate into the analysis.
  virtual void store(std::string_view kind, std::uint64_t key,
                     const std::vector<std::uint8_t>& payload) const = 0;
};

class ArtifactCache final : public ArtifactStore {
 public:
  /// `dir` is created (recursively) if missing.  Must be non-empty; the
  /// "cache disabled" state is expressed by not constructing one.
  explicit ArtifactCache(std::string dir);

  /// The validated payload of <kind, key>, or nullopt on miss/corruption.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(std::string_view kind,
                                                              std::uint64_t key) const override;

  /// Atomically persist the payload under <kind, key>.  I/O failures are
  /// logged and swallowed: a cache that cannot write degrades to a cache
  /// that never hits, never into an analysis failure.
  void store(std::string_view kind, std::uint64_t key,
             const std::vector<std::uint8_t>& payload) const override;

  /// Final on-disk path of an artifact (exposed for tests, e.g. targeted
  /// corruption).
  [[nodiscard]] std::string path_for(std::string_view kind, std::uint64_t key) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

/// The effective cache directory: `configured` if non-empty, else the
/// TERRORS_CACHE_DIR environment variable, else "" (caching off).
[[nodiscard]] std::string resolve_cache_dir(const std::string& configured);

}  // namespace terrors::cache
