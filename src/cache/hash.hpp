// Streamed FNV-1a content hashing for cache-key derivation and payload
// checksums.  Keys are 64-bit digests of the exact bytes that determine an
// artifact's value (netlist geometry, variation/DTS configuration, program
// text, execution profile), so any semantic change to an input changes the
// key and the stale artifact is simply never looked up again.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace terrors::cache {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Incremental FNV-1a 64-bit hasher with typed feed helpers.  All
/// multi-byte values are folded in little-endian order so digests are
/// stable across builds of the same platform family.
class HashStream {
 public:
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }

  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed so "ab","c" and "a","bc" hash differently.
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffsetBasis;
};

/// One-shot digest of a byte range (payload checksums).
inline std::uint64_t fnv1a(const void* data, std::size_t len) {
  HashStream h;
  h.bytes(data, len);
  return h.digest();
}

}  // namespace terrors::cache
