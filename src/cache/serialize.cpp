#include "cache/serialize.hpp"

#include <bit>

namespace terrors::cache {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t ByteReader::u8() {
  if (pos_ >= len_) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::uint64_t ByteReader::count(std::size_t min_elem_bytes) {
  const std::uint64_t n = u64();
  if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
    ok_ = false;
    return 0;
  }
  return n;
}

namespace {

void encode_dts(const dta::DtsGaussian& g, ByteWriter& w) {
  w.f64(g.slack.mean);
  w.f64(g.slack.sd);
  w.f64(g.global_loading);
}

dta::DtsGaussian decode_dts(ByteReader& r) {
  dta::DtsGaussian g;
  g.slack.mean = r.f64();
  g.slack.sd = r.f64();
  g.global_loading = r.f64();
  return g;
}

void encode_edge(const dta::EdgeControlDts& edge, ByteWriter& w) {
  w.u64(edge.instr.size());
  for (const auto& opt : edge.instr) {
    w.u8(opt.has_value() ? 1 : 0);
    if (opt.has_value()) encode_dts(*opt, w);
  }
}

dta::EdgeControlDts decode_edge(ByteReader& r) {
  dta::EdgeControlDts edge;
  const std::uint64_t n = r.count(1);
  if (!r.ok()) return edge;
  edge.instr.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint8_t has = r.u8();
    if (has > 1) {
      r.fail();  // invalid tag: the caller recomputes
      break;
    }
    edge.instr.push_back(has == 1 ? std::optional<dta::DtsGaussian>(decode_dts(r)) : std::nullopt);
  }
  return edge;
}

void encode_linear(const dta::DatapathModel::Linear& l, ByteWriter& w) {
  w.f64(l.base);
  w.f64(l.per_unit);
}

dta::DatapathModel::Linear decode_linear(ByteReader& r) {
  dta::DatapathModel::Linear l;
  l.base = r.f64();
  l.per_unit = r.f64();
  return l;
}

}  // namespace

void encode_control(const std::vector<dta::BlockControlDts>& control,
                    const timing::TimingSpec& spec, ByteWriter& w) {
  w.f64(spec.period_ps);
  w.f64(spec.setup_ps);
  w.u64(control.size());
  for (const auto& block : control) {
    w.u64(block.per_edge.size());
    for (const auto& edge : block.per_edge) encode_edge(edge, w);
    encode_edge(block.entry, w);
  }
}

std::optional<std::vector<dta::BlockControlDts>> decode_control(ByteReader& r,
                                                                const timing::TimingSpec& spec) {
  const double period = r.f64();
  const double setup = r.f64();
  if (!r.ok() || std::bit_cast<std::uint64_t>(period) != std::bit_cast<std::uint64_t>(spec.period_ps) ||
      std::bit_cast<std::uint64_t>(setup) != std::bit_cast<std::uint64_t>(spec.setup_ps))
    return std::nullopt;
  const std::uint64_t nb = r.count(8);
  std::vector<dta::BlockControlDts> out;
  out.reserve(nb);
  for (std::uint64_t b = 0; b < nb && r.ok(); ++b) {
    dta::BlockControlDts block;
    const std::uint64_t ne = r.count(8);
    if (!r.ok()) break;
    block.per_edge.reserve(ne);
    for (std::uint64_t e = 0; e < ne && r.ok(); ++e) block.per_edge.push_back(decode_edge(r));
    block.entry = decode_edge(r);
    out.push_back(std::move(block));
  }
  if (!r.done()) return std::nullopt;
  return out;
}

void encode_datapath(const dta::DatapathModel::Params& params, ByteWriter& w) {
  encode_linear(params.adder_mean, w);
  encode_linear(params.adder_sd, w);
  encode_linear(params.adder_gl, w);
  encode_dts(params.logic, w);
  encode_dts(params.shift, w);
  encode_dts(params.pass, w);
  w.f64(params.period_ref);
}

std::optional<dta::DatapathModel::Params> decode_datapath(ByteReader& r) {
  dta::DatapathModel::Params p;
  p.adder_mean = decode_linear(r);
  p.adder_sd = decode_linear(r);
  p.adder_gl = decode_linear(r);
  p.logic = decode_dts(r);
  p.shift = decode_dts(r);
  p.pass = decode_dts(r);
  p.period_ref = r.f64();
  if (!r.done()) return std::nullopt;
  return p;
}

void encode_paths(const std::vector<timing::PathEnumerator::WarmedEndpoint>& warmed,
                  ByteWriter& w) {
  w.u64(warmed.size());
  for (const auto& we : warmed) {
    w.u32(we.endpoint);
    w.u8(we.done ? 1 : 0);
    w.u8(we.guard_tripped ? 1 : 0);
    w.u64(we.paths.size());
    for (const auto& p : we.paths) {
      w.u32(p.endpoint);
      w.f64(p.delay_ps);
      w.u64(p.gates.size());
      for (const netlist::GateId g : p.gates) w.u32(g);
    }
  }
}

std::optional<std::vector<timing::PathEnumerator::WarmedEndpoint>> decode_paths(ByteReader& r) {
  const std::uint64_t n = r.count(6);
  std::vector<timing::PathEnumerator::WarmedEndpoint> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    timing::PathEnumerator::WarmedEndpoint we;
    we.endpoint = r.u32();
    we.done = r.u8() != 0;
    we.guard_tripped = r.u8() != 0;
    const std::uint64_t np = r.count(12);
    if (!r.ok()) break;
    we.paths.reserve(np);
    for (std::uint64_t j = 0; j < np && r.ok(); ++j) {
      timing::TimingPath p;
      p.endpoint = r.u32();
      p.delay_ps = r.f64();
      const std::uint64_t ng = r.count(4);
      if (!r.ok()) break;
      p.gates.reserve(ng);
      for (std::uint64_t k = 0; k < ng; ++k) p.gates.push_back(r.u32());
      we.paths.push_back(std::move(p));
    }
    out.push_back(std::move(we));
  }
  if (!r.done()) return std::nullopt;
  return out;
}

}  // namespace terrors::cache
