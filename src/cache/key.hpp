// Content-addressed cache-key derivation: one 64-bit component hash per
// input object, combined per artifact.  Every key starts with
// kModelVersion, so bumping it after any change to characterisation or
// serialisation semantics invalidates the whole cache at once.
//
// Invalidation rules (what each artifact's key covers):
//   datapath  : model version + netlist + variation config + DTS config
//   paths     : model version + netlist + path config + top_k
//   control   : model version + netlist + variation config + DTS config +
//               characterizer config + timing spec + program + profile
#pragma once

#include <cstdint>
#include <initializer_list>

#include "dta/control_characterizer.hpp"
#include "dta/dts_analyzer.hpp"
#include "isa/executor.hpp"
#include "isa/program.hpp"
#include "netlist/netlist.hpp"
#include "timing/paths.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace terrors::cache {

/// Bump whenever the meaning or layout of any cached artifact changes;
/// folded into every key so stale artifacts are never even looked up.
inline constexpr std::uint32_t kModelVersion = 1;

[[nodiscard]] std::uint64_t hash_netlist(const netlist::Netlist& nl);
[[nodiscard]] std::uint64_t hash_variation(const timing::VariationConfig& cfg);
[[nodiscard]] std::uint64_t hash_spec(const timing::TimingSpec& spec);
[[nodiscard]] std::uint64_t hash_dts_config(const dta::DtsConfig& cfg);
[[nodiscard]] std::uint64_t hash_path_config(const timing::PathConfig& cfg);
[[nodiscard]] std::uint64_t hash_characterizer_config(const dta::ControlCharacterizerConfig& cfg);
[[nodiscard]] std::uint64_t hash_program(const isa::Program& program);
[[nodiscard]] std::uint64_t hash_profile(const isa::ProgramProfile& profile);

/// Order-sensitive combination of component hashes (always lead with
/// kModelVersion).
[[nodiscard]] std::uint64_t combine(std::initializer_list<std::uint64_t> parts);

}  // namespace terrors::cache
