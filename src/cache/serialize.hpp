// Binary (de)serialisation of the three heavy artifacts the cache stores:
// per-(block, edge) control DTS tables, trained datapath-model parameters,
// and the frozen path-enumerator path set.  Encoding is little-endian
// fixed-width with bit-exact doubles (std::bit_cast), so a decoded
// artifact is byte-for-byte the value that was computed — the foundation
// of the warm == cold bit-identity contract.
//
// Decoders are corruption-tolerant by construction: every read is
// bounds-checked, counts are validated against the remaining byte budget,
// and any violation yields nullopt (the caller falls back to recompute)
// instead of throwing or allocating from garbage lengths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dta/control_characterizer.hpp"
#include "dta/datapath_model.hpp"
#include "timing/paths.hpp"
#include "timing/sta.hpp"

namespace terrors::cache {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte range; any out-of-range read sets the
/// fail flag and returns zero.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// An element count that must be plausible: fails unless
  /// count * min_elem_bytes still fits in the remaining bytes.
  std::uint64_t count(std::size_t min_elem_bytes);

  /// Mark the stream invalid (decoder found a malformed value).
  void fail() { ok_ = false; }
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the stream decoded cleanly AND was fully consumed.
  [[nodiscard]] bool done() const { return ok_ && pos_ == len_; }
  [[nodiscard]] std::size_t remaining() const { return len_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- control DTS tables ------------------------------------------------------
/// The artifact records the timing spec it was characterised under; decode
/// rejects it (nullopt) unless the caller's spec matches bit-for-bit, as a
/// second line of defence behind the spec component of the cache key.
void encode_control(const std::vector<dta::BlockControlDts>& control,
                    const timing::TimingSpec& spec, ByteWriter& w);
std::optional<std::vector<dta::BlockControlDts>> decode_control(ByteReader& r,
                                                                const timing::TimingSpec& spec);

// --- datapath model ----------------------------------------------------------
void encode_datapath(const dta::DatapathModel::Params& params, ByteWriter& w);
std::optional<dta::DatapathModel::Params> decode_datapath(ByteReader& r);

// --- frozen path set ---------------------------------------------------------
void encode_paths(const std::vector<timing::PathEnumerator::WarmedEndpoint>& warmed,
                  ByteWriter& w);
std::optional<std::vector<timing::PathEnumerator::WarmedEndpoint>> decode_paths(ByteReader& r);

}  // namespace terrors::cache
