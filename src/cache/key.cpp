#include "cache/key.hpp"

#include "cache/hash.hpp"

namespace terrors::cache {

namespace {

void feed_ex_context(HashStream& h, const isa::ExContext& cx) {
  h.u32(cx.a);
  h.u32(cx.b);
  h.u8(static_cast<std::uint8_t>(cx.unit));
  h.u8(static_cast<std::uint8_t>(cx.op));
}

void feed_edge_samples(HashStream& h, const isa::EdgeSamples& es) {
  h.u64(es.seen);
  h.u64(es.samples.size());
  for (const auto& sample : es.samples) {
    h.u64(sample.instrs.size());
    for (const auto& ctx : sample.instrs) {
      feed_ex_context(h, ctx.cur);
      feed_ex_context(h, ctx.prev);
      h.u32(ctx.result);
      h.u32(ctx.pc);
    }
  }
}

}  // namespace

std::uint64_t hash_netlist(const netlist::Netlist& nl) {
  HashStream h;
  h.u64(nl.size());
  h.u8(nl.stage_count());
  for (netlist::GateId g = 0; g < nl.size(); ++g) {
    const netlist::Gate& gate = nl.gate(g);
    h.u8(static_cast<std::uint8_t>(gate.kind));
    for (const netlist::GateId f : gate.fanin) h.u32(f);
    h.u8(gate.stage);
    h.u8(static_cast<std::uint8_t>(gate.endpoint_class));
    h.f32(gate.x);
    h.f32(gate.y);
    h.f32(gate.delay_ps);
  }
  return h.digest();
}

std::uint64_t hash_variation(const timing::VariationConfig& cfg) {
  HashStream h;
  h.f64(cfg.sigma);
  h.f64(cfg.w_global);
  h.f64(cfg.w_spatial);
  h.f64(cfg.w_indep);
  h.i32(cfg.anchors_x);
  h.i32(cfg.anchors_y);
  h.f64(cfg.corr_length);
  h.u8(cfg.spatial_enabled ? 1 : 0);
  return h.digest();
}

std::uint64_t hash_spec(const timing::TimingSpec& spec) {
  HashStream h;
  h.f64(spec.period_ps);
  h.f64(spec.setup_ps);
  return h.digest();
}

std::uint64_t hash_dts_config(const dta::DtsConfig& cfg) {
  HashStream h;
  h.u64(cfg.top_k);
  h.f64(cfg.percentile_low);
  h.f64(cfg.percentile_high);
  h.u8(static_cast<std::uint8_t>(cfg.ordering));
  h.f64(cfg.prune_sigmas);
  return h.digest();
}

std::uint64_t hash_path_config(const timing::PathConfig& cfg) {
  HashStream h;
  h.u64(cfg.max_paths);
  h.u64(cfg.max_expansions);
  return h.digest();
}

std::uint64_t hash_characterizer_config(const dta::ControlCharacterizerConfig& cfg) {
  HashStream h;
  h.i32(cfg.pred_tail);
  h.i32(cfg.warmup_nops);
  return h.digest();
}

std::uint64_t hash_program(const isa::Program& program) {
  // The name is cosmetic; only structure and instruction content matter.
  HashStream h;
  h.u64(program.block_count());
  h.u32(program.entry());
  for (isa::BlockId b = 0; b < program.block_count(); ++b) {
    const isa::BasicBlock& blk = program.block(b);
    h.u32(blk.taken);
    h.u32(blk.fallthrough);
    h.u64(blk.size());
    for (const isa::Instruction& inst : blk.instructions) {
      h.u8(static_cast<std::uint8_t>(inst.op));
      h.u8(inst.rd);
      h.u8(inst.rs1);
      h.u8(inst.rs2);
      h.i32(inst.imm);
    }
  }
  return h.digest();
}

std::uint64_t hash_profile(const isa::ProgramProfile& profile) {
  HashStream h;
  h.u64(profile.total_instructions);
  h.u64(profile.runs);
  h.u64(profile.blocks.size());
  for (const isa::BlockProfile& bp : profile.blocks) {
    h.u64(bp.executions);
    h.u64(bp.entry_count);
    h.u64(bp.edge_counts.size());
    for (const std::uint64_t c : bp.edge_counts) h.u64(c);
    feed_edge_samples(h, bp.entry_samples);
    h.u64(bp.edge_samples.size());
    for (const auto& es : bp.edge_samples) feed_edge_samples(h, es);
  }
  return h.digest();
}

std::uint64_t combine(std::initializer_list<std::uint64_t> parts) {
  HashStream h;
  h.u64(parts.size());
  for (const std::uint64_t p : parts) h.u64(p);
  return h.digest();
}

}  // namespace terrors::cache
