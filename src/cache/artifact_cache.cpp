#include "cache/artifact_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "cache/hash.hpp"
#include "cache/serialize.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/degrade.hpp"
#include "robust/fault_injection.hpp"
#include "support/check.hpp"

namespace terrors::cache {

namespace {

constexpr std::uint32_t kMagic = 0x41434554u;  // "TECA"
constexpr std::uint32_t kFormatVersion = 1;
// magic + format + key + payload size up front, payload checksum behind.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr std::size_t kTrailerBytes = 8;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct CacheMetrics {
  obs::Counter& hits = obs::MetricsRegistry::instance().counter("cache.hits");
  obs::Counter& misses = obs::MetricsRegistry::instance().counter("cache.misses");
  obs::Counter& corrupt = obs::MetricsRegistry::instance().counter("cache.corrupt");
  obs::Counter& bytes_written = obs::MetricsRegistry::instance().counter("cache.bytes_written");
  obs::Counter& bytes_read = obs::MetricsRegistry::instance().counter("cache.bytes_read");
  /// Failed stores (write, publish-rename, or temp cleanup): the artifact
  /// is simply not persisted, but a silently cold cache must be visible.
  obs::Counter& store_errors = obs::MetricsRegistry::instance().counter("cache.store_errors");
  obs::Histogram& load_seconds = obs::MetricsRegistry::instance().histogram("cache.load_seconds");
  obs::Histogram& store_seconds =
      obs::MetricsRegistry::instance().histogram("cache.store_seconds");
  static CacheMetrics& instance() {
    static CacheMetrics m;
    return m;
  }
};

}  // namespace

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  TE_REQUIRE(!dir_.empty(), "ArtifactCache needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    obs::log_warn("cache", "cannot create cache directory",
                  {{"dir", dir_}, {"error", ec.message()}});
  }
}

std::string ArtifactCache::path_for(std::string_view kind, std::uint64_t key) const {
  return (std::filesystem::path(dir_) / (std::string(kind) + "-" + hex16(key) + ".bin")).string();
}

std::optional<std::vector<std::uint8_t>> ArtifactCache::load(std::string_view kind,
                                                             std::uint64_t key) const {
  robust::maybe_fault("cache.read");
  CacheMetrics& m = CacheMetrics::instance();
  obs::ScopedSpan span("cache.load");
  const auto t0 = std::chrono::steady_clock::now();
  const std::string path = path_for(kind, key);

  auto miss = [&](const char* why, bool corrupt) -> std::optional<std::vector<std::uint8_t>> {
    m.misses.increment();
    if (corrupt) {
      m.corrupt.increment();
      obs::log_warn("cache", "corrupt artifact, recomputing",
                    {{"kind", std::string(kind)}, {"path", path}, {"why", why}});
    } else {
      obs::log_debug("cache", "miss", {{"kind", std::string(kind)}, {"why", why}});
    }
    m.load_seconds.observe(seconds_since(t0));
    return std::nullopt;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return miss("absent", false);
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return miss("read error", true);
  if (file.size() < kHeaderBytes + kTrailerBytes) return miss("truncated header", true);

  ByteReader header(file.data(), kHeaderBytes);
  if (header.u32() != kMagic) return miss("bad magic", true);
  if (header.u32() != kFormatVersion) return miss("format version", true);
  if (header.u64() != key) return miss("key mismatch", true);
  const std::uint64_t payload_size = header.u64();
  if (payload_size != file.size() - kHeaderBytes - kTrailerBytes)
    return miss("payload size", true);

  const std::uint8_t* payload = file.data() + kHeaderBytes;
  ByteReader trailer(payload + payload_size, kTrailerBytes);
  if (trailer.u64() != fnv1a(payload, payload_size)) return miss("checksum", true);

  m.hits.increment();
  m.bytes_read.increment(file.size());
  m.load_seconds.observe(seconds_since(t0));
  span.counter("bytes", static_cast<double>(payload_size));
  obs::log_debug("cache", "hit",
                 {{"kind", std::string(kind)}, {"bytes", payload_size}});
  return std::vector<std::uint8_t>(payload, payload + payload_size);
}

void ArtifactCache::store(std::string_view kind, std::uint64_t key,
                          const std::vector<std::uint8_t>& payload) const {
  robust::maybe_fault("cache.write");
  CacheMetrics& m = CacheMetrics::instance();
  obs::ScopedSpan span("cache.store");
  const auto t0 = std::chrono::steady_clock::now();
  const std::string path = path_for(kind, key);

  // Unique temp name in the same directory so the final rename is atomic.
  static std::atomic<std::uint64_t> temp_counter{0};
  const std::string temp = path + ".tmp." + std::to_string(::getpid()) + "." +
                           std::to_string(temp_counter.fetch_add(1));

  ByteWriter header;
  header.u32(kMagic);
  header.u32(kFormatVersion);
  header.u64(key);
  header.u64(payload.size());
  ByteWriter trailer;
  trailer.u64(fnv1a(payload.data(), payload.size()));

  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(reinterpret_cast<const char*>(header.bytes().data()),
                static_cast<std::streamsize>(header.bytes().size()));
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
      out.write(reinterpret_cast<const char*>(trailer.bytes().data()),
                static_cast<std::streamsize>(trailer.bytes().size()));
    }
    if (!out) {
      m.store_errors.increment();
      obs::log_warn_once("cache.store_errors.write", "cache", "cannot write artifact",
                         {{"kind", std::string(kind)}, {"path", temp}});
      robust::note_degraded("cache", "cannot write artifact temp file " + temp +
                                         "; cache stays cold for this key");
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      if (ec) m.store_errors.increment();
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    m.store_errors.increment();
    obs::log_warn_once("cache.store_errors.rename", "cache", "cannot publish artifact",
                       {{"kind", std::string(kind)}, {"path", path}, {"error", ec.message()}});
    robust::note_degraded("cache", "cannot publish artifact " + path + ": " + ec.message());
    std::error_code rm_ec;
    std::filesystem::remove(temp, rm_ec);
    if (rm_ec) {
      m.store_errors.increment();
      obs::log_warn("cache", "cannot remove temp file",
                    {{"path", temp}, {"error", rm_ec.message()}});
    }
    return;
  }
  const std::uint64_t total = kHeaderBytes + payload.size() + kTrailerBytes;
  m.bytes_written.increment(total);
  m.store_seconds.observe(seconds_since(t0));
  span.counter("bytes", static_cast<double>(payload.size()));
  obs::log_info("cache", "stored artifact",
                {{"kind", std::string(kind)}, {"bytes", total}});
}

std::string resolve_cache_dir(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("TERRORS_CACHE_DIR"); env != nullptr && env[0] != '\0')
    return env;
  return {};
}

}  // namespace terrors::cache
