// AttributionCollector: the core::AnalysisObserver that turns one
// analyze() call into a RunReport.
//
// Collection happens in two parts.  During the (serial) estimation phase
// the observer hooks record per-SCC solve diagnostics and every block's
// lambda contribution sample vector.  Afterwards build() assembles the
// full report from the framework's retained artifacts: per-block /
// per-edge error attribution from the marginals and the executor profile,
// per-stage and per-opcode control-DTS slack summaries from the shared
// path enumerator, the top culprit timing paths, and (optionally) a
// Monte-Carlo cross-check of the analytic count distribution.
//
// Determinism contract (DESIGN §5e): attaching the collector is
// bit-invisible to the analysis itself — it only reads, and the only
// metrics it touches live under the report.* namespace.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/framework.hpp"
#include "core/observer.hpp"
#include "report/run_report.hpp"

namespace terrors::report {

struct CollectorConfig {
  /// Culprit paths listed in the report (and per-endpoint stats depth).
  std::size_t top_k_paths = 10;
  /// Monte-Carlo trials for the divergence diagnostic; 0 disables.  Needs
  /// a profile recorded with ExecutorConfig::record_block_trace.
  std::size_t mc_trials = 0;
  std::uint64_t mc_seed = 2026;
  /// Worker-thread count of the run, recorded verbatim in the report.
  std::size_t threads = 1;
};

class AttributionCollector final : public core::AnalysisObserver {
 public:
  explicit AttributionCollector(CollectorConfig config = {}) : config_(config) {}

  void on_scc_solve(const core::SccSolveDiag& diag) override { sccs_.push_back(diag); }
  void on_block_lambda(isa::BlockId b, const stat::Samples& contribution) override {
    block_lambda_[b] = contribution;
  }

  /// Assemble the report for the analyze() call this collector observed.
  /// `fw` must still hold that call's artifacts (ErrorRateFramework::last).
  /// Works on a fresh collector too (e.g. when the caller could not attach
  /// the observer): block contributions are then recomputed from the
  /// marginals with the estimator's exact formula.
  [[nodiscard]] RunReport build(core::ErrorRateFramework& fw, const isa::Program& program,
                                const core::BenchmarkResult& result);

  [[nodiscard]] const CollectorConfig& config() const { return config_; }

 private:
  CollectorConfig config_;
  std::vector<core::SccSolveDiag> sccs_;
  std::map<isa::BlockId, stat::Samples> block_lambda_;
};

}  // namespace terrors::report
