// Report comparison for regression gating (`terrors diff <old> <new>`).
//
// Two RunReports of the same benchmark are compared field by field:
// headline accuracy numbers within a relative tolerance, structural
// fields exactly, per-block error-mass shares within an absolute drift
// tolerance, and (opt-in) runtime within a ratio.  Any violation is a
// regression; the CLI exits non-zero, which is the whole gate.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "report/run_report.hpp"

namespace terrors::report {

struct DiffOptions {
  /// Max |new - old| / max(|old|, eps) for the headline accuracy fields.
  double max_rel_delta = 0.01;
  /// Max absolute drift of a block's error-mass share.
  double max_share_drift = 0.05;
  /// Max new/old analyze-runtime ratio; <= 0 disables the runtime gate
  /// (wall-clock is machine-dependent, so CI opts in explicitly).
  double max_runtime_ratio = 0.0;
};

struct DiffEntry {
  std::string field;
  double old_value = 0.0;
  double new_value = 0.0;
  double delta = 0.0;      ///< the compared magnitude (relative or absolute)
  double limit = 0.0;
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< every compared field, violations first

  [[nodiscard]] bool ok() const {
    for (const DiffEntry& e : entries) {
      if (e.regression) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t regressions() const {
    std::size_t n = 0;
    for (const DiffEntry& e : entries) n += e.regression ? 1 : 0;
    return n;
  }
};

/// Compare two reports under the given tolerances.  Throws
/// std::runtime_error when the reports are structurally incomparable
/// (different schema versions or different programs).
[[nodiscard]] DiffResult diff_reports(const RunReport& before, const RunReport& after,
                                      const DiffOptions& options = {});

/// One line per compared field; regressions are marked.
void write_diff(const DiffResult& result, std::ostream& os);

}  // namespace terrors::report
