#include "report/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "robust/error.hpp"
#include "robust/fault_injection.hpp"

namespace terrors::report {

DistSummary summarize(std::vector<double> values) {
  DistSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  s.min = values.front();
  s.max = values.back();
  const auto rank = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(values.size()) - 1.0,
                         std::floor(p * static_cast<double>(values.size()))));
    return values[idx];
  };
  s.p50 = rank(0.50);
  s.p95 = rank(0.95);
  s.p99 = rank(0.99);
  return s;
}

namespace {

using obs::json_number;
using obs::json_string;

void write_bool(std::ostream& os, bool b) { os << (b ? "true" : "false"); }

void write_summary(std::ostream& os, const DistSummary& s) {
  os << "{\"count\":";
  json_number(os, s.count);
  os << ",\"mean\":";
  json_number(os, s.mean);
  os << ",\"stddev\":";
  json_number(os, s.stddev);
  os << ",\"min\":";
  json_number(os, s.min);
  os << ",\"max\":";
  json_number(os, s.max);
  os << ",\"p50\":";
  json_number(os, s.p50);
  os << ",\"p95\":";
  json_number(os, s.p95);
  os << ",\"p99\":";
  json_number(os, s.p99);
  os << "}";
}

DistSummary read_summary(const JsonValue& v) {
  DistSummary s;
  s.count = v.get_uint("count");
  s.mean = v.get_number("mean");
  s.stddev = v.get_number("stddev");
  s.min = v.get_number("min");
  s.max = v.get_number("max");
  s.p50 = v.get_number("p50");
  s.p95 = v.get_number("p95");
  s.p99 = v.get_number("p99");
  return s;
}

}  // namespace

void RunReport::write_json(std::ostream& os) const {
  os << "{\"kind\":";
  json_string(os, kReportKind);
  os << ",\"schema_version\":";
  json_number(os, static_cast<std::uint64_t>(schema_version));
  os << ",\"program\":";
  json_string(os, program);
  if (!run_id.empty()) {
    os << ",\"run_id\":";
    json_string(os, run_id);
  }
  os << ",\"period_ps\":";
  json_number(os, period_ps);
  os << ",\"threads\":";
  json_number(os, static_cast<std::uint64_t>(threads));
  os << ",\"runs\":";
  json_number(os, runs);
  os << ",\"instructions\":";
  json_number(os, instructions);
  os << ",\"total_instructions\":";
  json_number(os, total_instructions);
  os << ",\"basic_blocks\":";
  json_number(os, static_cast<std::uint64_t>(basic_blocks));

  os << ",\"estimate\":{\"rate_mean\":";
  json_number(os, rate_mean);
  os << ",\"rate_sd\":";
  json_number(os, rate_sd);
  os << ",\"lambda_mean\":";
  json_number(os, lambda_mean);
  os << ",\"lambda_sd\":";
  json_number(os, lambda_sd);
  os << ",\"dk_lambda\":";
  json_number(os, dk_lambda);
  os << ",\"dk_count\":";
  json_number(os, dk_count);
  os << ",\"b1_worst\":";
  json_number(os, b1_worst);
  os << ",\"b2_worst\":";
  json_number(os, b2_worst);
  os << ",\"sigma_chain\":";
  json_number(os, sigma_chain);
  os << "}";

  os << ",\"runtime\":{\"training_seconds\":";
  json_number(os, training_seconds);
  os << ",\"simulation_seconds\":";
  json_number(os, simulation_seconds);
  os << ",\"estimation_seconds\":";
  json_number(os, estimation_seconds);
  os << ",\"cache_hits\":";
  json_number(os, cache_hits);
  os << ",\"cache_misses\":";
  json_number(os, cache_misses);
  os << "}";

  os << ",\"blocks\":[";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockAttribution& b = blocks[i];
    if (i != 0) os << ",";
    os << "{\"block\":";
    json_number(os, static_cast<std::uint64_t>(b.block));
    os << ",\"executions\":";
    json_number(os, b.executions);
    os << ",\"exec_weight\":";
    json_number(os, b.exec_weight);
    os << ",\"lambda_mean\":";
    json_number(os, b.lambda_mean);
    os << ",\"lambda_sd\":";
    json_number(os, b.lambda_sd);
    os << ",\"share\":";
    json_number(os, b.share);
    os << ",\"edges\":[";
    for (std::size_t j = 0; j < b.edges.size(); ++j) {
      const EdgeAttribution& e = b.edges[j];
      if (j != 0) os << ",";
      os << "{\"from\":";
      json_number(os, static_cast<std::uint64_t>(e.from_block));
      os << ",\"traversals\":";
      json_number(os, e.traversals);
      os << ",\"activation\":";
      json_number(os, e.activation);
      os << "}";
    }
    os << "],\"instrs\":[";
    for (std::size_t j = 0; j < b.instrs.size(); ++j) {
      const InstrAttribution& in = b.instrs[j];
      if (j != 0) os << ",";
      os << "{\"mnemonic\":";
      json_string(os, in.mnemonic);
      os << ",\"p_correct_mean\":";
      json_number(os, in.p_correct_mean);
      os << ",\"p_error_mean\":";
      json_number(os, in.p_error_mean);
      os << ",\"marginal_mean\":";
      json_number(os, in.marginal_mean);
      os << ",\"has_ctrl\":";
      write_bool(os, in.has_ctrl);
      os << ",\"ctrl_slack_mean\":";
      json_number(os, in.ctrl_slack_mean);
      os << ",\"ctrl_slack_sd\":";
      json_number(os, in.ctrl_slack_sd);
      os << "}";
    }
    os << "]}";
  }
  os << "]";

  os << ",\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageSlack& st = stages[i];
    if (i != 0) os << ",";
    os << "{\"stage\":";
    json_number(os, static_cast<std::uint64_t>(st.stage));
    os << ",\"endpoints\":";
    json_number(os, static_cast<std::uint64_t>(st.endpoints));
    os << ",\"slack\":";
    write_summary(os, st.slack);
    os << "}";
  }
  os << "]";

  os << ",\"opcodes\":[";
  for (std::size_t i = 0; i < opcodes.size(); ++i) {
    const OpcodeAttribution& oc = opcodes[i];
    if (i != 0) os << ",";
    os << "{\"mnemonic\":";
    json_string(os, oc.mnemonic);
    os << ",\"error_mass\":";
    json_number(os, oc.error_mass);
    os << ",\"share\":";
    json_number(os, oc.share);
    os << ",\"ctrl_slack\":";
    write_summary(os, oc.ctrl_slack);
    os << "}";
  }
  os << "]";

  os << ",\"culprits\":[";
  for (std::size_t i = 0; i < culprits.size(); ++i) {
    const CulpritPath& c = culprits[i];
    if (i != 0) os << ",";
    os << "{\"endpoint\":";
    json_number(os, static_cast<std::uint64_t>(c.endpoint));
    os << ",\"stage\":";
    json_number(os, static_cast<std::uint64_t>(c.stage));
    os << ",\"slack_mean\":";
    json_number(os, c.slack_mean);
    os << ",\"slack_sd\":";
    json_number(os, c.slack_sd);
    os << ",\"delay_ps\":";
    json_number(os, c.delay_ps);
    os << ",\"gates\":";
    json_number(os, static_cast<std::uint64_t>(c.gates));
    os << "}";
  }
  os << "]";

  os << ",\"solver\":{\"scc_count\":";
  json_number(os, static_cast<std::uint64_t>(solver.scc_count));
  os << ",\"cyclic_sccs\":";
  json_number(os, static_cast<std::uint64_t>(solver.cyclic_sccs));
  os << ",\"max_scc_size\":";
  json_number(os, static_cast<std::uint64_t>(solver.max_scc_size));
  os << ",\"max_residual\":";
  json_number(os, solver.max_residual);
  os << ",\"sccs\":[";
  for (std::size_t i = 0; i < solver.sccs.size(); ++i) {
    const SccDiag& d = solver.sccs[i];
    if (i != 0) os << ",";
    os << "{\"scc\":";
    json_number(os, static_cast<std::uint64_t>(d.scc));
    os << ",\"size\":";
    json_number(os, static_cast<std::uint64_t>(d.size));
    os << ",\"cyclic\":";
    write_bool(os, d.cyclic);
    os << ",\"max_residual\":";
    json_number(os, d.max_residual);
    // Emitted only when set: healthy reports stay byte-identical.
    if (d.degraded) os << ",\"degraded\":true";
    os << "}";
  }
  os << "]}";

  if (degraded) {
    os << ",\"degraded\":{\"sites\":[";
    for (std::size_t i = 0; i < degraded_sites.size(); ++i) {
      if (i != 0) os << ",";
      json_string(os, degraded_sites[i]);
    }
    os << "]}";
  }

  os << ",\"mc\":{\"enabled\":";
  write_bool(os, mc.enabled);
  os << ",\"trials\":";
  json_number(os, static_cast<std::uint64_t>(mc.trials));
  os << ",\"divergence\":";
  json_number(os, mc.divergence);
  os << "}}\n";
}

RunReport RunReport::from_json(const JsonValue& doc) {
  if (!doc.is_object())
    robust::raise(robust::Category::kArtifact, "run report: top level is not an object");
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != kReportKind) {
    robust::raise(robust::Category::kArtifact, "run report: not a terrors_run_report document");
  }
  const auto version = static_cast<int>(doc.at("schema_version").as_uint());
  if (version != kSchemaVersion) {
    robust::raise(robust::Category::kArtifact, "run report: unsupported schema_version " +
                                                   std::to_string(version) + " (expected " +
                                                   std::to_string(kSchemaVersion) + ")");
  }

  RunReport r;
  r.schema_version = version;
  r.program = doc.at("program").as_string();
  if (const JsonValue* rid = doc.find("run_id")) r.run_id = rid->as_string();
  r.period_ps = doc.get_number("period_ps");
  r.threads = static_cast<std::size_t>(doc.get_uint("threads", 1));
  r.runs = doc.get_uint("runs");
  r.instructions = doc.get_uint("instructions");
  r.total_instructions = doc.get_uint("total_instructions");
  r.basic_blocks = static_cast<std::size_t>(doc.get_uint("basic_blocks"));

  const JsonValue& est = doc.at("estimate");
  r.rate_mean = est.get_number("rate_mean");
  r.rate_sd = est.get_number("rate_sd");
  r.lambda_mean = est.get_number("lambda_mean");
  r.lambda_sd = est.get_number("lambda_sd");
  r.dk_lambda = est.get_number("dk_lambda");
  r.dk_count = est.get_number("dk_count");
  r.b1_worst = est.get_number("b1_worst");
  r.b2_worst = est.get_number("b2_worst");
  r.sigma_chain = est.get_number("sigma_chain");

  const JsonValue& rt = doc.at("runtime");
  r.training_seconds = rt.get_number("training_seconds");
  r.simulation_seconds = rt.get_number("simulation_seconds");
  r.estimation_seconds = rt.get_number("estimation_seconds");
  r.cache_hits = rt.get_uint("cache_hits");
  r.cache_misses = rt.get_uint("cache_misses");

  for (const JsonValue& bv : doc.at("blocks").items()) {
    BlockAttribution b;
    b.block = static_cast<std::uint32_t>(bv.get_uint("block"));
    b.executions = bv.get_uint("executions");
    b.exec_weight = bv.get_number("exec_weight");
    b.lambda_mean = bv.get_number("lambda_mean");
    b.lambda_sd = bv.get_number("lambda_sd");
    b.share = bv.get_number("share");
    for (const JsonValue& ev : bv.at("edges").items()) {
      EdgeAttribution e;
      e.from_block = static_cast<std::uint32_t>(ev.get_uint("from"));
      e.traversals = ev.get_uint("traversals");
      e.activation = ev.get_number("activation");
      b.edges.push_back(e);
    }
    for (const JsonValue& iv : bv.at("instrs").items()) {
      InstrAttribution in;
      in.mnemonic = iv.at("mnemonic").as_string();
      in.p_correct_mean = iv.get_number("p_correct_mean");
      in.p_error_mean = iv.get_number("p_error_mean");
      in.marginal_mean = iv.get_number("marginal_mean");
      in.has_ctrl = iv.at("has_ctrl").as_bool();
      in.ctrl_slack_mean = iv.get_number("ctrl_slack_mean");
      in.ctrl_slack_sd = iv.get_number("ctrl_slack_sd");
      b.instrs.push_back(std::move(in));
    }
    r.blocks.push_back(std::move(b));
  }

  for (const JsonValue& sv : doc.at("stages").items()) {
    StageSlack st;
    st.stage = static_cast<std::uint8_t>(sv.get_uint("stage"));
    st.endpoints = static_cast<std::size_t>(sv.get_uint("endpoints"));
    st.slack = read_summary(sv.at("slack"));
    r.stages.push_back(st);
  }

  for (const JsonValue& ov : doc.at("opcodes").items()) {
    OpcodeAttribution oc;
    oc.mnemonic = ov.at("mnemonic").as_string();
    oc.error_mass = ov.get_number("error_mass");
    oc.share = ov.get_number("share");
    oc.ctrl_slack = read_summary(ov.at("ctrl_slack"));
    r.opcodes.push_back(std::move(oc));
  }

  for (const JsonValue& cv : doc.at("culprits").items()) {
    CulpritPath c;
    c.endpoint = static_cast<std::uint32_t>(cv.get_uint("endpoint"));
    c.stage = static_cast<std::uint8_t>(cv.get_uint("stage"));
    c.slack_mean = cv.get_number("slack_mean");
    c.slack_sd = cv.get_number("slack_sd");
    c.delay_ps = cv.get_number("delay_ps");
    c.gates = static_cast<std::size_t>(cv.get_uint("gates"));
    r.culprits.push_back(c);
  }

  const JsonValue& so = doc.at("solver");
  r.solver.scc_count = static_cast<std::size_t>(so.get_uint("scc_count"));
  r.solver.cyclic_sccs = static_cast<std::size_t>(so.get_uint("cyclic_sccs"));
  r.solver.max_scc_size = static_cast<std::size_t>(so.get_uint("max_scc_size"));
  r.solver.max_residual = so.get_number("max_residual");
  for (const JsonValue& dv : so.at("sccs").items()) {
    SccDiag d;
    d.scc = static_cast<std::uint32_t>(dv.get_uint("scc"));
    d.size = static_cast<std::size_t>(dv.get_uint("size"));
    d.cyclic = dv.at("cyclic").as_bool();
    d.max_residual = dv.get_number("max_residual");
    const JsonValue* deg = dv.find("degraded");
    d.degraded = deg != nullptr && deg->as_bool();
    r.solver.sccs.push_back(d);
  }

  // Optional (absent from healthy and pre-§5f reports).
  if (const JsonValue* deg = doc.find("degraded")) {
    r.degraded = true;
    for (const JsonValue& sv : deg->at("sites").items()) {
      r.degraded_sites.push_back(sv.as_string());
    }
  }

  const JsonValue& mcv = doc.at("mc");
  r.mc.enabled = mcv.at("enabled").as_bool();
  r.mc.trials = static_cast<std::size_t>(mcv.get_uint("trials"));
  r.mc.divergence = mcv.get_number("divergence");
  return r;
}

RunReport RunReport::load(const std::string& path) {
  robust::maybe_fault("report.read");
  std::ifstream in(path, std::ios::binary);
  if (!in)
    robust::raise(robust::Category::kResource, "cannot open run report '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return from_json(JsonValue::parse(buf.str()));
  } catch (const robust::Error& e) {
    throw robust::Error::wrap("load run report '" + path + "'", e);
  }
}

void RunReport::save(const std::string& path) const {
  robust::maybe_fault("io.write");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    robust::raise(robust::Category::kResource, "cannot write run report '" + path + "'");
  write_json(out);
  out.flush();
  if (!out)
    robust::raise(robust::Category::kResource, "write to run report '" + path + "' failed");
}

}  // namespace terrors::report
