// Human-readable rendering of a RunReport (`terrors report <file>`).
#pragma once

#include <cstddef>
#include <iosfwd>

#include "report/run_report.hpp"

namespace terrors::report {

/// Render the headline estimate plus top-`top_n` rows of each attribution
/// table (blocks, opcodes, stages, culprit paths, solver, Monte-Carlo).
void write_text(const RunReport& r, std::ostream& os, std::size_t top_n = 10);

}  // namespace terrors::report
