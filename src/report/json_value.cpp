#include "report/json_value.hpp"

#include <cmath>

#include "obs/json.hpp"
#include "robust/error.hpp"

namespace terrors::report {

namespace {

// Parse errors are malformed caller input (robust taxonomy: kInput), with
// the byte offset so a corrupt report can be inspected directly.
[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  robust::raise(robust::Category::kInput,
                "JSON parse error at byte " + std::to_string(pos) + ": " + what);
}

// Recursion ceiling for nested containers: deep-enough documents would
// otherwise overflow the stack long before exhausting memory.  256 is far
// beyond any report this library writes.
constexpr int kMaxDepth = 256;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing content");
    return v;
  }

 private:
  JsonValue value() {
    if (depth_ > kMaxDepth) fail(pos_, "nesting deeper than 256 levels");
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = string();
        return v;
      }
      case 't':
        literal("true");
        return boolean(true);
      case 'f':
        literal("false");
        return boolean(false);
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  static JsonValue boolean(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = string();
      skip_ws();
      if (peek() != ':') fail(pos_, "expected ':'");
      ++pos_;
      skip_ws();
      v.members_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return v;
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_ws();
      v.items_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return v;
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  std::string string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) fail(pos_, "dangling escape");
        ++pos_;
        switch (text_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) fail(pos_, "truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail(pos_, "bad \\u escape digit");
              }
            }
            pos_ += 4;
            // Our writers only escape control characters, which fit one
            // byte; decode anything wider as UTF-8 to stay lossless.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(pos_, "unknown escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) fail(pos_, "unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail(start, "expected a value");
    // Locale-independent: strtod expects the *process* decimal separator,
    // so under LC_NUMERIC=de_DE it reads "3.14" as 3 and this parser
    // would reject every fractional number a C-locale writer produced.
    const auto v = obs::parse_double(text_.substr(start, pos_ - start));
    if (!v.has_value()) fail(start, "malformed number");
    JsonValue out;
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = *v;
    return out;
  }

  void literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail(pos_, "bad literal");
    pos_ += lit.size();
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) robust::raise(robust::Category::kInput, "JSON value is not a number");
  return number_;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) robust::raise(robust::Category::kInput, "JSON value is not a bool");
  return bool_;
}

std::uint64_t JsonValue::as_uint() const {
  const double v = as_number();
  if (v < 0.0 || std::floor(v) != v) robust::raise(robust::Category::kInput, "JSON number is not a uint");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) robust::raise(robust::Category::kInput, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) robust::raise(robust::Category::kInput, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::kObject) robust::raise(robust::Category::kInput, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) robust::raise(robust::Category::kInput, "missing JSON key '" + std::string(key) + "'");
  return *v;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  // Our writers emit non-finite doubles as null; treat that as absent.
  return (v == nullptr || v->is_null()) ? fallback : v->as_number();
}

std::uint64_t JsonValue::get_uint(std::string_view key, std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return (v == nullptr || v->is_null()) ? fallback : v->as_uint();
}

}  // namespace terrors::report
