#include "report/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/monte_carlo.hpp"
#include "isa/isa.hpp"
#include "netlist/pipeline.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "timing/paths.hpp"

namespace terrors::report {

namespace {

/// The estimator's block contribution formula (kept in lockstep with
/// estimate_error_rate), used when the observer hooks were not attached.
stat::Samples block_lambda_from_marginals(const core::BlockMarginals& bm, double e_b) {
  std::size_t m = bm.instr.empty() ? 0 : bm.instr[0].size();
  stat::Samples out(m, 0.0);
  for (std::size_t s = 0; s < m; ++s) {
    double block_sum = 0.0;
    for (const stat::Samples& p : bm.instr) block_sum += p[s];
    out[s] = e_b * block_sum;
  }
  return out;
}

}  // namespace

RunReport AttributionCollector::build(core::ErrorRateFramework& fw, const isa::Program& program,
                                      const core::BenchmarkResult& result) {
  const core::ErrorRateFramework::Artifacts& art = fw.last();
  const isa::ProgramProfile& profile = art.executor->profile();
  const isa::Cfg& cfg = *art.cfg;
  const core::ErrorRateEstimate& est = result.estimate;
  const timing::TimingSpec spec = fw.config().spec;

  RunReport r;
  r.program = result.name;
  r.run_id = result.run_id;
  r.period_ps = spec.period_ps;
  r.threads = config_.threads;
  r.runs = profile.runs;
  r.instructions = result.instructions;
  r.total_instructions = est.total_instructions;
  r.basic_blocks = result.basic_blocks;

  r.rate_mean = est.rate_mean();
  r.rate_sd = est.rate_sd();
  r.lambda_mean = est.lambda.mean;
  r.lambda_sd = est.lambda.sd;
  r.dk_lambda = est.dk_lambda;
  r.dk_count = est.dk_count;
  r.b1_worst = est.b1_worst;
  r.b2_worst = est.b2_worst;
  r.sigma_chain = est.sigma_chain;

  r.training_seconds = result.training_seconds;
  r.simulation_seconds = result.simulation_seconds;
  r.estimation_seconds = result.estimation_seconds;
  r.cache_hits = result.cache_hits;
  r.cache_misses = result.cache_misses;

  const double runs_scaled =
      static_cast<double>(profile.runs) / fw.config().execution_scale;

  // --- per-block / per-edge / per-instruction attribution -----------------
  const double lambda_total = r.lambda_mean;
  std::map<std::string, double> opcode_mass;
  std::map<std::string, std::vector<double>> opcode_slack;
  for (isa::BlockId b = 0; b < program.block_count(); ++b) {
    const core::BlockMarginals& bm = art.marginals[b];
    if (!bm.executed) continue;
    const isa::BlockProfile& bp = profile.blocks[b];
    const double e_b = static_cast<double>(bp.executions) / runs_scaled;
    if (e_b == 0.0) continue;

    BlockAttribution ba;
    ba.block = b;
    ba.executions = bp.executions;
    ba.exec_weight = e_b;
    const auto it = block_lambda_.find(b);
    const stat::Samples lam =
        it != block_lambda_.end() ? it->second : block_lambda_from_marginals(bm, e_b);
    ba.lambda_mean = lam.mean();
    ba.lambda_sd = lam.stddev();
    ba.share = lambda_total > 0.0 ? ba.lambda_mean / lambda_total : 0.0;

    const std::vector<isa::CfgEdge>& preds = cfg.predecessors(b);
    for (std::size_t j = 0; j < preds.size(); ++j) {
      EdgeAttribution ea;
      ea.from_block = preds[j].from;
      ea.traversals = j < bp.edge_counts.size() ? bp.edge_counts[j] : 0;
      ea.activation = profile.edge_activation(b, j);
      ba.edges.push_back(ea);
    }

    const core::BlockErrorDistributions& bc = art.conditionals[b];
    const dta::BlockControlDts& ctrl = art.control[b];
    const std::vector<isa::Instruction>& instrs = program.block(b).instructions;
    for (std::size_t k = 0; k < bm.instr.size(); ++k) {
      InstrAttribution ia;
      ia.mnemonic = std::string(isa::mnemonic(instrs[k].op));
      ia.p_correct_mean = bc.instr[k].p_correct.mean();
      ia.p_error_mean = bc.instr[k].p_error.mean();
      ia.marginal_mean = bm.instr[k].mean();
      // Traversal-weighted control-DTS slack over the edges that activate
      // a control path for this instruction (entry pseudo-edge included).
      double w_total = 0.0;
      double w_mean = 0.0;
      double w_sd = 0.0;
      const auto fold = [&](const dta::EdgeControlDts& e, double weight) {
        if (weight <= 0.0 || k >= e.instr.size() || !e.instr[k].has_value()) return;
        ia.has_ctrl = true;
        w_total += weight;
        w_mean += weight * e.instr[k]->slack.mean;
        w_sd += weight * e.instr[k]->slack.sd;
        opcode_slack[ia.mnemonic].push_back(e.instr[k]->slack.mean);
      };
      fold(ctrl.entry, static_cast<double>(bp.entry_count));
      for (std::size_t j = 0; j < ctrl.per_edge.size(); ++j) {
        fold(ctrl.per_edge[j],
             j < bp.edge_counts.size() ? static_cast<double>(bp.edge_counts[j]) : 0.0);
      }
      if (w_total > 0.0) {
        ia.ctrl_slack_mean = w_mean / w_total;
        ia.ctrl_slack_sd = w_sd / w_total;
      }
      opcode_mass[ia.mnemonic] += e_b * ia.marginal_mean;
      ba.instrs.push_back(std::move(ia));
    }
    r.blocks.push_back(std::move(ba));
  }
  // Heaviest error mass first; block id breaks exact ties.
  std::sort(r.blocks.begin(), r.blocks.end(),
            [](const BlockAttribution& a, const BlockAttribution& b) {
              if (a.lambda_mean != b.lambda_mean) return a.lambda_mean > b.lambda_mean;
              return a.block < b.block;
            });

  // --- per-opcode attribution --------------------------------------------
  double mass_total = 0.0;
  for (const auto& [mn, mass] : opcode_mass) mass_total += mass;
  for (const auto& [mn, mass] : opcode_mass) {
    OpcodeAttribution oc;
    oc.mnemonic = mn;
    oc.error_mass = mass;
    oc.share = mass_total > 0.0 ? mass / mass_total : 0.0;
    const auto it = opcode_slack.find(mn);
    if (it != opcode_slack.end()) oc.ctrl_slack = summarize(it->second);
    r.opcodes.push_back(std::move(oc));
  }
  std::sort(r.opcodes.begin(), r.opcodes.end(),
            [](const OpcodeAttribution& a, const OpcodeAttribution& b) {
              if (a.error_mass != b.error_mass) return a.error_mass > b.error_mass;
              return a.mnemonic < b.mnemonic;
            });

  // --- per-stage slack histograms and culprit paths -----------------------
  // The characterizer's shared enumerator already holds every control
  // endpoint's candidate list after an analyze(); warm_paths() is an
  // idempotent no-op then, and makes build() self-sufficient otherwise.
  dta::ControlCharacterizer& chr = fw.characterizer();
  chr.warm_paths();
  dta::DtsAnalyzer& analyzer = chr.analyzer();
  const netlist::Netlist& nl = fw.pipeline().netlist;
  std::vector<CulpritPath> culprits;
  for (std::uint8_t s = 0; s < netlist::Pipeline::kStages; ++s) {
    StageSlack st;
    st.stage = s;
    std::vector<double> means;
    for (netlist::GateId e : nl.stage_endpoints(s)) {
      if (nl.gate(e).endpoint_class != netlist::EndpointClass::kControl) continue;
      ++st.endpoints;
      for (const dta::DtsAnalyzer::EndpointPath& ep :
           analyzer.endpoint_path_stats(e, config_.top_k_paths)) {
        const stat::Gaussian slack = ep.stat->slack(spec);
        means.push_back(slack.mean);
        CulpritPath c;
        c.endpoint = e;
        c.stage = s;
        c.slack_mean = slack.mean;
        c.slack_sd = slack.sd;
        c.delay_ps = ep.path->delay_ps;
        c.gates = ep.path->gates.size();
        culprits.push_back(c);
      }
    }
    st.slack = summarize(std::move(means));
    r.stages.push_back(std::move(st));
  }
  std::sort(culprits.begin(), culprits.end(), [](const CulpritPath& a, const CulpritPath& b) {
    if (a.slack_mean != b.slack_mean) return a.slack_mean < b.slack_mean;
    if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
    return a.delay_ps > b.delay_ps;
  });
  if (culprits.size() > config_.top_k_paths) culprits.resize(config_.top_k_paths);
  r.culprits = std::move(culprits);

  // --- solver diagnostics --------------------------------------------------
  r.solver.scc_count = sccs_.size();
  for (const core::SccSolveDiag& d : sccs_) {
    r.solver.max_scc_size = std::max(r.solver.max_scc_size, d.size);
    r.solver.max_residual = std::max(r.solver.max_residual, d.max_residual);
    if (d.cyclic) {
      ++r.solver.cyclic_sccs;
      r.solver.sccs.push_back(SccDiag{d.scc, d.size, d.cyclic, d.max_residual, d.degraded});
    }
  }

  // --- degradation stamp (DESIGN §5f) --------------------------------------
  r.degraded = result.degraded;
  r.degraded_sites = result.degraded_sites;

  // --- Monte-Carlo cross-check ---------------------------------------------
  if (config_.mc_trials > 0 && !profile.block_traces.empty()) {
    support::Rng rng(config_.mc_seed);
    const std::vector<std::uint64_t> counts = core::monte_carlo_error_counts(
        profile, art.conditionals, config_.mc_trials, rng);
    r.mc.enabled = true;
    r.mc.trials = config_.mc_trials;
    r.mc.divergence = core::mc_analytic_divergence(counts, est);
  }

  // All collector-owned metrics live under report.*, the namespace the
  // bit-identity contract explicitly excludes.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.counter("report.builds").increment();
  reg.gauge("report.blocks").set(static_cast<double>(r.blocks.size()));
  reg.gauge("report.culprits").set(static_cast<double>(r.culprits.size()));
  return r;
}

}  // namespace terrors::report
