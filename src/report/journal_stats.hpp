// Run-journal reading and aggregation (DESIGN §5g), plus the serve
// access-journal read side (DESIGN §5i).
//
// The obs layer only writes journal events (obs/journal.hpp); this is
// the read side — it lives in report because the JSON parser and the
// DistSummary machinery do.  `terrors stats JOURNAL` aggregates phase
// wall times, cache behaviour, and per-program trends (last run vs its
// own p50 — the "did this just get slower?" question); `terrors tail
// JOURNAL` renders the most recent events one line each.  `terrors stats
// --serve ACCESS` aggregates the daemon's access journal into per-op
// latency quantiles, queue-wait share, coalesce/error rates, and an
// optional SLO gate that exits non-zero on burn.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "report/json_value.hpp"
#include "report/run_report.hpp"

namespace terrors::report {

/// Decode one journal event.  Throws robust::Error (kArtifact) when the
/// document is not a terrors_run_event or the schema version is unknown.
[[nodiscard]] obs::RunEvent event_from_json(const JsonValue& doc);

/// Load a JSONL journal file, file order preserved, blank lines skipped.
/// Throws robust::Error: kResource when the file cannot be read; when a
/// line is bad, the line number is added as context and the cause keeps
/// its kind (kInput for JSON parse errors, kArtifact for wrong
/// kind/schema_version).
[[nodiscard]] std::vector<obs::RunEvent> load_journal(const std::string& path);

/// Per-program aggregate with a last-vs-typical regression signal.
struct ProgramStats {
  std::string program;
  std::uint64_t events = 0;
  DistSummary analyze_seconds;
  double last_analyze_seconds = 0.0;
  /// last_analyze_seconds / p50 analyze seconds (1.0 when p50 is 0) —
  /// a quick "is the newest run out of family?" ratio.
  double last_vs_p50 = 1.0;
  double last_lambda_mean = 0.0;
};

struct JournalStats {
  std::uint64_t events = 0;
  DistSummary simulation_seconds;
  DistSummary training_seconds;
  DistSummary estimation_seconds;
  DistSummary analyze_seconds;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// hits / (hits + misses); 0 when the journal saw no cache traffic.
  double cache_hit_rate = 0.0;
  std::uint64_t degraded_events = 0;
  std::uint64_t peak_rss_max = 0;
  std::vector<ProgramStats> programs;  ///< name-sorted
};

[[nodiscard]] JournalStats aggregate(const std::vector<obs::RunEvent>& events);

/// Render the aggregate (`terrors stats`).
void write_stats_text(const JournalStats& stats, std::ostream& os);

/// Render the last `n` events, one line each, oldest first
/// (`terrors tail`).
void write_tail_text(const std::vector<obs::RunEvent>& events, std::size_t n, std::ostream& os);

/// Decode one serve access event.  Throws robust::Error (kArtifact) when
/// the document is not a terrors_access_event or the schema version is
/// unknown.
[[nodiscard]] obs::AccessEvent access_event_from_json(const JsonValue& doc);

/// Load a JSONL access journal; same error contract as load_journal.
[[nodiscard]] std::vector<obs::AccessEvent> load_access_journal(const std::string& path);

/// Per-op aggregate over an access journal.
struct OpStats {
  std::string op;
  std::uint64_t events = 0;
  std::uint64_t errors = 0;
  DistSummary total_seconds;
};

struct AccessStats {
  std::uint64_t events = 0;
  std::uint64_t analyze_events = 0;  ///< analyze requests (incl. rejected)
  std::uint64_t rejected = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t errors = 0;
  double error_rate = 0.0;     ///< errors / events (0 when empty)
  double coalesce_rate = 0.0;  ///< coalesced / analyze_events
  /// Share of analyze wall time spent in the admission queue:
  /// sum(queue_wait) / sum(total) over analyze events.
  double queue_wait_share = 0.0;
  DistSummary analyze_total_seconds;  ///< non-rejected analyze requests
  DistSummary queue_wait_seconds;
  DistSummary executor_seconds;
  std::uint64_t queue_depth_peak = 0;   ///< max over events
  std::uint64_t response_bytes = 0;     ///< total bytes written
  // Supervision outcomes (DESIGN §5j).
  std::uint64_t worker_deaths = 0;      ///< events carrying a kill_reason
  std::uint64_t breaker_trips = 0;      ///< failures that opened a breaker
  std::uint64_t breaker_rejected = 0;   ///< requests bounced by a breaker
  std::vector<OpStats> ops;             ///< name-sorted
};

[[nodiscard]] AccessStats aggregate_access(const std::vector<obs::AccessEvent>& events);

/// SLO gate configuration (`terrors stats --serve`); non-positive p99_ms
/// and negative error_rate disable the respective check.
struct SloConfig {
  double p99_ms = 0.0;
  double error_rate = -1.0;
};

struct SloResult {
  bool latency_checked = false;
  bool latency_ok = true;
  double p99_ms = 0.0;  ///< recorded analyze p99, milliseconds
  bool errors_checked = false;
  bool errors_ok = true;
  double error_rate = 0.0;
  [[nodiscard]] bool ok() const { return latency_ok && errors_ok; }
};

[[nodiscard]] SloResult check_slo(const AccessStats& stats, const SloConfig& cfg);

/// Render the access-journal aggregate (`terrors stats --serve`); when
/// `slo` is non-null the gate verdicts are appended.
void write_access_stats_text(const AccessStats& stats, const SloResult* slo, std::ostream& os);

}  // namespace terrors::report
