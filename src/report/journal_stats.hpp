// Run-journal reading and aggregation (DESIGN §5g).
//
// The obs layer only writes journal events (obs/journal.hpp); this is
// the read side — it lives in report because the JSON parser and the
// DistSummary machinery do.  `terrors stats JOURNAL` aggregates phase
// wall times, cache behaviour, and per-program trends (last run vs its
// own p50 — the "did this just get slower?" question); `terrors tail
// JOURNAL` renders the most recent events one line each.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "report/json_value.hpp"
#include "report/run_report.hpp"

namespace terrors::report {

/// Decode one journal event.  Throws robust::Error (kArtifact) when the
/// document is not a terrors_run_event or the schema version is unknown.
[[nodiscard]] obs::RunEvent event_from_json(const JsonValue& doc);

/// Load a JSONL journal file, file order preserved, blank lines skipped.
/// Throws robust::Error: kResource when the file cannot be read; when a
/// line is bad, the line number is added as context and the cause keeps
/// its kind (kInput for JSON parse errors, kArtifact for wrong
/// kind/schema_version).
[[nodiscard]] std::vector<obs::RunEvent> load_journal(const std::string& path);

/// Per-program aggregate with a last-vs-typical regression signal.
struct ProgramStats {
  std::string program;
  std::uint64_t events = 0;
  DistSummary analyze_seconds;
  double last_analyze_seconds = 0.0;
  /// last_analyze_seconds / p50 analyze seconds (1.0 when p50 is 0) —
  /// a quick "is the newest run out of family?" ratio.
  double last_vs_p50 = 1.0;
  double last_lambda_mean = 0.0;
};

struct JournalStats {
  std::uint64_t events = 0;
  DistSummary simulation_seconds;
  DistSummary training_seconds;
  DistSummary estimation_seconds;
  DistSummary analyze_seconds;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// hits / (hits + misses); 0 when the journal saw no cache traffic.
  double cache_hit_rate = 0.0;
  std::uint64_t degraded_events = 0;
  std::uint64_t peak_rss_max = 0;
  std::vector<ProgramStats> programs;  ///< name-sorted
};

[[nodiscard]] JournalStats aggregate(const std::vector<obs::RunEvent>& events);

/// Render the aggregate (`terrors stats`).
void write_stats_text(const JournalStats& stats, std::ostream& os);

/// Render the last `n` events, one line each, oldest first
/// (`terrors tail`).
void write_tail_text(const std::vector<obs::RunEvent>& events, std::size_t n, std::ostream& os);

}  // namespace terrors::report
