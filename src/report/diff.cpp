#include "report/diff.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <stdexcept>

#include "robust/error.hpp"

namespace terrors::report {

namespace {

constexpr double kEps = 1e-12;

double rel_delta(double before, double after) {
  return std::abs(after - before) / std::max(std::abs(before), kEps);
}

}  // namespace

DiffResult diff_reports(const RunReport& before, const RunReport& after,
                        const DiffOptions& options) {
  if (before.schema_version != after.schema_version) {
    robust::raise(robust::Category::kInput, "diff: schema versions differ (" +
                             std::to_string(before.schema_version) + " vs " +
                             std::to_string(after.schema_version) + ")");
  }
  if (before.program != after.program) {
    robust::raise(robust::Category::kInput,
                  "diff: reports are for different programs ('" + before.program +
                             "' vs '" + after.program + "')");
  }

  DiffResult result;
  const auto relative = [&](const char* field, double b, double a) {
    DiffEntry e;
    e.field = field;
    e.old_value = b;
    e.new_value = a;
    e.delta = rel_delta(b, a);
    e.limit = options.max_rel_delta;
    e.regression = e.delta > e.limit;
    result.entries.push_back(std::move(e));
  };
  const auto exact = [&](const char* field, double b, double a) {
    DiffEntry e;
    e.field = field;
    e.old_value = b;
    e.new_value = a;
    e.delta = std::abs(a - b);
    e.limit = 0.0;
    e.regression = e.delta != 0.0;
    result.entries.push_back(std::move(e));
  };

  // Structural identity: the gate compares like with like or not at all.
  exact("period_ps", before.period_ps, after.period_ps);
  exact("instructions", static_cast<double>(before.instructions),
        static_cast<double>(after.instructions));
  exact("basic_blocks", static_cast<double>(before.basic_blocks),
        static_cast<double>(after.basic_blocks));

  // Headline accuracy fields within the relative tolerance.
  relative("rate_mean", before.rate_mean, after.rate_mean);
  relative("rate_sd", before.rate_sd, after.rate_sd);
  relative("lambda_mean", before.lambda_mean, after.lambda_mean);
  relative("lambda_sd", before.lambda_sd, after.lambda_sd);
  relative("dk_lambda", before.dk_lambda, after.dk_lambda);
  relative("dk_count", before.dk_count, after.dk_count);

  // Attribution drift: a block whose error-mass share moved more than the
  // tolerance indicates the *composition* changed even if the headline
  // happens to cancel out.
  std::map<std::uint32_t, double> old_share;
  for (const BlockAttribution& b : before.blocks) old_share[b.block] = b.share;
  double worst_drift = 0.0;
  std::uint32_t worst_block = 0;
  double worst_old = 0.0;
  double worst_new = 0.0;
  std::map<std::uint32_t, double> new_share;
  for (const BlockAttribution& b : after.blocks) new_share[b.block] = b.share;
  const auto consider = [&](std::uint32_t block, double o, double n) {
    const double drift = std::abs(n - o);
    if (drift > worst_drift) {
      worst_drift = drift;
      worst_block = block;
      worst_old = o;
      worst_new = n;
    }
  };
  for (const auto& [block, o] : old_share) {
    const auto it = new_share.find(block);
    consider(block, o, it == new_share.end() ? 0.0 : it->second);
  }
  for (const auto& [block, n] : new_share) {
    if (old_share.find(block) == old_share.end()) consider(block, 0.0, n);
  }
  {
    DiffEntry e;
    e.field = "block_share[" + std::to_string(worst_block) + "]";
    e.old_value = worst_old;
    e.new_value = worst_new;
    e.delta = worst_drift;
    e.limit = options.max_share_drift;
    e.regression = worst_drift > options.max_share_drift;
    result.entries.push_back(std::move(e));
  }

  if (options.max_runtime_ratio > 0.0) {
    DiffEntry e;
    e.field = "analyze_seconds";
    e.old_value = before.analyze_seconds();
    e.new_value = after.analyze_seconds();
    e.delta = e.new_value / std::max(e.old_value, kEps);
    e.limit = options.max_runtime_ratio;
    e.regression = e.delta > e.limit;
    result.entries.push_back(std::move(e));
  }

  std::stable_sort(result.entries.begin(), result.entries.end(),
                   [](const DiffEntry& a, const DiffEntry& b) {
                     return a.regression && !b.regression;
                   });
  return result;
}

void write_diff(const DiffResult& result, std::ostream& os) {
  const std::ios_base::fmtflags flags = os.flags();
  os << std::scientific << std::setprecision(6);
  for (const DiffEntry& e : result.entries) {
    os << (e.regression ? "REGRESSION " : "ok         ") << std::setw(24) << std::left << e.field
       << std::right << "  old " << e.old_value << "  new " << e.new_value << "  delta "
       << std::setprecision(3) << e.delta << " (limit " << e.limit << ")"
       << std::setprecision(6) << "\n";
  }
  os << (result.ok() ? "PASS" : "FAIL") << ": " << result.regressions() << " regression(s) in "
     << result.entries.size() << " compared field(s)\n";
  os.flags(flags);
}

}  // namespace terrors::report
