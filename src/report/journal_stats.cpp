#include "report/journal_stats.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "robust/error.hpp"

namespace terrors::report {

obs::RunEvent event_from_json(const JsonValue& doc) {
  if (!doc.is_object())
    robust::raise(robust::Category::kArtifact, "journal event: not an object");
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != obs::kJournalKind) {
    robust::raise(robust::Category::kArtifact,
                  "journal event: not a terrors_run_event document");
  }
  const auto version = static_cast<int>(doc.at("schema_version").as_uint());
  if (version != obs::kJournalSchemaVersion) {
    robust::raise(robust::Category::kArtifact,
                  "journal event: unsupported schema_version " + std::to_string(version) +
                      " (expected " + std::to_string(obs::kJournalSchemaVersion) + ")");
  }

  obs::RunEvent e;
  e.schema_version = version;
  e.run_id = doc.at("run_id").as_string();
  if (const JsonValue* v = doc.find("request_id")) e.request_id = v->as_string();
  e.unix_ms = doc.get_uint("unix_ms");
  e.program = doc.at("program").as_string();
  if (const JsonValue* v = doc.find("config_hash")) e.config_hash = v->as_string();
  if (const JsonValue* v = doc.find("program_hash")) e.program_hash = v->as_string();
  e.period_ps = doc.get_number("period_ps");
  e.threads = static_cast<std::size_t>(doc.get_uint("threads", 1));
  e.runs = doc.get_uint("runs");
  e.instructions = doc.get_uint("instructions");

  const JsonValue& phases = doc.at("phases");
  e.simulation_seconds = phases.get_number("simulation_seconds");
  e.training_seconds = phases.get_number("training_seconds");
  e.estimation_seconds = phases.get_number("estimation_seconds");

  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      e.counters.emplace(name, value.as_uint());
    }
  }

  if (const JsonValue* pool = doc.find("pool")) {
    e.pool_tasks = pool->get_uint("tasks");
    e.pool_retries = pool->get_uint("retries");
  }

  const JsonValue& est = doc.at("estimate");
  e.lambda_mean = est.get_number("lambda_mean");
  e.rate_mean = est.get_number("rate_mean");
  e.rate_sd = est.get_number("rate_sd");

  if (const JsonValue* deg = doc.find("degraded")) e.degraded = deg->as_bool();
  if (const JsonValue* sites = doc.find("degraded_sites")) {
    for (const JsonValue& s : sites->items()) e.degraded_sites.push_back(s.as_string());
  }
  e.peak_rss_bytes = doc.get_uint("peak_rss_bytes");
  return e;
}

std::vector<obs::RunEvent> load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) robust::raise(robust::Category::kResource, "cannot open journal '" + path + "'");
  std::vector<obs::RunEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      events.push_back(event_from_json(JsonValue::parse(line)));
    } catch (const std::exception& e) {
      throw robust::Error::wrap(
          "journal '" + path + "' line " + std::to_string(lineno), e,
          robust::Category::kArtifact);
    }
  }
  return events;
}

JournalStats aggregate(const std::vector<obs::RunEvent>& events) {
  JournalStats s;
  s.events = events.size();
  std::vector<double> sim;
  std::vector<double> train;
  std::vector<double> est;
  std::vector<double> total;
  sim.reserve(events.size());
  train.reserve(events.size());
  est.reserve(events.size());
  total.reserve(events.size());
  std::map<std::string, std::vector<double>> per_program;
  std::map<std::string, const obs::RunEvent*> last_event;
  for (const obs::RunEvent& e : events) {
    sim.push_back(e.simulation_seconds);
    train.push_back(e.training_seconds);
    est.push_back(e.estimation_seconds);
    total.push_back(e.analyze_seconds());
    if (const auto it = e.counters.find("cache.hits"); it != e.counters.end()) {
      s.cache_hits += it->second;
    }
    if (const auto it = e.counters.find("cache.misses"); it != e.counters.end()) {
      s.cache_misses += it->second;
    }
    if (e.degraded) ++s.degraded_events;
    s.peak_rss_max = std::max(s.peak_rss_max, e.peak_rss_bytes);
    per_program[e.program].push_back(e.analyze_seconds());
    last_event[e.program] = &e;  // file order == append order
  }
  s.simulation_seconds = summarize(std::move(sim));
  s.training_seconds = summarize(std::move(train));
  s.estimation_seconds = summarize(std::move(est));
  s.analyze_seconds = summarize(std::move(total));
  if (s.cache_hits + s.cache_misses > 0) {
    s.cache_hit_rate = static_cast<double>(s.cache_hits) /
                       static_cast<double>(s.cache_hits + s.cache_misses);
  }
  for (auto& [program, seconds] : per_program) {
    ProgramStats p;
    p.program = program;
    p.events = seconds.size();
    p.last_analyze_seconds = seconds.back();
    p.analyze_seconds = summarize(std::move(seconds));
    p.last_vs_p50 = p.analyze_seconds.p50 > 0.0
                        ? p.last_analyze_seconds / p.analyze_seconds.p50
                        : 1.0;
    p.last_lambda_mean = last_event.at(program)->lambda_mean;
    s.programs.push_back(std::move(p));
  }
  return s;
}

namespace {

void rule(std::ostream& os) { os << std::string(72, '-') << "\n"; }

void phase_row(std::ostream& os, const char* name, const DistSummary& d) {
  os << "  " << std::setw(10) << std::left << name << std::right << "  " << std::fixed
     << std::setprecision(4) << std::setw(9) << d.p50 << "  " << std::setw(9) << d.p95 << "  "
     << std::setw(9) << d.mean << "  " << std::setw(9) << d.max << std::defaultfloat
     << std::setprecision(6) << "\n";
}

}  // namespace

void write_stats_text(const JournalStats& s, std::ostream& os) {
  const std::ios_base::fmtflags flags = os.flags();
  os << "journal stats: " << s.events << " run event(s)\n";
  rule(os);
  if (s.events == 0) {
    os.flags(flags);
    return;
  }
  os << "phase wall time (s)\n";
  os << "  phase             p50        p95       mean        max\n";
  phase_row(os, "simulation", s.simulation_seconds);
  phase_row(os, "training", s.training_seconds);
  phase_row(os, "estimation", s.estimation_seconds);
  phase_row(os, "analyze", s.analyze_seconds);
  os << "\ncache           " << s.cache_hits << " hit / " << s.cache_misses << " miss";
  if (s.cache_hits + s.cache_misses > 0) {
    os << " (" << std::fixed << std::setprecision(1) << 100.0 * s.cache_hit_rate << "% hit rate)"
       << std::defaultfloat << std::setprecision(6);
  }
  os << "\ndegraded        " << s.degraded_events << " of " << s.events << " event(s)\n";
  os << "peak rss        " << s.peak_rss_max / (1024 * 1024) << " MiB (max over events)\n";

  os << "\nper program (analyze seconds)\n";
  rule(os);
  os << "  program       events        p50       last   last/p50     lambda\n";
  for (const ProgramStats& p : s.programs) {
    os << "  " << std::setw(12) << std::left << p.program << std::right << "  " << std::setw(6)
       << p.events << "  " << std::fixed << std::setprecision(4) << std::setw(9)
       << p.analyze_seconds.p50 << "  " << std::setw(9) << p.last_analyze_seconds << "  "
       << std::setprecision(2) << std::setw(8) << p.last_vs_p50 << "x  " << std::scientific
       << std::setprecision(3) << p.last_lambda_mean << std::defaultfloat << std::setprecision(6)
       << "\n";
  }
  os.flags(flags);
}

obs::AccessEvent access_event_from_json(const JsonValue& doc) {
  if (!doc.is_object())
    robust::raise(robust::Category::kArtifact, "access event: not an object");
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != obs::kAccessJournalKind) {
    robust::raise(robust::Category::kArtifact,
                  "access event: not a terrors_access_event document");
  }
  const auto version = static_cast<int>(doc.at("schema_version").as_uint());
  if (version != obs::kAccessJournalSchemaVersion) {
    robust::raise(robust::Category::kArtifact,
                  "access event: unsupported schema_version " + std::to_string(version) +
                      " (expected " + std::to_string(obs::kAccessJournalSchemaVersion) + ")");
  }

  obs::AccessEvent e;
  e.schema_version = version;
  e.request_id = doc.at("request_id").as_string();
  e.op = doc.at("op").as_string();
  if (const JsonValue* v = doc.find("signature")) e.signature = v->as_string();
  if (const JsonValue* v = doc.find("run_id")) e.run_id = v->as_string();
  e.unix_ms = doc.get_uint("unix_ms");
  const JsonValue& timing = doc.at("timing");
  e.queue_wait_seconds = timing.get_number("queue_wait_seconds");
  e.executor_seconds = timing.get_number("executor_seconds");
  e.total_seconds = timing.get_number("total_seconds");
  if (const JsonValue* v = doc.find("coalesced")) e.coalesced = v->as_bool();
  if (const JsonValue* v = doc.find("rejected")) e.rejected = v->as_bool();
  if (const JsonValue* v = doc.find("ok")) e.ok = v->as_bool();
  if (const JsonValue* v = doc.find("error_category")) e.error_category = v->as_string();
  e.response_bytes = doc.get_uint("response_bytes");
  e.queue_depth_peak = doc.get_uint("queue_depth_peak");
  // Supervision fields are emitted only when set (PR 10); their absence
  // reads as the defaults, so old journals stay loadable.
  if (const JsonValue* v = doc.find("kill_reason")) e.kill_reason = v->as_string();
  if (const JsonValue* v = doc.find("breaker_tripped")) e.breaker_tripped = v->as_bool();
  if (const JsonValue* v = doc.find("breaker_rejected")) e.breaker_rejected = v->as_bool();
  e.retry_after_ms = doc.get_uint("retry_after_ms");
  return e;
}

std::vector<obs::AccessEvent> load_access_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    robust::raise(robust::Category::kResource, "cannot open access journal '" + path + "'");
  }
  std::vector<obs::AccessEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      events.push_back(access_event_from_json(JsonValue::parse(line)));
    } catch (const std::exception& e) {
      throw robust::Error::wrap(
          "access journal '" + path + "' line " + std::to_string(lineno), e,
          robust::Category::kArtifact);
    }
  }
  return events;
}

AccessStats aggregate_access(const std::vector<obs::AccessEvent>& events) {
  AccessStats s;
  s.events = events.size();
  std::vector<double> analyze_total;
  std::vector<double> queue_wait;
  std::vector<double> executor;
  double analyze_total_sum = 0.0;
  double queue_wait_sum = 0.0;
  std::map<std::string, std::vector<double>> per_op;
  std::map<std::string, std::uint64_t> per_op_errors;
  for (const obs::AccessEvent& e : events) {
    if (!e.ok) ++s.errors;
    if (e.rejected) ++s.rejected;
    if (e.coalesced) ++s.coalesced;
    if (!e.kill_reason.empty()) ++s.worker_deaths;
    if (e.breaker_tripped) ++s.breaker_trips;
    if (e.breaker_rejected) ++s.breaker_rejected;
    s.queue_depth_peak = std::max(s.queue_depth_peak, e.queue_depth_peak);
    s.response_bytes += e.response_bytes;
    per_op[e.op].push_back(e.total_seconds);
    if (!e.ok) ++per_op_errors[e.op];
    if (e.op == "analyze") {
      ++s.analyze_events;
      if (!e.rejected) {
        analyze_total.push_back(e.total_seconds);
        queue_wait.push_back(e.queue_wait_seconds);
        executor.push_back(e.executor_seconds);
        analyze_total_sum += e.total_seconds;
        queue_wait_sum += e.queue_wait_seconds;
      }
    }
  }
  s.analyze_total_seconds = summarize(std::move(analyze_total));
  s.queue_wait_seconds = summarize(std::move(queue_wait));
  s.executor_seconds = summarize(std::move(executor));
  if (s.events > 0) {
    s.error_rate = static_cast<double>(s.errors) / static_cast<double>(s.events);
  }
  if (s.analyze_events > 0) {
    s.coalesce_rate = static_cast<double>(s.coalesced) / static_cast<double>(s.analyze_events);
  }
  if (analyze_total_sum > 0.0) s.queue_wait_share = queue_wait_sum / analyze_total_sum;
  for (auto& [op, seconds] : per_op) {
    OpStats o;
    o.op = op;
    o.events = seconds.size();
    if (const auto it = per_op_errors.find(op); it != per_op_errors.end()) o.errors = it->second;
    o.total_seconds = summarize(std::move(seconds));
    s.ops.push_back(std::move(o));
  }
  return s;
}

SloResult check_slo(const AccessStats& stats, const SloConfig& cfg) {
  SloResult r;
  r.p99_ms = stats.analyze_total_seconds.p99 * 1000.0;
  r.error_rate = stats.error_rate;
  if (cfg.p99_ms > 0.0) {
    r.latency_checked = true;
    r.latency_ok = r.p99_ms <= cfg.p99_ms;
  }
  if (cfg.error_rate >= 0.0) {
    r.errors_checked = true;
    r.errors_ok = r.error_rate <= cfg.error_rate;
  }
  return r;
}

void write_access_stats_text(const AccessStats& s, const SloResult* slo, std::ostream& os) {
  const std::ios_base::fmtflags flags = os.flags();
  os << "serve access stats: " << s.events << " request(s)\n";
  rule(os);
  if (s.events == 0) {
    os.flags(flags);
    return;
  }
  os << "per op (total seconds)\n";
  os << "  op                events  errors        p50        p95        p99\n";
  for (const OpStats& o : s.ops) {
    os << "  " << std::setw(12) << std::left << o.op << std::right << "  " << std::setw(8)
       << o.events << "  " << std::setw(6) << o.errors << "  " << std::fixed
       << std::setprecision(4) << std::setw(9) << o.total_seconds.p50 << "  " << std::setw(9)
       << o.total_seconds.p95 << "  " << std::setw(9) << o.total_seconds.p99 << std::defaultfloat
       << std::setprecision(6) << "\n";
  }
  os << "\nanalyze         " << s.analyze_events << " request(s), " << s.rejected
     << " rejected, " << s.coalesced << " coalesced";
  if (s.analyze_events > 0) {
    os << " (" << std::fixed << std::setprecision(1) << 100.0 * s.coalesce_rate
       << "% coalesce rate)" << std::defaultfloat << std::setprecision(6);
  }
  os << "\nqueue wait      " << std::fixed << std::setprecision(1) << 100.0 * s.queue_wait_share
     << "% of analyze wall time (p95 " << std::setprecision(4) << s.queue_wait_seconds.p95
     << " s)" << std::defaultfloat << std::setprecision(6);
  os << "\nexecutor        p50 " << std::fixed << std::setprecision(4) << s.executor_seconds.p50
     << " s, p95 " << s.executor_seconds.p95 << " s" << std::defaultfloat << std::setprecision(6);
  os << "\nerrors          " << s.errors << " of " << s.events << " request(s) (" << std::fixed
     << std::setprecision(2) << 100.0 * s.error_rate << "%)" << std::defaultfloat
     << std::setprecision(6);
  os << "\nqueue depth     peak " << s.queue_depth_peak;
  if (s.worker_deaths > 0 || s.breaker_trips > 0 || s.breaker_rejected > 0) {
    os << "\nsupervision     " << s.worker_deaths << " worker death(s), " << s.breaker_trips
       << " breaker trip(s), " << s.breaker_rejected << " breaker rejection(s)";
  }
  os << "\nresponse bytes  " << s.response_bytes << " total\n";
  if (slo != nullptr) {
    os << "\nSLO\n";
    rule(os);
    if (slo->latency_checked) {
      os << "  analyze p99   " << std::fixed << std::setprecision(1) << slo->p99_ms << " ms  "
         << (slo->latency_ok ? "OK" : "BURN") << std::defaultfloat << std::setprecision(6)
         << "\n";
    }
    if (slo->errors_checked) {
      os << "  error rate    " << std::fixed << std::setprecision(2) << 100.0 * slo->error_rate
         << "%  " << (slo->errors_ok ? "OK" : "BURN") << std::defaultfloat << std::setprecision(6)
         << "\n";
    }
    if (!slo->latency_checked && !slo->errors_checked) os << "  (no gates configured)\n";
  }
  os.flags(flags);
}

void write_tail_text(const std::vector<obs::RunEvent>& events, std::size_t n, std::ostream& os) {
  const std::ios_base::fmtflags flags = os.flags();
  const std::size_t start = events.size() > n ? events.size() - n : 0;
  os << "journal tail: " << (events.size() - start) << " of " << events.size()
     << " run event(s)\n";
  rule(os);
  for (std::size_t i = start; i < events.size(); ++i) {
    const obs::RunEvent& e = events[i];
    os << "  " << e.run_id << "  " << std::setw(12) << std::left << e.program << std::right
       << "  " << std::fixed << std::setprecision(3) << std::setw(8) << e.analyze_seconds()
       << " s  " << std::scientific << std::setprecision(3) << "lambda " << e.lambda_mean
       << std::defaultfloat << std::setprecision(6) << "  threads " << e.threads;
    if (e.degraded) os << "  DEGRADED";
    os << "\n";
  }
  os.flags(flags);
}

}  // namespace terrors::report
