#include "report/journal_stats.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "robust/error.hpp"

namespace terrors::report {

obs::RunEvent event_from_json(const JsonValue& doc) {
  if (!doc.is_object())
    robust::raise(robust::Category::kArtifact, "journal event: not an object");
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != obs::kJournalKind) {
    robust::raise(robust::Category::kArtifact,
                  "journal event: not a terrors_run_event document");
  }
  const auto version = static_cast<int>(doc.at("schema_version").as_uint());
  if (version != obs::kJournalSchemaVersion) {
    robust::raise(robust::Category::kArtifact,
                  "journal event: unsupported schema_version " + std::to_string(version) +
                      " (expected " + std::to_string(obs::kJournalSchemaVersion) + ")");
  }

  obs::RunEvent e;
  e.schema_version = version;
  e.run_id = doc.at("run_id").as_string();
  e.unix_ms = doc.get_uint("unix_ms");
  e.program = doc.at("program").as_string();
  if (const JsonValue* v = doc.find("config_hash")) e.config_hash = v->as_string();
  if (const JsonValue* v = doc.find("program_hash")) e.program_hash = v->as_string();
  e.period_ps = doc.get_number("period_ps");
  e.threads = static_cast<std::size_t>(doc.get_uint("threads", 1));
  e.runs = doc.get_uint("runs");
  e.instructions = doc.get_uint("instructions");

  const JsonValue& phases = doc.at("phases");
  e.simulation_seconds = phases.get_number("simulation_seconds");
  e.training_seconds = phases.get_number("training_seconds");
  e.estimation_seconds = phases.get_number("estimation_seconds");

  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      e.counters.emplace(name, value.as_uint());
    }
  }

  if (const JsonValue* pool = doc.find("pool")) {
    e.pool_tasks = pool->get_uint("tasks");
    e.pool_retries = pool->get_uint("retries");
  }

  const JsonValue& est = doc.at("estimate");
  e.lambda_mean = est.get_number("lambda_mean");
  e.rate_mean = est.get_number("rate_mean");
  e.rate_sd = est.get_number("rate_sd");

  if (const JsonValue* deg = doc.find("degraded")) e.degraded = deg->as_bool();
  if (const JsonValue* sites = doc.find("degraded_sites")) {
    for (const JsonValue& s : sites->items()) e.degraded_sites.push_back(s.as_string());
  }
  e.peak_rss_bytes = doc.get_uint("peak_rss_bytes");
  return e;
}

std::vector<obs::RunEvent> load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) robust::raise(robust::Category::kResource, "cannot open journal '" + path + "'");
  std::vector<obs::RunEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      events.push_back(event_from_json(JsonValue::parse(line)));
    } catch (const std::exception& e) {
      throw robust::Error::wrap(
          "journal '" + path + "' line " + std::to_string(lineno), e,
          robust::Category::kArtifact);
    }
  }
  return events;
}

JournalStats aggregate(const std::vector<obs::RunEvent>& events) {
  JournalStats s;
  s.events = events.size();
  std::vector<double> sim;
  std::vector<double> train;
  std::vector<double> est;
  std::vector<double> total;
  sim.reserve(events.size());
  train.reserve(events.size());
  est.reserve(events.size());
  total.reserve(events.size());
  std::map<std::string, std::vector<double>> per_program;
  std::map<std::string, const obs::RunEvent*> last_event;
  for (const obs::RunEvent& e : events) {
    sim.push_back(e.simulation_seconds);
    train.push_back(e.training_seconds);
    est.push_back(e.estimation_seconds);
    total.push_back(e.analyze_seconds());
    if (const auto it = e.counters.find("cache.hits"); it != e.counters.end()) {
      s.cache_hits += it->second;
    }
    if (const auto it = e.counters.find("cache.misses"); it != e.counters.end()) {
      s.cache_misses += it->second;
    }
    if (e.degraded) ++s.degraded_events;
    s.peak_rss_max = std::max(s.peak_rss_max, e.peak_rss_bytes);
    per_program[e.program].push_back(e.analyze_seconds());
    last_event[e.program] = &e;  // file order == append order
  }
  s.simulation_seconds = summarize(std::move(sim));
  s.training_seconds = summarize(std::move(train));
  s.estimation_seconds = summarize(std::move(est));
  s.analyze_seconds = summarize(std::move(total));
  if (s.cache_hits + s.cache_misses > 0) {
    s.cache_hit_rate = static_cast<double>(s.cache_hits) /
                       static_cast<double>(s.cache_hits + s.cache_misses);
  }
  for (auto& [program, seconds] : per_program) {
    ProgramStats p;
    p.program = program;
    p.events = seconds.size();
    p.last_analyze_seconds = seconds.back();
    p.analyze_seconds = summarize(std::move(seconds));
    p.last_vs_p50 = p.analyze_seconds.p50 > 0.0
                        ? p.last_analyze_seconds / p.analyze_seconds.p50
                        : 1.0;
    p.last_lambda_mean = last_event.at(program)->lambda_mean;
    s.programs.push_back(std::move(p));
  }
  return s;
}

namespace {

void rule(std::ostream& os) { os << std::string(72, '-') << "\n"; }

void phase_row(std::ostream& os, const char* name, const DistSummary& d) {
  os << "  " << std::setw(10) << std::left << name << std::right << "  " << std::fixed
     << std::setprecision(4) << std::setw(9) << d.p50 << "  " << std::setw(9) << d.p95 << "  "
     << std::setw(9) << d.mean << "  " << std::setw(9) << d.max << std::defaultfloat
     << std::setprecision(6) << "\n";
}

}  // namespace

void write_stats_text(const JournalStats& s, std::ostream& os) {
  const std::ios_base::fmtflags flags = os.flags();
  os << "journal stats: " << s.events << " run event(s)\n";
  rule(os);
  if (s.events == 0) {
    os.flags(flags);
    return;
  }
  os << "phase wall time (s)\n";
  os << "  phase             p50        p95       mean        max\n";
  phase_row(os, "simulation", s.simulation_seconds);
  phase_row(os, "training", s.training_seconds);
  phase_row(os, "estimation", s.estimation_seconds);
  phase_row(os, "analyze", s.analyze_seconds);
  os << "\ncache           " << s.cache_hits << " hit / " << s.cache_misses << " miss";
  if (s.cache_hits + s.cache_misses > 0) {
    os << " (" << std::fixed << std::setprecision(1) << 100.0 * s.cache_hit_rate << "% hit rate)"
       << std::defaultfloat << std::setprecision(6);
  }
  os << "\ndegraded        " << s.degraded_events << " of " << s.events << " event(s)\n";
  os << "peak rss        " << s.peak_rss_max / (1024 * 1024) << " MiB (max over events)\n";

  os << "\nper program (analyze seconds)\n";
  rule(os);
  os << "  program       events        p50       last   last/p50     lambda\n";
  for (const ProgramStats& p : s.programs) {
    os << "  " << std::setw(12) << std::left << p.program << std::right << "  " << std::setw(6)
       << p.events << "  " << std::fixed << std::setprecision(4) << std::setw(9)
       << p.analyze_seconds.p50 << "  " << std::setw(9) << p.last_analyze_seconds << "  "
       << std::setprecision(2) << std::setw(8) << p.last_vs_p50 << "x  " << std::scientific
       << std::setprecision(3) << p.last_lambda_mean << std::defaultfloat << std::setprecision(6)
       << "\n";
  }
  os.flags(flags);
}

void write_tail_text(const std::vector<obs::RunEvent>& events, std::size_t n, std::ostream& os) {
  const std::ios_base::fmtflags flags = os.flags();
  const std::size_t start = events.size() > n ? events.size() - n : 0;
  os << "journal tail: " << (events.size() - start) << " of " << events.size()
     << " run event(s)\n";
  rule(os);
  for (std::size_t i = start; i < events.size(); ++i) {
    const obs::RunEvent& e = events[i];
    os << "  " << e.run_id << "  " << std::setw(12) << std::left << e.program << std::right
       << "  " << std::fixed << std::setprecision(3) << std::setw(8) << e.analyze_seconds()
       << " s  " << std::scientific << std::setprecision(3) << "lambda " << e.lambda_mean
       << std::defaultfloat << std::setprecision(6) << "  threads " << e.threads;
    if (e.degraded) os << "  DEGRADED";
    os << "\n";
  }
  os.flags(flags);
}

}  // namespace terrors::report
