// A tiny JSON document model and recursive-descent parser.
//
// The obs layer deliberately only *writes* JSON; the report subsystem is
// the first consumer that must read it back (`terrors report` renders a
// run-report file, `terrors diff` compares two).  This parser covers the
// JSON our own exporters emit — RFC 8259 syntax, \uXXXX escapes decoded
// as Latin-1/ASCII (our writers never emit multi-byte escapes), numbers
// via strtod — and throws std::runtime_error with a byte offset on
// malformed input.  Object member order is preserved so a parse →
// serialise round trip is byte-stable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace terrors::report {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete document; trailing non-whitespace is an error.
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup: at() throws on a missing key, find() returns
  /// nullptr.  get_number/get_uint return the member or a fallback when
  /// the key is absent (for schema-tolerant reads).
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] double get_number(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view key, std::uint64_t fallback = 0) const;

  JsonValue() = default;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace terrors::report
