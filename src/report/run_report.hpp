// Schema-versioned, machine-readable run reports (DESIGN §5e).
//
// A RunReport is the error-attribution record of one analyze() call: the
// headline estimate plus everything a TS-processor designer needs to see
// *where* the error mass comes from — per-block / per-edge marginal error
// mass, per-stage and per-opcode DTS slack summaries, the top culprit
// timing paths, and solver / Monte-Carlo diagnostics.  It is emitted as
// JSON (`analyze --report`), rendered by `terrors report`, and compared
// by `terrors diff`, which is what turns the CI bench trajectory into a
// real regression gate.
//
// Schema evolution: kSchemaVersion bumps on any incompatible change;
// readers reject a version they do not understand instead of guessing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "report/json_value.hpp"

namespace terrors::report {

inline constexpr int kSchemaVersion = 1;
/// Distinguishes run reports from the repo's other JSON files.
inline constexpr const char* kReportKind = "terrors_run_report";

/// Summary of an empirical distribution (counts + moments + quantiles).
struct DistSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Exact summary of a (small) value set; deterministic.
[[nodiscard]] DistSummary summarize(std::vector<double> values);

struct EdgeAttribution {
  std::uint32_t from_block = 0;
  std::uint64_t traversals = 0;
  double activation = 0.0;  ///< traversals / block executions
};

struct InstrAttribution {
  std::string mnemonic;
  double p_correct_mean = 0.0;  ///< mean over sample worlds of p^c
  double p_error_mean = 0.0;    ///< mean over sample worlds of p^e
  double marginal_mean = 0.0;   ///< mean over sample worlds of p_{i_k}
  bool has_ctrl = false;        ///< any incoming edge activated a control path
  double ctrl_slack_mean = 0.0; ///< traversal-weighted mean control-DTS slack (ps)
  double ctrl_slack_sd = 0.0;   ///< traversal-weighted mean control-DTS sd (ps)
};

struct BlockAttribution {
  std::uint32_t block = 0;
  std::uint64_t executions = 0;
  double exec_weight = 0.0;  ///< e_b: executions per (scaled) run
  double lambda_mean = 0.0;  ///< expected errors attributed to this block
  double lambda_sd = 0.0;
  double share = 0.0;        ///< lambda_mean / headline lambda
  std::vector<EdgeAttribution> edges;
  std::vector<InstrAttribution> instrs;
};

struct StageSlack {
  std::uint8_t stage = 0;
  std::size_t endpoints = 0;  ///< control capture endpoints in the stage
  DistSummary slack;          ///< top-k candidate path slack means (ps)
};

struct OpcodeAttribution {
  std::string mnemonic;
  double error_mass = 0.0;  ///< expected errors attributed to this opcode
  double share = 0.0;
  DistSummary ctrl_slack;   ///< characterized control-DTS slack means (ps)
};

struct CulpritPath {
  std::uint32_t endpoint = 0;
  std::uint8_t stage = 0;
  double slack_mean = 0.0;  ///< ps under the run's spec
  double slack_sd = 0.0;
  double delay_ps = 0.0;    ///< nominal path delay
  std::size_t gates = 0;
};

struct SccDiag {
  std::uint32_t scc = 0;
  std::size_t size = 0;
  bool cyclic = false;
  double max_residual = 0.0;
  /// The solve needed the degradation path (refinement / fixed point) in
  /// at least one sample world (DESIGN §5f).
  bool degraded = false;
};

struct SolverDiagnostics {
  std::size_t scc_count = 0;    ///< executed SCCs observed in the solve
  std::size_t cyclic_sccs = 0;
  std::size_t max_scc_size = 0;
  double max_residual = 0.0;
  std::vector<SccDiag> sccs;    ///< cyclic components only (acyclic are exact)
};

struct McDiagnostics {
  bool enabled = false;
  std::size_t trials = 0;
  /// Kolmogorov distance between the MC empirical count CDF and the
  /// analytic mixture CDF; dk_count should dominate it.
  double divergence = 0.0;
};

struct RunReport {
  int schema_version = kSchemaVersion;
  std::string program;
  /// Deterministic run id (obs::RunContext), correlating this report with
  /// its journal event and log lines.  Written only when non-empty, so
  /// pre-§5g reports round-trip byte-stably.
  std::string run_id;
  double period_ps = 0.0;
  std::size_t threads = 1;
  std::uint64_t runs = 0;
  std::uint64_t instructions = 0;         ///< simulated dynamic instructions
  std::uint64_t total_instructions = 0;   ///< extrapolated per-run count
  std::size_t basic_blocks = 0;

  // Headline estimate (mirrors core::ErrorRateEstimate).
  double rate_mean = 0.0;
  double rate_sd = 0.0;
  double lambda_mean = 0.0;
  double lambda_sd = 0.0;
  double dk_lambda = 0.0;
  double dk_count = 0.0;
  double b1_worst = 0.0;
  double b2_worst = 0.0;
  double sigma_chain = 0.0;

  // Runtime (Table 2 columns).
  double training_seconds = 0.0;
  double simulation_seconds = 0.0;
  double estimation_seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// Graceful degradation fired during this run (DESIGN §5f).  Written
  /// to JSON only when true, so healthy reports are byte-identical to
  /// pre-degradation readers and writers.
  bool degraded = false;
  /// Sorted unique degradation site tags ("cache", "solver", "pool", "io").
  std::vector<std::string> degraded_sites;

  std::vector<BlockAttribution> blocks;
  std::vector<StageSlack> stages;
  std::vector<OpcodeAttribution> opcodes;
  std::vector<CulpritPath> culprits;
  SolverDiagnostics solver;
  McDiagnostics mc;

  [[nodiscard]] double analyze_seconds() const {
    return training_seconds + simulation_seconds + estimation_seconds;
  }

  /// Deterministic single-document JSON (schema above; key order fixed).
  void write_json(std::ostream& os) const;
  /// Inverse of write_json.  Throws robust::Error (kArtifact) on
  /// malformed documents, a wrong "kind", or an unsupported
  /// schema_version; kInput on JSON type errors.
  static RunReport from_json(const JsonValue& doc);
  /// Read + parse + from_json; throws robust::Error (kResource on I/O
  /// errors, kArtifact/kInput wrapped with the path as context).
  static RunReport load(const std::string& path);
  /// write_json to `path` (atomically enough for CI: truncate+write).
  void save(const std::string& path) const;
};

}  // namespace terrors::report
