#include "report/render.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace terrors::report {

namespace {

void rule(std::ostream& os) { os << std::string(72, '-') << "\n"; }

}  // namespace

void write_text(const RunReport& r, std::ostream& os, std::size_t top_n) {
  const std::ios_base::fmtflags flags = os.flags();
  os << "run report (schema v" << r.schema_version << "): " << r.program << "\n";
  rule(os);
  if (!r.run_id.empty()) os << "  run id          " << r.run_id << "\n";
  os << std::scientific << std::setprecision(4);
  os << "  error rate      " << r.rate_mean << " +/- " << r.rate_sd << "\n";
  os << "  lambda          " << r.lambda_mean << " +/- " << r.lambda_sd << "\n";
  os << "  dk_lambda       " << r.dk_lambda << "   dk_count " << r.dk_count << "\n";
  os << std::defaultfloat << std::setprecision(6);
  os << "  period          " << r.period_ps << " ps   threads " << r.threads << "   runs "
     << r.runs << "\n";
  os << "  instructions    " << r.instructions << " simulated, " << r.total_instructions
     << " per run (extrapolated), " << r.basic_blocks << " blocks\n";
  os << "  runtime         train " << r.training_seconds << " s, sim " << r.simulation_seconds
     << " s, est " << r.estimation_seconds << " s";
  if (r.cache_hits + r.cache_misses > 0) {
    os << "   (cache " << r.cache_hits << " hit / " << r.cache_misses << " miss)";
  }
  os << "\n";

  os << "\nblocks by error mass (top " << std::min(top_n, r.blocks.size()) << " of "
     << r.blocks.size() << ")\n";
  rule(os);
  os << "  block  execs        lambda       share   instrs\n";
  for (std::size_t i = 0; i < std::min(top_n, r.blocks.size()); ++i) {
    const BlockAttribution& b = r.blocks[i];
    os << "  " << std::setw(5) << b.block << "  " << std::setw(10) << b.executions << "  "
       << std::scientific << std::setprecision(3) << b.lambda_mean << "  " << std::defaultfloat
       << std::setprecision(3) << std::setw(5) << 100.0 * b.share << "%  " << b.instrs.size()
       << "\n";
  }

  os << "\nopcodes by error mass (top " << std::min(top_n, r.opcodes.size()) << " of "
     << r.opcodes.size() << ")\n";
  rule(os);
  os << "  opcode     error mass    share   ctrl slack p50 (ps)\n";
  for (std::size_t i = 0; i < std::min(top_n, r.opcodes.size()); ++i) {
    const OpcodeAttribution& oc = r.opcodes[i];
    os << "  " << std::setw(8) << std::left << oc.mnemonic << std::right << "  "
       << std::scientific << std::setprecision(3) << oc.error_mass << "  " << std::defaultfloat
       << std::setprecision(3) << std::setw(5) << 100.0 * oc.share << "%   ";
    if (oc.ctrl_slack.count > 0) {
      os << oc.ctrl_slack.p50;
    } else {
      os << "-";
    }
    os << "\n";
  }

  os << "\nstage control slack (candidate paths, ps)\n";
  rule(os);
  os << "  stage  endpoints  paths    min      p50      p95      max\n";
  for (const StageSlack& st : r.stages) {
    os << "  " << std::setw(5) << static_cast<int>(st.stage) << "  " << std::setw(9)
       << st.endpoints << "  " << std::setw(5) << st.slack.count << "  " << std::fixed
       << std::setprecision(1) << std::setw(7) << st.slack.min << "  " << std::setw(7)
       << st.slack.p50 << "  " << std::setw(7) << st.slack.p95 << "  " << std::setw(7)
       << st.slack.max << std::defaultfloat << std::setprecision(6) << "\n";
  }

  os << "\nculprit paths (tightest slack first)\n";
  rule(os);
  os << "  endpoint  stage  slack mean (ps)  slack sd  delay (ps)  gates\n";
  for (std::size_t i = 0; i < std::min(top_n, r.culprits.size()); ++i) {
    const CulpritPath& c = r.culprits[i];
    os << "  " << std::setw(8) << c.endpoint << "  " << std::setw(5) << static_cast<int>(c.stage)
       << "  " << std::fixed << std::setprecision(2) << std::setw(15) << c.slack_mean << "  "
       << std::setw(8) << c.slack_sd << "  " << std::setw(10) << c.delay_ps
       << std::defaultfloat << std::setprecision(6) << "  " << std::setw(5) << c.gates << "\n";
  }

  os << "\nsolver: " << r.solver.scc_count << " SCCs (" << r.solver.cyclic_sccs
     << " cyclic, largest " << r.solver.max_scc_size << "), max residual " << std::scientific
     << std::setprecision(3) << r.solver.max_residual << std::defaultfloat
     << std::setprecision(6) << "\n";
  if (r.mc.enabled) {
    os << "monte-carlo: " << r.mc.trials << " trials, |MC - analytic| = " << std::scientific
       << std::setprecision(3) << r.mc.divergence << " (dk_count bound " << r.dk_count << ")"
       << std::defaultfloat << std::setprecision(6) << "\n";
  }
  os.flags(flags);
}

}  // namespace terrors::report
