#include "stat/discrete.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace terrors::stat {

DiscreteDistribution::DiscreteDistribution(std::vector<double> values,
                                           std::vector<double> weights)
    : values_(std::move(values)), weights_(std::move(weights)) {
  TE_REQUIRE(values_.size() == weights_.size(), "values/weights size mismatch");
  TE_REQUIRE(!values_.empty(), "empty discrete distribution");
  double total = 0.0;
  for (double w : weights_) {
    TE_REQUIRE(w >= 0.0, "negative probability weight");
    total += w;
  }
  TE_REQUIRE(total > 0.0, "all weights zero");
  for (double& w : weights_) w /= total;
  // Keep support sorted for a well-defined CDF.
  std::vector<std::size_t> order(values_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values_[a] < values_[b]; });
  std::vector<double> v(values_.size());
  std::vector<double> w(values_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    v[i] = values_[order[i]];
    w[i] = weights_[order[i]];
  }
  values_ = std::move(v);
  weights_ = std::move(w);
}

DiscreteDistribution DiscreteDistribution::from_samples(const Samples& s) {
  TE_REQUIRE(!s.empty(), "from_samples with empty sample vector");
  return DiscreteDistribution(s.values(),
                              std::vector<double>(s.size(), 1.0 / static_cast<double>(s.size())));
}

DiscreteDistribution DiscreteDistribution::point(double v) {
  return DiscreteDistribution({v}, {1.0});
}

double DiscreteDistribution::mean() const { return raw_moment(1); }

double DiscreteDistribution::variance() const {
  const double m = mean();
  return std::max(0.0, raw_moment(2) - m * m);
}

double DiscreteDistribution::stddev() const { return std::sqrt(variance()); }

double DiscreteDistribution::raw_moment(int k) const {
  TE_REQUIRE(k >= 0, "negative moment order");
  double s = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) s += weights_[i] * std::pow(values_[i], k);
  return s;
}

double DiscreteDistribution::central_moment(int k) const {
  TE_REQUIRE(k >= 0, "negative moment order");
  const double m = mean();
  double s = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i)
    s += weights_[i] * std::pow(values_[i] - m, k);
  return s;
}

double DiscreteDistribution::abs_central_moment3() const {
  const double m = mean();
  double s = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = std::fabs(values_[i] - m);
    s += weights_[i] * d * d * d;
  }
  return s;
}

double DiscreteDistribution::cdf(double x) const {
  double s = 0.0;
  for (std::size_t i = 0; i < values_.size() && values_[i] <= x; ++i) s += weights_[i];
  return s;
}

DiscreteDistribution DiscreteDistribution::compacted(double tol) const {
  TE_REQUIRE(tol >= 0.0, "negative tolerance");
  std::vector<double> v;
  std::vector<double> w;
  // Anchor each bucket at its first (smallest) value: comparing against the
  // drifting weighted mean lets a chain of points, each within tol of its
  // neighbour, collapse a span far wider than tol.
  double anchor = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!v.empty() && values_[i] - anchor <= tol) {
      // Merge into the open bucket, keeping the probability-weighted mean.
      const double wt = w.back() + weights_[i];
      v.back() = (v.back() * w.back() + values_[i] * weights_[i]) / wt;
      w.back() = wt;
    } else {
      anchor = values_[i];
      v.push_back(values_[i]);
      w.push_back(weights_[i]);
    }
  }
  return DiscreteDistribution(std::move(v), std::move(w));
}

}  // namespace terrors::stat
