// Discrete (finite-support) probability distributions: the paper's
// "error probability distributions represented as discrete random
// variables" whose third and fourth moments feed the Stein bound.
#pragma once

#include <cstddef>
#include <vector>

#include "stat/samples.hpp"

namespace terrors::stat {

/// A finite-support distribution: value v_i with probability w_i.
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;
  /// Weights must be non-negative and not all zero; they are normalised.
  DiscreteDistribution(std::vector<double> values, std::vector<double> weights);
  /// Uniform distribution over sample points.
  static DiscreteDistribution from_samples(const Samples& s);
  /// Point mass.
  static DiscreteDistribution point(double v);

  [[nodiscard]] std::size_t support_size() const { return values_.size(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Raw moment E[X^k].
  [[nodiscard]] double raw_moment(int k) const;
  /// Central moment E[(X-EX)^k].
  [[nodiscard]] double central_moment(int k) const;
  /// E|X - EX|^3.
  [[nodiscard]] double abs_central_moment3() const;
  /// CDF Pr(X <= x).
  [[nodiscard]] double cdf(double x) const;
  /// Collapse nearly-equal support points (tolerance on value axis).
  [[nodiscard]] DiscreteDistribution compacted(double tol) const;

 private:
  std::vector<double> values_;
  std::vector<double> weights_;
};

}  // namespace terrors::stat
