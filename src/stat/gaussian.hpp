// A Gaussian random variable, the basic currency of SSTA: under process
// variation every timing slack is (approximately) normal.
#pragma once

namespace terrors::stat {

/// Normal distribution N(mean, sd^2); sd >= 0 (sd == 0 is a point mass).
struct Gaussian {
  double mean = 0.0;
  double sd = 0.0;

  [[nodiscard]] double variance() const { return sd * sd; }
  /// Pr(X <= x).
  [[nodiscard]] double cdf(double x) const;
  /// Pr(X < 0): the probability a slack variable is violated.
  [[nodiscard]] double prob_below_zero() const { return cdf(0.0); }
  /// Quantile (inverse CDF); p in (0, 1).
  [[nodiscard]] double quantile(double p) const;
  /// Shift by a constant.
  [[nodiscard]] Gaussian shifted(double delta) const { return {mean + delta, sd}; }

  friend bool operator==(const Gaussian&, const Gaussian&) = default;
};

/// Sum of two jointly normal variables with covariance cov.
Gaussian sum(const Gaussian& a, const Gaussian& b, double cov);

}  // namespace terrors::stat
