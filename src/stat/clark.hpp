// Clark's moment-matching approximation for the max / min of correlated
// Gaussians, and the greedy pairwise statistical minimum used by the SSTA
// variant of Algorithm 1.
//
// The greedy ordering follows the idea of Sinha, Zhou & Shenoy ("Advances
// in computation of the maximum of a set of Gaussian random variables",
// TCAD'07, the paper's [21]): Clark's two-variable step is exact in the
// first two moments, so overall error comes from treating intermediate
// results as Gaussian.  At each step we combine the pair whose pairwise
// minimum is closest to Gaussian, measured by the magnitude of the
// nonlinear interaction term a * phi(alpha) (zero when one variable
// dominates or the two are perfectly correlated with equal spread).
#pragma once

#include <vector>

#include "stat/gaussian.hpp"

namespace terrors::stat {

/// Result of a pairwise Clark operation.
struct ClarkResult {
  Gaussian value;
  /// Pr(first argument is the smaller / larger one) — the tightness
  /// probability Phi(alpha) of the combination.
  double tightness = 0.0;
};

/// Moment-matched Gaussian approximation of min(a, b) where corr(a,b) = rho.
ClarkResult clark_min(const Gaussian& a, const Gaussian& b, double rho);

/// Moment-matched Gaussian approximation of max(a, b) where corr(a,b) = rho.
ClarkResult clark_max(const Gaussian& a, const Gaussian& b, double rho);

/// Covariance of min(a,b) with a third variable y, given Cov(a,y), Cov(b,y)
/// and the tightness probability of the min (Pr(a < b)).
double clark_min_cov(double cov_ay, double cov_by, double tightness_a);

/// How the elements of a statistical min are combined.
enum class MinOrdering {
  kSequential,       ///< combine in the order given
  kByMean,           ///< sort by ascending mean first
  kGreedyTightness,  ///< Sinha-style: smallest nonlinear-term pair first
};

/// Gaussian approximation of min(X_1..X_n) for jointly normal X with the
/// given means/sds and covariance matrix (row-major n*n).  Empty input is
/// not allowed.  Single element returns itself exactly.
Gaussian statistical_min(const std::vector<Gaussian>& vars, const std::vector<double>& cov,
                         MinOrdering ordering = MinOrdering::kGreedyTightness);

/// Convenience overload for independent variables.
Gaussian statistical_min_independent(const std::vector<Gaussian>& vars,
                                     MinOrdering ordering = MinOrdering::kGreedyTightness);

}  // namespace terrors::stat
