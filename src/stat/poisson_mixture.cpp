#include "stat/poisson_mixture.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/math.hpp"

namespace terrors::stat {

void gauss_legendre(int n, double a, double b, std::vector<double>& nodes,
                    std::vector<double>& weights) {
  TE_REQUIRE(n >= 1, "quadrature needs at least one node");
  TE_REQUIRE(a <= b, "inverted quadrature interval");
  nodes.assign(static_cast<std::size_t>(n), 0.0);
  weights.assign(static_cast<std::size_t>(n), 0.0);
  // Newton iteration on Legendre polynomials; standard Numerical-Recipes
  // style construction on [-1, 1], then affine map to [a, b].
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) / (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0;
      double p1 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * j + 1.0) * x * p1 - j * p2) / (j + 1.0);
      }
      pp = static_cast<double>(n) * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / pp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    const double xl = 0.5 * (b - a);
    const double xm = 0.5 * (b + a);
    nodes[static_cast<std::size_t>(i)] = xm - xl * x;
    nodes[static_cast<std::size_t>(n - 1 - i)] = xm + xl * x;
    const double w = 2.0 * xl / ((1.0 - x * x) * pp * pp);
    weights[static_cast<std::size_t>(i)] = w;
    weights[static_cast<std::size_t>(n - 1 - i)] = w;
  }
}

PoissonMixture::PoissonMixture(Gaussian lambda, int nodes) : lambda_(lambda) {
  TE_REQUIRE(lambda.mean >= 0.0, "Poisson rate mean must be non-negative");
  TE_REQUIRE(nodes >= 1, "need at least one quadrature node");
  if (lambda.sd == 0.0) {
    nodes_ = {lambda.mean};
    weights_ = {1.0};
    return;
  }
  const double lo = std::max(0.0, lambda.mean - 8.0 * lambda.sd);
  const double hi = lambda.mean + 8.0 * lambda.sd;
  std::vector<double> x;
  std::vector<double> w;
  gauss_legendre(nodes, lo, hi, x, w);
  double total = 0.0;
  nodes_.reserve(x.size());
  weights_.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double p = w[i] * support::normal_pdf((x[i] - lambda.mean) / lambda.sd) / lambda.sd;
    nodes_.push_back(x[i]);
    weights_.push_back(p);
    total += p;
  }
  TE_CHECK(total > 0.0, "degenerate quadrature weights");
  for (double& p : weights_) p /= total;
}

double PoissonMixture::cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    s += weights_[i] * support::poisson_cdf(k, nodes_[i]);
  return support::clamp(s, 0.0, 1.0);
}

double PoissonMixture::variance() const { return lambda_.mean + lambda_.variance(); }

std::int64_t PoissonMixture::quantile(double p) const {
  TE_REQUIRE(p > 0.0 && p < 1.0, "quantile probability out of range");
  // Bracket around the mean using the mixture's normal approximation, then
  // binary search on the integer line.
  const double sd = std::sqrt(std::max(1.0, variance()));
  std::int64_t lo = static_cast<std::int64_t>(std::floor(mean() - 12.0 * sd)) - 1;
  std::int64_t hi = static_cast<std::int64_t>(std::ceil(mean() + 12.0 * sd)) + 1;
  lo = std::max<std::int64_t>(lo, -1);
  while (cdf(hi) < p) hi *= 2;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (cdf(mid) >= p) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace terrors::stat
