#include "stat/samples.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace terrors::stat {
namespace {

void require_same_size(const Samples& a, const Samples& b) {
  TE_REQUIRE(a.size() == b.size(), "sample vectors must share the same input set");
}

}  // namespace

double Samples::mean() const {
  if (v_.empty()) return 0.0;
  double s = 0.0;
  for (double x : v_) s += x;
  return s / static_cast<double>(v_.size());
}

double Samples::variance() const {
  if (v_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : v_) s += (x - m) * (x - m);
  return s / static_cast<double>(v_.size());
}

double Samples::stddev() const { return std::sqrt(variance()); }

double Samples::min() const {
  TE_REQUIRE(!v_.empty(), "min of empty samples");
  return *std::min_element(v_.begin(), v_.end());
}

double Samples::max() const {
  TE_REQUIRE(!v_.empty(), "max of empty samples");
  return *std::max_element(v_.begin(), v_.end());
}

double Samples::abs_central_moment3() const {
  if (v_.empty()) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : v_) {
    const double d = std::fabs(x - m);
    s += d * d * d;
  }
  return s / static_cast<double>(v_.size());
}

double Samples::central_moment4() const {
  if (v_.empty()) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : v_) {
    const double d = x - m;
    s += d * d * d * d;
  }
  return s / static_cast<double>(v_.size());
}

double Samples::worst_case(double k_sigma) const { return mean() + k_sigma * stddev(); }

double Samples::quantile(double p) const {
  TE_REQUIRE(!v_.empty(), "quantile of empty samples");
  TE_REQUIRE(p >= 0.0 && p <= 1.0, "quantile probability out of range");
  std::vector<double> sorted = v_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       std::floor(p * static_cast<double>(sorted.size()))));
  return sorted[idx];
}

Samples Samples::map(const std::function<double(double)>& f) const {
  Samples out(*this);
  for (double& x : out.v_) x = f(x);
  return out;
}

Samples& Samples::operator+=(const Samples& o) {
  require_same_size(*this, o);
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += o.v_[i];
  return *this;
}

Samples& Samples::operator-=(const Samples& o) {
  require_same_size(*this, o);
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= o.v_[i];
  return *this;
}

Samples& Samples::operator*=(const Samples& o) {
  require_same_size(*this, o);
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] *= o.v_[i];
  return *this;
}

Samples& Samples::operator+=(double c) {
  for (double& x : v_) x += c;
  return *this;
}

Samples& Samples::operator*=(double c) {
  for (double& x : v_) x *= c;
  return *this;
}

double covariance(const Samples& a, const Samples& b) {
  require_same_size(a, b);
  if (a.empty()) return 0.0;
  const double ma = a.mean();
  const double mb = b.mean();
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - ma) * (b[i] - mb);
  return s / static_cast<double>(a.size());
}

double correlation(const Samples& a, const Samples& b) {
  const double denom = a.stddev() * b.stddev();
  if (denom == 0.0) return 0.0;
  return covariance(a, b) / denom;
}

}  // namespace terrors::stat
