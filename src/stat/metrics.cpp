#include "stat/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace terrors::stat {

double kolmogorov_distance(const std::function<double(double)>& f,
                           const std::function<double(double)>& g,
                           const std::vector<double>& grid) {
  TE_REQUIRE(!grid.empty(), "empty evaluation grid");
  double d = 0.0;
  for (double x : grid) d = std::max(d, std::fabs(f(x) - g(x)));
  return d;
}

double kolmogorov_distance_integer(const std::function<double(std::int64_t)>& f,
                                   const std::function<double(std::int64_t)>& g, std::int64_t lo,
                                   std::int64_t hi) {
  TE_REQUIRE(lo <= hi, "inverted integer range");
  double d = 0.0;
  for (std::int64_t k = lo; k <= hi; ++k) d = std::max(d, std::fabs(f(k) - g(k)));
  return d;
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  TE_REQUIRE(!a.empty() && !b.empty(), "empty sample in KS statistic");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  return d;
}

double total_variation(const std::vector<double>& p, const std::vector<double>& q) {
  TE_REQUIRE(p.size() == q.size(), "pmf size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) s += std::fabs(p[i] - q[i]);
  return 0.5 * s;
}

}  // namespace terrors::stat
