// Probability metrics: the Kolmogorov metric (maximum CDF distance) and the
// total variation distance, as used in Theorems 5.1/5.2 and Table 2.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace terrors::stat {

/// Kolmogorov distance sup_x |F(x) - G(x)| between two CDFs evaluated on a
/// shared grid of points.
double kolmogorov_distance(const std::function<double(double)>& f,
                           const std::function<double(double)>& g,
                           const std::vector<double>& grid);

/// Kolmogorov distance between integer-valued CDFs over [lo, hi].
double kolmogorov_distance_integer(const std::function<double(std::int64_t)>& f,
                                   const std::function<double(std::int64_t)>& g, std::int64_t lo,
                                   std::int64_t hi);

/// Two-sample Kolmogorov–Smirnov statistic between empirical samples.
double ks_statistic(std::vector<double> a, std::vector<double> b);

/// Total variation distance 0.5 * sum |p_i - q_i| between two pmfs over the
/// same index set (vectors must have equal length).
double total_variation(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace terrors::stat
