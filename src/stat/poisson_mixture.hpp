// Equation (14) of the paper: the estimated CDF of the program error count
// is a Poisson CDF integrated over the (approximately normal) distribution
// of its parameter lambda:
//
//   Nbar_E(k) = integral  e^{-lambda(x)} sum_{i<=k} lambda(x)^i / i!  dx
//
// We evaluate the mixture with Gauss–Legendre quadrature over the
// +-8 sigma range of the Gaussian lambda, truncated at 0 (a Poisson rate
// cannot be negative; the truncated mass is renormalised and is negligible
// for all practical operating points).
#pragma once

#include <cstdint>
#include <vector>

#include "stat/gaussian.hpp"

namespace terrors::stat {

/// Poisson distribution whose rate is itself Gaussian-distributed.
class PoissonMixture {
 public:
  /// nodes: quadrature resolution (defaults balance speed and accuracy).
  explicit PoissonMixture(Gaussian lambda, int nodes = 64);

  [[nodiscard]] const Gaussian& lambda() const { return lambda_; }
  /// Pr(N <= k) per Eq. 14.
  [[nodiscard]] double cdf(std::int64_t k) const;
  /// Mixture mean E[N] = E[lambda].
  [[nodiscard]] double mean() const { return lambda_.mean; }
  /// Mixture variance Var(N) = E[lambda] + Var(lambda).
  [[nodiscard]] double variance() const;
  /// Quantile by bisection on the integer line; p in (0,1).
  [[nodiscard]] std::int64_t quantile(double p) const;

 private:
  Gaussian lambda_;
  std::vector<double> nodes_;    // lambda values
  std::vector<double> weights_;  // normalised probability weights
};

/// Nodes/weights of n-point Gauss–Legendre quadrature on [a, b].
void gauss_legendre(int n, double a, double b, std::vector<double>& nodes,
                    std::vector<double>& weights);

}  // namespace terrors::stat
