#include "stat/poisson_binomial.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/math.hpp"

namespace terrors::stat {

PoissonBinomial::PoissonBinomial(const std::vector<double>& probabilities)
    : n_(probabilities.size()) {
  TE_REQUIRE(!probabilities.empty(), "empty indicator set");
  pmf_.assign(n_ + 1, 0.0);
  pmf_[0] = 1.0;
  std::size_t upper = 0;  // highest index with nonzero mass so far
  for (double p : probabilities) {
    TE_REQUIRE(p >= 0.0 && p <= 1.0, "indicator probability out of range");
    mean_ += p;
    var_ += p * (1.0 - p);
    // In-place convolution with {1-p, p}, high to low.
    ++upper;
    for (std::size_t k = std::min(upper, n_); k-- > 0;) {
      pmf_[k + 1] += pmf_[k] * p;
      pmf_[k] *= (1.0 - p);
    }
  }
}

double PoissonBinomial::pmf(std::size_t k) const {
  TE_REQUIRE(k <= n_, "count out of range");
  return pmf_[k];
}

double PoissonBinomial::cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  const auto kk = std::min<std::size_t>(static_cast<std::size_t>(k), n_);
  double s = 0.0;
  for (std::size_t i = 0; i <= kk; ++i) s += pmf_[i];
  return std::min(1.0, s);
}

double PoissonBinomial::dk_to_poisson() const {
  double d = 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k <= n_; ++k) {
    acc += pmf_[k];
    d = std::max(d, std::fabs(acc - support::poisson_cdf(static_cast<std::int64_t>(k), mean_)));
  }
  return d;
}

}  // namespace terrors::stat
