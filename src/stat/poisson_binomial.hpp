// Exact Poisson-binomial distribution (sum of independent, non-identical
// Bernoulli indicators) via the O(n^2) convolution recurrence.
//
// The paper motivates the Poisson approximation by the intractability of
// the exact PBD at program scale ([17], Hong 2013); this implementation
// makes that argument concrete — it is exact and fine for thousands of
// indicators, and hopeless for the billions a real program executes — and
// serves as ground truth in tests of the Chen-Stein machinery.
#pragma once

#include <cstdint>
#include <vector>

namespace terrors::stat {

class PoissonBinomial {
 public:
  /// Probabilities of the independent indicators; each in [0, 1].
  explicit PoissonBinomial(const std::vector<double>& probabilities);

  [[nodiscard]] std::size_t count() const { return n_; }
  /// Pr(W = k).
  [[nodiscard]] double pmf(std::size_t k) const;
  /// Pr(W <= k).
  [[nodiscard]] double cdf(std::int64_t k) const;
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return var_; }
  /// Kolmogorov distance to a Poisson with the same mean.
  [[nodiscard]] double dk_to_poisson() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::vector<double> pmf_;  ///< index k = exactly k successes
};

}  // namespace terrors::stat
