#include "stat/gaussian.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/math.hpp"

namespace terrors::stat {

double Gaussian::cdf(double x) const {
  TE_REQUIRE(sd >= 0.0, "Gaussian with negative sd");
  if (sd == 0.0) return x >= mean ? 1.0 : 0.0;
  return support::normal_cdf((x - mean) / sd);
}

double Gaussian::quantile(double p) const {
  TE_REQUIRE(sd >= 0.0, "Gaussian with negative sd");
  if (sd == 0.0) return mean;
  return mean + sd * support::normal_quantile(p);
}

Gaussian sum(const Gaussian& a, const Gaussian& b, double cov) {
  const double var = a.variance() + b.variance() + 2.0 * cov;
  TE_REQUIRE(var >= -1e-12, "sum of Gaussians with impossible covariance");
  return {a.mean + b.mean, std::sqrt(var < 0.0 ? 0.0 : var)};
}

}  // namespace terrors::stat
