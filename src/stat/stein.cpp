#include "stat/stein.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace terrors::stat {

double stein_normal_bound(const SteinNormalInputs& in) {
  TE_REQUIRE(in.sigma >= 0.0, "negative sigma");
  TE_REQUIRE(in.sum_abs_central3 >= 0.0 && in.sum_central4 >= 0.0, "negative moment sums");
  TE_REQUIRE(in.max_dep >= 1, "dependency neighbourhoods include the variable itself");
  if (in.sigma == 0.0) return 0.0;  // point mass: approximation is exact
  const double d = static_cast<double>(in.max_dep);
  const double sigma2 = in.sigma * in.sigma;
  const double sigma3 = sigma2 * in.sigma;
  const double b1 = d * d / sigma3 * in.sum_abs_central3;
  const double b2 =
      std::sqrt(28.0) * std::pow(d, 1.5) / (std::sqrt(M_PI) * sigma2) * std::sqrt(in.sum_central4);
  // Eq. (13): d_K <= (2/pi)^{1/4} (b1 + b2).
  const double bound = std::pow(2.0 / M_PI, 0.25) * (b1 + b2);
  return std::min(1.0, bound);
}

double chen_stein_bound(const ChenSteinInputs& in) {
  TE_REQUIRE(in.b1 >= 0.0 && in.b2 >= 0.0, "negative Chen-Stein terms");
  TE_REQUIRE(in.lambda >= 0.0, "negative Poisson rate");
  const double scale = in.lambda > 1.0 ? 1.0 / in.lambda : 1.0;
  return std::min(1.0, scale * (in.b1 + in.b2));
}

}  // namespace terrors::stat
