#include "stat/clark.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace terrors::stat {
namespace {

using support::normal_cdf;
using support::normal_pdf;

// Interaction spread a = sqrt(Var(a) + Var(b) - 2 Cov(a,b)).
double interaction_spread(const Gaussian& a, const Gaussian& b, double rho) {
  const double v = a.variance() + b.variance() - 2.0 * rho * a.sd * b.sd;
  return v <= 0.0 ? 0.0 : std::sqrt(v);
}

}  // namespace

ClarkResult clark_max(const Gaussian& x, const Gaussian& y, double rho) {
  TE_REQUIRE(rho >= -1.0 - 1e-9 && rho <= 1.0 + 1e-9, "correlation out of range");
  rho = support::clamp(rho, -1.0, 1.0);
  const double a = interaction_spread(x, y, rho);
  if (a == 0.0) {
    // Same distribution up to a shift: the max is whichever has the larger
    // mean (identical variances since a == 0 forces sd_x == sd_y, rho == 1).
    const Gaussian& m = x.mean >= y.mean ? x : y;
    return {m, x.mean >= y.mean ? 1.0 : 0.0};
  }
  const double alpha = (x.mean - y.mean) / a;
  const double t = normal_cdf(alpha);  // Pr(x > y)
  const double pdf = normal_pdf(alpha);
  const double mean = x.mean * t + y.mean * (1.0 - t) + a * pdf;
  const double second = (x.mean * x.mean + x.variance()) * t +
                        (y.mean * y.mean + y.variance()) * (1.0 - t) +
                        (x.mean + y.mean) * a * pdf;
  const double var = std::max(0.0, second - mean * mean);
  return {{mean, std::sqrt(var)}, t};
}

ClarkResult clark_min(const Gaussian& x, const Gaussian& y, double rho) {
  static obs::Counter& calls = obs::MetricsRegistry::instance().counter("stat.clark_min_calls");
  calls.increment();
  // min(x, y) = -max(-x, -y); corr(-x, -y) == corr(x, y).
  const ClarkResult neg = clark_max({-x.mean, x.sd}, {-y.mean, y.sd}, rho);
  // neg.tightness = Pr(-x > -y) = Pr(x < y).
  return {{-neg.value.mean, neg.value.sd}, neg.tightness};
}

double clark_min_cov(double cov_ay, double cov_by, double tightness_a) {
  TE_REQUIRE(tightness_a >= 0.0 && tightness_a <= 1.0, "tightness must be a probability");
  return cov_ay * tightness_a + cov_by * (1.0 - tightness_a);
}

namespace {

// Shared implementation: maintains the active set and a covariance matrix,
// combining two elements per step until one remains.
Gaussian statistical_min_impl(std::vector<Gaussian> vars, std::vector<double> cov,
                              MinOrdering ordering) {
  const std::size_t n0 = vars.size();
  TE_REQUIRE(n0 > 0, "statistical_min of an empty set");
  TE_REQUIRE(cov.size() == n0 * n0, "covariance matrix size mismatch");
  if (n0 == 1) return vars[0];

  std::vector<std::size_t> active(n0);
  for (std::size_t i = 0; i < n0; ++i) active[i] = i;

  if (ordering == MinOrdering::kByMean) {
    std::sort(active.begin(), active.end(),
              [&](std::size_t a, std::size_t b) { return vars[a].mean < vars[b].mean; });
  }

  auto cov_at = [&](std::size_t i, std::size_t j) -> double& { return cov[i * n0 + j]; };
  auto corr = [&](std::size_t i, std::size_t j) {
    const double denom = vars[i].sd * vars[j].sd;
    if (denom == 0.0) return 0.0;
    return support::clamp(cov_at(i, j) / denom, -1.0, 1.0);
  };

  // Nonlinearity score of combining (i, j): a * phi(alpha).  Smaller means
  // the pairwise min is closer to one of the operands, i.e. more Gaussian.
  auto score = [&](std::size_t i, std::size_t j) {
    const double a =
        std::sqrt(std::max(0.0, vars[i].variance() + vars[j].variance() - 2.0 * cov_at(i, j)));
    if (a == 0.0) return 0.0;
    const double alpha = (vars[i].mean - vars[j].mean) / a;
    return a * normal_pdf(alpha);
  };

  // The O(n^2)-per-step greedy pair search is worthwhile only for small
  // sets; beyond this size fall back to mean-sorted sequential combining
  // (same covariance handling, linear number of Clark steps).
  constexpr std::size_t kGreedyLimit = 24;
  if (ordering == MinOrdering::kGreedyTightness && active.size() > kGreedyLimit) {
    std::sort(active.begin(), active.end(),
              [&](std::size_t a, std::size_t b) { return vars[a].mean < vars[b].mean; });
    ordering = MinOrdering::kByMean;
  }

  while (active.size() > 1) {
    std::size_t pi = 0;
    std::size_t pj = 1;
    if (ordering == MinOrdering::kGreedyTightness) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t u = 0; u < active.size(); ++u) {
        for (std::size_t v = u + 1; v < active.size(); ++v) {
          const double s = score(active[u], active[v]);
          if (s < best) {
            best = s;
            pi = u;
            pj = v;
          }
        }
      }
    }
    const std::size_t i = active[pi];
    const std::size_t j = active[pj];
    const ClarkResult r = clark_min(vars[i], vars[j], corr(i, j));

    // Fold the result into slot i; update covariances of the running min
    // against all remaining elements via Clark's linearisation.
    for (std::size_t u = 0; u < active.size(); ++u) {
      const std::size_t k = active[u];
      if (k == i || k == j) continue;
      const double c = clark_min_cov(cov_at(i, k), cov_at(j, k), r.tightness);
      cov_at(i, k) = c;
      cov_at(k, i) = c;
    }
    vars[i] = r.value;
    cov_at(i, i) = r.value.variance();
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(pj));
  }
  return vars[active[0]];
}

}  // namespace

Gaussian statistical_min(const std::vector<Gaussian>& vars, const std::vector<double>& cov,
                         MinOrdering ordering) {
  return statistical_min_impl(vars, cov, ordering);
}

Gaussian statistical_min_independent(const std::vector<Gaussian>& vars, MinOrdering ordering) {
  const std::size_t n = vars.size();
  std::vector<double> cov(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) cov[i * n + i] = vars[i].variance();
  return statistical_min_impl(vars, cov, ordering);
}

}  // namespace terrors::stat
